"""Batch-kernel microbenchmarks: the vectorised succinct layer vs scalar.

Regenerates the ``BENCH_kernels.json`` perf artifact and *gates* the
batch kernels: each batch primitive must beat a Python loop over its
scalar counterpart by at least ``MIN_KERNEL_SPEEDUP`` (a deliberately
loose floor — measured speedups are 40-100x — so the gate only trips on
a real regression, not on machine noise), and the end-to-end batch-leap
LTJ path must not be slower than the scalar walk.

Scale knobs: ``REPRO_BENCH_N`` / ``REPRO_BENCH_QUERIES`` (conftest) for
the LTJ half; ``REPRO_BENCH_KERNEL_N`` / ``REPRO_BENCH_KERNEL_BATCH``
for the structure/batch sizes of the kernel half.  ``scripts/
perf_smoke.py`` runs this file in quick mode on CI.
"""

import json
import os

import pytest

from repro.perf.kernelbench import bench_kernels, bench_ltj

KERNEL_N = int(os.environ.get("REPRO_BENCH_KERNEL_N", str(1 << 17)))
KERNEL_BATCH = int(os.environ.get("REPRO_BENCH_KERNEL_BATCH", str(1 << 13)))

#: Required batch-over-scalar factor per kernel (acceptance floor).
MIN_KERNEL_SPEEDUP = 5.0

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def kernel_rows():
    return bench_kernels(n=KERNEL_N, batch=KERNEL_BATCH, seed=0)


@pytest.fixture(scope="module")
def ltj_report(bench_graph):
    n_queries = int(os.environ.get("REPRO_BENCH_QUERIES", "2"))
    return bench_ltj(
        n=bench_graph.n_triples, queries_per_shape=n_queries, seed=0
    )


@pytest.mark.parametrize(
    "kernel",
    [
        "bits.rank1_many",
        "bits.select1_many",
        "bits.access_many",
        "wavelet.rank_many",
        "wavelet.extract_at",
    ],
)
def test_kernel_speedup(kernel_rows, kernel, benchmark):
    """Every batch kernel beats its scalar loop by the acceptance floor."""
    row = next(r for r in kernel_rows if r["kernel"] == kernel)

    def noop():
        return row

    benchmark.pedantic(noop, rounds=1, iterations=1)
    benchmark.extra_info.update(
        speedup=round(row["speedup"], 1),
        batch_mops_per_s=round(row["batch_mops_per_s"], 1),
    )
    assert row["speedup"] >= MIN_KERNEL_SPEEDUP, (
        f"{kernel}: batch only {row['speedup']:.1f}x over scalar "
        f"(floor {MIN_KERNEL_SPEEDUP}x)"
    )


def test_ltj_batch_not_slower(ltj_report):
    """Batch-leap LTJ returns the same rows, at least as fast (±20%)."""
    assert ltj_report["batch"]["results"] == ltj_report["scalar"]["results"]
    assert ltj_report["batch"]["timeouts"] == 0
    # Same workload both ways; allow 20% noise headroom on small graphs.
    assert ltj_report["speedup"] >= 0.8, (
        f"batch-leap path slower than scalar: {ltj_report['speedup']:.2f}x"
    )


def test_write_bench_artifact(kernel_rows, ltj_report):
    """Emit the machine-readable perf artifact for trajectory tracking."""
    from repro.perf.kernelbench import SCHEMA_VERSION

    path = os.environ.get("REPRO_BENCH_KERNELS_OUT", "BENCH_kernels.json")
    payload = {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "kernel_n": KERNEL_N,
            "kernel_batch": KERNEL_BATCH,
            "source": "benchmarks/bench_kernels.py",
        },
        "kernels": kernel_rows,
        "ltj": ltj_report,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
