"""Dynamic-ring benches (the §7 future-work feature we implement).

Measures insert throughput (amortised over LSM compactions), delete
cost, and query latency before/after an update storm — the trade-off
the paper's conclusion describes ("trade such a penalty factor for
amortised update times").
"""

import numpy as np
import pytest

from repro.bench.runner import run_benchmark, summarize
from repro.core import RingIndex
from repro.core.dynamic import DynamicRingIndex
from repro.graph.dataset import Graph


@pytest.fixture(scope="module")
def base_graph(bench_graph):
    return bench_graph


def _random_triples(graph, count, seed):
    rng = np.random.default_rng(seed)
    return [
        (
            int(rng.integers(0, graph.n_nodes)),
            int(rng.integers(0, graph.n_predicates)),
            int(rng.integers(0, graph.n_nodes)),
        )
        for _ in range(count)
    ]


def test_insert_throughput(benchmark, base_graph):
    triples = _random_triples(base_graph, 2000, seed=1)

    def build_and_fill():
        index = DynamicRingIndex(
            Graph(
                np.zeros((0, 3)),
                n_nodes=base_graph.n_nodes,
                n_predicates=base_graph.n_predicates,
            ),
            buffer_threshold=256,
        )
        for t in triples:
            index.insert(*t)
        return index

    index = benchmark.pedantic(build_and_fill, rounds=1, iterations=1)
    benchmark.extra_info["components"] = index.n_components
    benchmark.extra_info["triples"] = index.n_triples


def test_delete_throughput(benchmark, base_graph):
    index = DynamicRingIndex(base_graph, buffer_threshold=512)
    victims = [tuple(int(v) for v in t) for t in base_graph.triples[::7]]

    def run():
        for t in victims:
            index.delete(*t)
        for t in victims:
            index.insert(*t)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_query_latency_after_updates(benchmark, base_graph, wgpb_queries):
    index = DynamicRingIndex(base_graph, buffer_threshold=256)
    for t in _random_triples(base_graph, 600, seed=3):
        index.insert(*t)
    for t in [tuple(int(v) for v in r) for r in base_graph.triples[::11]]:
        index.delete(*t)
    queries = {k: v for k, v in wgpb_queries.items() if k in ("P2", "T2", "Tr1")}

    def run():
        return run_benchmark([index], queries, limit=1000, timeout=30.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(result.timings)
    benchmark.extra_info["mean_ms"] = round(1000 * stats["mean"], 2)
    benchmark.extra_info["components"] = index.n_components


def test_static_vs_dynamic_overhead(base_graph, wgpb_queries):
    """The dynamic index costs a (component-count) factor over a static
    ring — logarithmic, not linear."""
    static = RingIndex(base_graph)
    dynamic = DynamicRingIndex(base_graph, buffer_threshold=256)
    queries = {"P2": wgpb_queries.get("P2", [])}
    if not queries["P2"]:
        pytest.skip("no P2 instances")
    t_static = summarize(
        run_benchmark([static], queries, limit=1000).timings
    )["mean"]
    t_dynamic = summarize(
        run_benchmark([dynamic], queries, limit=1000).timings
    )["mean"]
    assert t_dynamic < 25 * t_static
