"""Parallel-vs-serial LTJ benchmark: the shared-memory worker pool.

Regenerates the ``BENCH_parallel.json`` perf artifact and gates the
pool on two axes:

- **identity, always** — every parallel answer must be the byte-
  identical *ordered* serial answer, on any host;
- **speedup, where it can exist** — the >= ``MIN_PARALLEL_SPEEDUP``
  end-to-end floor at 4 workers only runs on hosts with at least 4
  CPUs; a 1-core container cannot speed anything up and the artifact
  records its ``cpus`` honestly instead of faking a pass.

Scale knobs: ``REPRO_BENCH_N`` / ``REPRO_BENCH_QUERIES`` (conftest
defaults), ``REPRO_BENCH_PARALLEL_OUT`` for the artifact path.
"""

import json
import os

import pytest

from repro.perf.parallelbench import (
    MIN_GATE_CPUS,
    MIN_PARALLEL_SPEEDUP,
    SCHEMA_VERSION,
    bench_parallel,
)

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "4000"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "2"))

pytestmark = pytest.mark.perf

_CPUS = os.cpu_count() or 1


@pytest.fixture(scope="module")
def parallel_report():
    workers = (2, 4) if _CPUS >= MIN_GATE_CPUS else (2,)
    return bench_parallel(
        n=BENCH_N, workers=workers, queries_per_shape=BENCH_QUERIES, seed=0
    )


def test_parallel_identical(parallel_report):
    """Every worker count returns the exact ordered serial answer."""
    assert parallel_report["serial"]["rows"] > 0
    for row in parallel_report["parallel"]:
        assert row["identical"], (
            f"{row['workers']} workers: parallel result diverged from "
            f"the serial enumeration"
        )
        assert row["rows"] == parallel_report["serial"]["rows"]


def test_parallel_pool_healthy(parallel_report):
    """The pool actually fanned out (no silent serial fallbacks only)."""
    for row in parallel_report["parallel"]:
        pool = row["pool"]
        assert pool.get("dispatched", 0) > 0, (
            f"{row['workers']} workers: nothing was ever dispatched"
        )
        assert pool.get("spawn_failures", 0) == 0


def test_speedup_gate_recorded(parallel_report):
    """The artifact says whether the speedup gate applied on this host."""
    gate = parallel_report["speedup_gate"]
    assert gate["cpus"] == _CPUS
    assert gate["cpu_count"] == _CPUS, (
        "gate metadata must record the host cpu_count"
    )
    assert gate["applicable"] == (_CPUS >= MIN_GATE_CPUS)
    assert gate["min_speedup"] == MIN_PARALLEL_SPEEDUP
    if not gate["applicable"]:
        assert "skipped" in gate["status"]


@pytest.mark.skipif(
    _CPUS < MIN_GATE_CPUS,
    reason=f"end-to-end speedup needs >= {MIN_GATE_CPUS} CPUs "
           f"(host has {_CPUS})",
)
def test_parallel_speedup(parallel_report):
    """>= 2x end-to-end at 4 workers, where the cores exist."""
    row = next(
        r for r in parallel_report["parallel"] if r["workers"] == 4
    )
    assert row["speedup"] >= MIN_PARALLEL_SPEEDUP, (
        f"4 workers only {row['speedup']:.2f}x over serial "
        f"(floor {MIN_PARALLEL_SPEEDUP}x)"
    )


def test_write_bench_artifact(parallel_report):
    """Emit the machine-readable perf artifact for trajectory tracking."""
    path = os.environ.get("REPRO_BENCH_PARALLEL_OUT", "BENCH_parallel.json")
    payload = {
        "schema_version": SCHEMA_VERSION,
        "cpus": _CPUS,
        "config": {
            "n": BENCH_N,
            "queries_per_shape": BENCH_QUERIES,
            "source": "benchmarks/bench_parallel.py",
        },
        "parallel_ltj": parallel_report,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
