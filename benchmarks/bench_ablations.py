"""Ablation benches for the design choices DESIGN.md calls out.

- §4.2 lonely-variables optimisation on/off,
- §4.3 cardinality-driven variable ordering on/off,
- RRR block-size sweep (the paper's b = 16 vs b = 64 trade-off),
- bidirectionality: one ring vs the two unidirectional rings.
"""

import pytest

from repro.baselines import CyclicUnidirectionalIndex
from repro.bench.runner import run_benchmark, summarize
from repro.core import CompressedRingIndex, RingIndex
from repro.core.ring import Ring


@pytest.fixture(scope="module")
def star_queries(wgpb_queries):
    # Star shapes are where lonely variables dominate (§4.2 discussion).
    return {
        name: wgpb_queries[name]
        for name in ("T3", "T4", "Ti3", "Ti4", "J4")
        if wgpb_queries.get(name)
    }


@pytest.mark.parametrize("use_lonely", [True, False], ids=["lonely", "no-lonely"])
def test_ablation_lonely_variables(benchmark, bench_graph, star_queries,
                                   use_lonely):
    system = RingIndex(bench_graph, use_lonely=use_lonely)

    def run():
        return run_benchmark([system], star_queries, limit=1000, timeout=30.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(result.timings)
    benchmark.extra_info["mean_ms"] = round(1000 * stats["mean"], 2)


@pytest.mark.parametrize("use_ordering", [True, False], ids=["cardinality", "naive-order"])
def test_ablation_variable_ordering(benchmark, bench_graph, wgpb_queries,
                                    use_ordering):
    system = RingIndex(bench_graph, use_ordering=use_ordering)
    queries = {
        name: wgpb_queries[name]
        for name in ("Tr1", "Tr2", "S1", "P3")
        if wgpb_queries.get(name)
    }

    def run():
        return run_benchmark([system], queries, limit=1000, timeout=30.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(result.timings)
    benchmark.extra_info["mean_ms"] = round(1000 * stats["mean"], 2)


@pytest.mark.parametrize("block_size", [15, 31, 63])
def test_ablation_rrr_block_size(benchmark, bench_graph, block_size):
    """Larger b: smaller index, slower operations (paper §4.4/§5.2.1)."""
    ring = benchmark.pedantic(
        lambda: Ring(bench_graph, compressed=True, block_size=block_size),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["bytes_per_triple"] = round(
        ring.size_in_bits() / 8 / max(ring.n, 1), 2
    )


def test_ablation_rrr_space_monotone(bench_graph):
    sizes = {
        b: Ring(bench_graph, compressed=True, block_size=b).size_in_bits()
        for b in (15, 63)
    }
    assert sizes[63] <= sizes[15]


@pytest.mark.parametrize(
    "cls", [RingIndex, CyclicUnidirectionalIndex],
    ids=["ring-bidirectional", "two-unidirectional-rings"],
)
def test_ablation_bidirectionality(benchmark, bench_graph, wgpb_queries, cls):
    """Same LTJ, same answers; bidirectionality halves the index count."""
    system = cls(bench_graph)
    queries = {
        name: wgpb_queries[name]
        for name in ("P2", "T2", "Ti2")
        if wgpb_queries.get(name)
    }

    def run():
        return run_benchmark([system], queries, limit=1000, timeout=30.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(result.timings)
    benchmark.extra_info["mean_ms"] = round(1000 * stats["mean"], 2)
    benchmark.extra_info["bytes_per_triple"] = round(
        system.bytes_per_triple(), 2
    )


def test_compressed_ring_slower_but_smaller(bench_graph, wgpb_queries):
    """Table 1 shape: C-Ring ≈ 2-4x slower, smaller index."""
    ring = RingIndex(bench_graph)
    cring = CompressedRingIndex(bench_graph)
    assert cring.size_in_bits() < ring.size_in_bits()
    queries = {"P2": wgpb_queries.get("P2", [])}
    if not queries["P2"]:
        pytest.skip("no P2 instances")
    t_ring = summarize(
        run_benchmark([ring], queries, limit=1000).timings
    )["mean"]
    t_cring = summarize(
        run_benchmark([cring], queries, limit=1000).timings
    )["mean"]
    assert t_cring > t_ring * 0.8  # compressed is never meaningfully faster
