"""Table 1 — index space (bytes/triple) and WGPB query time per system.

Each benchmark runs one system over the full WGPB-style query set
(limit 1000, as in the paper); the space column is printed once at the
end.  ``python -m repro.bench table1`` produces the same table outside
pytest at configurable scale.
"""

import pytest

from repro.baselines import (
    BlazegraphIndex,
    CyclicUnidirectionalIndex,
    FlatTrieIndex,
    JenaIndex,
    JenaLTJIndex,
    QdagIndex,
    RDF3XIndex,
    VirtuosoIndex,
)
from repro.bench.runner import run_benchmark, summarize
from repro.core import CompressedRingIndex, RingIndex

SYSTEMS = [
    RingIndex,
    CompressedRingIndex,
    FlatTrieIndex,
    QdagIndex,
    JenaIndex,
    JenaLTJIndex,
    RDF3XIndex,
    VirtuosoIndex,
    BlazegraphIndex,
    CyclicUnidirectionalIndex,
]


@pytest.fixture(scope="module")
def built_systems(bench_graph):
    return {cls.name: cls(bench_graph) for cls in SYSTEMS}


@pytest.mark.parametrize("name", [cls.name for cls in SYSTEMS])
def test_table1_query_time(benchmark, built_systems, wgpb_queries, name):
    """Mean WGPB evaluation time of one system (Table 1, time column)."""
    system = built_systems[name]

    def run():
        return run_benchmark([system], wgpb_queries, limit=1000, timeout=10.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(result.timings)
    benchmark.extra_info["bytes_per_triple"] = round(
        system.bytes_per_triple(), 2
    )
    if stats["n"]:
        benchmark.extra_info["mean_query_ms"] = round(1000 * stats["mean"], 2)
        benchmark.extra_info["timeouts"] = stats["timeouts"]
    benchmark.extra_info["unsupported"] = stats.get("unsupported", 0)


def test_table1_space_ranking(built_systems):
    """The paper's headline space ordering must hold (Table 1)."""
    space = {name: s.bytes_per_triple() for name, s in built_systems.items()}
    # Ring far below the flat 6-order index and the B+tree systems.
    assert space["Ring"] * 3 < space["FlatTrie"]
    assert space["Ring"] < space["Jena"]
    assert space["Ring"] < space["Jena-LTJ"]
    assert space["Ring"] < space["RDF-3X"]
    # Jena-LTJ doubles Jena (6 orders vs 3).
    assert 1.7 < space["Jena-LTJ"] / space["Jena"] < 2.3
    # The 2-ring unidirectional ablation pays ~2x the ring.
    assert space["Cyclic-2R"] > 1.6 * space["Ring"]
