"""Adaptive-planning benchmark: speedup, regression and identity gates.

Regenerates the ``BENCH_adaptive.json`` perf artifact and gates the
dynamic variable-selection policies (ISSUE 7) on all three promises:

- **skewed speedup** — on the two-wing hub workload the ``adaptive``
  policy beats the static §4.3 order by at least ``MIN_SKEW_SPEEDUP`` x
  (geomean over instances);
- **uniform safety** — on the WGPB-style Table-1 mix (where static is
  already near-optimal) adaptive costs at most ``MAX_UNIFORM_REGRESSION``
  of the static time;
- **identity, everywhere** — every policy returns the same solution
  multiset, enumerates deterministically, and the cached / parallel /
  sharded serving paths stay byte-identical to serial evaluation under
  every policy.

Scale knobs: ``REPRO_BENCH_ADAPTIVE_QUICK=1`` shrinks every section to
CI size; ``REPRO_BENCH_ADAPTIVE_OUT`` overrides the artifact path.
"""

import os

import pytest

from repro.perf.adaptivebench import (
    format_report,
    full_report,
    write_report,
)

QUICK = os.environ.get("REPRO_BENCH_ADAPTIVE_QUICK", "0") == "1"

#: Required adaptive-over-static factor on the skewed workload (geomean).
MIN_SKEW_SPEEDUP = 2.0

#: Allowed adaptive/static time ratio on the uniform Table-1 mix.
MAX_UNIFORM_REGRESSION = 1.10

pytestmark = [pytest.mark.perf, pytest.mark.adaptive]


@pytest.fixture(scope="module")
def adaptive_report():
    report = full_report(quick=QUICK, seed=0)
    print()
    print(format_report(report))
    return report


def test_skewed_speedup(adaptive_report):
    """Adaptive beats every static order >= 2x on the two-wing hubs."""
    skew = adaptive_report["skewed"]
    assert skew["speedup_adaptive_geomean"] >= MIN_SKEW_SPEEDUP, (
        f"adaptive only {skew['speedup_adaptive_geomean']:.2f}x over static "
        f"on the skewed workload (floor {MIN_SKEW_SPEEDUP}x)"
    )


def test_skewed_policies_identical(adaptive_report):
    """All four policies agree on the multiset and are deterministic."""
    assert adaptive_report["skewed"]["all_identical"]


def test_adaptive_actually_reranks(adaptive_report):
    """The decision log shows live re-ranking (and no silent fallbacks)."""
    for run in adaptive_report["skewed"]["runs"]:
        counters = run["policies"]["adaptive"]["counters"]
        assert counters["reranks"] > 0
        assert counters["rerank_divergence"] > 0, (
            "adaptive never diverged from the static order on the "
            "workload built to force divergence"
        )
        assert counters["rerank_fallbacks"] == 0
        assert counters["estimate_misses"] == 0


def test_uniform_regression_bounded(adaptive_report):
    """Re-rank overhead stays within 10% where it cannot help."""
    uni = adaptive_report["uniform"]
    assert uni["same_multisets"]
    assert uni["regression_adaptive"] <= MAX_UNIFORM_REGRESSION, (
        f"adaptive cost {uni['regression_adaptive']:.3f}x static on the "
        f"uniform mix (ceiling {MAX_UNIFORM_REGRESSION}x)"
    )


def test_serving_paths_identical(adaptive_report):
    """Cached, parallel and sharded serving are byte-stable per policy."""
    ident = adaptive_report["serving_identity"]
    assert ident["all_identical"]
    assert ident["sharded_identical_across_policies"]
    for policy, probes in ident["per_policy"].items():
        assert probes["warm_was_cached"], f"{policy}: warm serve missed cache"


def test_write_bench_artifact(adaptive_report):
    """Emit the machine-readable perf artifact for trajectory tracking."""
    path = os.environ.get("REPRO_BENCH_ADAPTIVE_OUT", "BENCH_adaptive.json")
    write_report(adaptive_report, path)
