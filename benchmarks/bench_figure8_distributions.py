"""Figure 8 — per-shape query-time distributions.

One benchmark per (system, shape-family) pair over the wco systems the
figure contrasts; the detailed quartile matrix is printed via
``python -m repro.bench figure8``.
"""

import pytest

from repro.baselines import FlatTrieIndex, JenaLTJIndex, QdagIndex
from repro.bench.runner import run_queries, summarize
from repro.core import CompressedRingIndex, RingIndex

SYSTEMS = [RingIndex, CompressedRingIndex, FlatTrieIndex, JenaLTJIndex, QdagIndex]

#: Shape families of Figure 8, grouped to keep the matrix compact.
FAMILIES = {
    "paths": ("P2", "P3", "P4"),
    "stars": ("T2", "T3", "T4", "Ti2", "Ti3", "Ti4"),
    "joins": ("J3", "J4"),
    "cycles": ("Tr1", "Tr2", "S1", "S2", "S3", "S4"),
}


@pytest.fixture(scope="module")
def built(bench_graph):
    return {cls.name: cls(bench_graph) for cls in SYSTEMS}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("name", [cls.name for cls in SYSTEMS])
def test_figure8_family(benchmark, built, wgpb_queries, name, family):
    system = built[name]
    queries = [
        q for shape in FAMILIES[family] for q in wgpb_queries.get(shape, [])
    ]
    if not queries:
        pytest.skip("no instances generated for this family")

    def run():
        return run_queries(system, queries, group=family, limit=1000,
                           timeout=10.0)

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(timings)
    if stats["n"]:
        benchmark.extra_info["median_ms"] = round(1000 * stats["median"], 3)
        benchmark.extra_info["p75_ms"] = round(1000 * stats["p75"], 3)
    benchmark.extra_info["unsupported"] = stats.get("unsupported", 0)


def test_ring_stability(built, wgpb_queries):
    """§5.2.2: the Ring's times are *stable* across the acyclic shapes
    (the paper: "the 75% percentile never exceeds 0.05 seconds") — its
    p75 never explodes the way Qdag's does on larger acyclic queries."""
    ring = built["Ring"]
    per_family_p75 = []
    for family in ("paths", "stars", "joins"):
        queries = [q for s in FAMILIES[family] for q in wgpb_queries.get(s, [])]
        if not queries:
            continue
        stats = summarize(run_queries(ring, queries, family, limit=1000))
        per_family_p75.append(stats["p75"])
    positives = [p for p in per_family_p75 if p > 0]
    if len(positives) >= 2:
        assert max(positives) < 60 * min(positives)
