"""Shared fixtures for the pytest-benchmark suite.

Scale is controlled by environment variables so the default run stays
laptop-friendly while still exercising every code path:

- ``REPRO_BENCH_N``        — graph size in triples (default 4000)
- ``REPRO_BENCH_QUERIES``  — WGPB instances per shape (default 2)

Every benchmark file regenerates one table or figure of the paper; the
printed reports land in the pytest output (``-s`` to see them live).
"""

import os

import pytest

from repro.bench.wgpb import generate_wgpb_queries
from repro.bench.workloads import generate_realworld_queries
from repro.graph.generators import wikidata_like

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "4000"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "2"))


@pytest.fixture(scope="session")
def bench_graph():
    return wikidata_like(BENCH_N, seed=0)


@pytest.fixture(scope="session")
def wgpb_queries(bench_graph):
    return generate_wgpb_queries(
        bench_graph, queries_per_shape=BENCH_QUERIES, seed=0
    )


@pytest.fixture(scope="session")
def realworld_queries(bench_graph):
    return generate_realworld_queries(bench_graph, n_queries=15, seed=0)
