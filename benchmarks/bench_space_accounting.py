"""§5.2.1 — space accounting: representations, compressors, retrieval.

Regenerates the in-text numbers of the paper's space study: bytes per
triple of the simple/packed/ring/C-Ring representations, the compressor
comparison, triple-retrieval latency and construction rate.
"""

import pytest

from repro.bench.space import format_space_report, space_report
from repro.core.ring import Ring


@pytest.fixture(scope="module")
def report(bench_graph):
    return space_report(bench_graph, retrieval_samples=100)


def test_space_report_print(report):
    print()
    print(format_space_report(report))


def test_ring_between_packed_and_simple(report):
    """Theorem 3.4 shape: ring ≈ packed + o(·), well under 'simple'."""
    assert report["packed_bpt"] <= report["ring_bpt"] * 1.05
    assert report["ring_bpt"] < report["simple_bpt"]


def test_cring_b64_compresses_best_of_rings(report):
    assert report["cring_b64_bpt"] <= report["cring_b16_bpt"] * 1.02
    assert report["cring_b64_bpt"] <= report["ring_bpt"]


def test_plain_retrieval_faster_than_compressed(report):
    """§5.2.1: 5 µs plain vs 20 µs compressed — the *ratio* transfers."""
    assert report["ring_retrieval_us"] < report["cring_b16_retrieval_us"]


def bench_build_ring(benchmark, bench_graph):
    benchmark.pedantic(lambda: Ring(bench_graph), rounds=1, iterations=1)


def test_construction_rate(benchmark, bench_graph):
    ring = benchmark.pedantic(
        lambda: Ring(bench_graph), rounds=1, iterations=1
    )
    assert ring.n == bench_graph.n_triples


def test_triple_retrieval_latency(benchmark, bench_graph):
    ring = Ring(bench_graph)
    n = ring.n

    def retrieve():
        for i in range(0, n, max(1, n // 200)):
            ring.triple(i)

    benchmark(retrieve)
