"""Micro-benchmarks of the succinct substrates.

Not a paper table, but the constants behind every one of them: bitvector
rank/select, wavelet-matrix operations, and the three leap flavours of
the ring.
"""

import numpy as np
import pytest

from repro.bits import BitVector, RRRBitVector
from repro.core.ring import Ring
from repro.graph.model import O, P, S
from repro.sequences import WaveletMatrix

N_BITS = 200_000
N_SYMS = 50_000


@pytest.fixture(scope="module")
def bits():
    rng = np.random.default_rng(0)
    return rng.random(N_BITS) < 0.4


@pytest.fixture(scope="module")
def plain_bv(bits):
    return BitVector.from_bool_array(bits)


@pytest.fixture(scope="module")
def rrr_bv(bits):
    return RRRBitVector.from_bool_array(bits)


@pytest.fixture(scope="module")
def wavelet():
    rng = np.random.default_rng(1)
    return WaveletMatrix(rng.integers(0, 10_000, N_SYMS))


@pytest.fixture(scope="module")
def ring(bench_graph):
    return Ring(bench_graph)


def test_bitvector_rank(benchmark, plain_bv):
    positions = list(range(0, N_BITS, N_BITS // 1000))
    benchmark(lambda: [plain_bv.rank1(i) for i in positions])


def test_bitvector_select(benchmark, plain_bv):
    ks = list(range(1, plain_bv.ones, plain_bv.ones // 500))
    benchmark(lambda: [plain_bv.select1(k) for k in ks])


def test_rrr_rank(benchmark, rrr_bv):
    positions = list(range(0, N_BITS, N_BITS // 500))
    benchmark(lambda: [rrr_bv.rank1(i) for i in positions])


def test_wavelet_access(benchmark, wavelet):
    idx = list(range(0, N_SYMS, N_SYMS // 500))
    benchmark(lambda: [wavelet[i] for i in idx])


def test_wavelet_rank(benchmark, wavelet):
    benchmark(lambda: [wavelet.rank(s, N_SYMS) for s in range(0, 10_000, 40)])


def test_wavelet_range_next_value(benchmark, wavelet):
    benchmark(
        lambda: [
            wavelet.next_in_range(100, 40_000, c) for c in range(0, 10_000, 50)
        ]
    )


def test_ring_backward_leap(benchmark, ring, bench_graph):
    p = int(bench_graph.triples[0, P])
    zone, lo, hi = ring.pattern_range({P: p})

    def run():
        c = 0
        for _ in range(100):
            value = ring.backward_leap(zone, lo, hi, c)
            if value is None:
                c = 0
            else:
                c = value + 1

    benchmark(run)


def test_ring_forward_leap(benchmark, ring, bench_graph):
    s = int(bench_graph.triples[0, S])

    def run():
        c = 0
        for _ in range(100):
            value = ring.forward_leap(S, s, c)
            if value is None:
                c = 0
            else:
                c = value + 1

    benchmark(run)


def test_ring_triple_retrieval(benchmark, ring):
    idx = list(range(0, ring.n, max(1, ring.n // 300)))
    benchmark(lambda: [ring.triple(i) for i in idx])
