"""Table 2 — real-world-style workload with constants anywhere.

The systems of the paper's full-scale benchmark (EmptyHeaded/Qdag/
Graphflow excluded, per §5.3); Qdag's exclusion is verified explicitly.
"""

import pytest

from repro.baselines import (
    BlazegraphIndex,
    JenaIndex,
    JenaLTJIndex,
    QdagIndex,
    RDF3XIndex,
    VirtuosoIndex,
)
from repro.bench.runner import run_queries, summarize
from repro.core import RingIndex

SYSTEMS = [
    RingIndex,
    JenaIndex,
    JenaLTJIndex,
    RDF3XIndex,
    VirtuosoIndex,
    BlazegraphIndex,
]


@pytest.fixture(scope="module")
def built(bench_graph):
    return {cls.name: cls(bench_graph) for cls in SYSTEMS}


@pytest.mark.parametrize("name", [cls.name for cls in SYSTEMS])
def test_table2_workload(benchmark, built, realworld_queries, name):
    system = built[name]

    def run():
        return run_queries(system, realworld_queries, group="log",
                           limit=1000, timeout=5.0)

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(timings)
    benchmark.extra_info["bytes_per_triple"] = round(
        system.bytes_per_triple(), 2
    )
    if stats["n"]:
        benchmark.extra_info["median_ms"] = round(1000 * stats["median"], 2)
        benchmark.extra_info["timeouts"] = stats["timeouts"]


def test_qdag_excluded_from_table2(bench_graph, realworld_queries):
    """§5.3 excludes Qdag: it cannot evaluate constants in arbitrary
    positions.  Our harness records this as 'unsupported'."""
    qdag = QdagIndex(bench_graph)
    timings = run_queries(qdag, realworld_queries, group="log")
    assert any(t.unsupported for t in timings)


def test_ring_smallest_in_table2(bench_graph, built):
    space = {name: s.bytes_per_triple() for name, s in built.items()}
    assert min(space, key=space.get) == "Ring"
