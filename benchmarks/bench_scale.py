"""Out-of-core scale benchmark: streaming build + memmapped serving.

Regenerates the ``BENCH_scale.json`` perf artifact and gates the
out-of-core pipeline on three axes:

- **identity, always** — the memmapped pack must answer byte-for-byte
  like the eager load on every read path (serial, cached, parallel
  pool over the pack file, durable sharded recover), at any scale;
- **build RSS, where it can be measured** — the <= 50%-of-pack peak-RSS
  floor only applies once the pack dwarfs the interpreter baseline
  (``MIN_RSS_GATE_INDEX_BYTES``); a CI-sized run records the ratio
  honestly as ``skipped`` instead of faking a pass;
- **mmap overhead, where it is signal** — warm memmapped queries within
  ``MAX_WARM_MMAP_OVERHEAD`` of RAM, enforced only when the RAM pass
  is long enough to out-run timer noise;
- **k-way merge accounting, always** — each spilled byte read exactly
  once on its way into the canonical stream (``extra_pass_bytes == 0``
  at the default fan-in);
- **parallel build identity, always** — the partitioned worker build
  emits the byte-exact serial pack; the >= 2x speedup gate is enforced
  only on hosts with enough CPUs and recorded as ``skipped`` elsewhere.

Scale knobs: ``REPRO_BENCH_SCALE_TRIPLES`` / ``REPRO_BENCH_SCALE_NODES``
/ ``REPRO_BENCH_SCALE_CHUNK`` / ``REPRO_BENCH_SCALE_WORKERS``
(defaults are CI-sized; the 10 M-triple
acceptance run is ``python -m repro bench --scale``),
``REPRO_BENCH_SCALE_OUT`` for the artifact path,
``REPRO_BENCH_SCALE_DIR`` for the spill volume.
"""

import json
import os

import pytest

from repro.perf.scalebench import (
    BENCH_BUILD_WORKERS,
    MIN_RSS_GATE_INDEX_BYTES,
    MIN_SPEEDUP_GATE_CPUS,
    SCHEMA_VERSION,
    full_report,
)

SCALE_TRIPLES = int(os.environ.get("REPRO_BENCH_SCALE_TRIPLES", "200000"))
SCALE_NODES = int(os.environ.get("REPRO_BENCH_SCALE_NODES", "50000"))
SCALE_CHUNK = int(os.environ.get("REPRO_BENCH_SCALE_CHUNK", "50000"))
SCALE_WORKERS = int(
    os.environ.get("REPRO_BENCH_SCALE_WORKERS", str(BENCH_BUILD_WORKERS))
)

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def scale_report():
    return full_report(
        quick=True,
        seed=0,
        n_triples=SCALE_TRIPLES,
        n_nodes=SCALE_NODES,
        chunk_triples=SCALE_CHUNK,
        workers=SCALE_WORKERS,
    )


def test_identity_every_path(scale_report):
    """Every serving path answers exactly like the eager serial load."""
    identity = scale_report["identity"]
    assert identity["rows"] > 0
    for name, same in identity["paths"].items():
        assert same, f"{name}: memmapped answers diverged from the reference"
    assert identity["all_identical"]


def test_query_identity_at_scale(scale_report):
    """Cold and warm mmap passes over the big pack match the RAM pass."""
    query = scale_report["query"]
    assert query["rows"] > 0
    assert query["identical_cold"]
    assert query["identical_warm"]


def test_rss_gate_recorded(scale_report):
    """The artifact says whether the build-RSS gate applied at this size."""
    gate = scale_report["build"]["rss_gate"]
    assert gate["min_index_bytes"] == MIN_RSS_GATE_INDEX_BYTES
    assert gate["applicable"] == (
        scale_report["build"]["index_bytes"] >= MIN_RSS_GATE_INDEX_BYTES
    )
    if gate["applicable"]:
        assert gate["passed"], (
            f"streaming build peaked at {gate['peak_rss_bytes']} bytes, "
            f"over {100 * gate['max_fraction']:.0f}% of the "
            f"{gate['index_bytes']}-byte pack"
        )
    else:
        assert "skipped" in gate["status"]
        assert gate["passed"] is None


def test_overhead_gate(scale_report):
    """Warm mmap within the floor wherever the measurement is signal."""
    gate = scale_report["query"]["overhead_gate"]
    if gate["applicable"]:
        assert gate["passed"], (
            f"warm mmap pass ran {scale_report['query']['warm_over_ram']:.2f}x "
            f"the RAM pass (floor {gate['max_warm_over_ram']:.1f}x)"
        )
    else:
        assert "skipped" in gate["status"]


def test_build_bounded_by_chunks(scale_report):
    """The builder actually streamed (multiple spill runs, not one gulp)."""
    build = scale_report["build"]
    assert build["distinct_triples"] > 0
    if SCALE_TRIPLES > SCALE_CHUNK:
        assert build["build_stats"].get("runs_spilled", 0) > 1


def test_merge_single_pass_gate(scale_report):
    """The k-way merge read every spilled byte exactly once (no rereads)."""
    merge = scale_report["build"]["merge"]
    gate = merge["single_pass_gate"]
    assert gate["applicable"]
    assert gate["status"] == "enforced"
    assert gate["passed"], (
        f"merge reread {merge['extra_pass_bytes']} bytes beyond one pass "
        f"({merge['runs_merged']} runs at fan-in {merge['fanin']})"
    )
    assert merge["reduction_rounds"] == 0
    assert merge["bytes_read"] == merge["bytes_in"]
    if SCALE_TRIPLES > SCALE_CHUNK:
        assert merge["spill_runs"] > 1
        assert merge["bytes_in"] > 0


def test_parallel_build_identity_gate(scale_report):
    """The partitioned worker build emitted the byte-exact serial pack."""
    parallel = scale_report["parallel_build"]
    assert parallel["workers"] == SCALE_WORKERS
    gate = parallel["identity_gate"]
    assert gate["applicable"]
    assert gate["passed"], "parallel pack diverged from the serial bytes"
    assert parallel["pack_identical"]
    assert parallel["manifest_identical"]
    if SCALE_WORKERS > 0:
        pool = parallel["pool"]
        assert pool.get("completed", 0) > 0 or pool == {}


def test_parallel_speedup_gate_recorded(scale_report):
    """Speedup is enforced on real multi-core hosts, skipped honestly else."""
    gate = scale_report["parallel_build"]["speedup_gate"]
    assert gate["min_cpus"] == MIN_SPEEDUP_GATE_CPUS
    assert gate["applicable"] == (gate["cpus"] >= MIN_SPEEDUP_GATE_CPUS)
    if gate["applicable"]:
        assert gate["passed"], (
            f"parallel build ran {gate['speedup']:.2f}x the serial one "
            f"(floor {gate['min_speedup']:.1f}x on {gate['cpus']} CPUs)"
        )
    else:
        assert gate["passed"] is None
        assert "skipped" in gate["status"]


def test_worker_rss_gate_recorded(scale_report):
    """Per-worker RSS rides the same <= 50%-of-pack budget as serial."""
    gate = scale_report["parallel_build"]["worker_rss_gate"]
    assert gate["min_index_bytes"] == MIN_RSS_GATE_INDEX_BYTES
    if gate["applicable"]:
        assert gate["passed"], (
            f"a build worker peaked at {gate['worker_peak_rss_bytes']} bytes, "
            f"over {100 * gate['max_fraction']:.0f}% of the "
            f"{gate['index_bytes']}-byte pack"
        )
    else:
        assert gate["passed"] is None
        assert "skipped" in gate["status"]


def test_host_block_present(scale_report):
    """Peak RSS rides in the uniform host block like every BENCH file."""
    host = scale_report["host"]
    assert host["peak_rss_bytes"] is None or host["peak_rss_bytes"] > 0
    assert scale_report["schema_version"] == SCHEMA_VERSION


def test_write_bench_artifact(scale_report):
    """Emit the machine-readable perf artifact for trajectory tracking."""
    path = os.environ.get("REPRO_BENCH_SCALE_OUT", "BENCH_scale.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(scale_report, fh, indent=2)
        fh.write("\n")
