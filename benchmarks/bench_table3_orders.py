"""Table 3 — number of index orders per class, per arity.

Benchmarks the exact set-cover search and asserts the paper's exact
values for d <= 5 (where the search fully terminates).
"""

import pytest

from repro.bench.report import format_table3
from repro.relational.orders import minimum_orders, table3

PAPER_EXACT = {
    2: {"w": 2, "tw": 2, "cw": 1, "ctw": 1, "cbw": 1, "cbtw": 1},
    3: {"w": 6, "tw": 6, "cw": 2, "ctw": 2, "cbw": 1, "cbtw": 1},
    4: {"w": 24, "tw": 12, "cw": 6, "ctw": 4, "cbw": 2, "cbtw": 2},
    5: {"w": 120, "tw": 30, "cw": 24, "ctw": 8, "cbw": 5, "cbtw": 5},
}


@pytest.mark.parametrize("d", [2, 3, 4, 5])
def test_table3_row(benchmark, d):
    row = benchmark.pedantic(
        lambda: {cls: minimum_orders(cls, d) for cls in PAPER_EXACT[d]},
        rounds=1,
        iterations=1,
    )
    for cls, expected in PAPER_EXACT[d].items():
        assert row[cls] == (expected, expected), (d, cls)
    benchmark.extra_info["row"] = {k: v[0] for k, v in row.items()}


def test_print_table3():
    rows = table3(d_values=(2, 3, 4, 5), node_budget=2_000_000)
    text = format_table3(rows)
    print()
    print(text)
    assert "CBTW" in text


def test_d6_bounds(benchmark):
    """d = 6: exact search exceeds the budget; bounds must bracket the
    paper's values (ctw in [10,12], cbw = 10, cbtw = 7)."""
    bounds = benchmark.pedantic(
        lambda: {
            cls: minimum_orders(cls, 6, node_budget=150_000)
            for cls in ("ctw", "cbw", "cbtw")
        },
        rounds=1,
        iterations=1,
    )
    assert bounds["ctw"][0] <= 12 and bounds["ctw"][1] >= 10
    assert bounds["cbw"][0] <= 10 <= bounds["cbw"][1]
    assert bounds["cbtw"][0] <= 7 <= bounds["cbtw"][1]
    benchmark.extra_info["bounds"] = {k: list(v) for k, v in bounds.items()}
