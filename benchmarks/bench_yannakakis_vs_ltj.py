"""§5.2.2's speculation, measured: Yannakakis vs LTJ-with-lonely-vars.

The paper attributes the ring's advantage on tree-shaped queries (T4,
Ti4, J4, long paths) to the lonely-variables optimisation, "speculating"
that EmptyHeaded's Yannakakis pass "is not so well optimised for simple
tree-like queries or long paths that may give rise to multiple lonely
variables at the end".  With both evaluators implemented over the *same*
six sorted orders, the comparison is apples-to-apples:

- ``EmptyHeaded``  — Yannakakis on acyclic queries (full materialisation
  + two semijoin sweeps), LTJ on cyclic ones;
- ``FlatTrie``     — LTJ everywhere, lonely-variables pass enabled.
"""

import pytest

from repro.baselines import EmptyHeadedIndex, FlatTrieIndex
from repro.bench.runner import run_benchmark, summarize

TREE_SHAPES = ("P4", "T4", "Ti4", "J4")
CYCLIC_SHAPES = ("Tr1", "Tr2", "S1", "S4")


@pytest.fixture(scope="module")
def systems(bench_graph):
    return {
        "EmptyHeaded": EmptyHeadedIndex(bench_graph),
        "FlatTrie": FlatTrieIndex(bench_graph),
    }


def _subset(wgpb_queries, names):
    return {n: wgpb_queries[n] for n in names if wgpb_queries.get(n)}


@pytest.mark.parametrize("name", ["EmptyHeaded", "FlatTrie"])
def test_tree_queries(benchmark, systems, wgpb_queries, name):
    queries = _subset(wgpb_queries, TREE_SHAPES)
    if not queries:
        pytest.skip("no tree-shape instances")
    system = systems[name]

    def run():
        return run_benchmark([system], queries, limit=1000, timeout=30.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(result.timings)
    benchmark.extra_info["mean_ms"] = round(1000 * stats["mean"], 2)


@pytest.mark.parametrize("name", ["EmptyHeaded", "FlatTrie"])
def test_cyclic_queries(benchmark, systems, wgpb_queries, name):
    queries = _subset(wgpb_queries, CYCLIC_SHAPES)
    if not queries:
        pytest.skip("no cyclic-shape instances")
    system = systems[name]

    def run():
        return run_benchmark([system], queries, limit=1000, timeout=30.0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(result.timings)
    benchmark.extra_info["mean_ms"] = round(1000 * stats["mean"], 2)


def test_both_agree_on_answers(systems, wgpb_queries):
    from repro.core.interface import QueryTimeout
    from tests.util import as_solution_set

    cap = 5000
    queries = _subset(wgpb_queries, TREE_SHAPES + CYCLIC_SHAPES)
    eh, flat = systems["EmptyHeaded"], systems["FlatTrie"]
    compared = 0
    for name, instances in queries.items():
        for bgp in instances:
            try:
                a = eh.evaluate(bgp, limit=cap, timeout=30)
                b = flat.evaluate(bgp, limit=cap, timeout=30)
            except QueryTimeout:
                continue  # tree shapes can have huge outputs at scale
            if len(a) < cap and len(b) < cap:
                assert as_solution_set(a) == as_solution_set(b), name
                compared += 1
    assert compared > 0
