"""Index construction benchmarks (§5.2.1 in-text numbers).

The paper reports the ring built at ~6.4 M triples/minute, with BWT
construction taking a minute and "the rest … spent in building the
wavelet matrices".  These benches give the per-system build times at the
suite's scale so the proportions can be compared.
"""

import pytest

from repro.baselines import (
    EmptyHeadedIndex,
    FlatTrieIndex,
    JenaIndex,
    JenaLTJIndex,
    QdagIndex,
    RDF3XIndex,
    VirtuosoIndex,
)
from repro.core import CompressedRingIndex, RingIndex
from repro.core.ring import Ring

SYSTEMS = [
    RingIndex,
    CompressedRingIndex,
    FlatTrieIndex,
    EmptyHeadedIndex,
    QdagIndex,
    JenaIndex,
    JenaLTJIndex,
    RDF3XIndex,
    VirtuosoIndex,
]


@pytest.mark.parametrize("cls", SYSTEMS, ids=lambda c: c.name)
def test_build(benchmark, bench_graph, cls):
    system = benchmark.pedantic(
        lambda: cls(bench_graph), rounds=1, iterations=1
    )
    benchmark.extra_info["bytes_per_triple"] = round(
        system.bytes_per_triple(), 2
    )
    benchmark.extra_info["triples_per_second"] = (
        None  # filled by the stats below when needed
    )


def test_ring_construction_rate(bench_graph):
    """Sanity floor: the numpy construction path should exceed
    10 k triples/s even at small scale (paper: ~107 k/s in C++)."""
    import time

    start = time.perf_counter()
    ring = Ring(bench_graph)
    elapsed = time.perf_counter() - start
    rate = ring.n / max(elapsed, 1e-9)
    assert rate > 10_000, f"construction rate {rate:.0f} triples/s"


def test_succinct_counts_variant_builds(bench_graph):
    ring = Ring(bench_graph, succinct_counts=True)
    assert ring.n == bench_graph.n_triples
