"""Serving-cache benchmark: repeated-workload speedup and safety gates.

Regenerates the ``BENCH_cache.json`` perf artifact and gates the cache
layer on all four promises at once:

- **identity, always** — cold and warm cached passes are byte-identical
  (ordered) to the uncached reference on any host;
- **speedup** — the warm pass over the same query mix is at least
  ``MIN_WARM_SPEEDUP`` x faster than the second uncached pass (this is
  single-process dict rebuilding vs join evaluation, so unlike the
  parallel gate it needs no minimum core count);
- **invalidation** — a write between identical queries always flips the
  repeat back to the uncached path, and the post-write rows match a
  fresh evaluation;
- **coalescing** — a burst of identical concurrent submissions reaches
  the engine exactly once.

Scale knobs: ``REPRO_BENCH_N`` / ``REPRO_BENCH_QUERIES`` (conftest
defaults), ``REPRO_BENCH_CACHE_OUT`` for the artifact path.
"""

import json
import os

import pytest

from repro.perf.cachebench import SCHEMA_VERSION, bench_cache

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "4000"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "2"))

#: Required warm-pass factor over the second uncached pass.
MIN_WARM_SPEEDUP = 5.0

pytestmark = [pytest.mark.perf, pytest.mark.cache]

_CPUS = os.cpu_count() or 1


@pytest.fixture(scope="module")
def cache_report():
    return bench_cache(n=BENCH_N, queries_per_shape=BENCH_QUERIES, seed=0)


def test_cached_results_identical(cache_report):
    """Cold and warm cached answers match the uncached bytes exactly."""
    cached = cache_report["cached"]
    assert cache_report["uncached"]["deterministic"]
    assert cached["cold_identical"], "cold (populating) pass diverged"
    assert cached["warm_identical"], "warm (serving) pass diverged"
    assert cached["rows"] == cache_report["uncached"]["rows"]


def test_warm_pass_speedup(cache_report):
    """The repeated workload is served >= 5x faster from the cache."""
    cached = cache_report["cached"]
    assert cached["speedup_warm"] >= MIN_WARM_SPEEDUP, (
        f"warm pass only {cached['speedup_warm']:.2f}x over the uncached "
        f"repeat (floor {MIN_WARM_SPEEDUP}x)"
    )


def test_hit_and_coalesce_counters_reported(cache_report):
    """The artifact carries the serving telemetry, and it is coherent."""
    stats = cache_report["cached"]["cache"]["results"]
    assert stats["hits"] > 0 and stats["stores"] > 0
    assert 0.0 < stats["hit_rate"] <= 1.0
    co = cache_report["coalescing"]
    assert co["inner_evaluations"] == 1
    assert co["coalesced"] + co["admission_cache_hits"] == co["submissions"] - 1
    assert co["identical"]


def test_write_always_invalidates(cache_report):
    """A dynamic update between identical queries never serves stale."""
    inval = cache_report["invalidation"]
    assert inval["repeats_served_from_cache"]
    assert inval["always_invalidated"]
    assert inval["always_identical"]


def test_write_bench_artifact(cache_report):
    """Emit the machine-readable perf artifact for trajectory tracking."""
    path = os.environ.get("REPRO_BENCH_CACHE_OUT", "BENCH_cache.json")
    payload = {
        "schema_version": SCHEMA_VERSION,
        "cpus": _CPUS,
        "config": {
            "n": BENCH_N,
            "queries_per_shape": BENCH_QUERIES,
            "min_warm_speedup": MIN_WARM_SPEEDUP,
            "source": "benchmarks/bench_cache.py",
        },
        "cache_serving": cache_report,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
