"""BWT / bended-BWT tests anchored on the paper's worked examples.

Covers: the ``rococo$`` BWT and backward search of §2.3.3, the Figure 6 /
Example 3.2 Nobel-graph index (exact values), the zone structure of
Eq. (3), and the Lemma 3.3 cyclicity of ``LF*``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.bwt import (
    backward_search,
    bended_bwt,
    bended_lf,
    bwt_from_suffix_array,
    count_array,
    lf_step,
    triple_text,
)
from repro.text.suffix_array import suffix_array

# rococo$ remapped so the sentinel is largest: {c:0, o:1, r:2, $:3}.
ROCOCO = np.array([2, 1, 0, 1, 0, 1, 3])
# Paper: BWT(rococo$) = oorcc$o.
ROCOCO_BWT = [1, 1, 2, 0, 0, 3, 1]

# The Figure 6 Nobel graph: 13 raw triples (s, p, o), U = 9 identifiers
# (subjects/objects 1..6, predicates adv=7, nom=8, win=9).
NOBEL_TRIPLES = [
    (1, 7, 3),  # Bohr adv Thompson
    (3, 7, 2),  # Thompson adv Strutt
    (4, 7, 5),  # Thorne adv Wheeler
    (5, 7, 1),  # Wheeler adv Bohr
    (6, 8, 1), (6, 8, 2), (6, 8, 3), (6, 8, 4), (6, 8, 5),  # Nobel nom *
    (6, 9, 1), (6, 9, 2), (6, 9, 3), (6, 9, 4),  # Nobel win *
]
NOBEL_U = 10  # ids 0..9; 0 unused, matching the paper's 1-based mapping


def nobel_text():
    triples = np.array(sorted(NOBEL_TRIPLES), dtype=np.int64)
    return triple_text(triples, NOBEL_U)


class TestClassicBWT:
    def test_paper_rococo_bwt(self):
        sa = suffix_array(ROCOCO)
        assert bwt_from_suffix_array(ROCOCO, sa).tolist() == ROCOCO_BWT

    def test_count_array(self):
        c = count_array(ROCOCO)
        # {c:0 x2, o:1 x3, r:2 x1, $:3 x1}
        assert c.tolist() == [0, 2, 5, 6, 7]

    def test_lf_step_traverses_backwards(self):
        # Paper: "if we know that BWT[2] refers to T[4] = o, then
        # BWT[LF(2)] = BWT[4] corresponds to T[3] = c" (1-based).
        sa = suffix_array(ROCOCO)
        bwt = bwt_from_suffix_array(ROCOCO, sa)
        c = count_array(ROCOCO)
        assert lf_step(bwt, c, 1) == 3  # 0-based: position 2->4 becomes 1->3

    def test_lf_reconstructs_text(self):
        sa = suffix_array(ROCOCO)
        bwt = bwt_from_suffix_array(ROCOCO, sa)
        c = count_array(ROCOCO)
        # The row whose suffix is the whole text has BWT symbol T[n-1];
        # walking LF from it yields T back to front.
        i = int(np.where(sa == 0)[0][0])
        recovered = []
        for _ in range(len(ROCOCO)):
            recovered.append(int(bwt[i]))
            i = lf_step(bwt, c, i)
        assert list(reversed(recovered)) == ROCOCO.tolist()

    def test_backward_search_paper_example(self):
        # P = oco occurs at A[3..4] (1-based) = [2, 4) 0-based.
        sa = suffix_array(ROCOCO)
        bwt = bwt_from_suffix_array(ROCOCO, sa)
        c = count_array(ROCOCO)
        assert backward_search(bwt, c, [1, 0, 1]) == (2, 4)
        # And the occurrences indeed start with oco.
        for k in range(2, 4):
            start = sa[k]
            assert ROCOCO[start : start + 3].tolist() == [1, 0, 1]

    def test_backward_search_absent(self):
        sa = suffix_array(ROCOCO)
        bwt = bwt_from_suffix_array(ROCOCO, sa)
        c = count_array(ROCOCO)
        assert backward_search(bwt, c, [2, 2]) is None  # "rr"
        assert backward_search(bwt, c, [9]) is None  # outside alphabet

    def test_backward_search_empty_pattern(self):
        sa = suffix_array(ROCOCO)
        bwt = bwt_from_suffix_array(ROCOCO, sa)
        c = count_array(ROCOCO)
        assert backward_search(bwt, c, []) == (0, 7)


class TestTripleText:
    def test_shifts_and_sentinel(self):
        text = nobel_text()
        assert len(text) == 3 * 13 + 1
        # First sorted triple (1,7,3) shifted: (1, 17, 23).
        assert text[:3].tolist() == [1, 7 + NOBEL_U, 3 + 2 * NOBEL_U]
        assert text[-1] == 3 * NOBEL_U

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            triple_text(np.zeros((3, 2)), 5)


class TestBendedBWT:
    def test_zone_structure_eq3(self):
        """BWT* = (o_1..o_n) . (subjects by pos) . (predicates by osp)."""
        text = nobel_text()
        bstar = bended_bwt(text)
        n = 13
        triples = sorted(NOBEL_TRIPLES)
        spo_objects = [t[2] + 2 * NOBEL_U for t in triples]
        pos_subjects = [
            t[0] for t in sorted(triples, key=lambda t: (t[1], t[2], t[0]))
        ]
        osp_predicates = [
            t[1] + NOBEL_U for t in sorted(triples, key=lambda t: (t[2], t[0], t[1]))
        ]
        assert bstar[:n].tolist() == spo_objects
        assert bstar[n : 2 * n].tolist() == pos_subjects
        assert bstar[2 * n :].tolist() == osp_predicates

    def test_example_32_exact_walk(self):
        """The LF* walk of Example 3.2, converted to 0-based indices."""
        text = nobel_text()
        bstar = bended_bwt(text)
        c = count_array(text[:-1], sigma=3 * NOBEL_U)
        # Paper (1-based): BWT*[1] = 21; C[21] = 32; LF*(1) = 33;
        # BWT*[33] = 16; LF*(33) = 16; BWT*[16] = 1; LF*(16) = 1.
        # Our ids are one higher on predicates/objects (U = 10 vs 9):
        # paper's 21 = object 3 -> ours 23; paper's 16 = adv -> ours 17.
        assert bstar[0] == 3 + 2 * NOBEL_U  # object Thompson
        i = bended_lf(bstar, c, 0)
        assert bstar[i] == 7 + NOBEL_U  # predicate adv
        i = bended_lf(bstar, c, i)
        assert bstar[i] == 1  # subject Bohr
        assert bended_lf(bstar, c, i) == 0  # cycles back (Lemma 3.3)

    def test_lemma33_every_triple_cycles(self):
        text = nobel_text()
        bstar = bended_bwt(text)
        c = count_array(text[:-1], sigma=3 * NOBEL_U)
        n = 13
        triples = sorted(NOBEL_TRIPLES)
        for t in range(n):
            o = int(bstar[t])
            i = bended_lf(bstar, c, t)
            p = int(bstar[i])
            i = bended_lf(bstar, c, i)
            s = int(bstar[i])
            assert bended_lf(bstar, c, i) == t
            assert (s, p - NOBEL_U, o - 2 * NOBEL_U) == triples[t]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            bended_bwt(np.arange(6))  # 3n+1 violated


@given(
    st.sets(
        st.tuples(st.integers(0, 6), st.integers(0, 3), st.integers(0, 6)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_bended_bwt_cycles_random_graphs(triple_set):
    """Lemma 3.3 on random graphs: LF*^3 is the identity on [0, n)."""
    triples = np.array(sorted(triple_set), dtype=np.int64)
    universe = 8
    text = triple_text(triples, universe)
    bstar = bended_bwt(text)
    c = count_array(text[:-1], sigma=3 * universe)
    n = len(triples)
    for t in range(n):
        o = int(bstar[t]) - 2 * universe
        i = bended_lf(bstar, c, t)
        p = int(bstar[i]) - universe
        i = bended_lf(bstar, c, i)
        s = int(bstar[i])
        assert bended_lf(bstar, c, i) == t
        assert (s, p, o) == tuple(triples[t])
