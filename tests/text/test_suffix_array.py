"""Suffix array tests, anchored on the paper's rococo$ example (§2.3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.suffix_array import append_sentinel, inverse_suffix_array, suffix_array

# rococo$ over {$:0, c:1, o:2, r:3}; $ must be largest so remap to
# {c:0, o:1, r:2, $:3}.
ROCOCO = [2, 1, 0, 1, 0, 1, 3]  # r o c o c o $


def naive_suffix_array(text):
    n = len(text)
    return sorted(range(n), key=lambda i: list(text[i:]))


class TestSuffixArray:
    def test_paper_rococo(self):
        # Paper (1-based): A = (3, 5, 2, 4, 6, 1, 7) -> 0-based below.
        assert suffix_array(ROCOCO).tolist() == [2, 4, 1, 3, 5, 0, 6]

    def test_empty(self):
        assert suffix_array([]).tolist() == []

    def test_single(self):
        assert suffix_array([5]).tolist() == [0]

    def test_all_equal_symbols(self):
        # No sentinel: ties broken by suffix length (shorter = smaller here
        # because shorter suffixes are prefixes).
        assert suffix_array([1, 1, 1, 1]).tolist() == [3, 2, 1, 0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            suffix_array([-1, 2])

    def test_append_sentinel(self):
        out = append_sentinel([4, 1, 4])
        assert out.tolist() == [4, 1, 4, 5]
        assert append_sentinel([]).tolist() == [0]

    def test_matches_naive_random(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            n = int(rng.integers(1, 60))
            text = append_sentinel(rng.integers(0, 5, size=n))
            assert suffix_array(text).tolist() == naive_suffix_array(text.tolist())

    def test_long_periodic_text(self):
        # Periodic inputs stress the doubling rounds.
        text = append_sentinel([0, 1] * 200)
        assert suffix_array(text).tolist() == naive_suffix_array(text.tolist())

    def test_inverse(self):
        text = append_sentinel([3, 1, 2, 3, 1])
        sa = suffix_array(text)
        isa = inverse_suffix_array(sa)
        for i in range(len(text)):
            assert sa[isa[i]] == i


@given(st.lists(st.integers(0, 6), min_size=0, max_size=80))
@settings(max_examples=80, deadline=None)
def test_property_suffix_array_sorted(text):
    text = append_sentinel(text).tolist()
    sa = suffix_array(text).tolist()
    assert sorted(sa) == list(range(len(text)))
    for a, b in zip(sa, sa[1:]):
        assert text[a:] < text[b:]
