"""Property tests for the WGPB instantiation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.wgpb import SHAPES_BY_NAME, WGPB_SHAPES, instantiate_shape
from repro.core import RingIndex
from repro.graph.generators import wikidata_like
from repro.graph.model import Var


@pytest.fixture(scope="module")
def graph():
    return wikidata_like(1200, seed=3)


@pytest.fixture(scope="module")
def index(graph):
    return RingIndex(graph)


@given(
    shape_name=st.sampled_from([s.name for s in WGPB_SHAPES]),
    seed=st.integers(0, 200),
)
@settings(max_examples=60, deadline=None)
def test_property_instances_nonempty_and_wellformed(shape_name, seed):
    # Module-scope fixtures cannot mix with @given; build once per test
    # run via a cache on the function object.
    cache = test_property_instances_nonempty_and_wellformed.__dict__
    if "graph" not in cache:
        cache["graph"] = wikidata_like(1200, seed=3)
        cache["index"] = RingIndex(cache["graph"])
    graph, index = cache["graph"], cache["index"]
    shape = SHAPES_BY_NAME[shape_name]
    rng = np.random.default_rng(seed)
    bgp = instantiate_shape(shape, graph, rng, max_attempts=30)
    if bgp is None:
        return  # sparse graphs may fail cyclic shapes; allowed
    # Shape structure: one triple pattern per edge, constants only in
    # the predicate position, variables named after shape vertices.
    assert len(bgp) == shape.n_edges
    assert len(bgp.variables()) == shape.n_variables
    for pattern in bgp:
        assert isinstance(pattern.s, Var) and isinstance(pattern.o, Var)
        assert isinstance(pattern.p, (int, np.integer))
    # The walked witness guarantees at least one solution.
    assert index.evaluate(bgp, limit=1, timeout=30)
