"""The uniform ``host`` block every BENCH_*.json payload embeds."""

import json
import os
import sys

from repro.perf.hostmeta import host_metadata, peak_rss_bytes


def test_host_metadata_fields():
    meta = host_metadata()
    assert meta["python"] == sys.version.split()[0]
    assert meta["cpu_count"] == os.cpu_count()
    assert meta["machine"]
    assert meta["platform"]
    assert meta["implementation"]
    assert meta["numpy"] is not None


def test_host_metadata_is_json_serialisable():
    meta = host_metadata()
    assert json.loads(json.dumps(meta)) == meta


def test_peak_rss_reported():
    # ru_maxrss is a high-water mark: positive, in bytes, and monotone
    # (a later reading can only be >= an earlier one).
    first = peak_rss_bytes()
    assert first is not None and first > 0
    # Well above any plausible page size, i.e. actually bytes not KB.
    assert first > 10 * 1024 * 1024
    assert host_metadata()["peak_rss_bytes"] >= first
