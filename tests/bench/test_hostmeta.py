"""The uniform ``host`` block every BENCH_*.json payload embeds."""

import os
import sys

from repro.perf.hostmeta import host_metadata


def test_host_metadata_fields():
    meta = host_metadata()
    assert meta["python"] == sys.version.split()[0]
    assert meta["cpu_count"] == os.cpu_count()
    assert meta["machine"]
    assert meta["platform"]
    assert meta["implementation"]
    assert meta["numpy"] is not None


def test_host_metadata_is_json_serialisable():
    import json

    assert json.loads(json.dumps(host_metadata())) == host_metadata()
