"""Tests for the WGPB generator, workload generator, runner and reports."""

import numpy as np
import pytest

from repro.bench.report import (
    format_figure8,
    format_table1,
    format_table2,
    format_table3,
)
from repro.bench.runner import QueryTiming, run_benchmark, run_queries, summarize
from repro.bench.space import format_space_report, packed_bytes, space_report
from repro.bench.wgpb import (
    SHAPES_BY_NAME,
    WGPB_SHAPES,
    generate_wgpb_queries,
    instantiate_shape,
)
from repro.bench.workloads import (
    PATTERN_TYPE_MIX,
    generate_realworld_queries,
    workload_type_histogram,
)
from repro.core import RingIndex
from repro.graph.generators import wikidata_like
from repro.graph.model import Var
from tests.util import naive_evaluate


@pytest.fixture(scope="module")
def graph():
    return wikidata_like(1500, seed=0)


class TestShapes:
    def test_seventeen_shapes(self):
        assert len(WGPB_SHAPES) == 17

    def test_names_match_figure7(self):
        expected = {
            "P2", "P3", "P4", "T2", "T3", "T4", "Ti2", "Ti3", "Ti4",
            "J3", "J4", "Tr1", "Tr2", "S1", "S2", "S3", "S4",
        }
        assert set(SHAPES_BY_NAME) == expected

    def test_variable_counts(self):
        # The paper: Qdag wins on the shapes with exactly 3 variables
        # (P2, T2, Ti2, Tr1, Tr2) — so those must have 3.
        for name in ("P2", "T2", "Ti2", "Tr1", "Tr2"):
            assert SHAPES_BY_NAME[name].n_variables == 3
        for name in ("P4", "T4", "Ti4", "J4"):
            assert SHAPES_BY_NAME[name].n_variables == 5
        for name in ("S1", "S2", "S3", "S4"):
            assert SHAPES_BY_NAME[name].n_variables == 4


class TestInstantiation:
    def test_instances_are_nonempty_queries(self, graph):
        """The WGPB guarantee: every instance has >= 1 solution."""
        rng = np.random.default_rng(1)
        index = RingIndex(graph)
        for shape in WGPB_SHAPES:
            bgp = instantiate_shape(shape, graph, rng)
            if bgp is None:
                continue  # sparse graph may fail cyclic shapes
            assert len(index.evaluate(bgp, limit=1)) == 1, shape.name

    def test_all_predicates_constant_all_nodes_variable(self, graph):
        rng = np.random.default_rng(2)
        bgp = instantiate_shape(SHAPES_BY_NAME["T3"], graph, rng)
        assert bgp is not None
        for pattern in bgp:
            assert isinstance(pattern.s, Var)
            assert isinstance(pattern.o, Var)
            assert isinstance(pattern.p, int)

    def test_deterministic_given_seed(self, graph):
        q1 = generate_wgpb_queries(graph, queries_per_shape=2, seed=5)
        q2 = generate_wgpb_queries(graph, queries_per_shape=2, seed=5)
        assert repr(q1) == repr(q2)

    def test_generate_counts(self, graph):
        queries = generate_wgpb_queries(graph, queries_per_shape=3, seed=0)
        assert set(queries) == set(SHAPES_BY_NAME)
        for name, instances in queries.items():
            assert len(instances) <= 3

    def test_empty_graph(self):
        from repro.graph.dataset import Graph

        g = Graph(np.zeros((0, 3)))
        rng = np.random.default_rng(0)
        assert instantiate_shape(SHAPES_BY_NAME["P2"], g, rng) is None


class TestWorkloads:
    def test_mix_probabilities_sum_to_one(self):
        assert abs(sum(PATTERN_TYPE_MIX.values()) - 1.0) < 0.01

    def test_histogram_tracks_published_mix(self, graph):
        queries = generate_realworld_queries(graph, n_queries=400, seed=0)
        hist = workload_type_histogram(queries)
        # The two dominant kinds must dominate, in order.
        assert hist.get("(?, p, ?)", 0) > 0.35
        assert hist.get("(?, p, o)", 0) > 0.2
        assert hist.get("(?, p, ?)", 0) > hist.get("(?, p, o)", 0)

    def test_queries_have_connected_shape(self, graph):
        queries = generate_realworld_queries(graph, n_queries=50, seed=1)
        sizes = [len(q) for q in queries]
        assert min(sizes) >= 1
        assert max(sizes) <= 22
        assert 1.5 < sum(sizes) / len(sizes) < 4.0

    def test_solutions_match_naive_on_small_queries(self, graph):
        index = RingIndex(graph)
        queries = generate_realworld_queries(graph, n_queries=12, seed=2)
        for bgp in queries:
            if len(bgp) <= 2 and all(not p.has_repeated_variable() for p in bgp):
                got = {frozenset(s.items())
                       for s in index.evaluate(bgp, limit=None)}
                assert got == naive_evaluate(graph, bgp)

    def test_empty_graph_rejected(self):
        from repro.graph.dataset import Graph

        with pytest.raises(ValueError):
            generate_realworld_queries(Graph(np.zeros((0, 3))), 5)


class TestRunner:
    def test_run_queries_counts_and_limits(self, graph):
        index = RingIndex(graph)
        queries = generate_wgpb_queries(
            graph, queries_per_shape=2, seed=0,
            shapes=(SHAPES_BY_NAME["P2"], SHAPES_BY_NAME["T2"]),
        )
        result = run_benchmark([index], queries, limit=7)
        assert result.systems() == ["Ring"]
        for t in result.timings:
            assert t.n_results <= 7
            assert t.seconds >= 0

    def test_timeout_recorded_not_raised(self, graph):
        index = RingIndex(graph)
        queries = generate_realworld_queries(graph, n_queries=3, seed=3)
        timings = run_queries(index, queries, timeout=1e-6)
        assert all(t.timed_out or t.seconds < 1.0 for t in timings)

    def test_unsupported_recorded(self, graph):
        from repro.baselines import QdagIndex

        index = QdagIndex(graph)
        queries = generate_realworld_queries(graph, n_queries=5, seed=0)
        timings = run_queries(index, queries)
        # Variable-predicate patterns dominate the mix, so most queries
        # must be flagged unsupported rather than raising.
        assert any(t.unsupported for t in timings)

    def test_summarize_statistics(self):
        timings = [
            QueryTiming("X", "g", i, seconds, 1)
            for i, seconds in enumerate([0.1, 0.2, 0.3, 0.4])
        ]
        stats = summarize(timings)
        assert stats["min"] == pytest.approx(0.1)
        assert stats["max"] == pytest.approx(0.4)
        assert stats["mean"] == pytest.approx(0.25)
        assert stats["median"] == pytest.approx(0.25)
        assert stats["p25"] == pytest.approx(0.175)
        assert stats["p75"] == pytest.approx(0.325)

    def test_summarize_all_unsupported(self):
        timings = [QueryTiming("X", "g", 0, 0.0, 0, unsupported=True)]
        stats = summarize(timings)
        assert stats["n"] == 0
        assert stats["unsupported"] == 1


class TestReports:
    def test_formatting_smoke(self, graph):
        index = RingIndex(graph)
        queries = generate_wgpb_queries(
            graph, queries_per_shape=1, seed=0,
            shapes=(SHAPES_BY_NAME["P2"],),
        )
        result = run_benchmark([index], queries, limit=10)
        assert "Ring" in format_table1([index], result)
        assert "P2" in format_figure8(result)
        assert "Ring" in format_table2([index], result)

    def test_table3_formatting(self):
        rows = [
            {"d": 3, "w": (6, 6), "tw": (6, 6), "cw": (2, 2),
             "ctw": (2, 2), "cbw": (1, 1), "cbtw": (1, 1)},
            {"d": 6, "w": (720, 720), "tw": (60, 60), "cw": (120, 120),
             "ctw": (10, 15), "cbw": (8, 12), "cbtw": (5, 7)},
        ]
        text = format_table3(rows)
        assert "[10,15]" in text
        assert "720" in text


class TestGraphflowBound:
    def test_quadratic_blowup(self):
        """The paper's reason Graphflow could not index Wikidata: the
        Ω(p·v) lower bound dwarfs every other index."""
        from repro.bench.space import graphflow_memory_lower_bound_bytes
        from repro.core import RingIndex

        # Many edge labels is exactly Graphflow's bad case (the paper:
        # 2 101 predicates x 52 M nodes).
        g = wikidata_like(2000, n_predicates=200, seed=0)
        bound = graphflow_memory_lower_bound_bytes(g)
        assert bound == 4 * g.n_predicates * g.n_nodes
        ring_bytes = RingIndex(g).size_in_bits() / 8
        assert bound > 5 * ring_bytes

    def test_matches_paper_formula_at_paper_scale(self):
        """Plugging the paper's Wikidata numbers in reproduces its
        '>8,966.90 bytes per triple' Table 1 entry."""
        from repro.bench.space import graphflow_memory_lower_bound_bytes

        class PaperGraph:
            n_predicates = 2_101
            n_nodes = 51_999_296
            n_triples = 81_426_573

        bound = graphflow_memory_lower_bound_bytes(PaperGraph)
        per_triple = bound / PaperGraph.n_triples
        assert per_triple > 5_000  # same order as the paper's 8,966.90


class TestSpaceReport:
    def test_report_keys_and_ranges(self):
        g = wikidata_like(800, seed=0)
        report = space_report(g, retrieval_samples=20)
        assert report["simple_bpt"] == pytest.approx(12.0)
        assert 0 < report["packed_bpt"] < 12
        assert report["ring_bpt"] > 0
        assert report["cring_b64_bpt"] <= report["cring_b16_bpt"] * 1.05
        assert report["ring_retrieval_us"] > 0
        text = format_space_report(report)
        assert "bytes per triple" in text

    def test_packed_bytes_length(self):
        g = wikidata_like(500, seed=1)
        node_bits = max(1, (g.n_nodes - 1).bit_length())
        pred_bits = max(1, (g.n_predicates - 1).bit_length())
        expected_bits = (2 * node_bits + pred_bits) * g.n_triples
        assert len(packed_bytes(g)) == -(-expected_bits // 8)
