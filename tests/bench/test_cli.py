"""Smoke tests for the ``python -m repro.bench`` command-line interface."""

import pytest

from repro.bench.__main__ import main


def test_shapes_command(capsys):
    main(["shapes"])
    out = capsys.readouterr().out
    assert "P2" in out and "S4" in out
    assert out.count("x0") >= 17


def test_table3_command(capsys):
    main(["table3", "--dmax", "3", "--budget", "50000"])
    out = capsys.readouterr().out
    assert "CBTW" in out
    # cbw(3) = 1: the paper's headline, printed in the d=3 row.
    assert "  3" in out


def test_space_command(capsys):
    main(["space", "--n", "600"])
    out = capsys.readouterr().out
    assert "bytes per triple" in out
    assert "Ring (plain bitvectors)" in out


def test_table1_command_tiny(capsys):
    main(["table1", "--n", "400", "--queries", "1", "--timeout", "5"])
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Ring" in out and "Qdag" in out


def test_table2_command_tiny(capsys):
    main(["table2", "--n", "400", "--queries", "4", "--timeout", "5"])
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "Timeouts" in out


def test_figure8_command_tiny(capsys):
    main(["figure8", "--n", "400", "--queries", "1", "--timeout", "5"])
    out = capsys.readouterr().out
    assert "Figure 8" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
