"""Edge-case tests for the runner statistics and report renderers."""

import pytest

from repro.bench.report import format_figure8, format_table1, format_table2
from repro.bench.runner import (
    BenchmarkResult,
    QueryTiming,
    _percentile,
    summarize,
)


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _percentile([], 0.5)

    def test_single_value(self):
        assert _percentile([7.0], 0.25) == 7.0
        assert _percentile([7.0], 0.99) == 7.0

    def test_interpolation(self):
        values = [0.0, 10.0]
        assert _percentile(values, 0.5) == 5.0
        assert _percentile(values, 0.0) == 0.0
        assert _percentile(values, 1.0) == 10.0

    def test_monotone(self):
        values = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6])
        qs = [_percentile(values, q / 10) for q in range(11)]
        assert qs == sorted(qs)


class TestSummarizeEdges:
    def test_timeouts_counted_and_timed(self):
        timings = [
            QueryTiming("X", "g", 0, 5.0, 0, timed_out=True),
            QueryTiming("X", "g", 1, 0.1, 3),
        ]
        stats = summarize(timings)
        assert stats["timeouts"] == 1
        assert stats["n"] == 2
        assert stats["max"] == 5.0  # timeout time is a lower bound, kept

    def test_mixed_unsupported(self):
        timings = [
            QueryTiming("X", "g", 0, 0.0, 0, unsupported=True),
            QueryTiming("X", "g", 1, 0.2, 1),
        ]
        stats = summarize(timings)
        assert stats["n"] == 1
        assert stats["unsupported"] == 1

    def test_results_total(self):
        timings = [QueryTiming("X", "g", i, 0.1, i) for i in range(4)]
        assert summarize(timings)["results"] == 6


class TestBenchmarkResult:
    def test_orderings_preserved(self):
        result = BenchmarkResult(
            [
                QueryTiming("B", "g2", 0, 0.1, 1),
                QueryTiming("A", "g1", 0, 0.1, 1),
                QueryTiming("B", "g1", 1, 0.1, 1),
            ]
        )
        assert result.systems() == ["B", "A"]
        assert result.groups() == ["g2", "g1"]
        assert len(result.for_system("B")) == 2
        assert len(result.for_group("B", "g1")) == 1


class TestReportEdges:
    class _FakeSystem:
        def __init__(self, name):
            self.name = name

        def bytes_per_triple(self):
            return 1.5

    def test_table1_unsupported_row(self):
        system = self._FakeSystem("Qdag")
        result = BenchmarkResult(
            [QueryTiming("Qdag", "g", 0, 0.0, 0, unsupported=True)]
        )
        text = format_table1([system], result)
        assert "unsupported" in text

    def test_table2_unsupported_row(self):
        system = self._FakeSystem("Qdag")
        result = BenchmarkResult(
            [QueryTiming("Qdag", "g", 0, 0.0, 0, unsupported=True)]
        )
        assert "unsupported workload" in format_table2([system], result)

    def test_figure8_unsupported_group(self):
        result = BenchmarkResult(
            [QueryTiming("Qdag", "S1", 0, 0.0, 0, unsupported=True)]
        )
        text = format_figure8(result)
        assert "unsupported" in text

    def test_table1_timeout_note(self):
        system = self._FakeSystem("X")
        result = BenchmarkResult(
            [
                QueryTiming("X", "g", 0, 5.0, 0, timed_out=True),
                QueryTiming("X", "g", 1, 0.1, 7),
            ]
        )
        assert "1 timeouts" in format_table1([system], result)
