"""Differential testing: independent engines must agree on everything.

Brute force caps out at tiny graphs; beyond it we exploit having several
*independent* wco implementations (ring over wavelet matrices, flat
sorted orders, B+tree orders, the two-ring unidirectional index, Qdag's
quadtrees) — any disagreement exposes a bug in at least one of them.
"""

import numpy as np
import pytest

from repro.baselines import (
    CyclicUnidirectionalIndex,
    FlatTrieIndex,
    JenaLTJIndex,
    QdagIndex,
    RDF3XIndex,
)
from repro.bench.wgpb import WGPB_SHAPES, generate_wgpb_queries
from repro.bench.workloads import generate_realworld_queries
from repro.core import CompressedRingIndex, RingIndex
from repro.graph.generators import wikidata_like
from tests.util import as_solution_set


@pytest.fixture(scope="module")
def graph():
    return wikidata_like(800, seed=7)


@pytest.fixture(scope="module")
def ring(graph):
    return RingIndex(graph)


@pytest.fixture(scope="module")
def flat(graph):
    return FlatTrieIndex(graph)


class TestWGPBShapes:
    """All 17 Figure 7 shapes, ring vs flat-trie, full result sets."""

    @pytest.mark.parametrize("shape", [s.name for s in WGPB_SHAPES])
    def test_ring_equals_flat(self, graph, ring, flat, shape):
        from repro.bench.wgpb import SHAPES_BY_NAME, instantiate_shape

        rng = np.random.default_rng(hash(shape) % 2**32)
        bgp = instantiate_shape(SHAPES_BY_NAME[shape], graph, rng)
        if bgp is None:
            pytest.skip("shape not instantiable on this graph")
        a = as_solution_set(ring.evaluate(bgp, limit=None, timeout=30))
        b = as_solution_set(flat.evaluate(bgp, limit=None, timeout=30))
        assert a == b
        assert len(a) >= 1  # WGPB guarantee


class TestEngineQuintuple:
    """Five independent wco engines on the same constant-predicate set."""

    def test_all_agree(self, graph):
        from repro.bench.wgpb import SHAPES_BY_NAME

        # Qdag's 2^v factor makes unlimited enumeration of the
        # 5-variable shapes impractical (the paper's own observation);
        # compare on the 3- and 4-variable ones.
        shapes = tuple(
            SHAPES_BY_NAME[n]
            for n in ("P2", "P3", "T2", "Ti2", "T3", "Tr1", "Tr2", "S1", "J3")
        )
        queries = generate_wgpb_queries(
            graph, queries_per_shape=1, seed=3, shapes=shapes
        )
        engines = [
            RingIndex(graph),
            CompressedRingIndex(graph),
            JenaLTJIndex(graph),
            CyclicUnidirectionalIndex(graph),
            QdagIndex(graph),
        ]
        for name, instances in queries.items():
            for bgp in instances:
                results = [
                    as_solution_set(e.evaluate(bgp, limit=None, timeout=30))
                    for e in engines
                ]
                for engine, r in zip(engines[1:], results[1:]):
                    assert r == results[0], (name, engine.name)


class TestRealWorldMix:
    """Ring vs flat-trie and RDF-3X on log-style queries (constants in
    arbitrary positions, variable predicates)."""

    def test_agreement(self, graph, ring, flat):
        rdf3x = RDF3XIndex(graph)
        queries = generate_realworld_queries(graph, n_queries=25, seed=11)
        for bgp in queries:
            expected = as_solution_set(
                flat.evaluate(bgp, limit=None, timeout=30)
            )
            assert as_solution_set(
                ring.evaluate(bgp, limit=None, timeout=30)
            ) == expected
            assert as_solution_set(
                rdf3x.evaluate(bgp, limit=None, timeout=30)
            ) == expected

    def test_counts_match_across_seeds(self, graph, ring, flat):
        for seed in range(3):
            queries = generate_realworld_queries(graph, 10, seed=seed)
            for bgp in queries:
                assert ring.count(bgp, timeout=30) == flat.count(
                    bgp, timeout=30
                )


class TestOnTheFlyStatistics:
    """§4.3: the ring's pattern counts are exact, cross-checked."""

    def test_counts_exact(self, graph, ring):
        rng = np.random.default_rng(0)
        t = graph.triples
        for _ in range(50):
            s, p, o = (int(v) for v in t[int(rng.integers(0, len(t)))])
            from repro.graph.model import O as OO
            from repro.graph.model import P as PP
            from repro.graph.model import S as SS

            for constants in ({SS: s}, {PP: p}, {OO: o}, {SS: s, PP: p},
                              {PP: p, OO: o}, {SS: s, OO: o},
                              {SS: s, PP: p, OO: o}):
                expected = int(
                    np.all(
                        [t[:, pos] == v for pos, v in constants.items()],
                        axis=0,
                    ).sum()
                )
                assert ring.ring.count_pattern(constants) == expected
