"""Slow larger-scale integrity checks (run with ``-m slow`` locally)."""

import numpy as np
import pytest

from repro.baselines import FlatTrieIndex
from repro.core import CompressedRingIndex, RingIndex
from repro.core.ring import Ring
from repro.graph.generators import wikidata_like
from tests.util import as_solution_set

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def big_graph():
    return wikidata_like(20_000, seed=42)


def test_every_triple_recoverable_at_scale(big_graph):
    ring = Ring(big_graph)
    rng = np.random.default_rng(0)
    for i in rng.integers(0, ring.n, size=500):
        assert ring.triple(int(i)) == tuple(big_graph.triples[int(i)])


def test_counts_exact_at_scale(big_graph):
    ring = Ring(big_graph)
    t = big_graph.triples
    rng = np.random.default_rng(1)
    for _ in range(100):
        p = int(rng.integers(0, big_graph.n_predicates))
        expected = int((t[:, 1] == p).sum())
        assert ring.count_pattern({1: p}) == expected


def test_ring_solutions_sound_at_scale(big_graph):
    """Every solution the ring emits is a real match (checked against
    the raw triples), and every WGPB instance has at least one."""
    from repro.bench.wgpb import generate_wgpb_queries
    from repro.graph.model import Var

    ring = RingIndex(big_graph)
    queries = generate_wgpb_queries(big_graph, queries_per_shape=1, seed=7)
    for name, instances in queries.items():
        for bgp in instances:
            solutions = ring.evaluate(bgp, limit=100, timeout=120)
            assert solutions, name
            for mu in solutions:
                for pattern in bgp:
                    concrete = pattern.substitute(mu)
                    triple = tuple(
                        t if not isinstance(t, Var) else -1
                        for t in concrete.terms
                    )
                    assert -1 not in triple
                    assert triple in big_graph, (name, triple)


def test_ring_flattrie_agree_on_small_shapes(big_graph):
    from repro.bench.wgpb import SHAPES_BY_NAME, generate_wgpb_queries

    ring = RingIndex(big_graph)
    flat = FlatTrieIndex(big_graph)
    shapes = tuple(SHAPES_BY_NAME[n] for n in ("P2", "Ti2", "Tr1"))
    queries = generate_wgpb_queries(
        big_graph, queries_per_shape=1, seed=3, shapes=shapes
    )
    for name, instances in queries.items():
        for bgp in instances:
            a = as_solution_set(ring.evaluate(bgp, limit=2000, timeout=120))
            b = as_solution_set(flat.evaluate(bgp, limit=2000, timeout=120))
            # Same limit, deterministic ascending enumeration order on
            # the shared variable order -> not guaranteed identical, but
            # full sets are when below the limit.
            if len(a) < 2000 and len(b) < 2000:
                assert a == b, name


def test_compressed_ring_space_advantage_at_scale(big_graph):
    plain = CompressedRingIndex(big_graph).size_in_bits()
    assert plain < RingIndex(big_graph).size_in_bits()
