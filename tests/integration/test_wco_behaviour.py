"""Empirical worst-case optimality (§2.2.2, Theorem 3.5).

The paper's motivating argument: on the triangle query, any pairwise
plan materialises Θ(k²) intermediate tuples on the adversarial "star"
instance, while a wco algorithm does O(AGM) = O(k) work.  With the
operation counters wired into both engines, that separation is testable
rather than rhetorical.

The instance (the standard AGM separator, cf. Figure 1's discussion):
for each relation position, edges from a hub to k spokes and from k
spokes to a hub, arranged so every pairwise join explodes while the
triangle output stays tiny.
"""

import numpy as np
import pytest

from repro.baselines import JenaIndex
from repro.core import RingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph

X, Y, Z = Var("x"), Var("y"), Var("z")

TRIANGLE = BasicGraphPattern(
    [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z), TriplePattern(Z, 0, X)]
)


def star_instance(k: int) -> Graph:
    """Hub-and-spoke edges: R joins explode, the triangle count is 1.

    Nodes: hub ``h = 0`` and spokes ``1..k``; edges ``h -> i`` and
    ``i -> h`` for every spoke, plus the self-ish closure via the hub.
    The pairwise join (x->y)(y->z) yields k² pairs through the hub,
    while triangles all pass through ``h`` (output Θ(k), thanks to the
    hub's self-loop).
    """
    edges = [(0, 0, 0)]
    for i in range(1, k + 1):
        edges.append((0, 0, i))
        edges.append((i, 0, 0))
    return Graph(np.array(edges), n_nodes=k + 1, n_predicates=1)


def ltj_operations(graph: Graph) -> int:
    index = RingIndex(graph)
    stats: dict = {}
    out = index.evaluate(TRIANGLE, stats=stats)
    assert out  # triangles exist: h -> i -> h -> ... through the hub
    return stats["leaps"] + stats["binds"]


def pairwise_operations(graph: Graph) -> int:
    index = JenaIndex(graph)
    stats: dict = {}
    index.evaluate(TRIANGLE, stats=stats)
    return stats["operations"]


class TestWorstCaseOptimality:
    def test_counters_populated(self):
        g = star_instance(8)
        assert ltj_operations(g) > 0
        assert pairwise_operations(g) > 0

    def test_pairwise_blows_up_quadratically(self):
        small, large = 20, 80  # 4x nodes
        ratio = pairwise_operations(star_instance(large)) / pairwise_operations(
            star_instance(small)
        )
        # Nested-loop through the hub scans Θ(k²): expect ~16x growth.
        assert ratio > 8, f"pairwise grew only {ratio:.1f}x"

    def test_ltj_stays_near_linear(self):
        small, large = 20, 80
        ratio = ltj_operations(star_instance(large)) / ltj_operations(
            star_instance(small)
        )
        # Output (and AGM bound) grow linearly: expect ~4x, far below 16x.
        assert ratio < 8, f"LTJ grew {ratio:.1f}x"

    def test_separation_widens_with_k(self):
        advantages = []
        for k in (16, 64):
            advantages.append(
                pairwise_operations(star_instance(k)) / ltj_operations(
                    star_instance(k)
                )
            )
        assert advantages[1] > 2 * advantages[0]

    def test_both_agree_on_answers(self):
        from tests.util import as_solution_set

        g = star_instance(12)
        assert as_solution_set(RingIndex(g).evaluate(TRIANGLE)) == \
            as_solution_set(JenaIndex(g).evaluate(TRIANGLE))


class TestStatsAPI:
    def test_ltj_stats_keys(self):
        g = star_instance(5)
        stats: dict = {}
        RingIndex(g).evaluate(TRIANGLE, stats=stats)
        assert set(stats) >= {"leaps", "binds"}
        assert stats["leaps"] >= stats["binds"]

    def test_pairwise_stats_on_early_stop(self):
        g = star_instance(10)
        stats: dict = {}
        JenaIndex(g).evaluate(TRIANGLE, limit=1, stats=stats)
        assert "operations" in stats  # finalised even when cut short
