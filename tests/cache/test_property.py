"""Property test: under any interleaving of inserts, deletes,
compactions and (renamed) repeated queries, every answer served by the
cached system is byte-identical — same rows, same order, same dict
insertion order — to a fresh uncached evaluation at that instant."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import CachedQuerySystem
from repro.core.dynamic import DynamicRingIndex
from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, TriplePattern, Var

pytestmark = pytest.mark.cache

N_NODES = 8
N_PREDICATES = 2

triples = st.tuples(
    st.integers(0, N_NODES - 1),
    st.integers(0, N_PREDICATES - 1),
    st.integers(0, N_NODES - 1),
)

VARIABLE_NAMES = ["x", "y", "z", "w"]


@st.composite
def bgps(draw):
    """1-3 patterns over a tiny variable pool (joins arise naturally)."""
    n_patterns = draw(st.integers(1, 3))
    patterns = []
    for _ in range(n_patterns):
        terms = []
        for bound in range(3):
            if draw(st.booleans()):
                terms.append(Var(draw(st.sampled_from(VARIABLE_NAMES))))
            else:
                limit = N_PREDICATES if bound == 1 else N_NODES
                terms.append(draw(st.integers(0, limit - 1)))
        patterns.append(TriplePattern(*terms))
    return BasicGraphPattern(patterns)


def rename(bgp, suffix):
    """A fresh isomorphic copy: every variable gets a new name."""
    table = {}
    patterns = []
    for p in bgp.patterns:
        terms = [
            table.setdefault(t, Var(f"{t.name}_{suffix}"))
            if isinstance(t, Var)
            else t
            for t in p.terms
        ]
        patterns.append(TriplePattern(*terms))
    return BasicGraphPattern(patterns)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), triples),
        st.tuples(st.just("delete"), triples),
        st.tuples(st.just("compact"), st.none()),
        st.tuples(st.just("query"), bgps()),
    ),
    min_size=4,
    max_size=24,
)


@given(ops=operations, initial=st.lists(triples, max_size=12, unique=True))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_cached_answers_always_byte_identical(ops, initial):
    base = np.array(sorted(set(initial)), dtype=np.int64).reshape(-1, 3)
    graph = Graph(base, n_nodes=N_NODES, n_predicates=N_PREDICATES)
    index = DynamicRingIndex(graph, buffer_threshold=6, auto_compact=False)
    cached = CachedQuerySystem(index)

    for step, (op, arg) in enumerate(ops):
        if op == "insert":
            cached.insert(*arg)
        elif op == "delete":
            cached.delete(*arg)
        elif op == "compact":
            index._compact()
        else:
            # Ask twice (second often a hit), plus a renamed isomorph.
            for query in (arg, arg, rename(arg, step)):
                served = cached.evaluate(query)
                fresh = index.evaluate(query)
                assert [list(m.items()) for m in served] == [
                    list(m.items()) for m in fresh
                ], f"divergence at step {step} on {query!r}"
