"""PlanStatsCache: renaming-invariant memo keys, generation scoping,
engine integration, and JSON persistence."""

import pytest

from repro.cache import CachedQuerySystem, PlanStatsCache
from repro.core.dynamic import DynamicRingIndex
from repro.core.system import RingIndex
from repro.graph.generators import nobel_graph
from repro.graph.model import TriplePattern, Var

pytestmark = pytest.mark.cache

X, Y, A, B = Var("x"), Var("y"), Var("a"), Var("b")


class FakeIterator:
    """Just enough of the PatternIterator surface for the memo."""

    def __init__(self, pattern, count_value):
        self.pattern = pattern
        self._count = count_value
        self.count_calls = 0

    def count(self):
        self.count_calls += 1
        return self._count


class TestMemo:
    def test_count_memoized(self):
        cache = PlanStatsCache()
        it = FakeIterator(TriplePattern(X, 3, Y), 42)
        assert cache.count(it) == 42
        assert cache.count(it) == 42
        assert it.count_calls == 1
        assert cache.stats()["hits"] == 1

    def test_key_is_renaming_invariant(self):
        cache = PlanStatsCache()
        it1 = FakeIterator(TriplePattern(X, 3, Y), 42)
        it2 = FakeIterator(TriplePattern(A, 3, B), 99)  # same shape
        assert cache.count(it1) == 42
        assert cache.count(it2) == 42  # memo hit: it2.count never runs
        assert it2.count_calls == 0

    def test_distinct_keyed_by_variable_positions(self):
        cache = PlanStatsCache()
        it = FakeIterator(TriplePattern(X, 3, Y), 10)
        calls = []

        def estimator(var):
            calls.append(var)
            return 5 if var is X else 7

        assert cache.distinct(it, X, estimator) == 5
        assert cache.distinct(it, Y, estimator) == 7
        assert cache.distinct(it, X, estimator) == 5
        assert len(calls) == 2  # third call was a hit
        # A renamed iterator with the same shape hits both entries.
        it2 = FakeIterator(TriplePattern(A, 3, B), 10)
        assert cache.distinct(it2, A, lambda v: 999) == 5

    def test_distinct_without_estimator_falls_back_to_count(self):
        cache = PlanStatsCache()
        it = FakeIterator(TriplePattern(X, 3, Y), 13)
        assert cache.distinct(it, X, None) == 13


class TestGenerationScoping:
    def test_generation_change_clears(self):
        gen = [0]
        cache = PlanStatsCache(generation_source=lambda: gen[0])
        it = FakeIterator(TriplePattern(X, 3, Y), 5)
        cache.count(it)
        assert len(cache) == 1
        gen[0] = 1
        assert cache.count(it) == 5
        assert it.count_calls == 2  # recomputed at the new generation
        assert cache.stats()["invalidations"] == 1

    def test_stale_write_not_memoized(self):
        gen = [0]
        cache = PlanStatsCache(generation_source=lambda: gen[0])

        class RacingIterator(FakeIterator):
            def count(inner_self):
                gen[0] += 1  # a write lands mid-computation
                return super().count()

        cache.count(RacingIterator(TriplePattern(X, 3, Y), 5))
        assert len(cache) == 0  # the raced value was not kept


class TestEngineIntegration:
    def test_planner_consults_memo_and_plans_identically(self):
        plain = RingIndex(nobel_graph())
        cached = CachedQuerySystem(RingIndex(nobel_graph()))
        q = "?x adv ?y . ?y adv ?z . ?x nom ?w"
        assert plain.explain(q) == cached.explain(q)
        memo = cached.stats_cache.stats()
        assert memo["misses"] > 0
        cached.explain(q)
        assert cached.stats_cache.stats()["hits"] > memo["hits"]

    def test_memo_scoped_to_dynamic_epoch(self):
        d = DynamicRingIndex(nobel_graph())
        c = CachedQuerySystem(d)
        c.evaluate("?x adv ?y . ?y adv ?z")
        assert len(c.stats_cache) > 0
        for s in range(d.graph.n_nodes):
            if not d.contains(s, 0, s):
                c.insert(s, 0, s)
                break
        c.evaluate("?x adv ?y . ?y adv ?z")
        assert c.stats_cache.stats()["invalidations"] >= 1


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "stats.json"
        cache = PlanStatsCache(generation_source=lambda: ("t", 7))
        it = FakeIterator(TriplePattern(X, 3, Y), 42)
        cache.count(it)
        cache.save(path)
        loaded = PlanStatsCache.load(path, generation_source=lambda: ("t", 7))
        assert len(loaded) == 1
        it2 = FakeIterator(TriplePattern(A, 3, B), 0)
        assert loaded.count(it2) == 42
        assert it2.count_calls == 0

    def test_load_generation_mismatch_is_empty(self, tmp_path):
        path = tmp_path / "stats.json"
        cache = PlanStatsCache(generation_source=lambda: ("t", 7))
        cache.count(FakeIterator(TriplePattern(X, 3, Y), 42))
        cache.save(path)
        loaded = PlanStatsCache.load(path, generation_source=lambda: ("t", 8))
        assert len(loaded) == 0

    def test_load_corrupt_file_is_empty(self, tmp_path):
        path = tmp_path / "stats.json"
        path.write_text("{not json", encoding="utf-8")
        assert len(PlanStatsCache.load(path)) == 0

    def test_load_missing_file_is_empty(self, tmp_path):
        assert len(PlanStatsCache.load(tmp_path / "nope.json")) == 0
