"""In-flight coalescing through the QueryBroker: one evaluation fans
out to every concurrent identical submission, and a failing/cancelled
leader degrades followers to independent evaluations — never a shared
wrong answer."""

import threading
import time

import pytest

from repro.cache import CachedQuerySystem
from repro.core.interface import QueryError, QueryExecutionError
from repro.core.system import RingIndex
from repro.graph.generators import nobel_graph
from repro.reliability.broker import QueryBroker

pytestmark = pytest.mark.cache

JOIN = "?x adv ?y . ?y adv ?z"


class Gated(RingIndex):
    """Counts evaluations; blocks each one until the gate opens."""

    def __init__(self, graph):
        super().__init__(graph)
        self.gate = threading.Event()
        self.calls = 0
        self._call_lock = threading.Lock()

    def evaluate(self, query, **kwargs):
        with self._call_lock:
            self.calls += 1
        self.gate.wait(10.0)
        return super().evaluate(query, **kwargs)


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.005)


def items(result):
    return [list(m.items()) for m in result]


class TestFanOut:
    def test_burst_shares_one_evaluation(self):
        inner = Gated(nobel_graph())
        cached = CachedQuerySystem(inner)
        with QueryBroker(cached, workers=2, maintenance_interval=None) as b:
            futures = [b.submit(JOIN, limit=100) for _ in range(6)]
            wait_for(lambda: inner.calls >= 1)
            inner.gate.set()
            results = [f.result(timeout=10.0) for f in futures]
            stats = b.stats()
        assert inner.calls == 1
        assert stats["coalesced"] == 5
        assert stats["coalesce_fanout"] == 5
        reference = items(results[0])
        assert all(items(r) == reference for r in results)
        # The leader evaluated, the followers were served from its entry.
        assert sum(1 for r in results if r.cached) == 5

    def test_renamed_submissions_coalesce(self):
        inner = Gated(nobel_graph())
        cached = CachedQuerySystem(inner)
        with QueryBroker(cached, workers=2, maintenance_interval=None) as b:
            f1 = b.submit(JOIN, limit=100)
            f2 = b.submit("?a adv ?b . ?b adv ?c", limit=100)
            wait_for(lambda: inner.calls >= 1)
            inner.gate.set()
            r1, r2 = f1.result(10.0), f2.result(10.0)
            stats = b.stats()
        assert inner.calls == 1
        assert stats["coalesced"] == 1
        assert [[v for _, v in row] for row in items(r1)] == [
            [v for _, v in row] for row in items(r2)
        ]

    def test_after_completion_new_submission_hits_at_admission(self):
        inner = Gated(nobel_graph())
        inner.gate.set()  # no blocking needed here
        cached = CachedQuerySystem(inner)
        with QueryBroker(cached, workers=1, maintenance_interval=None) as b:
            b.submit(JOIN, limit=100).result(10.0)
            r = b.submit(JOIN, limit=100).result(10.0)
            stats = b.stats()
        assert r.cached
        assert stats["cache_hits"] == 1
        assert inner.calls == 1

    def test_different_queries_do_not_coalesce(self):
        inner = Gated(nobel_graph())
        inner.gate.set()
        cached = CachedQuerySystem(inner)
        with QueryBroker(cached, workers=1, maintenance_interval=None) as b:
            b.submit("?x adv ?y", limit=100).result(10.0)
            b.submit("?x nom ?y", limit=100).result(10.0)
            stats = b.stats()
        assert stats["coalesced"] == 0
        assert inner.calls == 2


class FailFirst(Gated):
    """The first (gated) evaluation dies mid-flight; later ones work."""

    def evaluate(self, query, **kwargs):
        with self._call_lock:
            self.calls += 1
            first = self.calls == 1
        self.gate.wait(10.0)
        if first:
            raise QueryExecutionError("injected leader crash", bgp=None)
        return RingIndex.evaluate(self, query, **kwargs)


class TestLeaderFailure:
    def test_failed_leader_followers_still_answered(self):
        """A crashing leader degrades followers to their own runs."""
        inner = FailFirst(nobel_graph())
        cached = CachedQuerySystem(inner)
        with QueryBroker(cached, workers=1, maintenance_interval=None) as b:
            leader = b.submit(JOIN, limit=100)
            wait_for(lambda: inner.calls >= 1)
            followers = [b.submit(JOIN, limit=100) for _ in range(2)]
            inner.gate.set()
            with pytest.raises(QueryError):
                leader.result(timeout=10.0)
            results = [f.result(timeout=10.0) for f in followers]
        reference = items(results[0])
        assert all(items(r) == reference for r in results)
        assert len(reference) > 0
        # Leader crashed; the first follower re-evaluated for real, the
        # second was served from the entry that evaluation stored.
        assert inner.calls == 2
        assert items(results[0]) == items(
            RingIndex(nobel_graph()).evaluate(JOIN, limit=100)
        )

    def test_stop_fails_parked_followers(self):
        from repro.reliability.broker import QueryRejected

        inner = Gated(nobel_graph())
        cached = CachedQuerySystem(inner)
        b = QueryBroker(
            cached, workers=1, queue_depth=4, maintenance_interval=None
        ).start()
        blocker = b.submit("?x nom ?y", limit=10)  # occupies the worker
        wait_for(lambda: inner.calls >= 1)
        leader = b.submit(JOIN, limit=100)   # queued, unstarted leader
        follower = b.submit(JOIN, limit=100)  # parked behind it
        b.stop(timeout=0.2)
        inner.gate.set()
        for fut in (leader, follower):
            with pytest.raises(QueryRejected):
                fut.result(timeout=5.0)
        assert blocker is not None  # the in-flight one is left to finish

    def test_coalesce_disabled(self):
        inner = Gated(nobel_graph())
        inner.gate.set()
        cached = CachedQuerySystem(inner)
        with QueryBroker(
            cached, workers=1, maintenance_interval=None, coalesce=False
        ) as b:
            b.submit(JOIN, limit=100).result(10.0)
            r = b.submit(JOIN, limit=100).result(10.0)
            stats = b.stats()
        assert stats["cache_hits"] == 0 and stats["coalesced"] == 0
        assert r.cached  # the index-level cache still serves the repeat
        assert inner.calls == 1
