"""CachedQuerySystem end-to-end: hit/miss flags, key separation,
complete-results-only, and generation invalidation across every
mutation kind (insert, delete, compaction, checkpoint)."""

import numpy as np
import pytest

from repro.cache import CachedQuerySystem
from repro.core.dynamic import DynamicRingIndex
from repro.core.system import RingIndex
from repro.graph.dataset import Graph
from repro.graph.generators import nobel_graph
from repro.graph.model import Var

pytestmark = pytest.mark.cache

JOIN = "?x adv ?y . ?y adv ?z"


def items(result):
    """Order-preserving comparison form (dict insertion order included)."""
    return [list(m.items()) for m in result]


class TestHitsAndFlags:
    def test_first_miss_then_hit(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        r1 = c.evaluate(JOIN)
        r2 = c.evaluate(JOIN)
        assert not r1.cached and r2.cached
        assert items(r1) == items(r2)

    def test_renamed_query_hits(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        r1 = c.evaluate(JOIN)
        renamed = "?a adv ?b . ?b adv ?c"
        r2 = c.evaluate(renamed)
        assert r2.cached
        # Same values in the same row/column order, renamed keys.
        assert [[v for _, v in row] for row in items(r1)] == [
            [v for _, v in row] for row in items(r2)
        ]
        # Byte-identical to what a fresh engine would produce.
        fresh = RingIndex(nobel_graph()).evaluate(renamed)
        assert items(r2) == items(fresh)

    def test_permuted_triples_hit(self):
        # No lonely variables: the emission order is permutation-proof,
        # so the permuted repeat may (and must) share the entry.
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        q1 = "?x adv ?y . ?y adv ?z . ?z nom ?x"
        q2 = "?z nom ?x . ?x adv ?y . ?y adv ?z"
        r1 = c.evaluate(q1)
        r2 = c.evaluate(q2)
        assert r2.cached
        assert items(r2) == items(RingIndex(nobel_graph()).evaluate(q2))
        assert items(r1) == items(r2)

    def test_lonely_order_sensitive_permutation_misses_soundly(self):
        # Two lonely-bearing patterns: permuting them changes the §4.2
        # cross-product nesting, hence the row order.  Byte-identity
        # requires a miss here — and both answers match fresh engines.
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        q1 = "?x adv ?y . ?y nom ?z"
        q2 = "?y nom ?z . ?x adv ?y"
        c.evaluate(q1)
        r = c.evaluate(q2)
        assert not r.cached
        assert items(r) == items(RingIndex(nobel_graph()).evaluate(q2))

    def test_count_goes_through_cache(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        n1 = c.count(JOIN)
        n2 = c.count(JOIN)
        assert n1 == n2
        assert c.result_cache.stats()["hits"] >= 1

    def test_name_reports_wrapper(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        assert c.name == "Cached(Ring)"
        assert c.inner.name == "Ring"


class TestKeySeparation:
    def test_limit_is_part_of_the_key(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        full = c.evaluate(JOIN)
        capped = c.evaluate(JOIN, limit=1)
        assert not capped.cached
        assert len(capped) == 1
        again = c.evaluate(JOIN, limit=1)
        assert again.cached and len(again) == 1
        assert items(full)[0] == items(capped)[0]

    def test_projection_is_part_of_the_key(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        plain = c.evaluate(JOIN)
        proj = c.evaluate(JOIN, project=[Var("x")])
        assert not proj.cached
        assert all(list(m) == [Var("x")] for m in proj)
        assert c.evaluate(JOIN, project=[Var("x")]).cached
        assert c.evaluate(JOIN).cached
        assert len(plain) >= len(proj)

    def test_projection_respects_renaming(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        p1 = c.evaluate(JOIN, project=[Var("y")])
        p2 = c.evaluate("?a adv ?b . ?b adv ?c", project=[Var("b")])
        assert p2.cached
        assert [[v for _, v in row] for row in items(p1)] == [
            [v for _, v in row] for row in items(p2)
        ]

    def test_decode_not_in_key(self):
        # Decoding happens at serve time, so an id-space store also
        # answers decoded requests (and vice versa).
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        c.evaluate(JOIN)
        decoded = c.evaluate(JOIN, decode=True)
        assert decoded.cached
        assert all(
            isinstance(k, str) and isinstance(v, str)
            for m in decoded
            for k, v in m.items()
        )

    def test_explicit_var_order_bypasses(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        c.evaluate(JOIN)
        r = c.evaluate(JOIN, var_order=[Var("z"), Var("y"), Var("x")])
        assert not r.cached
        assert c.result_cache.stats()["stores"] == 1  # not stored either


class TestCompleteResultsOnly:
    def test_truncated_result_not_stored(self):
        from repro.reliability.budget import ResourceBudget

        c = CachedQuerySystem(RingIndex(nobel_graph()))
        r = c.evaluate(
            JOIN,
            partial=True,
            budget=ResourceBudget(max_ops=1, tick_mask=0),
        )
        assert r.truncated
        assert c.result_cache.stats()["stores"] == 0
        fresh = c.evaluate(JOIN)
        assert not fresh.cached  # nothing stale was reused

    def test_unknown_constant_bypasses(self):
        c = CachedQuerySystem(RingIndex(nobel_graph()))
        r = c.evaluate("?x adv NoSuchNode")
        assert r == [] and not r.cached
        assert len(c.result_cache) == 0


class TestGenerationInvalidation:
    def _fresh_triple(self, index):
        for s in range(index.graph.n_nodes):
            if not index.contains(s, 0, s):
                return (s, 0, s)
        raise AssertionError("universe full")

    def test_insert_invalidates(self):
        d = DynamicRingIndex(nobel_graph())
        c = CachedQuerySystem(d)
        assert c.evaluate(JOIN) is not None
        assert c.evaluate(JOIN).cached
        c.insert(*self._fresh_triple(d))
        after = c.evaluate(JOIN)
        assert not after.cached
        assert items(after) == items(d.evaluate(JOIN))

    def test_delete_invalidates(self):
        d = DynamicRingIndex(nobel_graph())
        c = CachedQuerySystem(d)
        t = self._fresh_triple(d)
        c.insert(*t)
        c.evaluate(JOIN)
        assert c.evaluate(JOIN).cached
        c.delete(*t)
        assert not c.evaluate(JOIN).cached

    def test_noop_write_keeps_cache(self):
        d = DynamicRingIndex(nobel_graph())
        c = CachedQuerySystem(d)
        c.evaluate(JOIN)
        existing = next(iter(d.to_graph()))
        assert not c.insert(*existing)  # duplicate: nothing changed
        assert c.evaluate(JOIN).cached

    def test_compaction_invalidates(self):
        d = DynamicRingIndex(nobel_graph(), auto_compact=False)
        c = CachedQuerySystem(d)
        c.insert(*self._fresh_triple(d))
        c.evaluate(JOIN)
        assert c.evaluate(JOIN).cached
        d._compact()
        assert not c.evaluate(JOIN).cached

    def test_durable_checkpoint_invalidates(self, tmp_path):
        from repro.reliability.wal import DurableDynamicRing

        universe = Graph(
            np.zeros((0, 3), dtype=np.int64), n_nodes=16, n_predicates=2
        )
        store = DurableDynamicRing.create(str(tmp_path / "idx"), universe)
        from repro.graph.model import BasicGraphPattern, TriplePattern

        q = BasicGraphPattern([TriplePattern(Var("x"), 0, Var("y"))])
        try:
            c = CachedQuerySystem(store)
            c.insert(1, 0, 2)
            c.insert(2, 0, 3)
            c.evaluate(q)
            assert c.evaluate(q).cached
            store.checkpoint()
            assert not c.evaluate(q).cached
            assert c.evaluate(q).cached
        finally:
            store.close()
