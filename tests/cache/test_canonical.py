"""Canonicalizer equivalence classes: renaming/permutation invariance,
constant discrimination, soundness of the fallback path."""

import pytest

from repro.cache.canonical import (
    CanonicalBGP,
    canonical_pattern,
    canonicalize,
    pattern_descriptor,
)
from repro.graph.model import BasicGraphPattern, TriplePattern, Var

pytestmark = pytest.mark.cache

A, B, C, X, Y, Z = (Var(n) for n in "abcxyz")


def bgp(*patterns):
    return BasicGraphPattern([TriplePattern(*p) for p in patterns])


class TestRenamingInvariance:
    def test_simple_rename_same_key(self):
        q1 = canonicalize(bgp((X, 0, Y), (Y, 0, Z)))
        q2 = canonicalize(bgp((A, 0, B), (B, 0, C)))
        assert q1.key == q2.key
        assert not q1.exhausted and not q2.exhausted

    def test_mapping_translates_consistently(self):
        q1 = canonicalize(bgp((X, 0, Y), (Y, 1, Z)))
        q2 = canonicalize(bgp((C, 0, A), (A, 1, B)))
        # Corresponding variables (x~c, y~a, z~b) share canonical ids.
        assert q1.mapping[X] == q2.mapping[C]
        assert q1.mapping[Y] == q2.mapping[A]
        assert q1.mapping[Z] == q2.mapping[B]

    def test_mapping_is_dense_bijection(self):
        q = canonicalize(bgp((X, 0, Y), (Y, 1, Z), (Z, 0, X)))
        ids = sorted(q.mapping.values())
        assert ids == list(range(3))

    def test_triangle_automorphism_rotations_collide(self):
        # A symmetric triangle: every rotation of the names is the same
        # query and must share a key.
        base = canonicalize(bgp((X, 0, Y), (Y, 0, Z), (Z, 0, X)))
        rot1 = canonicalize(bgp((Y, 0, Z), (Z, 0, X), (X, 0, Y)))
        renamed = canonicalize(bgp((A, 0, B), (B, 0, C), (C, 0, A)))
        assert base.key == rot1.key == renamed.key


class TestPermutationInvariance:
    def test_triple_order_irrelevant(self):
        q1 = canonicalize(bgp((X, 0, Y), (Y, 1, Z), (X, 2, Z)))
        q2 = canonicalize(bgp((X, 2, Z), (X, 0, Y), (Y, 1, Z)))
        assert q1.key == q2.key
        assert q1.mapping == q2.mapping

    def test_permuted_and_renamed(self):
        q1 = canonicalize(bgp((X, 0, Y), (Y, 1, Z)))
        q2 = canonicalize(bgp((B, 1, C), (A, 0, B)))
        assert q1.key == q2.key


class TestSoundness:
    """Different queries must never share a key."""

    def test_constant_values_discriminate(self):
        assert (
            canonicalize(bgp((X, 5, 5))).key
            != canonicalize(bgp((X, 5, 6))).key
        )

    def test_repeated_variable_vs_distinct(self):
        # (?x, 0, ?x) has one variable, (?x, 0, ?y) has two.
        assert (
            canonicalize(bgp((X, 0, X))).key
            != canonicalize(bgp((X, 0, Y))).key
        )

    def test_path_vs_star(self):
        path = canonicalize(bgp((X, 0, Y), (Y, 0, Z)))
        star = canonicalize(bgp((X, 0, Y), (X, 0, Z)))
        assert path.key != star.key

    def test_constant_in_variable_position(self):
        assert (
            canonicalize(bgp((X, 0, 7), (X, 1, Y))).key
            != canonicalize(bgp((X, 0, Z), (X, 1, Y))).key
        )

    def test_key_reconstructs_query(self):
        # The key is the sorted canonical patterns — re-canonicalizing
        # the key's own patterns is a fixpoint.
        q = canonicalize(bgp((X, 0, Y), (Y, 1, Z), (Z, 0, X)))
        rebuilt = [
            TriplePattern(
                *(Var(f"c{t[1]}") if t[0] == "v" else t[1] for t in pat)
            )
            for pat in q.key
        ]
        assert canonicalize(BasicGraphPattern(rebuilt)).key == q.key


class TestEdgesAndFallback:
    def test_no_variables(self):
        q = canonicalize(bgp((1, 0, 2), (3, 1, 4)))
        assert isinstance(q, CanonicalBGP)
        assert q.mapping == {}
        assert q.key == canonicalize(bgp((3, 1, 4), (1, 0, 2))).key

    def test_zero_budget_is_sound_and_deterministic(self):
        # A symmetric query forces individualization; with no budget the
        # name fallback kicks in — still a valid, stable key.
        q1 = canonicalize(bgp((X, 0, Y), (Y, 0, X)), budget=0)
        q2 = canonicalize(bgp((X, 0, Y), (Y, 0, X)), budget=0)
        assert q1.exhausted
        assert q1.key == q2.key
        assert sorted(q1.mapping.values()) == [0, 1]

    def test_exhausted_never_set_on_asymmetric(self):
        q = canonicalize(bgp((X, 0, Y), (Y, 1, Z)))
        assert not q.exhausted


class TestDescriptors:
    def test_pattern_descriptor_anonymises(self):
        assert pattern_descriptor(
            TriplePattern(X, 3, Y)
        ) == pattern_descriptor(TriplePattern(A, 3, B))
        assert pattern_descriptor(
            TriplePattern(X, 3, X)
        ) == pattern_descriptor(TriplePattern(B, 3, B))
        assert pattern_descriptor(
            TriplePattern(X, 3, X)
        ) != pattern_descriptor(TriplePattern(X, 3, Y))

    def test_canonical_pattern_uses_mapping(self):
        assert canonical_pattern(
            TriplePattern(X, 2, Y), {X: 1, Y: 0}
        ) == (("v", 1), ("k", 2), ("v", 0))
