"""ResultCache unit behaviour: LRU byte budget, generation tags,
fingerprint self-verification, and fault-injection degradation."""

import pytest

from repro.cache import CachedQuerySystem, ResultCache, estimate_entry_bytes
from repro.core.system import RingIndex
from repro.graph.generators import nobel_graph
from repro.reliability.faults import (
    Fault,
    InjectedFault,
    available_sites,
    inject_faults,
)

pytestmark = pytest.mark.cache


def rows(n, width=2):
    return tuple(
        tuple((c, 100 * i + c) for c in range(width)) for i in range(n)
    )


class TestLookupStore:
    def test_roundtrip(self):
        cache = ResultCache()
        r = rows(3)
        assert cache.store("k", 7, r)
        entry = cache.lookup("k", 7)
        assert entry is not None and entry.rows == r
        assert cache.stats()["hits"] == 1

    def test_miss(self):
        cache = ResultCache()
        assert cache.lookup("absent", 0) is None
        assert cache.stats()["misses"] == 1

    def test_generation_mismatch_drops_entry(self):
        cache = ResultCache()
        cache.store("k", 1, rows(2))
        assert cache.lookup("k", 2) is None
        assert len(cache) == 0  # evicted on touch, not just skipped
        assert cache.stats()["invalidated"] == 1

    def test_replace_same_key(self):
        cache = ResultCache()
        cache.store("k", 1, rows(2))
        cache.store("k", 1, rows(5))
        assert len(cache) == 1
        assert cache.lookup("k", 1).rows == rows(5)
        assert cache.bytes_used == estimate_entry_bytes(rows(5))


class TestByteBudget:
    def test_lru_eviction_by_bytes(self):
        unit = estimate_entry_bytes(rows(4))
        cache = ResultCache(capacity_bytes=3 * unit)
        for i in range(3):
            cache.store(i, 0, rows(4))
        assert len(cache) == 3
        cache.lookup(0, 0)  # 0 becomes most-recent; 1 is now LRU
        cache.store(3, 0, rows(4))
        assert cache.lookup(1, 0) is None
        assert cache.lookup(0, 0) is not None
        assert cache.bytes_used <= cache.capacity_bytes
        assert cache.stats()["evictions"] == 1

    def test_oversize_refused(self):
        cache = ResultCache(capacity_bytes=1024)
        cache.store("small", 0, rows(1))
        assert not cache.store("huge", 0, rows(100))
        assert cache.lookup("small", 0) is not None  # nothing evicted
        assert cache.stats()["oversize_rejected"] == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity_bytes=0)


class TestFingerprint:
    def test_corrupted_rows_dropped(self):
        cache = ResultCache()
        cache.store("k", 0, rows(3))
        cache._entries["k"].rows = rows(2)  # simulate corruption
        assert cache.lookup("k", 0) is None
        assert len(cache) == 0
        assert cache.stats()["corrupt_dropped"] == 1

    def test_invalidate_all(self):
        cache = ResultCache()
        for i in range(4):
            cache.store(i, 0, rows(2))
        assert cache.invalidate_all() == 4
        assert len(cache) == 0 and cache.bytes_used == 0


class TestFaultInjection:
    """The cache.lookup / cache.store sites degrade, never corrupt."""

    def test_sites_registered(self):
        sites = available_sites()
        assert "cache.lookup" in sites and "cache.store" in sites

    def test_lookup_fault_falls_through_to_evaluation(self):
        system = CachedQuerySystem(RingIndex(nobel_graph()))
        q = "?x adv ?y . ?y adv ?z"
        reference = system.evaluate(q)
        with inject_faults(Fault("cache.lookup", error=InjectedFault), seed=11):
            r = system.evaluate(q)
        assert not r.cached
        assert [list(m.items()) for m in r] == [
            list(m.items()) for m in reference
        ]
        assert system.cache_stats()["degraded"] >= 1

    def test_store_fault_only_costs_future_hits(self):
        system = CachedQuerySystem(RingIndex(nobel_graph()))
        q = "?x adv ?y . ?y adv ?z"
        with inject_faults(Fault("cache.store", error=InjectedFault), seed=11):
            r1 = system.evaluate(q)
            r2 = system.evaluate(q)
        assert not r1.cached and not r2.cached  # nothing ever stored
        assert [list(m.items()) for m in r1] == [list(m.items()) for m in r2]
        r3 = system.evaluate(q)  # faults gone: stores work again
        r4 = system.evaluate(q)
        assert not r3.cached and r4.cached

    def test_lookup_latency_does_not_change_answers(self):
        system = CachedQuerySystem(RingIndex(nobel_graph()))
        q = "?x adv ?y"
        reference = system.evaluate(q)
        with inject_faults(Fault("cache.lookup", latency=0.001), seed=5):
            r = system.evaluate(q)
        assert [list(m.items()) for m in r] == [
            list(m.items()) for m in reference
        ]
