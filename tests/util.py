"""Shared test helpers: a brute-force reference evaluator for BGPs.

Every join engine in the library is cross-checked against
:func:`naive_evaluate`, which implements the §2.1.2 semantics directly:
``Q(G) = { mu | mu(Q) ⊆ G }`` by backtracking over the triple list.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, TriplePattern, Var


def match_triple(
    pattern: TriplePattern, triple: tuple[int, int, int]
) -> Optional[dict[Var, int]]:
    """Extend the empty binding so that ``pattern`` matches ``triple``."""
    binding: dict[Var, int] = {}
    for term, value in zip(pattern.terms, triple):
        if isinstance(term, Var):
            if term in binding and binding[term] != value:
                return None
            binding[term] = value
        elif term != value:
            return None
    return binding


def naive_evaluate(graph: Graph, bgp: BasicGraphPattern) -> set[frozenset]:
    """All solutions as a set of frozen ``(Var, value)`` item sets."""
    solutions: list[dict[Var, int]] = [{}]
    for pattern in bgp:
        extended: list[dict[Var, int]] = []
        for binding in solutions:
            concrete = pattern.substitute(binding)
            for triple in graph:
                m = match_triple(concrete, triple)
                if m is not None:
                    extended.append({**binding, **m})
        # Deduplicate (several triples can extend a binding identically
        # only if patterns repeat, but be safe).
        seen = set()
        solutions = []
        for b in extended:
            key = frozenset(b.items())
            if key not in seen:
                seen.add(key)
                solutions.append(b)
        if not solutions:
            return set()
    return {frozenset(b.items()) for b in solutions}


def as_solution_set(solutions) -> set[frozenset]:
    """Normalise an engine's output for comparison."""
    return {frozenset(s.items()) for s in solutions}
