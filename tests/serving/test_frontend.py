"""The asyncio front end and the ``repro shard-serve`` CLI command."""

import asyncio
import io

import pytest

from repro.reliability.broker import QueryRejected
from repro.serving import (
    CircuitBreaker,
    RetryPolicy,
    ShardCoordinator,
    ShardFrontend,
    ShardSupervisor,
)

pytestmark = pytest.mark.serving


def make_frontend(sharded, **kw):
    coord = ShardCoordinator(
        sharded,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001, seed=0),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=2, reset_timeout=0.05
        ),
    )
    return ShardFrontend(coord, **kw)


def run(frontend, line):
    return asyncio.run(frontend.handle_line(line))


class TestProtocol:
    def test_blank_and_comment_lines_ignored(self, sharded):
        frontend = make_frontend(sharded)
        assert run(frontend, "") == (True, [])
        assert run(frontend, "# a comment") == (True, [])

    def test_quit_stops(self, sharded):
        assert run(make_frontend(sharded), "QUIT") == (False, [])

    def test_insert_query_delete_round_trip(self, sharded):
        frontend = make_frontend(sharded)
        _, lines = run(frontend, "INSERT 29 1 29")
        assert lines == ["ok inserted"]
        _, lines = run(frontend, "INSERT 29 1 29")
        assert lines == ["ok duplicate"]
        _, lines = run(frontend, "QUERY 29 1 ?o")
        assert any("?o=29" in line for line in lines)
        assert lines[-1].endswith("[complete; shards 0,1,2,3]")
        _, lines = run(frontend, "DELETE 29 1 29")
        assert lines == ["ok deleted"]
        _, lines = run(frontend, "DELETE 29 1 29")
        assert lines == ["ok absent"]

    def test_partial_answers_are_labelled(self, sharded):
        frontend = make_frontend(sharded)
        sharded.kill_shard(2)
        _, lines = run(frontend, "QUERY ?x ?p ?y")
        assert lines[-1].endswith("[partial; shards 0,1,3]")

    def test_kill_and_restart_verbs(self, sharded):
        frontend = make_frontend(sharded)
        _, lines = run(frontend, "KILL 1")
        assert lines == ["ok killed shard 1"]
        assert not sharded.endpoints[1].alive
        _, lines = run(frontend, "RESTART 1")
        assert lines == ["ok restarted shard 1"]
        assert sharded.endpoints[1].alive
        _, lines = run(frontend, "KILL 9")
        assert lines == ["error: no shard 9"]

    def test_errors_are_lines_not_exceptions(self, sharded):
        frontend = make_frontend(sharded)
        _, lines = run(frontend, "FROB 1 2 3")
        assert lines[0].startswith("error: unknown command")
        _, lines = run(frontend, "INSERT 1 2")
        assert lines[0].startswith("error:")
        _, lines = run(frontend, "QUERY")
        assert lines[0].startswith("error:")

    def test_stats_lines(self, sharded):
        sup = ShardSupervisor(sharded)
        frontend = make_frontend(sharded)
        frontend.supervisor = sup
        run(frontend, "QUERY ?x 0 ?y")
        _, lines = run(frontend, "STATS")
        text = "\n".join(lines)
        assert "queries" in text
        assert "shards" in text and "4/4 live" in text
        assert "breakers" in text
        assert "supervisor" in text


class TestAdmission:
    def test_shed_when_at_capacity(self, sharded):
        frontend = make_frontend(sharded, max_in_flight=1)
        frontend._in_flight = 1  # a query is (deterministically) in flight
        _, lines = run(frontend, "QUERY ?x ?p ?y")
        assert lines[0].startswith("error: rejected:")
        assert frontend._shed == 1
        frontend._in_flight = 0
        _, lines = run(frontend, "QUERY ?x ?p ?y")
        assert lines[-1].startswith("--"), "capacity freed, queries flow again"

    def test_invalid_max_in_flight(self, sharded):
        with pytest.raises(ValueError):
            make_frontend(sharded, max_in_flight=0)

    def test_shed_is_a_typed_rejection(self, sharded):
        frontend = make_frontend(sharded, max_in_flight=1)
        frontend._in_flight = 1
        with pytest.raises(QueryRejected):
            asyncio.run(frontend._query("?x ?p ?y"))


class TestServeStdin:
    def test_line_session_over_string_io(self, sharded):
        script = "INSERT 29 0 29\nQUERY 29 0 ?o\nQUIT\n"
        out = io.StringIO()
        frontend = make_frontend(sharded)
        asyncio.run(frontend.serve_stdin(stdin=io.StringIO(script), stdout=out))
        text = out.getvalue()
        assert text.startswith("ready\n")
        assert "ok inserted" in text
        assert "?o=29" in text
        assert text.rstrip().endswith("bye")


class TestSocket:
    def test_tcp_session(self, sharded):
        async def scenario():
            frontend = make_frontend(sharded)
            server = await frontend.serve_socket(port=0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            assert (await reader.readline()) == b"ready\n"
            writer.write(b"INSERT 29 1 29\nQUERY 29 1 ?o\nQUIT\n")
            await writer.drain()
            lines = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                lines.append(line.decode().rstrip())
            writer.close()
            server.close()
            await server.wait_closed()
            return lines

        lines = asyncio.run(scenario())
        assert "ok inserted" in lines
        assert any("?o=29" in line for line in lines)
        assert lines[-1] == "bye"


class TestCLI:
    def test_shard_serve_end_to_end(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        script = (
            "INSERT 1 0 2\nINSERT 2 0 3\nINSERT 9 1 2\n"
            "QUERY ?x 0 ?y\nSTATS\nKILL 1\nRESTART 1\nQUIT\n"
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        main([
            "shard-serve", str(tmp_path / "d"), "--create",
            "--shards", "3", "--n-nodes", "16", "--n-predicates", "2",
            "--timeout", "10",
        ])
        out = capsys.readouterr().out
        assert "3 durable shard(s)" in out
        assert out.count("ok inserted") == 3
        assert "?x=1  ?y=2" in out
        assert "-- 2 solution(s) [complete; shards 0,1,2]" in out
        assert "breakers" in out
        assert "ok killed shard 1" in out
        assert "ok restarted shard 1" in out
        assert "bye" in out

        # The durable store survives the session: recover and re-serve.
        monkeypatch.setattr("sys.stdin", io.StringIO("QUERY ?x 0 ?y\nQUIT\n"))
        main(["shard-serve", str(tmp_path / "d"), "--timeout", "10"])
        out = capsys.readouterr().out
        assert "recovered 3 shard(s)" in out
        assert "-- 2 solution(s) [complete; shards 0,1,2]" in out

    def test_shard_serve_with_cache(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        script = "INSERT 1 0 2\nQUERY ?x 0 ?y\nQUERY ?x 0 ?y\nQUIT\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        main([
            "shard-serve", str(tmp_path / "d"), "--create",
            "--shards", "2", "--n-nodes", "8", "--n-predicates", "1",
            "--cache", "--timeout", "10",
        ])
        out = capsys.readouterr().out
        assert "cache enabled" in out
        assert "-- 1 solution(s) [complete; shards 0,1]" in out
        assert "-- 1 solution(s) [complete; cached]" in out
