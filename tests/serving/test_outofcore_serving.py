"""Out-of-core serving: memmapped checkpoints through every tier.

PR 9 threads ``mmap=True`` from ``RingIndex.load`` up through the
durable store (``DurableDynamicRing.recover``), the sharded tier
(``ShardedRingIndex.recover``) and the parallel pool
(``ParallelRingIndex.load`` over a :class:`~repro.parallel.shm.PackHandle`).
These tests pin the property that matters at every level: the
memmapped server answers *exactly* like the in-RAM one.
"""

import os

import numpy as np
import pytest

from repro.core import RingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from repro.graph.generators import random_graph
from repro.parallel import ParallelRingIndex
from repro.parallel.shm import PackHandle
from repro.reliability.wal import DurableDynamicRing, verify_dynamic_dir
from repro.serving.coordinator import ShardCoordinator
from repro.serving.sharding import ShardedRingIndex

X, Y, Z = Var("x"), Var("y"), Var("z")
JOIN = BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)])
SCAN = BasicGraphPattern([TriplePattern(X, Var("p"), Y)])


def _rows(system, bgp):
    return [dict(mu) for mu in system.evaluate(bgp)]


@pytest.fixture(scope="module")
def graph():
    return random_graph(1200, n_nodes=60, n_predicates=3, seed=13)


class TestDurableMmapRecover:
    def test_recover_mmap_matches_eager(self, graph, tmp_path):
        store = DurableDynamicRing.create(
            tmp_path / "store", graph, buffer_threshold=64
        )
        store.insert(1, 0, 2)
        store.delete(*map(int, graph.triples[0]))
        store.checkpoint()
        store.insert(3, 1, 4)  # WAL tail beyond the checkpoint
        store.close()

        eager, _ = DurableDynamicRing.recover(tmp_path / "store")
        mapped, _ = DurableDynamicRing.recover(tmp_path / "store", mmap=True)
        try:
            assert _rows(mapped, JOIN) == _rows(eager, JOIN)
            assert _rows(mapped, SCAN) == _rows(eager, SCAN)
        finally:
            eager.close()
            mapped.close()

    def test_checkpoint_writes_packs(self, graph, tmp_path):
        store = DurableDynamicRing.create(
            tmp_path / "store", graph, buffer_threshold=64
        )
        cpdir = store.checkpoint()
        store.close()
        packs = [n for n in os.listdir(cpdir) if n.endswith(".ring")]
        assert packs, "checkpoint must persist mappable ring packs"
        report = verify_dynamic_dir(tmp_path / "store")
        assert any("pack" in check for check in report["checks"])

    def test_recover_mmap_without_packs_falls_back(self, graph, tmp_path):
        # Old checkpoints (written before packs existed: no ``pack``
        # manifest keys, no .ring files) still recover eagerly.
        import json

        store = DurableDynamicRing.create(
            tmp_path / "store", graph, buffer_threshold=64
        )
        cpdir = store.checkpoint()
        store.close()
        for name in os.listdir(cpdir):
            if name.endswith(".ring") or name.endswith(".ring.config.json"):
                os.unlink(os.path.join(cpdir, name))
        mpath = os.path.join(cpdir, "MANIFEST.json")
        manifest = json.loads(open(mpath).read())
        for entry in manifest.get("rings", []):
            entry.pop("pack", None)
        with open(mpath, "w") as fh:
            json.dump(manifest, fh)
        mapped, _ = DurableDynamicRing.recover(tmp_path / "store", mmap=True)
        try:
            assert _rows(mapped, JOIN) == _rows(
                RingIndex(graph), JOIN
            )
        finally:
            mapped.close()


class TestShardedMmapRecover:
    def test_sharded_recover_mmap_identity(self, graph, tmp_path):
        with ShardedRingIndex.create_durable(
            tmp_path / "shards", graph, 3, buffer_threshold=64
        ) as shards:
            shards.shutdown(checkpoint=True)

        def answers(shards):
            coordinator = ShardCoordinator(shards)
            return [
                sorted(
                    tuple(sorted((v.name, c) for v, c in mu.items()))
                    for mu in coordinator.evaluate(bgp, timeout=60.0)
                )
                for bgp in (SCAN, JOIN)
            ]

        with ShardedRingIndex.recover(tmp_path / "shards") as eager_shards:
            eager = answers(eager_shards)
        with ShardedRingIndex.recover(
            tmp_path / "shards", mmap=True
        ) as mapped_shards:
            mapped = answers(mapped_shards)
        assert mapped == eager
        assert eager[0], "scan must return rows"


class TestParallelPackHandle:
    def test_parallel_load_skips_shm_export(self, graph, tmp_path):
        pack = str(tmp_path / "index.ring")
        RingIndex(graph).save_frozen(pack)
        index = ParallelRingIndex.load(pack, mmap=True, workers=2)
        try:
            # A pack-backed ring must not be copied into a segment:
            # the workers map the file, the page cache is the sharing.
            assert index._shared is None
            reference = _rows(RingIndex(graph), JOIN)
            assert _rows(index, JOIN) == reference
        finally:
            index.close()

    def test_eager_parallel_load_still_exports(self, graph, tmp_path):
        pack = str(tmp_path / "index.ring")
        RingIndex(graph).save_frozen(pack)
        index = ParallelRingIndex.load(pack, mmap=False, workers=2)
        try:
            assert index._shared is not None
            assert _rows(index, JOIN) == _rows(RingIndex(graph), JOIN)
        finally:
            index.close()

    def test_pack_handle_attach_round_trip(self, graph, tmp_path):
        from repro.parallel.shm import attach_ring

        pack = str(tmp_path / "index.ring")
        RingIndex(graph).save_frozen(pack)
        ring = attach_ring(PackHandle(pack))
        assert ring.n == graph.n_triples
        direct = RingIndex(graph)
        attached = RingIndex.from_ring(ring, graph)
        assert _rows(attached, JOIN) == _rows(direct, JOIN)
