"""ReplicaSet semantics: routing, failover, dirty tracking, repair."""

from concurrent.futures import Future

import pytest

from repro.reliability.faults import Fault, InjectedFault, inject_faults
from repro.serving import (
    EndpointDown,
    InProcessEndpoint,
    ReplicaSet,
    ShardCoordinator,
    ShardedRingIndex,
)
from repro.serving.sharding import _memory_factory
from tests.serving.conftest import WORKLOAD, random_graph

pytestmark = pytest.mark.serving


def make_set(graph, n=2, **opts):
    return ReplicaSet(
        [
            InProcessEndpoint(_memory_factory(graph, 256), {"workers": 1})
            for _ in range(n)
        ],
        **opts,
    )


@pytest.fixture
def graph():
    return random_graph(n_triples=200, seed=31)


@pytest.fixture
def reference(graph):
    ep = InProcessEndpoint(_memory_factory(graph, 256), {"workers": 1})
    yield ep
    ep.shutdown()


class _ScriptedEndpoint:
    """An endpoint whose submitted future fails *after* dispatch —
    exercises the mid-flight failover path a real process death takes."""

    def __init__(self, error):
        self.error = error
        self.alive = True
        self.incarnation = 0
        self.submissions = 0

    def submit(self, query, **kwargs):
        self.submissions += 1
        future = Future()
        self.alive = False  # died while the call was in flight
        future.set_exception(self.error)
        return future

    def health_check(self):
        return self.alive

    def stats(self):
        return {"alive": self.alive}

    def kill(self):
        self.alive = False

    def shutdown(self, checkpoint=True):
        self.alive = False


class TestRouting:
    def test_primary_answers_without_failover(self, graph, reference):
        rs = make_set(graph)
        try:
            want = list(reference.evaluate(WORKLOAD[0], timeout=30.0))
            assert list(rs.evaluate(WORKLOAD[0], timeout=30.0)) == want
            assert rs.failovers == 0
            assert rs.primary == 0
        finally:
            rs.shutdown()

    def test_pre_dead_primary_promotes_and_counts(self, graph, reference):
        rs = make_set(graph)
        try:
            rs.kill()  # kills the primary by default
            want = list(reference.evaluate(WORKLOAD[1], timeout=30.0))
            assert list(rs.evaluate(WORKLOAD[1], timeout=30.0)) == want
            assert rs.failovers == 1
            assert rs.primary == 1
        finally:
            rs.shutdown()

    def test_mid_flight_death_fails_over(self, graph, reference):
        healthy = InProcessEndpoint(_memory_factory(graph, 256), {"workers": 1})
        scripted = _ScriptedEndpoint(EndpointDown("process died mid-call"))
        rs = ReplicaSet([scripted, healthy])
        try:
            want = list(reference.evaluate(WORKLOAD[0], timeout=30.0))
            assert list(rs.evaluate(WORKLOAD[0], timeout=30.0)) == want
            assert scripted.submissions == 1
            assert rs.failovers == 1
            assert rs.primary == 1
        finally:
            healthy.shutdown()

    def test_typed_query_errors_do_not_fail_over(self, graph):
        scripted = _ScriptedEndpoint(ValueError("bad query"))
        scripted_alive = _ScriptedEndpoint(ValueError("unused"))
        rs = ReplicaSet([scripted, scripted_alive])
        with pytest.raises(ValueError):
            rs.evaluate(WORKLOAD[0])
        assert rs.failovers == 0
        assert scripted_alive.submissions == 0

    def test_all_dead_raises_endpoint_down(self, graph):
        rs = make_set(graph)
        try:
            rs.kill(0)
            rs.kill(1)
            assert not rs.alive
            with pytest.raises(EndpointDown):
                rs.evaluate(WORKLOAD[0], timeout=5.0)
        finally:
            rs.shutdown()


class TestWritesAndRepair:
    def test_write_fans_out_to_all_replicas(self, graph):
        rs = make_set(graph)
        try:
            assert rs.insert(2, 1, 3) in (True, False)
            dumps = [set(r.dump()) for r in rs.replicas]
            assert dumps[0] == dumps[1]
            assert (2, 1, 3) in dumps[0]
        finally:
            rs.shutdown()

    def test_missed_write_marks_dirty_and_repair_catches_up(self, graph):
        rs = make_set(graph)
        try:
            rs.kill(1)
            rs.insert(4, 0, 5)
            assert rs.stats()["write_misses"] >= 1
            assert rs.stats()["dirty"][1] is True
            restarted = rs.repair()
            assert restarted == 1
            assert rs.stats()["dirty"][1] is False
            assert rs.stats()["catch_ups"] >= 1
            assert set(rs.replicas[0].dump()) == set(rs.replicas[1].dump())
            assert (4, 0, 5) in set(rs.replicas[1].dump())
        finally:
            rs.shutdown()

    def test_dirty_replica_excluded_from_reads(self, graph, reference):
        rs = make_set(graph)
        try:
            rs.kill(0)
            rs.insert(6, 1, 7)  # only replica 1 takes it; 0 stays dirty
            reference.insert(6, 1, 7)
            rs.repair()
            want = list(reference.evaluate(WORKLOAD[1], timeout=30.0))
            assert list(rs.evaluate(WORKLOAD[1], timeout=30.0)) == want
        finally:
            rs.shutdown()

    def test_flap_cap_stops_restarting(self, graph):
        rs = make_set(graph, max_restarts=1)
        try:
            rs.kill(0)
            assert rs.repair() == 1
            rs.kill(0)
            assert rs.repair() == 0  # cap reached: left down
            assert not rs.replicas[0].alive
            assert rs.alive  # the other replica still serves
        finally:
            rs.shutdown()

    def test_cache_generation_tracks_down_and_dirty(self, graph):
        rs = make_set(graph)
        try:
            before = rs.cache_generation()
            rs.kill(1)
            down = rs.cache_generation()
            assert down != before
            assert down[1][0] == "down"
            rs.repair()  # revive; catch-up clears dirty
            after = rs.cache_generation()
            assert after[1][0] not in ("down", "dirty")
        finally:
            rs.shutdown()


class TestFailoverFaultSite:
    def test_broken_promotion_degrades_to_partial_never_wrong(self):
        graph = random_graph(seed=33)
        shards = ShardedRingIndex.from_graph(graph, 2, replicas=2)
        coord = ShardCoordinator(shards, shard_timeout=10.0)
        try:
            reference = list(coord.evaluate(WORKLOAD[2], timeout=30.0))
            ref_set = {frozenset(mu.items()) for mu in reference}
            victim = shards.endpoints[0]
            victim.replicas[victim.primary].kill()
            fault = Fault(
                "replica.failover", probability=1.0, error=InjectedFault
            )
            with inject_faults(fault, seed=0):
                result = coord.evaluate(
                    WORKLOAD[2], partial=True, timeout=30.0
                )
            assert fault.fired >= 1
            assert not result.shards.complete
            assert result.truncated
            assert {frozenset(mu.items()) for mu in result} <= ref_set
            assert victim.stats()["failover_errors"] >= 1
        finally:
            shards.shutdown()
