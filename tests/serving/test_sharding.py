"""Subject-hash sharding: placement, partitioning, durable lifecycle."""

import json

import numpy as np
import pytest

from repro.serving.sharding import (
    MANIFEST_NAME,
    ShardedRingIndex,
    partition_graph,
    shard_of,
    shard_vector,
)
from tests.serving.conftest import random_graph

pytestmark = pytest.mark.serving


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 4, 7):
            for s in range(200):
                sid = shard_of(s, n)
                assert 0 <= sid < n
                assert shard_of(s, n) == sid

    def test_vector_matches_scalar(self):
        subjects = np.arange(500, dtype=np.int64)
        vec = shard_vector(subjects, 4)
        assert [shard_of(int(s), 4) for s in subjects] == vec.tolist()

    def test_spreads_load(self):
        # splitmix64 over sequential ids must not collapse to one shard.
        counts = np.bincount(shard_vector(np.arange(1000, dtype=np.int64), 4))
        assert len(counts) == 4
        assert counts.min() > 100


class TestPartitionGraph:
    def test_disjoint_union_preserving_universe(self):
        graph = random_graph(seed=11)
        parts = partition_graph(graph, 4)
        assert len(parts) == 4
        total = sum(p.n_triples for p in parts)
        assert total == graph.n_triples
        union = {tuple(t) for p in parts for t in p.triples}
        assert union == {tuple(t) for t in graph.triples}
        for p in parts:
            assert p.n_nodes == graph.n_nodes
            assert p.n_predicates == graph.n_predicates

    def test_each_partition_owned_by_its_shard(self):
        graph = random_graph(seed=12)
        for sid, p in enumerate(partition_graph(graph, 3)):
            for s, _, _ in p.triples:
                assert shard_of(int(s), 3) == sid

    def test_empty_graph_and_bad_n(self):
        empty = random_graph(n_triples=0)
        assert all(p.n_triples == 0 for p in partition_graph(empty, 3))
        with pytest.raises(ValueError):
            partition_graph(empty, 0)


class TestShardedRingIndex:
    def test_routes_writes_to_owner(self, sharded):
        before = [ep.stats().get("n_triples", 0) for ep in sharded.endpoints]
        s = 17
        assert sharded.insert(s, 0, 3)
        owner = sharded.shard_for(s)
        after = [ep.stats().get("n_triples", 0) for ep in sharded.endpoints]
        assert after[owner] == before[owner] + 1
        for sid in range(sharded.n_shards):
            if sid != owner:
                assert after[sid] == before[sid]
        assert sharded.delete(s, 0, 3)

    def test_n_triples_sums_alive_shards(self, graph, sharded):
        assert sharded.n_triples == graph.n_triples
        sharded.kill_shard(2)
        assert sharded.n_triples < graph.n_triples

    def test_generation_vector_changes_on_write_kill_restart(self, sharded):
        g0 = sharded.cache_generation()
        sharded.insert(5, 1, 6)
        g1 = sharded.cache_generation()
        assert g1 != g0
        sharded.kill_shard(1)
        g2 = sharded.cache_generation()
        assert g2 != g1
        assert g2[1][0] == "down"
        sharded.restart_shard(1)
        g3 = sharded.cache_generation()
        assert g3 != g2 and g3 != g1, "a restart must invalidate, not revert"

    def test_stats_readiness(self, sharded):
        stats = sharded.stats()
        assert stats["n_shards"] == 4
        assert stats["live"] == 4
        assert stats["ready"] is True
        sharded.kill_shard(0)
        stats = sharded.stats()
        assert stats["live"] == 3
        assert stats["ready"] is False
        assert stats["shards"][0]["alive"] is False

    def test_needs_at_least_one_shard(self, graph):
        with pytest.raises(ValueError):
            ShardedRingIndex([], graph)


class TestDurableLifecycle:
    def test_create_writes_manifest(self, tmp_path, graph):
        with ShardedRingIndex.create_durable(tmp_path / "d", graph, 3):
            manifest = json.loads((tmp_path / "d" / MANIFEST_NAME).read_text())
        assert manifest["n_shards"] == 3
        assert manifest["n_nodes"] == graph.n_nodes
        assert manifest["n_predicates"] == graph.n_predicates
        for sid in range(3):
            assert (tmp_path / "d" / f"shard-{sid:02d}").is_dir()

    def test_recover_round_trip(self, tmp_path, graph):
        with ShardedRingIndex.create_durable(tmp_path / "d", graph, 3) as shards:
            shards.insert(3, 1, 4)
            n = shards.n_triples
        with ShardedRingIndex.recover(tmp_path / "d") as back:
            assert back.n_shards == 3
            assert back.n_triples == n
            assert back.graph.n_nodes == graph.n_nodes

    def test_killed_durable_shard_recovers_acknowledged_writes(
        self, tmp_path, graph
    ):
        with ShardedRingIndex.create_durable(tmp_path / "d", graph, 2) as shards:
            # Find a subject owned by shard 0 and write through it.
            s = next(s for s in range(100) if shards.shard_for(s) == 0)
            assert shards.insert(s, 1, 9)
            n = shards.n_triples
            shards.kill_shard(0)  # crash: no checkpoint, WAL as-is
            shards.restart_shard(0)
            assert shards.n_triples == n, "acked write lost across crash"
            assert shards.endpoints[0].incarnation == 1
