"""The result cache layered over the shard coordinator.

The coordinator's canonical row order makes its answers
byte-identically cacheable; the shard-generation vector (incarnation +
per-engine generation per shard) keys invalidation, so writes, crashes
and restarts each flush exactly what they must.
"""

import pytest

from repro.cache import CachedQuerySystem
from repro.serving import CircuitBreaker, RetryPolicy, ShardCoordinator
from tests.serving.conftest import WORKLOAD

pytestmark = [pytest.mark.serving, pytest.mark.cache]

from repro.graph import BasicGraphPattern, TriplePattern, Var

JOIN = WORKLOAD[2]
JOIN_RENAMED = BasicGraphPattern(
    [
        TriplePattern(Var("a"), 0, Var("b")),
        TriplePattern(Var("b"), 1, Var("c")),
    ]
)


@pytest.fixture
def cached(sharded):
    coord = ShardCoordinator(
        sharded,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001, seed=0),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=2, reset_timeout=0.05
        ),
    )
    return CachedQuerySystem(coord, capacity_bytes=1 << 20)


class TestHits:
    def test_repeat_query_hits_byte_identically(self, cached):
        first = list(cached.evaluate(JOIN))
        again = list(cached.evaluate(JOIN))
        assert again == first
        assert cached.result_cache.stats()["hits"] == 1

    def test_renamed_query_hits_the_same_entry(self, cached):
        first = list(cached.evaluate(JOIN))
        renamed = cached.evaluate(JOIN_RENAMED)
        assert cached.result_cache.stats()["hits"] == 1
        # Same values in canonical positions, different variable names.
        assert [sorted(mu.values()) for mu in renamed] == [
            sorted(mu.values()) for mu in first
        ]


class TestInvalidation:
    def test_write_invalidates(self, cached, sharded):
        cached.evaluate(JOIN)
        sharded.insert(3, 0, 4)
        cached.evaluate(JOIN)
        assert cached.result_cache.stats()["hits"] == 0
        assert cached.result_cache.stats()["misses"] == 2

    def test_kill_and_restart_each_change_the_generation(self, cached, sharded):
        g0 = cached.cache_generation()
        sharded.kill_shard(0)
        g1 = cached.cache_generation()
        sharded.restart_shard(0)
        g2 = cached.cache_generation()
        assert len({g0, g1, g2}) == 3

    def test_restarted_memory_shard_serves_fresh_not_stale(self, cached, sharded):
        baseline = list(cached.evaluate(JOIN, partial=True))
        sharded.kill_shard(0)
        sharded.restart_shard(0)
        # Memory shards restart to their initial partition, so the data
        # is unchanged — but the lookup must still MISS (new incarnation),
        # not trust a pre-crash entry.
        after = cached.evaluate(JOIN, partial=True)
        assert list(after) == baseline
        assert cached.result_cache.stats()["hits"] == 0


class TestPartialResults:
    def test_partial_results_never_stored(self, cached, sharded):
        sharded.kill_shard(2)
        degraded = cached.evaluate(JOIN, partial=True)
        assert degraded.truncated
        assert cached.result_cache.stats()["stores"] == 0
        # And the degraded answer did not poison a later complete one.
        sharded.restart_shard(2)
        import time

        time.sleep(0.06)  # breaker reset window
        recovered = cached.evaluate(JOIN, partial=True)
        assert not recovered.truncated
        assert len(recovered) >= len(degraded)
