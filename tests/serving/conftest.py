"""Shared fixtures for the sharded-serving test suite."""

import numpy as np
import pytest

from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph

N_NODES = 30
N_PREDICATES = 2

X, Y, Z = Var("x"), Var("y"), Var("z")

WORKLOAD = [
    BasicGraphPattern([TriplePattern(X, 0, Y)]),
    BasicGraphPattern([TriplePattern(X, Y, Z)]),
    BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]),
    BasicGraphPattern(
        [
            TriplePattern(X, 0, Y),
            TriplePattern(Y, 0, Z),
            TriplePattern(Z, 1, X),
        ]
    ),
]


def random_graph(n_triples=400, n_nodes=N_NODES, n_predicates=N_PREDICATES, seed=7):
    rng = np.random.default_rng(seed)
    arr = np.unique(
        np.stack(
            [
                rng.integers(0, n_nodes, n_triples),
                rng.integers(0, n_predicates, n_triples),
                rng.integers(0, n_nodes, n_triples),
            ],
            axis=1,
        ).astype(np.int64),
        axis=0,
    )
    return Graph(arr, n_nodes=n_nodes, n_predicates=n_predicates)


@pytest.fixture
def graph():
    return random_graph()


@pytest.fixture
def sharded(graph):
    from repro.serving import ShardedRingIndex

    with ShardedRingIndex.from_graph(graph, 4) as shards:
        yield shards
