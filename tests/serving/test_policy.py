"""Shard coordinator under the dynamic variable-selection policies.

The coordinator's canonical sort makes its row order plan-independent,
so the policy is a pure performance knob of the local join: rows must
be identical across *all* policies, and each policy must match the
single-index reference multiset.
"""

import pytest

from repro.core import RingIndex
from repro.core.ltj import POLICIES
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import skewed_graph
from repro.serving import ShardCoordinator, ShardedRingIndex

pytestmark = pytest.mark.serving

S, A, B = Var("s"), Var("a"), Var("b")

TWO_WING = BasicGraphPattern(
    [TriplePattern(S, 0, A), TriplePattern(S, 1, B), TriplePattern(A, 2, B)]
)


def test_coordinator_rows_identical_across_policies():
    graph = skewed_graph(n_hubs=12, fan=6, noise=100, seed=6)
    reference = sorted(
        tuple(sorted((v.name, c) for v, c in mu.items()))
        for mu in RingIndex(graph).evaluate(TWO_WING)
    )
    assert reference, "workload query must have solutions"
    rows_by_policy = {}
    for policy in POLICIES:
        with ShardedRingIndex.from_graph(graph, 2) as shards:
            coord = ShardCoordinator(shards, policy=policy)
            assert coord.policy == policy
            result = coord.evaluate(TWO_WING, timeout=30.0)
            assert result.shards.complete
            rows_by_policy[policy] = [list(mu.items()) for mu in result]
            assert sorted(
                tuple(sorted((v.name, c) for v, c in mu.items()))
                for mu in result
            ) == reference, policy
    first = rows_by_policy[POLICIES[0]]
    for policy, rows in rows_by_policy.items():
        assert rows == first, f"{policy} changed the canonical row order"
