"""Shard supervision: health sweeps, restart caps, failing restarts."""

import time

import pytest

from repro.reliability.faults import Fault, InjectedFault, inject_faults
from repro.serving import ShardSupervisor

pytestmark = pytest.mark.serving


class TestSweep:
    def test_healthy_shards_left_alone(self, sharded):
        sup = ShardSupervisor(sharded)
        assert sup.sweep() == 0
        assert sup.stats()["restarts"] == [0, 0, 0, 0]

    def test_dead_shard_restarted(self, sharded):
        sharded.kill_shard(2)
        sup = ShardSupervisor(sharded)
        assert sup.sweep() == 1
        assert sharded.endpoints[2].alive
        assert sharded.endpoints[2].incarnation == 1
        assert sup.stats()["restarts"] == [0, 0, 1, 0]

    def test_max_restarts_caps_flapping_shards(self, sharded):
        sup = ShardSupervisor(sharded, max_restarts=2)
        for _ in range(4):
            sharded.kill_shard(0)
            sup.sweep()
        assert sup.stats()["restarts"][0] == 2
        assert not sharded.endpoints[0].alive, (
            "a shard past its restart cap must stay down"
        )

    def test_failed_restart_counted_not_raised(self, sharded):
        sharded.kill_shard(1)
        sup = ShardSupervisor(sharded)
        with inject_faults(
            Fault("shard.restart", error=InjectedFault, probability=1.0), seed=1
        ):
            assert sup.sweep() == 0  # must not raise
        assert sup.stats()["failed_restarts"][1] >= 1
        assert not sharded.endpoints[1].alive
        # The next unfaulted sweep recovers the shard.
        assert sup.sweep() == 1
        assert sharded.endpoints[1].alive


class TestBackgroundLoop:
    def test_thread_restarts_killed_shard(self, sharded):
        with ShardSupervisor(sharded, interval=0.01) as sup:
            sharded.kill_shard(3)
            deadline = time.monotonic() + 5.0
            while not sharded.endpoints[3].alive and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sharded.endpoints[3].alive, "supervisor never restarted the shard"
            assert sup.stats()["running"]
        assert not sup.stats()["running"]
        assert sup.stats()["checks"] >= 1

    def test_double_start_rejected(self, sharded):
        sup = ShardSupervisor(sharded, interval=0.01)
        with sup:
            with pytest.raises(RuntimeError):
                sup.start()
