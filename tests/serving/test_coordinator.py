"""Scatter-gather coordinator: correctness, degradation, recovery.

The acceptance scenario of the serving tier: with 4 shards and one of
them killed, the coordinator returns a deterministic partial result
tagged with exactly the shards that answered; the victim's breaker
opens, goes half-open after the reset window, and an unfaulted re-run
after restart is byte-identical to the complete answer.
"""

import time

import numpy as np
import pytest

from repro.core.interface import QueryTimeout
from repro.core.system import RingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from repro.reliability.budget import ResourceBudget
from repro.reliability.faults import Fault, InjectedFault, inject_faults
from repro.serving import (
    CircuitBreaker,
    RetryPolicy,
    ShardCoordinator,
    ShardedRingIndex,
    ShardUnavailable,
)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serving.sharding import partition_graph
from tests.serving.conftest import WORKLOAD, X, Y, Z, random_graph
from tests.util import as_solution_set

pytestmark = pytest.mark.serving

JOIN = WORKLOAD[2]  # two-hop join


def fast_coordinator(shards, **kw):
    kw.setdefault("retry_policy", RetryPolicy(max_attempts=2, base_delay=0.001, seed=0))
    kw.setdefault(
        "breaker_factory",
        lambda: CircuitBreaker(failure_threshold=2, reset_timeout=0.05),
    )
    return ShardCoordinator(shards, **kw)


def reference_rows(graph, bgp, **kw):
    return as_solution_set(RingIndex(graph).evaluate(bgp, **kw))


class TestCompletePath:
    @pytest.mark.parametrize("bgp", WORKLOAD, ids=["single", "scan", "join", "cycle"])
    def test_matches_serial_reference(self, graph, sharded, bgp):
        coord = fast_coordinator(sharded)
        result = coord.evaluate(bgp)
        assert result.shards.complete
        assert result.shards.answered == (0, 1, 2, 3)
        assert not result.truncated
        assert as_solution_set(result) == reference_rows(graph, bgp)

    def test_row_order_independent_of_shard_count(self, graph):
        outputs = []
        for n in (1, 3):
            with ShardedRingIndex.from_graph(graph, n) as shards:
                outputs.append(list(fast_coordinator(shards).evaluate(JOIN)))
        assert outputs[0] == outputs[1], "canonical order must not depend on sharding"

    def test_constant_subject_routes_to_single_shard(self, sharded, monkeypatch):
        import repro.serving.coordinator as co

        dispatched = []
        real = co.dispatch_shard

        def recording(endpoint, query, **kw):
            dispatched.append(endpoint)
            return real(endpoint, query, **kw)

        monkeypatch.setattr(co, "dispatch_shard", recording)
        subject = 5
        bgp = BasicGraphPattern([TriplePattern(subject, 0, Y)])
        fast_coordinator(sharded).evaluate(bgp)
        owner = sharded.endpoints[sharded.shard_for(subject)]
        assert dispatched == [owner]

    def test_limit_applied_after_canonical_sort(self, sharded):
        coord = fast_coordinator(sharded)
        full = list(coord.evaluate(JOIN))
        limited = coord.evaluate(JOIN, limit=3)
        assert list(limited) == full[:3]
        assert limited.truncated
        assert limited.shards.complete, "limit is not a shard failure"

    def test_projection_dedupes(self, graph, sharded):
        coord = fast_coordinator(sharded)
        projected = coord.evaluate(JOIN, project=[X])
        expected = {
            frozenset({(X, dict(s)[X])})
            for s in reference_rows(graph, JOIN)
        }
        assert as_solution_set(projected) == expected
        assert len(projected) == len(expected), "projection must deduplicate"

    def test_string_queries_are_parsed(self, graph, sharded):
        # All-variable text (constants would need a dictionary graph,
        # same as BaseQuerySystem.evaluate).
        result = fast_coordinator(sharded).evaluate("?a ?p ?b")
        expected = reference_rows(
            graph,
            BasicGraphPattern([TriplePattern(Var("a"), Var("p"), Var("b"))]),
        )
        assert as_solution_set(result) == expected

    def test_ops_folded_into_parent_budget(self, sharded):
        budget = ResourceBudget()
        fast_coordinator(sharded).evaluate(JOIN, budget=budget)
        assert budget.ops > 0, "shard + local-join work must be accounted"


class TestDegradation:
    def test_acceptance_kill_degrade_recover(self, graph, sharded):
        """The ISSUE acceptance scenario, end to end."""
        # A generous reset window: the open-state assertions below run
        # after reference evaluations whose wall-clock time must not be
        # allowed to tick the breaker over into half-open on a loaded
        # host.
        coord = fast_coordinator(
            sharded,
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout=0.5
            ),
        )
        complete = list(coord.evaluate(JOIN, partial=True))
        victim = 2

        sharded.kill_shard(victim)
        degraded = coord.evaluate(JOIN, partial=True)
        # Tagged with exactly the shards that answered.
        assert degraded.shards.failed == (victim,)
        assert degraded.shards.answered == (0, 1, 3)
        assert not degraded.shards.complete
        assert degraded.truncated
        assert degraded.interrupted_by == "shard-failure"
        # The partial answer is the EXACT evaluation over the union of
        # the surviving partitions — no half-shard mixtures, no lies.
        parts = partition_graph(graph, 4)
        survivors = np.vstack(
            [parts[sid].triples for sid in (0, 1, 3)]
        )
        surviving_graph = Graph(
            survivors, n_nodes=graph.n_nodes, n_predicates=graph.n_predicates
        )
        assert as_solution_set(degraded) == reference_rows(surviving_graph, JOIN)
        assert as_solution_set(degraded) <= as_solution_set(complete)
        # Deterministic: an identical degraded re-run is byte-identical.
        rerun = coord.evaluate(JOIN, partial=True)
        assert list(rerun) == list(degraded)
        assert rerun.shards.failed == (victim,)
        # The victim's breaker opened (2 consecutive failures in one
        # evaluate: the join has two patterns, each dispatched to it).
        assert coord.breakers[victim].state == OPEN
        # ...and refuses straight away, without touching the dead shard.
        refused = coord.evaluate(JOIN, partial=True)
        assert refused.shards.failed == (victim,)
        assert coord.stats()["breaker_refusals"] > 0

        # Restart; after the reset window the breaker half-opens.
        sharded.restart_shard(victim)
        time.sleep(0.6)
        assert coord.breakers[victim].state == HALF_OPEN
        # The unfaulted re-run is byte-identical to the complete answer
        # and the probe successes re-close the breaker.
        recovered = coord.evaluate(JOIN, partial=True)
        assert list(recovered) == complete
        assert recovered.shards.complete
        assert not recovered.truncated
        assert coord.breakers[victim].state == CLOSED
        assert coord.breakers[victim].stats()["closed"] >= 1

    def test_partial_false_raises_shard_unavailable(self, sharded):
        sharded.kill_shard(1)
        coord = fast_coordinator(sharded)
        with pytest.raises(ShardUnavailable) as info:
            coord.evaluate(JOIN)
        assert info.value.shard_ids == (1,)

    def test_mid_query_kill_never_lies(self, graph, sharded, monkeypatch):
        """Kill the victim between the fan-out and its first gather: the
        answer must be either complete-and-exact or flagged-and-subset,
        never a silently wrong middle ground."""
        import repro.serving.coordinator as co

        victim = 1
        real = co.gather_block
        fired = {"done": False}

        def killing_gather(future, timeout):
            if not fired["done"]:
                fired["done"] = True
                sharded.kill_shard(victim)
            return real(future, timeout)

        monkeypatch.setattr(co, "gather_block", killing_gather)
        coord = fast_coordinator(sharded)
        result = coord.evaluate(JOIN, partial=True)
        assert fired["done"]
        if result.shards.complete:
            assert as_solution_set(result) == reference_rows(graph, JOIN)
        else:
            assert result.shards.failed == (victim,)
            assert result.truncated
            assert as_solution_set(result) <= reference_rows(graph, JOIN)

    def test_all_shards_down_yields_empty_partial(self, sharded):
        for sid in range(4):
            sharded.kill_shard(sid)
        result = fast_coordinator(sharded).evaluate(JOIN, partial=True)
        assert len(result) == 0
        assert result.shards.failed == (0, 1, 2, 3)
        assert result.truncated

    def test_expired_budget_flagged_as_timeout_under_partial(self, sharded):
        result = fast_coordinator(sharded).evaluate(
            JOIN, timeout=0.0, partial=True
        )
        assert result.truncated
        assert result.interrupted_by == "timeout"

    def test_expired_budget_raises_without_partial(self, sharded):
        with pytest.raises(QueryTimeout):
            fast_coordinator(sharded).evaluate(JOIN, timeout=0.0)


class TestRetry:
    def test_transient_dispatch_fault_is_retried_to_success(self, graph, sharded):
        coord = fast_coordinator(sharded)
        with inject_faults(
            Fault("shard.dispatch", error=InjectedFault, max_fires=1), seed=3
        ):
            result = coord.evaluate(JOIN, partial=True)
        assert result.shards.complete, "one transient fault must be absorbed"
        assert as_solution_set(result) == reference_rows(graph, JOIN)
        assert coord.stats()["retries"] >= 1

    def test_persistent_faults_exhaust_retries_and_degrade(self, sharded):
        coord = fast_coordinator(sharded)
        with inject_faults(
            Fault("shard.gather", error=InjectedFault, probability=1.0), seed=3
        ):
            result = coord.evaluate(JOIN, partial=True)
        assert not result.shards.complete
        assert result.truncated
        stats = coord.stats()
        assert stats["shard_failures"] > 0

    def test_backoff_clamped_to_parent_deadline(self, sharded):
        # Huge backoff + short deadline: the retry sleep must be clamped
        # so the evaluate returns (flagged) around the deadline, not
        # after the full backoff schedule.
        coord = ShardCoordinator(
            sharded,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=30.0, jitter=0.0, seed=0
            ),
        )
        with inject_faults(
            Fault("shard.gather", error=InjectedFault, probability=1.0), seed=3
        ):
            start = time.monotonic()
            result = coord.evaluate(JOIN, timeout=0.3, partial=True)
            elapsed = time.monotonic() - start
        assert elapsed < 5.0, "backoff slept past the parent deadline"
        assert result.truncated
