"""Property tests for the serving tier's two load-bearing guarantees.

1. **Retry backoff never blows the parent deadline** — however
   aggressive the :class:`RetryPolicy`, the coordinator clamps every
   inter-attempt delay to the parent budget's remaining time, so a
   query against entirely dead shards returns (flagged partial) within
   the caller's timeout plus scheduling slack.
2. **Failover is invisible in the bytes** — under any schedule of
   kills, repairs, and writes that leaves at least one clean live
   replica, a :class:`ReplicaSet` answers byte-identically to a single
   never-killed copy receiving the same writes.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    CircuitBreaker,
    InProcessEndpoint,
    ReplicaSet,
    RetryPolicy,
    ShardCoordinator,
    ShardedRingIndex,
)
from repro.serving.sharding import _memory_factory
from tests.serving.conftest import N_NODES, WORKLOAD, random_graph

pytestmark = pytest.mark.serving

_GRAPH = random_graph(n_triples=120, seed=41)


@given(
    timeout=st.floats(0.02, 0.25),
    max_attempts=st.integers(2, 5),
    base_delay=st.floats(0.05, 0.5),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=8, deadline=None)
def test_retry_backoff_never_exceeds_parent_deadline(
    timeout, max_attempts, base_delay, seed
):
    shards = ShardedRingIndex.from_graph(_GRAPH, 2)
    coord = ShardCoordinator(
        shards,
        retry_policy=RetryPolicy(
            max_attempts=max_attempts,
            base_delay=base_delay,
            max_delay=10.0,  # deliberately far beyond the deadline
            seed=seed,
        ),
        breaker_factory=lambda: CircuitBreaker(failure_threshold=100),
        shard_timeout=10.0,
    )
    try:
        for sid in range(shards.n_shards):
            shards.kill_shard(sid)
        started = time.monotonic()
        result = coord.evaluate(WORKLOAD[0], partial=True, timeout=timeout)
        elapsed = time.monotonic() - started
        assert not result.shards.complete
        assert list(result) == []
        # Generous slack for a loaded 1-CPU box; the unclamped backoff
        # alone would exceed this by an order of magnitude.
        assert elapsed <= timeout + 0.6
    finally:
        shards.shutdown()


_STEP = st.one_of(
    st.tuples(st.just("kill"), st.integers(0, 2)),
    st.tuples(st.just("repair"), st.just(0)),
    st.tuples(st.just("write"), st.integers(0, N_NODES * N_NODES - 1)),
    st.tuples(st.just("query"), st.integers(0, len(WORKLOAD) - 1)),
)


@given(steps=st.lists(_STEP, max_size=10))
@settings(max_examples=10, deadline=None)
def test_failover_byte_identical_to_single_copy(steps):
    rs = ReplicaSet(
        [
            InProcessEndpoint(_memory_factory(_GRAPH, 256), {"workers": 1})
            for _ in range(3)
        ]
    )
    single = InProcessEndpoint(_memory_factory(_GRAPH, 256), {"workers": 1})
    try:
        for step in steps:
            kind, arg = step
            if kind == "kill":
                # Never kill the last clean live replica: with none
                # left the contract is a typed failure, not an answer.
                if [r for r in rs._eligible() if r != arg]:
                    rs.kill(arg)
            elif kind == "repair":
                rs.repair()
            elif kind == "write":
                s, o = divmod(arg, N_NODES)
                rs.insert(s, 1, o)
                single.insert(s, 1, o)
            else:
                bgp = WORKLOAD[arg]
                got = rs.evaluate(bgp, timeout=30.0)
                want = single.evaluate(bgp, timeout=30.0)
                assert list(got) == list(want)
                assert not got.truncated
        rs.repair()
        final = rs.evaluate(WORKLOAD[1], timeout=30.0)
        assert list(final) == list(single.evaluate(WORKLOAD[1], timeout=30.0))
    finally:
        rs.shutdown()
        single.shutdown()
