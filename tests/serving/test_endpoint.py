"""InProcessEndpoint lifecycle: kill, restart, incarnation, health."""

import numpy as np
import pytest

from repro.core.dynamic import DynamicRingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from repro.serving.endpoint import EndpointDown, EngineEndpoint, InProcessEndpoint

pytestmark = pytest.mark.serving

X, Y, Z = Var("x"), Var("y"), Var("z")
SCAN = BasicGraphPattern([TriplePattern(X, Y, Z)])


def factory():
    graph = Graph(
        np.array([[1, 0, 2], [2, 1, 3]], dtype=np.int64),
        n_nodes=10,
        n_predicates=2,
    )
    return DynamicRingIndex(graph, buffer_threshold=16, auto_compact=False)


@pytest.fixture
def endpoint():
    ep = InProcessEndpoint(factory, {"maintenance_interval": None})
    yield ep
    ep.shutdown()


class TestLifecycle:
    def test_satisfies_the_protocol(self, endpoint):
        assert isinstance(endpoint, EngineEndpoint)

    def test_submit_evaluates_through_the_broker(self, endpoint):
        rows = endpoint.submit(SCAN, timeout=5.0).result(timeout=5.0)
        assert len(rows) == 2

    def test_kill_then_submit_raises_endpoint_down(self, endpoint):
        endpoint.kill()
        assert not endpoint.alive
        with pytest.raises(EndpointDown):
            endpoint.submit(SCAN)
        with pytest.raises(EndpointDown):
            endpoint.insert(1, 0, 5)

    def test_restart_bumps_incarnation_and_serves_again(self, endpoint):
        assert endpoint.incarnation == 0
        endpoint.kill()
        endpoint.restart()
        assert endpoint.alive
        assert endpoint.incarnation == 1
        rows = endpoint.submit(SCAN, timeout=5.0).result(timeout=5.0)
        assert len(rows) == 2

    def test_restart_while_alive_is_a_no_op(self, endpoint):
        endpoint.restart()
        assert endpoint.incarnation == 0, "restarting a live shard must not churn"

    def test_memory_engine_restart_loses_post_construction_writes(self, endpoint):
        # The stated non-durable trade-off: the factory rebuilds the
        # initial partition, not writes applied since.
        endpoint.insert(7, 1, 8)
        assert endpoint.stats()["n_triples"] == 3
        endpoint.kill()
        endpoint.restart()
        assert endpoint.stats()["n_triples"] == 2

    def test_health_check_tracks_liveness(self, endpoint):
        assert endpoint.health_check()
        endpoint.kill()
        assert not endpoint.health_check()

    def test_stats_shape(self, endpoint):
        stats = endpoint.stats()
        assert stats["alive"] is True
        assert stats["incarnation"] == 0
        assert stats["restarts"] == 0
        assert stats["n_triples"] == 2
        assert "broker" in stats
        endpoint.kill()
        down = endpoint.stats()
        assert down["alive"] is False
        assert "broker" not in down
