"""Process-isolated shard endpoints: RPC surface, death taxonomy, drain."""

import os
import signal
import time

import pytest

from repro.core import QueryTimeout
from repro.reliability.faults import Fault, InjectedFault, inject_faults
from repro.reliability.wal import DurableDynamicRing, verify_dynamic_dir
from repro.serving import (
    CircuitBreaker,
    EndpointDown,
    InProcessEndpoint,
    ProcessEndpoint,
    RetryPolicy,
    ShardCoordinator,
    ShardProcessDied,
    ShardSupervisor,
    ShardedRingIndex,
)
from repro.serving.sharding import _memory_factory
from tests.serving.conftest import WORKLOAD, random_graph

pytestmark = pytest.mark.serving


def _make_endpoint(directory, graph, **kwargs):
    DurableDynamicRing.create(
        str(directory), graph, buffer_threshold=256
    ).close(checkpoint=True)
    kwargs.setdefault("store_options", {"buffer_threshold": 256})
    kwargs.setdefault("broker_options", {"workers": 1})
    return ProcessEndpoint(str(directory), **kwargs)


@pytest.fixture(scope="module")
def small_graph():
    return random_graph(n_triples=200, seed=21)


@pytest.fixture(scope="module")
def endpoint(tmp_path_factory, small_graph):
    ep = _make_endpoint(tmp_path_factory.mktemp("proc-ep"), small_graph)
    yield ep
    ep.shutdown(checkpoint=False)


@pytest.fixture(scope="module")
def reference(small_graph):
    ep = InProcessEndpoint(_memory_factory(small_graph, 256), {"workers": 1})
    yield ep
    ep.shutdown()


class TestProcessEndpointRPC:
    def test_evaluate_matches_in_process(self, endpoint, reference):
        for bgp in WORKLOAD:
            got = endpoint.evaluate(bgp, timeout=30.0)
            want = reference.evaluate(bgp, timeout=30.0)
            assert list(got) == list(want)
            assert not got.truncated

    def test_result_carries_ops_budget(self, endpoint):
        result = endpoint.evaluate(WORKLOAD[0], timeout=30.0)
        assert result.budget is not None
        assert result.budget.ops > 0

    def test_health_stats_and_introspection(self, endpoint, small_graph):
        assert endpoint.alive
        assert endpoint.health_check()
        assert endpoint.n_triples == small_graph.n_triples
        assert endpoint.engine is None  # the store lives in the child
        assert sorted(endpoint.dump()) == sorted(
            tuple(map(int, t)) for t in small_graph.triples
        )
        assert endpoint.cache_generation() is not None
        stats = endpoint.stats()
        assert stats["pid"] == endpoint.pid
        assert stats["transport"]["deaths"] == 0
        assert "broker" in stats

    def test_insert_delete_roundtrip(self, endpoint, small_graph):
        triple = (1, 0, 2)
        existing = tuple(map(int, small_graph.triples[0]))
        base = endpoint.n_triples
        if triple == existing:  # pragma: no cover - generator collision
            triple = (1, 1, 2)
        fresh = triple not in {tuple(map(int, t)) for t in endpoint.dump()}
        assert endpoint.insert(*triple) is fresh
        assert endpoint.insert(*triple) is False  # duplicate
        assert endpoint.delete(*triple) is True
        assert endpoint.delete(*triple) is False  # absent
        assert endpoint.n_triples == base

    def test_child_side_timeout_is_typed(self, endpoint):
        with pytest.raises(QueryTimeout):
            endpoint.evaluate(WORKLOAD[3], timeout=1e-9)
        assert endpoint.alive  # a timeout is not a death


class TestDeathAndRecovery:
    def test_kill_fails_pending_with_typed_error(self, tmp_path, small_graph):
        ep = _make_endpoint(tmp_path / "s", small_graph)
        try:
            acked = (3, 0, 4)
            inserted = ep.insert(*acked)
            future = ep.submit(WORKLOAD[2], timeout=30.0)
            ep.kill()  # genuine SIGKILL
            with pytest.raises(EndpointDown):
                future.result(timeout=10.0)
            assert not ep.alive
            with pytest.raises(EndpointDown):
                ep.submit(WORKLOAD[0], timeout=5.0)
            # Respawn replays the WAL: the acknowledged write survives.
            ep.restart()
            assert ep.incarnation == 1
            assert ep.health_check()
            if inserted:
                assert acked in {tuple(t) for t in ep.dump()}
            assert ep.stats()["transport"]["deaths"] >= 1
        finally:
            ep.shutdown(checkpoint=False)

    def test_sigterm_drains_in_flight_and_exits_zero(
        self, tmp_path, small_graph
    ):
        ep = _make_endpoint(tmp_path / "s", small_graph)
        try:
            expect = list(ep.evaluate(WORKLOAD[0], timeout=30.0))
            futures = [ep.submit(WORKLOAD[0], timeout=30.0) for _ in range(3)]
            time.sleep(0.3)  # let the child recv the requests
            os.kill(ep.pid, signal.SIGTERM)
            for future in futures:
                assert list(future.result(timeout=30.0)) == expect
            deadline = time.monotonic() + 30.0
            while ep.exitcode is None and time.monotonic() < deadline:
                time.sleep(0.02)
            assert ep.exitcode == 0
            report = verify_dynamic_dir(ep.directory)
            assert report["n_triples"] == small_graph.n_triples
        finally:
            ep.shutdown(checkpoint=False)

    def test_orderly_shutdown_checkpoints_and_exits_zero(
        self, tmp_path, small_graph
    ):
        ep = _make_endpoint(tmp_path / "s", small_graph)
        ep.insert(5, 1, 6)
        ep.shutdown(checkpoint=True)
        assert ep.exitcode == 0
        report = verify_dynamic_dir(ep.directory)
        assert report["n_triples"] == small_graph.n_triples + 1

    def test_spawn_fault_site_counts_and_recovers(self, tmp_path, small_graph):
        ep = _make_endpoint(tmp_path / "s", small_graph)
        try:
            ep.kill()
            fault = Fault("proc.spawn", probability=1.0, error=InjectedFault)
            with inject_faults(fault, seed=0):
                with pytest.raises(ShardProcessDied):
                    ep.restart()
            assert fault.fired == 1
            assert ep.stats()["transport"]["spawn_failures"] >= 1
            assert not ep.alive
            ep.restart()  # unfaulted: respawn succeeds
            assert ep.alive and ep.health_check()
        finally:
            ep.shutdown(checkpoint=False)

    def test_heartbeat_fault_site(self, tmp_path, small_graph):
        ep = _make_endpoint(tmp_path / "s", small_graph)
        try:
            fault = Fault(
                "proc.heartbeat", probability=1.0, error=InjectedFault
            )
            with inject_faults(fault, seed=0):
                assert ep.health_check() is False
            assert fault.fired == 1
            assert ep.stats()["transport"]["heartbeat_failures"] >= 1
            assert ep.health_check() is True  # cleared
        finally:
            ep.shutdown(checkpoint=False)


class TestProcessSharding:
    def test_coordinator_over_process_replicas(self, tmp_path):
        graph = random_graph(seed=23)
        reference = ShardedRingIndex.from_graph(graph, 2)
        ref_coord = ShardCoordinator(reference)
        try:
            expected = {
                i: list(ref_coord.evaluate(bgp, timeout=60.0))
                for i, bgp in enumerate(WORKLOAD)
            }
        finally:
            reference.shutdown()

        shards = ShardedRingIndex.create_durable(
            tmp_path / "cluster",
            graph,
            2,
            replicas=2,
            processes=True,
            broker_options={"workers": 1},
            buffer_threshold=256,
        )
        coord = ShardCoordinator(
            shards,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.005, seed=0),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout=0.05
            ),
            shard_timeout=30.0,
        )
        supervisor = ShardSupervisor(shards, interval=0.01)
        try:
            for i, bgp in enumerate(WORKLOAD):
                assert list(coord.evaluate(bgp, timeout=60.0)) == expected[i]

            # Genuine SIGKILL of shard 0's primary process: the answer
            # must stay complete and byte-identical via failover, with
            # the report naming the shard.
            victim = shards.endpoints[0]
            os.kill(victim.replicas[victim.primary].pid, signal.SIGKILL)
            result = coord.evaluate(WORKLOAD[2], partial=True, timeout=60.0)
            assert list(result) == expected[2]
            assert result.shards.complete
            assert not result.truncated
            assert victim.failovers >= 1

            # The supervisor delegates to ReplicaSet.repair: the dead
            # replica respawns through WAL recovery and catches up.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                supervisor.sweep()
                if all(r.alive for r in victim.replicas):
                    break
                time.sleep(0.05)
            assert all(r.alive for r in victim.replicas)
            assert not any(victim.stats()["dirty"])
            again = coord.evaluate(WORKLOAD[2], timeout=60.0)
            assert list(again) == expected[2]
        finally:
            shards.shutdown()

    def test_manifest_roundtrip_defaults_to_process_transport(self, tmp_path):
        graph = random_graph(n_triples=120, seed=29)
        shards = ShardedRingIndex.create_durable(
            tmp_path / "m",
            graph,
            2,
            replicas=1,
            processes=True,
            broker_options={"workers": 1},
            buffer_threshold=256,
        )
        shards.shutdown()
        recovered = ShardedRingIndex.recover(
            tmp_path / "m",
            broker_options={"workers": 1},
            buffer_threshold=256,
        )
        try:
            assert all(
                isinstance(ep, ProcessEndpoint) for ep in recovered.endpoints
            )
            assert recovered.n_triples == graph.n_triples
        finally:
            recovered.shutdown()
