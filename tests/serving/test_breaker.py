"""Retry/backoff policy and per-shard circuit breaker state machines.

Both take injectable clocks/seeds, so every transition here is tested
without sleeping.
"""

import pytest

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, RetryPolicy

pytestmark = pytest.mark.serving


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRetryPolicy:
    def test_yields_max_attempts_minus_one_delays(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        assert len(list(policy.delays())) == 3
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.01, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert list(policy.delays()) == pytest.approx([0.01, 0.02, 0.04])

    def test_delays_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=10.0, max_delay=0.25, jitter=0.0
        )
        assert max(policy.delays()) == pytest.approx(0.25)

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.01, multiplier=1.0, jitter=0.5, seed=42
        )
        delays = list(policy.delays())
        for d in delays:
            assert 0.01 <= d <= 0.01 * 1.5
        # Same seed, fresh policy: identical schedule (chaos drills rely
        # on this to be reproducible).
        again = RetryPolicy(
            max_attempts=5, base_delay=0.01, multiplier=1.0, jitter=0.5, seed=42
        )
        assert list(again.delays()) == delays

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-1.0)


class TestBreakerLifecycle:
    def make(self, **kw):
        clock = FakeClock()
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout", 1.0)
        return CircuitBreaker(clock=clock, **kw), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.stats()["opened"] == 1
        assert breaker.stats()["refused"] >= 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED, "non-consecutive failures must not trip"

    def test_half_open_after_reset_timeout(self):
        breaker, clock = self.make(failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        breaker, clock = self.make(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow(), "half-open must admit a probe"
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats()["closed"] == 1

    def test_probe_failure_reopens_for_a_fresh_window(self):
        breaker, clock = self.make(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats()["reopened"] == 1
        # The window restarts from the re-trip, not the original trip.
        clock.advance(0.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_probe_limit_bounds_concurrent_probes(self):
        breaker, clock = self.make(
            failure_threshold=1, reset_timeout=1.0, probe_limit=2
        )
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow(), "third concurrent probe must be refused"
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_successes_threshold(self):
        breaker, clock = self.make(
            failure_threshold=1,
            reset_timeout=1.0,
            probe_limit=3,
            probe_successes=2,
        )
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN, "one probe success is not enough"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_limit=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)

    def test_stats_shape(self):
        breaker, _ = self.make()
        stats = breaker.stats()
        for key in ("state", "consecutive_failures", "opened", "reopened",
                    "closed", "refused"):
            assert key in stats
