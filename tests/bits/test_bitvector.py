"""Unit and property tests for the plain rank/select bitvector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import BitVector


def naive_rank1(bits, i):
    return sum(bits[:i])


def naive_select1(bits, k):
    seen = 0
    for pos, b in enumerate(bits):
        seen += b
        if b and seen == k:
            return pos
    raise ValueError


class TestBasics:
    def test_empty(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.ones == 0
        assert bv.rank1(0) == 0

    def test_single_one(self):
        bv = BitVector([1])
        assert len(bv) == 1
        assert bv.ones == 1
        assert bv[0] == 1
        assert bv.rank1(1) == 1
        assert bv.select1(1) == 0

    def test_single_zero(self):
        bv = BitVector([0])
        assert bv.ones == 0
        assert bv.zeros == 1
        assert bv.select0(1) == 0

    def test_access_matches_input(self):
        bits = [1, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1]
        bv = BitVector(bits)
        assert [bv[i] for i in range(len(bits))] == bits

    def test_access_out_of_range(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv[2]
        with pytest.raises(IndexError):
            bv[-1]

    def test_rank_all_positions_small(self):
        bits = [1, 0, 0, 1, 1, 0, 1]
        bv = BitVector(bits)
        for i in range(len(bits) + 1):
            assert bv.rank1(i) == naive_rank1(bits, i)
            assert bv.rank0(i) == i - naive_rank1(bits, i)

    def test_rank_clamps(self):
        bv = BitVector([1, 1, 0])
        assert bv.rank1(100) == 2
        assert bv.rank1(-3) == 0

    def test_select_errors(self):
        bv = BitVector([1, 0, 1])
        with pytest.raises(ValueError):
            bv.select1(0)
        with pytest.raises(ValueError):
            bv.select1(3)
        with pytest.raises(ValueError):
            bv.select0(2)

    def test_select0(self):
        bits = [0, 1, 0, 0, 1, 0]
        bv = BitVector(bits)
        zero_positions = [i for i, b in enumerate(bits) if not b]
        for k, pos in enumerate(zero_positions, start=1):
            assert bv.select0(k) == pos

    def test_next_one(self):
        bv = BitVector([0, 0, 1, 0, 1, 0])
        assert bv.next_one(0) == 2
        assert bv.next_one(2) == 2
        assert bv.next_one(3) == 4
        assert bv.next_one(5) is None
        assert bv.next_one(100) is None

    def test_from_positions(self):
        bv = BitVector.from_positions(10, [0, 5, 9])
        assert bv.to_bool_array().tolist() == [
            True, False, False, False, False, True, False, False, False, True,
        ]

    def test_from_positions_out_of_range(self):
        with pytest.raises(ValueError):
            BitVector.from_positions(4, [4])

    def test_word_boundaries(self):
        # Ones exactly at multiples of 64 exercise the partial-word path.
        n = 64 * 5
        positions = [0, 63, 64, 127, 128, 200, n - 1]
        bv = BitVector.from_positions(n, positions)
        for k, pos in enumerate(positions, start=1):
            assert bv.select1(k) == pos
        for pos in positions:
            assert bv[pos] == 1
            assert bv.rank1(pos + 1) - bv.rank1(pos) == 1

    def test_superblock_boundaries(self):
        # 8 words per superblock -> boundary at bit 512.
        n = 2048
        rng = np.random.default_rng(7)
        arr = rng.random(n) < 0.3
        bv = BitVector.from_bool_array(arr)
        prefix = np.concatenate([[0], np.cumsum(arr)])
        for i in [0, 1, 63, 64, 511, 512, 513, 1024, 2047, 2048]:
            assert bv.rank1(i) == prefix[i]

    def test_size_accounting_scales(self):
        small = BitVector.from_bool_array(np.zeros(64, dtype=bool))
        big = BitVector.from_bool_array(np.zeros(64 * 1024, dtype=bool))
        assert big.size_in_bits() > small.size_in_bits()
        # Overhead should stay well below 100% of the payload.
        assert big.size_in_bits() < 2 * 64 * 1024


class TestRandomised:
    @pytest.mark.parametrize("density", [0.01, 0.5, 0.99])
    @pytest.mark.parametrize("n", [1, 63, 64, 65, 1000, 5000])
    def test_rank_select_roundtrip(self, n, density):
        rng = np.random.default_rng(n + int(density * 100))
        arr = rng.random(n) < density
        bv = BitVector.from_bool_array(arr)
        assert bv.ones == int(arr.sum())
        prefix = np.concatenate([[0], np.cumsum(arr)])
        for i in rng.integers(0, n + 1, size=50):
            assert bv.rank1(int(i)) == prefix[i]
        for k in range(1, bv.ones + 1, max(1, bv.ones // 40)):
            pos = bv.select1(k)
            assert arr[pos]
            assert bv.rank1(pos) == k - 1

    def test_select_rank_inverse(self):
        rng = np.random.default_rng(42)
        arr = rng.random(3000) < 0.2
        bv = BitVector.from_bool_array(arr)
        for k in range(1, bv.ones + 1):
            assert bv.rank1(bv.select1(k) + 1) == k


@given(st.lists(st.booleans(), max_size=400))
@settings(max_examples=60, deadline=None)
def test_property_rank_select_consistency(bits):
    bv = BitVector(bits)
    assert bv.ones == sum(bits)
    for i in range(0, len(bits) + 1, max(1, len(bits) // 10)):
        assert bv.rank1(i) == naive_rank1(bits, i)
    for k in range(1, sum(bits) + 1):
        assert bv.select1(k) == naive_select1(bits, k)


@given(st.integers(1, 300), st.integers(0, 2**32))
@settings(max_examples=40, deadline=None)
def test_property_rank0_rank1_partition(n, seed):
    rng = np.random.default_rng(seed)
    arr = rng.random(n) < 0.5
    bv = BitVector.from_bool_array(arr)
    for i in range(n + 1):
        assert bv.rank0(i) + bv.rank1(i) == i
