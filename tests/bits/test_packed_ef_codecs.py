"""Tests for PackedIntArray, EliasFano and the varint/delta codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import EliasFano, PackedIntArray
from repro.bits.codecs import (
    decode_triple_block,
    decode_varint,
    decode_varints,
    encode_triple_block,
    encode_varint,
    encode_varints,
)
from repro.bits.packed import bits_needed


class TestPackedIntArray:
    def test_bits_needed(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed(255) == 8
        assert bits_needed(256) == 9
        with pytest.raises(ValueError):
            bits_needed(-1)

    @pytest.mark.parametrize("width", [1, 3, 7, 13, 31, 37, 63, 64])
    def test_roundtrip_random(self, width):
        rng = np.random.default_rng(width)
        hi = (1 << width) - 1 if width < 64 else (1 << 64) - 1
        vals = [int(rng.integers(0, min(hi, 2**62)) + 1) % (hi + 1) for _ in range(200)]
        arr = PackedIntArray(vals, width=width)
        assert len(arr) == 200
        assert list(arr) == vals

    def test_auto_width(self):
        arr = PackedIntArray([3, 7, 1])
        assert arr.width == 3

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            PackedIntArray([8], width=3)

    def test_index_errors(self):
        arr = PackedIntArray([1, 2, 3])
        with pytest.raises(IndexError):
            arr[3]
        with pytest.raises(IndexError):
            arr[-1]

    def test_word_spanning_values(self):
        # width 13: values straddle 64-bit word boundaries regularly.
        vals = [i * 37 % 8192 for i in range(500)]
        arr = PackedIntArray(vals, width=13)
        assert arr.to_numpy().tolist() == vals

    def test_space_close_to_n_times_width(self):
        arr = PackedIntArray(list(range(1000)), width=10)
        assert arr.size_in_bits() <= 1000 * 10 + 64 + 128

    def test_empty(self):
        arr = PackedIntArray([])
        assert len(arr) == 0
        assert list(arr) == []


class TestEliasFano:
    def test_roundtrip(self):
        vals = [0, 0, 3, 5, 5, 9, 120, 130, 131]
        ef = EliasFano(vals)
        assert list(ef) == vals
        assert len(ef) == len(vals)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            EliasFano([3, 1])

    def test_rejects_outside_universe(self):
        with pytest.raises(ValueError):
            EliasFano([5], universe=5)

    def test_next_geq(self):
        ef = EliasFano([2, 4, 4, 10, 50])
        assert ef.next_geq(0) == (0, 2)
        assert ef.next_geq(3) == (1, 4)
        assert ef.next_geq(4) == (1, 4)
        assert ef.next_geq(11) == (4, 50)
        assert ef.next_geq(51) is None

    def test_rank_lt(self):
        ef = EliasFano([2, 4, 4, 10])
        assert ef.rank_lt(0) == 0
        assert ef.rank_lt(2) == 0
        assert ef.rank_lt(3) == 1
        assert ef.rank_lt(4) == 1
        assert ef.rank_lt(5) == 3
        assert ef.rank_lt(1000) == 4

    def test_dense_sequence(self):
        vals = list(range(1000))
        ef = EliasFano(vals)
        assert list(ef) == vals

    def test_sparse_sequence_compresses(self):
        vals = sorted(np.random.default_rng(0).integers(0, 2**40, 500).tolist())
        ef = EliasFano(vals, universe=2**40)
        # Roughly 2 + log2(U/m) ~ 33 bits per element; plain is 40.
        assert ef.size_in_bits() < 40 * 500

    def test_empty(self):
        ef = EliasFano([])
        assert len(ef) == 0
        assert ef.next_geq(0) is None


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**21, 2**40 + 7])
    def test_roundtrip_single(self, value):
        out = bytearray()
        encode_varint(value, out)
        decoded, pos = decode_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_varint(-1, bytearray())

    def test_roundtrip_stream(self):
        vals = [0, 5, 127, 128, 16384, 99, 2**30]
        assert decode_varints(encode_varints(vals)) == vals

    def test_small_values_one_byte(self):
        assert len(encode_varints(range(128))) == 128


class TestTripleBlocks:
    def test_roundtrip_sorted(self):
        triples = sorted(
            {(a % 5, b % 7, (a * b) % 11) for a in range(20) for b in range(10)}
        )
        assert decode_triple_block(encode_triple_block(triples)) == triples

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            encode_triple_block([(2, 0, 0), (1, 0, 0)])

    def test_empty_block(self):
        assert decode_triple_block(encode_triple_block([])) == []

    def test_shared_prefixes_compress(self):
        # Many triples share (s, p): deltas should be tiny.
        clustered = [(1, 1, o) for o in range(1000)]
        scattered = [(o, o + 1, o + 2) for o in range(0, 3000, 3)]
        assert len(encode_triple_block(clustered)) < len(
            encode_triple_block(scattered)
        )


@given(
    st.lists(
        st.tuples(
            st.integers(0, 50), st.integers(0, 50), st.integers(0, 50)
        ),
        max_size=100,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_triple_block_roundtrip(triples):
    triples = sorted(set(triples))
    assert decode_triple_block(encode_triple_block(triples)) == triples


@given(st.lists(st.integers(0, 2**50), min_size=0, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_varint_roundtrip(values):
    assert decode_varints(encode_varints(values)) == values


@given(st.lists(st.integers(0, 10_000), min_size=0, max_size=150))
@settings(max_examples=50, deadline=None)
def test_property_elias_fano_roundtrip(values):
    values = sorted(values)
    ef = EliasFano(values)
    assert list(ef) == values
    if values:
        # next_geq agrees with a linear scan for a few probes.
        for probe in [0, values[0], values[-1], values[-1] + 1]:
            expected = next(((i, v) for i, v in enumerate(values) if v >= probe), None)
            assert ef.next_geq(probe) == expected
