"""Tests for the RRR compressed bitvector (C-Ring substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import BitVector, RRRBitVector
from repro.bits.rrr import _BlockCode


class TestBlockCode:
    @pytest.mark.parametrize("block_size", [15, 31])
    def test_encode_decode_roundtrip_exhaustive_small(self, block_size):
        coder = _BlockCode(block_size)
        rng = np.random.default_rng(1)
        for _ in range(300):
            block = int(rng.integers(0, 1 << block_size))
            k, off = coder.encode(block)
            assert k == block.bit_count()
            assert coder.decode(k, off) == block

    def test_extreme_classes_have_zero_offset_bits(self):
        coder = _BlockCode(15)
        assert coder.offset_bits[0] == 0
        assert coder.offset_bits[15] == 0

    def test_offsets_are_dense(self):
        # All 15-bit blocks of class 2 must get distinct offsets below C(15,2).
        coder = _BlockCode(15)
        seen = set()
        for block in range(1 << 15):
            if block.bit_count() == 2:
                _, off = coder.encode(block)
                assert 0 <= off < 105  # C(15, 2)
                seen.add(off)
        assert len(seen) == 105


class TestRRRQueries:
    @pytest.mark.parametrize("block_size", [15, 31, 63])
    @pytest.mark.parametrize("density", [0.02, 0.5, 0.95])
    def test_matches_plain_bitvector(self, block_size, density):
        rng = np.random.default_rng(int(density * 100) + block_size)
        arr = rng.random(700) < density
        rrr = RRRBitVector.from_bool_array(arr, block_size)
        plain = BitVector.from_bool_array(arr)
        assert rrr.ones == plain.ones
        for i in range(0, 701, 13):
            assert rrr.rank1(i) == plain.rank1(i)
            assert rrr.rank0(i) == plain.rank0(i)
        for k in range(1, rrr.ones + 1, max(1, rrr.ones // 60)):
            assert rrr.select1(k) == plain.select1(k)
        for k in range(1, rrr.zeros + 1, max(1, rrr.zeros // 40)):
            assert rrr.select0(k) == plain.select0(k)
        for i in range(0, 700, 7):
            assert rrr[i] == plain[i]

    def test_empty(self):
        rrr = RRRBitVector([])
        assert len(rrr) == 0
        assert rrr.ones == 0

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            RRRBitVector([1, 0], block_size=10)

    def test_select_errors(self):
        rrr = RRRBitVector([1, 0, 1])
        with pytest.raises(ValueError):
            rrr.select1(0)
        with pytest.raises(ValueError):
            rrr.select1(3)

    def test_superblock_boundary(self):
        # block_size 15, 32 blocks per superblock -> boundary at bit 480.
        n = 15 * 32 * 3 + 7
        rng = np.random.default_rng(5)
        arr = rng.random(n) < 0.3
        rrr = RRRBitVector.from_bool_array(arr)
        prefix = np.concatenate([[0], np.cumsum(arr)])
        for i in [479, 480, 481, 960, n - 1, n]:
            assert rrr.rank1(i) == prefix[i]

    def test_to_bool_array_roundtrip(self):
        rng = np.random.default_rng(11)
        arr = rng.random(333) < 0.4
        rrr = RRRBitVector.from_bool_array(arr)
        assert np.array_equal(rrr.to_bool_array(), arr)


class TestCompression:
    def test_runny_input_compresses(self):
        """BWT-like runny bitvectors must shrink below plain size."""
        n = 50_000
        arr = np.zeros(n, dtype=bool)
        arr[n // 2:] = True  # one long run of zeros, one of ones
        rrr = RRRBitVector.from_bool_array(arr)
        plain = BitVector.from_bool_array(arr)
        assert rrr.size_in_bits() < plain.size_in_bits() / 2

    def test_larger_blocks_compress_runny_input_better(self):
        n = 60_000
        rng = np.random.default_rng(3)
        # Markov-ish runs.
        arr = np.zeros(n, dtype=bool)
        state = False
        for i in range(n):
            if rng.random() < 0.01:
                state = not state
            arr[i] = state
        small = RRRBitVector.from_bool_array(arr, 15)
        large = RRRBitVector.from_bool_array(arr, 63)
        assert large.size_in_bits() < small.size_in_bits()

    def test_random_input_does_not_explode(self):
        rng = np.random.default_rng(9)
        arr = rng.random(30_000) < 0.5
        rrr = RRRBitVector.from_bool_array(arr)
        # Incompressible input should cost at most ~1.6 bits per bit here.
        assert rrr.size_in_bits() < 1.6 * len(arr)


@given(st.lists(st.booleans(), min_size=0, max_size=200), st.sampled_from([15, 31]))
@settings(max_examples=50, deadline=None)
def test_property_rrr_equals_naive(bits, block_size):
    rrr = RRRBitVector(bits, block_size)
    prefix = 0
    for i, b in enumerate(bits):
        assert rrr[i] == int(b)
        assert rrr.rank1(i) == prefix
        prefix += b
    assert rrr.rank1(len(bits)) == prefix
