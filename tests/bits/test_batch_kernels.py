"""Property tests: every BitVector batch kernel agrees with its scalar.

The batch kernels (``rank1_many`` / ``rank0_many`` / ``select1_many`` /
``access_many``) are independent vectorised implementations, not loops
over the scalars — so agreement is a real invariant, checked here over
random bit patterns including the structural edge cases (empty vector,
word boundaries at 64/512, all-zeros, all-ones, out-of-range clamps,
empty query arrays).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.bitvector import BitVector


def _vector(bits):
    return BitVector(bits), len(bits)


@given(st.lists(st.booleans(), max_size=600))
@settings(max_examples=60, deadline=None)
def test_rank1_many_matches_scalar(bits):
    bv, n = _vector(bits)
    # Every boundary plus out-of-range positions (clamped by contract).
    positions = np.arange(-2, n + 3)
    expected = [bv.rank1(max(0, min(int(i), n))) for i in positions]
    assert bv.rank1_many(positions).tolist() == expected
    assert bv.rank0_many(positions).tolist() == [
        max(0, min(int(i), n)) - e for i, e in zip(positions, expected)
    ]


@given(st.lists(st.booleans(), min_size=1, max_size=600))
@settings(max_examples=60, deadline=None)
def test_select1_many_matches_scalar(bits):
    bv, _ = _vector(bits)
    if bv.ones == 0:
        return
    ks = np.arange(1, bv.ones + 1)
    expected = [bv.select1(int(k)) for k in ks]
    assert bv.select1_many(ks).tolist() == expected


@given(st.lists(st.booleans(), min_size=1, max_size=600))
@settings(max_examples=60, deadline=None)
def test_access_many_matches_getitem(bits):
    bv, n = _vector(bits)
    positions = np.arange(n)
    assert bv.access_many(positions).tolist() == [bv[i] for i in range(n)]


@given(st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_batch_kernels_on_word_boundaries(seed):
    """Sizes straddling word (64) and superblock (512) boundaries."""
    rng = np.random.default_rng(seed)
    for n in (63, 64, 65, 511, 512, 513):
        bv = BitVector.from_bool_array(rng.random(n) < 0.3)
        positions = rng.integers(0, n + 1, size=50)
        assert bv.rank1_many(positions).tolist() == [
            bv.rank1(int(i)) for i in positions
        ]
        if bv.ones:
            ks = rng.integers(1, bv.ones + 1, size=50)
            assert bv.select1_many(ks).tolist() == [
                bv.select1(int(k)) for k in ks
            ]


@pytest.mark.parametrize("n", [0, 1, 64, 200])
def test_batch_kernels_empty_queries(n):
    bv = BitVector([1] * n)
    empty = np.array([], dtype=np.int64)
    assert bv.rank1_many(empty).size == 0
    assert bv.rank0_many(empty).size == 0
    assert bv.select1_many(empty).size == 0
    assert bv.access_many(empty).size == 0


def test_batch_kernels_degenerate_vectors():
    zeros = BitVector([0] * 130)
    ones = BitVector([1] * 130)
    positions = np.array([0, 1, 64, 129, 130])
    assert zeros.rank1_many(positions).tolist() == [0] * 5
    assert ones.rank1_many(positions).tolist() == positions.tolist()
    assert ones.select1_many(np.arange(1, 131)).tolist() == list(range(130))
    assert zeros.access_many(np.arange(130)).sum() == 0
    assert ones.access_many(np.arange(130)).sum() == 130


def test_empty_vector_batch_kernels():
    bv = BitVector([])
    assert bv.rank1_many(np.array([0, 1, -1])).tolist() == [0, 0, 0]


def test_construction_accepts_arrays_and_buffers():
    """No Python-list round-trip required (satellite b)."""
    rng = np.random.default_rng(3)
    arr = rng.random(777) < 0.5
    reference = BitVector(list(map(int, arr)))
    for source in (
        arr,                       # bool ndarray
        arr.astype(np.uint8),      # integer ndarray
        memoryview(arr.astype(np.uint8).tobytes()),  # raw buffer
        (int(b) for b in arr),     # generator (no __len__)
    ):
        bv = BitVector(source)
        assert len(bv) == len(reference)
        assert bv.ones == reference.ones
        assert bv.to_bool_array().tolist() == reference.to_bool_array().tolist()
