"""Shared-memory ring export/attach: zero-copy, fidelity, lifetime.

The attach path must hand back a *fully functional* ring whose arrays
are literal views into the shared segment (zero-copy is checked at the
pointer level, not inferred from RSS), answering every query exactly
like the exporting ring — and the unexportable layouts (C-Ring, RRR,
Elias–Fano) must refuse loudly at export time, never mis-attach.
"""

import pickle

import numpy as np
import pytest

from repro.core import CompressedRingIndex, RingIndex
from repro.core.iterators import RingIterator
from repro.core.ltj import LeapfrogTrieJoin
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import random_graph
from repro.graph.model import O, P, S
from repro.parallel.shm import (
    ShmExportError,
    attach_ring,
    detach_ring,
    export_ring,
)

X, Y, Z = Var("x"), Var("y"), Var("z")


@pytest.fixture(scope="module")
def graph():
    return random_graph(500, n_nodes=30, n_predicates=3, seed=3)


@pytest.fixture(scope="module")
def index(graph):
    return RingIndex(graph)


@pytest.fixture()
def shared(index):
    shared = export_ring(index.ring)
    yield shared
    shared.close()


def _segment_span(shm) -> tuple[int, int]:
    address = np.frombuffer(shm.buf, dtype=np.uint8).__array_interface__[
        "data"
    ][0]
    return address, address + shm.size


def test_handle_is_picklable(shared):
    handle = pickle.loads(pickle.dumps(shared.handle))
    assert handle.name == shared.handle.name
    assert handle.arrays == shared.handle.arrays


def test_attached_arrays_are_views_into_the_segment(index, shared):
    ring = attach_ring(shared.handle)
    try:
        lo, hi = _segment_span(ring._shm)
        seen = 0
        for zone in (S, P, O):
            for bv in ring.zone_sequence(zone)._bits:
                for arr in (bv._words, bv._super, bv._rel):
                    address = arr.__array_interface__["data"][0]
                    assert lo <= address and address + arr.nbytes <= hi, (
                        "attached array was copied out of the segment"
                    )
                    assert not arr.flags.writeable
                    seen += 1
        for attr in (S, P, O):
            arr = ring.counts(attr).raw()
            address = arr.__array_interface__["data"][0]
            assert lo <= address and address + arr.nbytes <= hi
            seen += 1
        assert seen >= 12  # 3 zones x levels x 3 arrays + 3 C arrays
    finally:
        detach_ring(ring)


def test_attached_ring_answers_identically(graph, index, shared):
    ring = attach_ring(shared.handle)
    try:
        assert ring.n == index.ring.n
        for i in (0, 1, graph.n_triples - 1):
            assert ring.triple(i) == index.ring.triple(i)
        engine = LeapfrogTrieJoin(
            lambda t: RingIterator(ring, t), ring.n
        )
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]
        )
        reference = list(index.evaluate(bgp))
        got = list(engine.evaluate(bgp))
        assert got == reference
    finally:
        detach_ring(ring)


def test_attached_ring_has_its_own_memo(index, shared):
    ring = attach_ring(shared.handle)
    try:
        assert ring.leap_generation == 0
        assert ring.leap_memo_stats()["entries"] == 0
        assert ring._leap_memo is not index.ring._leap_memo
    finally:
        detach_ring(ring)


def test_compressed_ring_refuses_export(graph):
    compressed = CompressedRingIndex(graph)
    with pytest.raises(ShmExportError):
        export_ring(compressed.ring)


def test_close_unlinks_the_segment(index):
    from multiprocessing import shared_memory

    shared = export_ring(index.ring)
    name = shared.handle.name
    shared.close()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    shared.close()  # idempotent
