"""Generic task pool (:class:`repro.parallel.pool.TaskPool`).

The contract under test: arbitrary picklable payloads run through one
module-level executor, results return in payload order, a *raising*
task surfaces as :class:`TaskError` only after the whole batch settled,
and a *killed* worker's tasks are rescued inline (then the worker is
respawned for the next batch).  The executor is re-resolved from its
module per task, so an attribute patched before the pool forks — the
fault-injection idiom — fires inside the workers too.
"""

import sys

import pytest

from repro.parallel import TaskError, TaskPool
from repro.parallel.pool import PoolUnavailable

EXECUTOR = "tests.parallel.test_taskpool:_echo_task"


def _echo_task(payload):
    if payload.get("raise"):
        raise ValueError(f"boom on {payload['value']}")
    return {"double": payload["value"] * 2}


def _tripled_task(payload):
    return {"triple": payload["value"] * 3}


@pytest.fixture
def pool():
    p = TaskPool(EXECUTOR, workers=2)
    yield p
    p.close()


class TestRun:
    def test_results_in_payload_order(self, pool):
        out = pool.run([{"value": v} for v in range(7)])
        assert [r["double"] for r in out] == [0, 2, 4, 6, 8, 10, 12]
        stats = pool.stats()
        assert stats["dispatched"] == 7
        assert stats["completed"] == 7
        assert stats["serial_rescues"] == 0
        assert stats["batches"] == 1

    def test_multiple_batches_reuse_workers(self, pool):
        first = pool.run([{"value": 1}, {"value": 2}])
        second = pool.run([{"value": 10}])
        assert [r["double"] for r in first] == [2, 4]
        assert second[0]["double"] == 20
        assert pool.stats()["batches"] == 2

    def test_empty_batch(self, pool):
        assert pool.run([]) == []


class TestFailureModel:
    def test_raising_task_is_typed_after_batch_settles(self, pool):
        payloads = [{"value": 0}, {"value": 1, "raise": True}, {"value": 2}]
        with pytest.raises(TaskError, match="task 1 failed.*boom on 1"):
            pool.run(payloads)
        # Every task settled before the raise: the pool is still whole
        # and the next batch runs clean.
        out = pool.run([{"value": 5}])
        assert out[0]["double"] == 10

    def test_killed_worker_is_rescued_inline(self, pool):
        pool._kill_after_dispatch = 0
        out = pool.run([{"value": v} for v in range(6)])
        assert [r["double"] for r in out] == [0, 2, 4, 6, 8, 10]
        stats = pool.stats()
        assert stats["serial_rescues"] >= 1
        assert stats["respawns"] >= 1
        # The respawned worker serves the next batch at full strength.
        assert pool.alive_workers == 2
        assert pool.run([{"value": 9}])[0]["double"] == 18

    def test_rescue_of_raising_task_still_raises(self, pool):
        pool._kill_after_dispatch = 0
        with pytest.raises(TaskError):
            pool.run([{"value": v, "raise": v == 1} for v in range(6)])

    def test_closed_pool_refuses_work(self):
        p = TaskPool(EXECUTOR, workers=1)
        p.close()
        with pytest.raises(PoolUnavailable):
            p.run([{"value": 1}])
        p.close()  # idempotent


class TestExecutorResolution:
    def test_patched_attribute_fires_in_forked_workers(self, monkeypatch):
        # The fault-injection idiom: patch the module attribute *before*
        # the pool forks; per-task resolution makes workers call the
        # patched function, not a captured original.
        monkeypatch.setattr(
            sys.modules[__name__], "_echo_task", _tripled_task
        )
        p = TaskPool(EXECUTOR, workers=2)
        try:
            out = p.run([{"value": v} for v in range(4)])
        finally:
            p.close()
        assert [r["triple"] for r in out] == [0, 3, 6, 9]


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            TaskPool(EXECUTOR, workers=0)

    def test_executor_spec_needs_colon(self):
        with pytest.raises(ValueError):
            TaskPool("repro.graph.bulkload", workers=1)
