"""Property test: the parallel driver is indistinguishable from serial.

Hypothesis drives random BGPs and slice counts through both drivers and
demands the exact solution multiset (in fact the exact *ordered* rows),
and — under an injected op-budget exhaustion with ``partial=True`` — a
consistent prefix of the serial enumeration.  The slice count is
mutated per example: the driver reads it per query, so one pool serves
every partition width.
"""

import collections

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import random_graph
from repro.parallel import ParallelRingIndex
from repro.reliability.budget import ResourceBudget

pytestmark = pytest.mark.reliability

N_NODES = 40
N_PREDICATES = 3
VARS = [Var("x"), Var("y"), Var("z"), Var("w")]


@pytest.fixture(scope="module")
def graph():
    return random_graph(1200, n_nodes=N_NODES, n_predicates=N_PREDICATES, seed=11)


@pytest.fixture(scope="module")
def serial(graph):
    return RingIndex(graph)


@pytest.fixture(scope="module")
def parallel(graph):
    index = ParallelRingIndex(graph, workers=2, num_slices=4)
    yield index
    index.close()


def term(draw):
    """A subject/object position: usually a variable, sometimes a node."""
    if draw(st.integers(0, 3)) == 0:
        return draw(st.integers(0, N_NODES - 1))
    return draw(st.sampled_from(VARS))


@st.composite
def bgps(draw):
    n_patterns = draw(st.integers(1, 3))
    patterns = []
    for _ in range(n_patterns):
        patterns.append(
            TriplePattern(
                term(draw),
                draw(st.integers(0, N_PREDICATES - 1)),
                term(draw),
            )
        )
    return BasicGraphPattern(patterns)


def _multiset(rows):
    return collections.Counter(frozenset(mu.items()) for mu in rows)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(bgp=bgps(), num_slices=st.integers(2, 6))
def test_parallel_matches_serial_multiset(serial, parallel, bgp, num_slices):
    parallel._num_slices = num_slices
    reference = list(serial.evaluate(bgp))
    rows = list(parallel.evaluate(bgp))
    assert _multiset(rows) == _multiset(reference)
    assert rows == reference  # in fact the promise is ordered identity


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    bgp=bgps(),
    num_slices=st.integers(2, 6),
    max_ops=st.integers(1, 4000),
)
def test_injected_timeout_yields_a_consistent_prefix(
    serial, parallel, bgp, num_slices, max_ops
):
    parallel._num_slices = num_slices
    reference = list(serial.evaluate(bgp))
    result = parallel.evaluate(
        bgp,
        budget=ResourceBudget(max_ops=max_ops, tick_mask=0),
        partial=True,
    )
    rows = list(result)
    assert rows == reference[: len(rows)], (
        "a truncated parallel answer must be a prefix of the serial one"
    )
    if not result.truncated:
        assert rows == reference
