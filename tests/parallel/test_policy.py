"""Parallel execution under the dynamic variable-selection policies.

The driver pins the policy's depth-0 choice (``first_var``), slices its
domain, and lets every worker re-rank deeper depths from the shared
ring state — so for every policy the merged slices must stay
byte-identical to the serial same-policy enumeration, the rescue paths
included.
"""

import pytest

from repro.core import RingIndex
from repro.core.ltj import POLICIES
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import skewed_graph
from repro.parallel import ParallelRingIndex

S, A, B = Var("s"), Var("a"), Var("b")

TWO_WING = BasicGraphPattern(
    [TriplePattern(S, 0, A), TriplePattern(S, 1, B), TriplePattern(A, 2, B)]
)
STAR = BasicGraphPattern([TriplePattern(S, 0, A), TriplePattern(S, 1, B)])
LONELY_ONLY = BasicGraphPattern([TriplePattern(S, 0, A)])


@pytest.fixture(scope="module")
def graph():
    return skewed_graph(n_hubs=16, fan=8, noise=150, seed=4)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize(
    "bgp", [TWO_WING, STAR, LONELY_ONLY],
    ids=["two-wing", "star", "lonely-only"],
)
def test_parallel_matches_serial_per_policy(graph, policy, bgp):
    serial = [dict(mu) for mu in RingIndex(graph, policy=policy).evaluate(bgp)]
    with ParallelRingIndex(graph, workers=2, num_slices=4,
                           policy=policy) as parallel:
        rows = [dict(mu) for mu in parallel.evaluate(bgp)]
    assert rows == serial


@pytest.mark.parametrize("policy", [p for p in POLICIES if p != "static"])
def test_serial_fallback_matches_pool_path(graph, policy):
    # With no pool (workers force-degraded via num_slices=0 equivalent:
    # a pool-less index), the rescue path must produce the same bytes.
    serial = [
        dict(mu)
        for mu in RingIndex(graph, policy=policy).evaluate(TWO_WING)
    ]
    with ParallelRingIndex(graph, workers=2, num_slices=4,
                           policy=policy) as parallel:
        pooled = [dict(mu) for mu in parallel.evaluate(TWO_WING)]
        if parallel.pool is not None:
            parallel.pool.close()
            parallel._pool = None
        rescued = [dict(mu) for mu in parallel.evaluate(TWO_WING)]
    assert pooled == serial
    assert rescued == serial
