"""The pool-backed index: identity, budgets, rescue, degradation.

``ParallelRingIndex`` promises the *ordered* serial answer — not just
the same set — under every outcome the serial engine can have: clean
completion, op-budget exhaustion, wall-clock timeout, external
cancellation (all with correct ``partial=True`` prefixes), a worker
SIGKILLed mid-query, and a pool that never came up at all.
"""

import os

import pytest

from repro.core import QueryTimeout, RingIndex
from repro.core.interface import QueryCancelled, QueryExecutionError
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import random_graph
from repro.parallel import ParallelRingIndex
from repro.reliability.budget import CancellationToken, ResourceBudget
from repro.reliability.faults import Fault, InjectedFault, inject_faults

X, Y, Z = Var("x"), Var("y"), Var("z")

PATH = BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)])
TRIANGLE = BasicGraphPattern(
    [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z), TriplePattern(Z, 0, X)]
)
STAR = BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(X, 1, Z)])
LONELY_ONLY = BasicGraphPattern([TriplePattern(X, 0, Y)])


@pytest.fixture(scope="module")
def graph():
    return random_graph(2000, n_nodes=50, n_predicates=3, seed=7)


@pytest.fixture(scope="module")
def serial(graph):
    return RingIndex(graph)


@pytest.fixture(scope="module")
def parallel(graph):
    index = ParallelRingIndex(graph, workers=2, num_slices=4)
    yield index
    index.close()


@pytest.mark.parametrize(
    "bgp", [PATH, TRIANGLE, STAR, LONELY_ONLY],
    ids=["path", "triangle", "star", "lonely-only"],
)
def test_ordered_identity_with_serial(serial, parallel, bgp):
    """Byte-identical *ordered* rows, not merely the same multiset."""
    assert list(parallel.evaluate(bgp)) == list(serial.evaluate(bgp))


def test_lonely_only_query_bypasses_the_pool(parallel):
    before = parallel.pool_stats()["queries"]
    parallel.evaluate(LONELY_ONLY)
    assert parallel.pool_stats()["queries"] == before, (
        "a no-shared-variable query should run serially, not fan out"
    )


def test_fanout_actually_happens(parallel):
    before = parallel.pool_stats()["dispatched"]
    parallel.evaluate(PATH)
    assert parallel.pool_stats()["dispatched"] >= before + 2


def test_op_budget_exhaustion_is_a_timeout(parallel):
    with pytest.raises(QueryTimeout):
        parallel.evaluate(PATH, budget=ResourceBudget(max_ops=40, tick_mask=0))


def test_op_budget_partial_prefix(serial, parallel):
    reference = list(serial.evaluate(PATH))
    result = parallel.evaluate(
        PATH, budget=ResourceBudget(max_ops=3000, tick_mask=0), partial=True
    )
    assert result.truncated
    assert result.interrupted_by == "timeout"
    assert list(result) == reference[: len(result)]
    assert len(result) < len(reference)


def test_zero_timeout_fires(parallel):
    with pytest.raises(QueryTimeout):
        parallel.evaluate(PATH, timeout=0.0)


def test_precancelled_token_is_cancellation(parallel):
    token = CancellationToken()
    token.cancel()
    with pytest.raises(QueryCancelled):
        parallel.evaluate(PATH, budget=ResourceBudget(token=token))
    result = parallel.evaluate(
        PATH, budget=ResourceBudget(token=token), partial=True
    )
    assert result.truncated
    assert result.interrupted_by == "cancelled"


def test_worker_ops_fold_into_parent_budget(parallel):
    budget = ResourceBudget(tick_mask=0)
    parallel.evaluate(PATH, budget=budget)
    assert budget.ops > 0, "worker op counts must reach the parent governor"


def test_var_order_must_cover_shared_variables(parallel):
    with pytest.raises(ValueError):
        parallel.evaluate(PATH, var_order=[X])


def test_explicit_var_order_matches_serial(serial, parallel):
    order = [Y, X, Z]
    assert list(parallel.evaluate(PATH, var_order=order)) == list(
        serial.evaluate(PATH, var_order=order)
    )


def test_stats_report_slices(parallel):
    stats: dict = {}
    parallel.evaluate(PATH, stats=stats)
    assert stats.get("slices", 0) >= 2


def test_killed_worker_is_rescued_exactly(graph, serial):
    index = ParallelRingIndex(graph, workers=2, num_slices=4)
    try:
        reference = list(serial.evaluate(TRIANGLE))
        index.pool._kill_after_dispatch = 0
        assert list(index.evaluate(TRIANGLE)) == reference
        stats = index.pool_stats()
        assert stats["serial_rescues"] >= 1
        assert stats["respawns"] >= 1
        # The healed pool keeps serving exactly.
        assert list(index.evaluate(TRIANGLE)) == reference
        assert index.pool.alive_workers == 2
    finally:
        index.close()


def test_spawn_fault_degrades_to_serial(graph, serial):
    with inject_faults(
        Fault("parallel.spawn", probability=1.0, error=InjectedFault)
    ):
        index = ParallelRingIndex(graph, workers=2)
    try:
        assert index.pool is None
        assert index.pool_stats() == {}
        assert list(index.evaluate(PATH)) == list(serial.evaluate(PATH))
    finally:
        index.close()


def test_merge_fault_is_a_typed_error(graph):
    index = ParallelRingIndex(graph, workers=2, num_slices=4)
    try:
        with inject_faults(
            Fault("parallel.slice_merge", probability=1.0, error=InjectedFault)
        ):
            with pytest.raises(QueryExecutionError):
                index.evaluate(PATH)
    finally:
        index.close()


def test_pool_stats_shape(parallel):
    stats = parallel.pool_stats()
    for key in (
        "workers", "alive_workers", "busy_seconds", "queries",
        "dispatched", "completed", "respawns", "serial_rescues",
        "spawn_failures",
    ):
        assert key in stats
    assert stats["workers"] == 2
    assert len(stats["busy_seconds"]) == 2
    assert sum(stats["busy_seconds"]) > 0


def test_close_is_idempotent_and_degrades(graph, serial):
    index = ParallelRingIndex(graph, workers=2)
    index.close()
    index.close()


@pytest.mark.skipif(
    os.environ.get("REPRO_PARALLEL_START_METHOD", "fork") != "fork",
    reason="worker attach counting relies on the default start method",
)
def test_attach_is_zero_copy_shells_only():
    """The handle a worker attaches from is tiny and *constant-size* —
    index data never rides through pickling (the segment carries it)."""
    import pickle

    sizes = {}
    for n in (2000, 16000):
        big = random_graph(n, n_nodes=n // 10, n_predicates=8, seed=7)
        index = ParallelRingIndex(big, workers=1)
        try:
            sizes[n] = (
                len(pickle.dumps(index._shared.handle)),
                index._shared.size,
            )
        finally:
            index.close()
    (small_handle, small_seg), (big_handle, big_seg) = sizes[2000], sizes[16000]
    assert big_seg > 4 * small_seg, "segment must scale with the index"
    assert big_handle < 2 * small_handle, (
        "handle must stay metadata-sized while the index grows"
    )
    assert big_seg > 10 * big_handle
