"""Cross-system correctness: every baseline must agree with brute force.

This is the load-bearing guarantee behind Tables 1 and 2: all systems
answer identically; only space and time differ.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BlazegraphIndex,
    CyclicUnidirectionalIndex,
    FlatTrieIndex,
    JenaIndex,
    JenaLTJIndex,
    QdagIndex,
    RDF3XIndex,
    UnsupportedQueryError,
    VirtuosoIndex,
)
from repro.core import CompressedRingIndex, RingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var, parse_bgp
from repro.graph.dataset import Graph
from repro.graph.generators import clique_graph, nobel_graph, random_graph
from tests.util import as_solution_set, naive_evaluate

X, Y, Z, W = Var("x"), Var("y"), Var("z"), Var("w")

ALL_SYSTEMS = [
    RingIndex,
    CompressedRingIndex,
    FlatTrieIndex,
    JenaIndex,
    JenaLTJIndex,
    BlazegraphIndex,
    RDF3XIndex,
    VirtuosoIndex,
    CyclicUnidirectionalIndex,
]

NOBEL_QUERIES = [
    "?x adv ?y",
    "Nobel win ?x",
    "?x adv Bohr",
    "?x ?p Bohr",
    "Nobel ?p ?x",
    "?x ?p ?y",
    "?x nom ?y . ?x win ?z . ?z adv ?y",
    "?x adv ?y . ?y adv ?z",
    "?x adv ?y . Nobel win ?y",
    "?x ?p ?y . ?y ?q ?z",
    "Bohr adv Thomson",
    "Thomson adv Bohr",
]


@pytest.fixture(scope="module")
def nobel():
    return nobel_graph()


@pytest.fixture(scope="module", params=ALL_SYSTEMS, ids=lambda c: c.name)
def system(request, nobel):
    return request.param(nobel)


class TestNobelAgreement:
    @pytest.mark.parametrize("query", NOBEL_QUERIES)
    def test_matches_naive(self, system, nobel, query):
        bgp = nobel.encode_bgp(parse_bgp(query))
        assert bgp is not None
        got = as_solution_set(system.evaluate(bgp))
        assert got == naive_evaluate(nobel, bgp), query

    def test_limit_respected(self, system):
        out = system.evaluate("?x ?p ?y", limit=3)
        assert len(out) == 3

    def test_space_positive(self, system):
        assert system.size_in_bits() > 0
        assert system.bytes_per_triple() > 0


class TestRandomGraphAgreement:
    QUERIES = [
        BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]),
        BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
             TriplePattern(Z, 0, X)]
        ),
        BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(X, 1, Z)]),
        BasicGraphPattern([TriplePattern(X, Var("p"), 3)]),
        BasicGraphPattern([TriplePattern(2, Var("p"), Var("o"))]),
    ]

    @pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_agreement(self, cls, seed):
        g = random_graph(120, n_nodes=10, n_predicates=3, seed=seed)
        index = cls(g)
        for bgp in self.QUERIES:
            assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(
                g, bgp
            ), (cls.name, bgp)


class TestQdag:
    def test_triangle(self):
        g = clique_graph(5)
        index = QdagIndex(g)
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
             TriplePattern(Z, 0, X)]
        )
        assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(g, bgp)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_constant_predicate_joins(self, seed):
        g = random_graph(150, n_nodes=12, n_predicates=3, seed=seed)
        index = QdagIndex(g)
        queries = [
            BasicGraphPattern([TriplePattern(X, 0, Y)]),
            BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]),
            BasicGraphPattern(
                [TriplePattern(X, 0, Y), TriplePattern(X, 1, Z),
                 TriplePattern(Z, 2, W)]
            ),
        ]
        for bgp in queries:
            assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(
                g, bgp
            ), bgp

    def test_missing_predicate_empty(self):
        g = random_graph(50, n_nodes=8, n_predicates=2, seed=0)
        index = QdagIndex(g)
        # Predicate id 1 exists; query on a pattern mixing present and
        # (possibly) absent predicate never crashes.
        bgp = BasicGraphPattern([TriplePattern(X, 1, Y)])
        assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(g, bgp)

    def test_rejects_constants_in_s_or_o(self):
        g = clique_graph(4)
        index = QdagIndex(g)
        with pytest.raises(UnsupportedQueryError):
            index.evaluate(BasicGraphPattern([TriplePattern(1, 0, Y)]))

    def test_rejects_variable_predicate(self):
        g = clique_graph(4)
        index = QdagIndex(g)
        with pytest.raises(UnsupportedQueryError):
            index.evaluate(BasicGraphPattern([TriplePattern(X, Var("p"), Y)]))

    def test_rejects_repeated_variable(self):
        g = clique_graph(4)
        index = QdagIndex(g)
        with pytest.raises(UnsupportedQueryError):
            index.evaluate(BasicGraphPattern([TriplePattern(X, 0, X)]))

    def test_succinct_space(self):
        g = random_graph(2000, n_nodes=64, n_predicates=4, seed=1)
        assert QdagIndex(g).size_in_bits() < FlatTrieIndex(g).size_in_bits()


class TestSpaceOrdering:
    """The qualitative space ranking of Table 1 must hold."""

    @pytest.fixture(scope="class")
    def graph(self):
        from repro.graph.generators import wikidata_like

        return wikidata_like(3000, seed=0)

    def test_ring_much_smaller_than_flat(self, graph):
        assert RingIndex(graph).size_in_bits() * 3 < FlatTrieIndex(
            graph
        ).size_in_bits()

    def test_cring_smaller_than_ring(self, graph):
        assert (
            CompressedRingIndex(graph).size_in_bits()
            < RingIndex(graph).size_in_bits()
        )

    def test_ring_smaller_than_btree_systems(self, graph):
        ring = RingIndex(graph).size_in_bits()
        assert ring < JenaIndex(graph).size_in_bits()
        assert ring < JenaLTJIndex(graph).size_in_bits()

    def test_jena_ltj_double_jena(self, graph):
        # 6 orders vs 3 orders: the paper reports exactly 2x.
        jena = JenaIndex(graph).size_in_bits()
        ltj = JenaLTJIndex(graph).size_in_bits()
        assert 1.8 < ltj / jena < 2.2

    def test_cyclic_two_rings_double_ring(self, graph):
        one = RingIndex(graph).size_in_bits()
        two = CyclicUnidirectionalIndex(graph).size_in_bits()
        assert two > 1.7 * one


@st.composite
def small_case(draw):
    triples = draw(
        st.sets(
            st.tuples(st.integers(0, 4), st.integers(0, 1), st.integers(0, 4)),
            min_size=1,
            max_size=20,
        )
    )
    graph = Graph(np.array(sorted(triples)), n_nodes=5, n_predicates=2)
    shape = draw(st.sampled_from(["path", "star", "triangle", "single"]))
    if shape == "path":
        bgp = BasicGraphPattern(
            [TriplePattern(X, draw(st.integers(0, 1)), Y),
             TriplePattern(Y, draw(st.integers(0, 1)), Z)]
        )
    elif shape == "star":
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(X, 1, Z)]
        )
    elif shape == "triangle":
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
             TriplePattern(Z, 0, X)]
        )
    else:
        bgp = BasicGraphPattern([TriplePattern(X, 0, Y)])
    return graph, bgp


@given(small_case())
@settings(max_examples=25, deadline=None)
def test_property_all_wco_systems_agree(case):
    graph, bgp = case
    expected = naive_evaluate(graph, bgp)
    for cls in [RingIndex, FlatTrieIndex, JenaLTJIndex,
                CyclicUnidirectionalIndex, QdagIndex]:
        index = cls(graph)
        assert as_solution_set(index.evaluate(bgp)) == expected, cls.name


@given(small_case())
@settings(max_examples=25, deadline=None)
def test_property_all_pairwise_systems_agree(case):
    graph, bgp = case
    expected = naive_evaluate(graph, bgp)
    for cls in [JenaIndex, BlazegraphIndex, RDF3XIndex, VirtuosoIndex]:
        index = cls(graph)
        assert as_solution_set(index.evaluate(bgp)) == expected, cls.name
