"""Tests for the baseline substrates: sorted orders, B+tree, k²-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.btree import BPlusTree, BTreeOrder
from repro.baselines.qdag import K2Tree
from repro.baselines.sorted_orders import ALL_ORDERS, SortedOrder
from repro.graph.dataset import Graph
from repro.graph.generators import nobel_graph, random_graph
from repro.graph.model import O, P, S


class TestSortedOrder:
    @pytest.mark.parametrize("perm", ALL_ORDERS)
    def test_prefix_ranges_count_matches(self, perm):
        g = random_graph(150, n_nodes=10, n_predicates=4, seed=1)
        order = SortedOrder(g, perm)
        triples = [tuple(t) for t in g.triples]
        rng = np.random.default_rng(0)
        for _ in range(40):
            depth = int(rng.integers(0, 4))
            values = []
            for d in range(depth):
                attr = perm[d]
                hi = 4 if attr == P else 10
                values.append(int(rng.integers(0, hi)))
            lo, hi_ = order.prefix_range(values)
            expected = sum(
                1
                for t in triples
                if all(t[perm[d]] == v for d, v in enumerate(values))
            )
            assert hi_ - lo == expected

    def test_leap_in_range(self):
        g = nobel_graph()
        order = SortedOrder(g, (P, S, O))
        p_adv = g.dictionary.predicate_id("adv")
        lo, hi = order.prefix_range([p_adv])
        subjects = sorted({t[S] for t in g.triples if t[P] == p_adv})
        for c in range(g.n_nodes + 1):
            expected = next((s for s in subjects if s >= c), None)
            assert order.leap_in_range([p_adv], lo, hi, c) == expected

    def test_decode_roundtrip(self):
        g = random_graph(60, n_nodes=8, n_predicates=3, seed=2)
        for perm in ALL_ORDERS:
            order = SortedOrder(g, perm)
            decoded = sorted(order.decode(i) for i in range(order.n))
            assert decoded == [tuple(t) for t in g.triples]

    def test_scan(self):
        g = nobel_graph()
        order = SortedOrder(g, (S, P, O))
        nobel_id = g.dictionary.node_id("Nobel")
        got = list(order.scan([nobel_id]))
        expected = [tuple(t) for t in g.triples if t[S] == nobel_id]
        assert sorted(got) == sorted(expected)


class TestBPlusTree:
    def test_empty(self):
        t = BPlusTree(np.array([], dtype=np.int64))
        assert len(t) == 0
        assert t.seek(5) == 0

    def test_seek_get(self):
        keys = np.array(sorted([7, 7, 9, 100, 3, 42, 5] * 30))
        t = BPlusTree(keys, fanout=8)
        assert len(t) == len(keys)
        for probe in [0, 3, 4, 7, 8, 42, 99, 100, 101]:
            expected = int(np.searchsorted(keys, probe, side="left"))
            assert t.seek(probe) == expected, probe
        for i in range(len(keys)):
            assert t.get(i) == keys[i]

    def test_iter_range(self):
        keys = np.arange(0, 500, 3)
        t = BPlusTree(keys, fanout=16)
        assert list(t.iter_range(10, 20)) == keys[10:20].tolist()
        assert list(t.iter_range(-5, 3)) == keys[0:3].tolist()
        assert list(t.iter_range(160, 900)) == keys[160:].tolist()

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BPlusTree(np.array([3, 1]))

    def test_rejects_small_fanout(self):
        with pytest.raises(ValueError):
            BPlusTree(np.array([1]), fanout=2)

    def test_get_out_of_range(self):
        t = BPlusTree(np.array([1, 2]))
        with pytest.raises(IndexError):
            t.get(2)

    def test_has_internal_levels(self):
        t = BPlusTree(np.arange(10_000), fanout=16)
        assert t.height >= 2

    def test_space_overhead_realistic(self):
        # B+trees waste space: fill factor + internal nodes.
        keys = np.arange(10_000)
        t = BPlusTree(keys, fanout=64)
        assert t.size_in_bits() > 64 * len(keys)  # above raw keys
        assert t.size_in_bits() < 3 * 64 * len(keys)

    @given(st.lists(st.integers(0, 10_000), min_size=0, max_size=300),
           st.integers(0, 10_001))
    @settings(max_examples=50, deadline=None)
    def test_property_seek_matches_searchsorted(self, values, probe):
        keys = np.array(sorted(values), dtype=np.int64)
        t = BPlusTree(keys, fanout=8)
        assert t.seek(probe) == int(np.searchsorted(keys, probe, side="left"))


class TestBTreeOrder:
    def test_matches_sorted_order(self):
        g = random_graph(200, n_nodes=12, n_predicates=3, seed=3)
        for perm in [(S, P, O), (O, S, P)]:
            flat = SortedOrder(g, perm)
            tree = BTreeOrder(g, perm, fanout=8)
            for values in [[], [3], [3, 1]]:
                assert flat.prefix_range(values) == tree.prefix_range(values)
                lo, hi = flat.prefix_range(values)
                for c in range(0, 12, 3):
                    assert flat.leap_in_range(values, lo, hi, c) == \
                        tree.leap_in_range(values, lo, hi, c)
            assert [flat.decode(i) for i in range(flat.n)] == [
                tree.decode(i) for i in range(tree.n)
            ]


class TestK2Tree:
    def test_contains_all_points(self):
        rng = np.random.default_rng(0)
        pts = rng.integers(0, 16, size=(60, 2))
        tree = K2Tree(pts, height=4)
        for s, o in pts:
            assert tree.contains(int(s), int(o))

    def test_absent_points(self):
        pts = np.array([[0, 0], [3, 7], [15, 15]])
        tree = K2Tree(pts, height=4)
        assert not tree.contains(1, 1)
        assert not tree.contains(15, 14)

    def test_empty_tree(self):
        tree = K2Tree(np.zeros((0, 2)), height=3)
        assert tree.is_empty()
        assert not tree.contains(0, 0)

    def test_point_out_of_grid(self):
        with pytest.raises(ValueError):
            K2Tree(np.array([[16, 0]]), height=4)

    def test_n_points_deduplicates(self):
        tree = K2Tree(np.array([[1, 2], [1, 2], [3, 4]]), height=3)
        assert tree.n_points == 2

    def test_succinct_space(self):
        # A sparse relation should cost far less than a dense bitmap.
        rng = np.random.default_rng(1)
        pts = rng.integers(0, 1 << 10, size=(500, 2))
        tree = K2Tree(pts, height=10)
        assert tree.size_in_bits() < (1 << 20) / 8

    @given(
        st.sets(st.tuples(st.integers(0, 31), st.integers(0, 31)),
                min_size=0, max_size=60)
    )
    @settings(max_examples=40, deadline=None)
    def test_property_membership(self, point_set):
        pts = np.array(sorted(point_set), dtype=np.int64).reshape(-1, 2)
        tree = K2Tree(pts, height=5)
        for s in range(0, 32, 5):
            for o in range(0, 32, 5):
                assert tree.contains(s, o) == ((s, o) in point_set)
