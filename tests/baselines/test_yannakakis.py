"""Tests for GYO reduction, Yannakakis, and the EmptyHeaded analogue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EmptyHeadedIndex
from repro.baselines.yannakakis import gyo_reduction
from repro.core import RingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var, parse_bgp
from repro.graph.dataset import Graph
from repro.graph.generators import (
    clique_graph,
    nobel_graph,
    random_graph,
    wikidata_like,
)
from tests.util import as_solution_set, naive_evaluate

X, Y, Z, W = Var("x"), Var("y"), Var("z"), Var("w")


class TestGYO:
    def test_single_pattern_acyclic(self):
        bgp = BasicGraphPattern([TriplePattern(X, 0, Y)])
        forest = gyo_reduction(bgp)
        assert forest is not None
        assert len(forest) == 1
        assert forest[0].parent is None

    def test_path_acyclic(self):
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
             TriplePattern(Z, 0, W)]
        )
        forest = gyo_reduction(bgp)
        assert forest is not None
        assert len(forest) == 3

    def test_star_acyclic(self):
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(X, 1, Z),
             TriplePattern(X, 2, W)]
        )
        assert gyo_reduction(bgp) is not None

    def test_triangle_cyclic(self):
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
             TriplePattern(Z, 0, X)]
        )
        assert gyo_reduction(bgp) is None

    def test_square_cyclic(self):
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
             TriplePattern(Z, 0, W), TriplePattern(W, 0, X)]
        )
        assert gyo_reduction(bgp) is None

    def test_disconnected_acyclic(self):
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Z, 1, W)]
        )
        forest = gyo_reduction(bgp)
        assert forest is not None
        assert sum(1 for n in forest if n.parent is None) == 2

    def test_parents_point_to_live_witnesses(self):
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z),
             TriplePattern(Y, 2, W)]
        )
        forest = gyo_reduction(bgp)
        assert forest is not None
        removed_after = {n.index: pos for pos, n in enumerate(forest)}
        for node in forest:
            if node.parent is not None:
                assert removed_after[node.parent] > removed_after[node.index]


class TestEmptyHeadedIndex:
    @pytest.fixture(scope="class")
    def nobel(self):
        return nobel_graph()

    @pytest.mark.parametrize("query", [
        "?x adv ?y",
        "?x adv ?y . ?y adv ?z",  # path (acyclic -> Yannakakis)
        "Nobel nom ?y . ?z adv ?y",  # join with constants
        "?x nom ?y . ?x win ?z . ?z adv ?y",  # triangle-shaped (cyclic -> LTJ)
        "?x ?p ?y . ?y ?q ?z",
        "Bohr adv Thomson",
    ])
    def test_matches_naive(self, nobel, query):
        bgp = nobel.encode_bgp(parse_bgp(query))
        index = EmptyHeadedIndex(nobel)
        assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(
            nobel, bgp
        )

    def test_triangle_on_clique(self):
        g = clique_graph(5)
        index = EmptyHeadedIndex(g)
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
             TriplePattern(Z, 0, X)]
        )
        assert len(index.evaluate(bgp)) == 60

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_agreement_with_ring(self, seed):
        g = wikidata_like(600, seed=seed)
        eh = EmptyHeadedIndex(g)
        ring = RingIndex(g)
        queries = [
            BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]),
            BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(X, 1, Z)]),
            BasicGraphPattern(
                [TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z),
                 TriplePattern(Z, 2, W)]
            ),
        ]
        for bgp in queries:
            assert as_solution_set(
                eh.evaluate(bgp, timeout=30)
            ) == as_solution_set(ring.evaluate(bgp, timeout=30))

    def test_empty_relation_short_circuits(self, nobel):
        index = EmptyHeadedIndex(nobel)
        assert index.evaluate("?x adv ?y . ?y madeup ?z") == []

    def test_space_is_six_orders(self, nobel):
        from repro.baselines import FlatTrieIndex

        assert EmptyHeadedIndex(nobel).size_in_bits() == FlatTrieIndex(
            nobel
        ).size_in_bits()


@given(
    st.sets(
        st.tuples(st.integers(0, 4), st.integers(0, 1), st.integers(0, 4)),
        min_size=1,
        max_size=25,
    ),
    st.sampled_from(["path2", "path3", "star", "triangle", "tee"]),
)
@settings(max_examples=30, deadline=None)
def test_property_emptyheaded_equals_naive(triples, shape):
    graph = Graph(np.array(sorted(triples)), n_nodes=5, n_predicates=2)
    shapes = {
        "path2": [TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)],
        "path3": [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
                  TriplePattern(Z, 1, W)],
        "star": [TriplePattern(X, 0, Y), TriplePattern(X, 1, Z)],
        "triangle": [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z),
                     TriplePattern(Z, 0, X)],
        "tee": [TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z),
                TriplePattern(Y, 0, W)],
    }
    bgp = BasicGraphPattern(shapes[shape])
    index = EmptyHeadedIndex(graph)
    assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(graph, bgp)
