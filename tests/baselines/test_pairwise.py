"""Unit tests for the pairwise join engine (planner + join methods)."""

import numpy as np
import pytest

from repro.baselines.jena import _BTreeScanProvider, THREE_ORDERS
from repro.baselines.btree import BTreeOrder
from repro.baselines.pairwise import (
    PairwiseJoinEngine,
    match_binding,
)
from repro.baselines.sorted_orders import OrderSet
from repro.core.interface import QueryTimeout
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import nobel_graph, random_graph
from tests.util import as_solution_set, naive_evaluate

X, Y, Z = Var("x"), Var("y"), Var("z")


@pytest.fixture(scope="module")
def provider():
    g = nobel_graph()
    orders = OrderSet(
        g, THREE_ORDERS, order_factory=lambda gr, p: BTreeOrder(gr, p, 16)
    )
    return g, _BTreeScanProvider(orders)


class TestMatchBinding:
    def test_simple(self):
        assert match_binding(TriplePattern(X, 0, Y), (1, 0, 2)) == {X: 1, Y: 2}

    def test_constant_mismatch(self):
        assert match_binding(TriplePattern(X, 1, Y), (1, 0, 2)) is None

    def test_repeated_variable_consistent(self):
        assert match_binding(TriplePattern(X, 0, X), (2, 0, 2)) == {X: 2}
        assert match_binding(TriplePattern(X, 0, X), (2, 0, 3)) is None


class TestScanProvider:
    def test_scan_by_every_mask(self, provider):
        g, prov = provider
        triples = [tuple(t) for t in g.triples]
        s, p, o = triples[4]
        cases = [
            TriplePattern(X, Y, Z),
            TriplePattern(s, Y, Z),
            TriplePattern(X, p, Z),
            TriplePattern(X, Y, o),
            TriplePattern(s, p, Z),
            TriplePattern(X, p, o),
            TriplePattern(s, Y, o),
            TriplePattern(s, p, o),
        ]
        for pattern in cases:
            got = sorted(prov.scan_pattern(pattern))
            expected = sorted(
                t for t in triples
                if match_binding(pattern, t) is not None
            )
            assert got == expected, pattern

    def test_estimates_are_exact_for_prefix_masks(self, provider):
        g, prov = provider
        pattern = TriplePattern(X, g.dictionary.predicate_id("nom"), Y)
        assert prov.estimate_pattern(pattern) == 5


class TestPlanner:
    def test_cheapest_first_and_connected(self, provider):
        g, prov = provider
        engine = PairwiseJoinEngine(prov, method="nested")
        d = g.dictionary
        selective = TriplePattern(X, d.predicate_id("adv"), Y)  # 4 rows
        broad = TriplePattern(Var("w"), Var("p"), Var("q"))  # 13 rows
        joined = TriplePattern(Y, d.predicate_id("nom"), Var("w"))
        plan = engine.plan(BasicGraphPattern([broad, joined, selective]))
        assert plan[0] == selective
        # Second pick must share a variable with the first.
        assert set(plan[1].variables()) & set(plan[0].variables())

    def test_bad_method(self, provider):
        _, prov = provider
        with pytest.raises(ValueError):
            PairwiseJoinEngine(prov, method="sort")


class TestJoinMethods:
    @pytest.mark.parametrize("method", ["nested", "hash"])
    def test_matches_naive(self, provider, method):
        g, prov = provider
        engine = PairwiseJoinEngine(prov, method=method)
        d = g.dictionary
        bgp = BasicGraphPattern(
            [
                TriplePattern(X, d.predicate_id("nom"), Y),
                TriplePattern(X, d.predicate_id("win"), Z),
                TriplePattern(Z, d.predicate_id("adv"), Y),
            ]
        )
        got = as_solution_set(engine.evaluate(bgp))
        assert got == naive_evaluate(g, bgp)

    @pytest.mark.parametrize("method", ["nested", "hash"])
    def test_cross_product_of_disconnected(self, provider, method):
        g, prov = provider
        engine = PairwiseJoinEngine(prov, method=method)
        d = g.dictionary
        bgp = BasicGraphPattern(
            [
                TriplePattern(X, d.predicate_id("adv"), Y),
                TriplePattern(Var("a"), d.predicate_id("win"), Var("b")),
            ]
        )
        got = as_solution_set(engine.evaluate(bgp))
        assert len(got) == 4 * 4  # 4 adv edges x 4 win edges
        assert got == naive_evaluate(g, bgp)

    def test_timeout_raises(self):
        g = random_graph(400, n_nodes=20, n_predicates=2, seed=0)
        orders = OrderSet(
            g, THREE_ORDERS, order_factory=lambda gr, p: BTreeOrder(gr, p, 16)
        )
        engine = PairwiseJoinEngine(_BTreeScanProvider(orders), method="hash")
        bgp = BasicGraphPattern(
            [TriplePattern(X, Var("p"), Y), TriplePattern(Y, Var("q"), Z)]
        )
        with pytest.raises(QueryTimeout):
            list(engine.evaluate(bgp, timeout=1e-6))
