"""End-to-end LTJ tests over the ring, cross-checked against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressedRingIndex, QueryTimeout, RingIndex
from repro.core.iterators import RingIterator
from repro.core.ring import Ring
from repro.graph import BasicGraphPattern, TriplePattern, Var, parse_bgp
from repro.graph.dataset import Graph
from repro.graph.generators import (
    clique_graph,
    nobel_graph,
    path_graph,
    random_graph,
    wikidata_like,
)
from tests.util import as_solution_set, naive_evaluate

X, Y, Z, W = Var("x"), Var("y"), Var("z"), Var("w")


@pytest.fixture(scope="module")
def nobel():
    return RingIndex(nobel_graph())


def encoded(graph, text):
    return graph.encode_bgp(parse_bgp(text))


def check_against_naive(graph, bgp, index=None, **options):
    index = index or RingIndex(graph)
    got = as_solution_set(index.evaluate(bgp, **options))
    expected = naive_evaluate(graph, bgp)
    assert got == expected
    return got


class TestRingIterator:
    def test_count_tracks_bindings(self):
        g = nobel_graph()
        ring = Ring(g)
        p_nom = g.dictionary.predicate_id("nom")
        it = RingIterator(ring, TriplePattern(X, p_nom, Y))
        assert it.count() == 5
        nobel_id = g.dictionary.node_id("Nobel")
        assert it.leap(X, 0) == nobel_id
        it.bind(X, nobel_id)
        assert it.count() == 5
        bohr = g.dictionary.node_id("Bohr")
        assert it.leap(Y, 0) == bohr
        it.bind(Y, bohr)
        assert it.count() == 1
        it.unbind(Y)
        it.unbind(X)
        assert it.count() == 5

    def test_unbind_order_enforced(self):
        ring = Ring(nobel_graph())
        it = RingIterator(ring, TriplePattern(X, 0, Y))
        it.bind(X, 0)
        it.bind(Y, 2)
        with pytest.raises(ValueError):
            it.unbind(X)
        it.unbind(Y)
        it.unbind(X)
        with pytest.raises(ValueError):
            it.unbind(X)

    def test_leap_on_unknown_constant_pattern(self):
        g = nobel_graph()
        ring = Ring(g)
        it = RingIterator(ring, TriplePattern(X, 2, 99999 % g.n_nodes))
        # Whatever the state, leap never crashes and count is consistent.
        assert it.count() >= 0

    def test_values_backward_enumeration(self):
        g = nobel_graph()
        ring = Ring(g)
        p_adv = g.dictionary.predicate_id("adv")
        it = RingIterator(ring, TriplePattern(X, p_adv, Y))
        # Backward from zone P enumerates subjects of adv triples.
        subjects = sorted(
            g.dictionary.node_id(s) for s in ["Bohr", "Thomson", "Thorne", "Wheeler"]
        )
        assert list(it.values(X)) == subjects

    def test_values_forward_falls_back_to_leaps(self):
        g = nobel_graph()
        ring = Ring(g)
        nobel_id = g.dictionary.node_id("Nobel")
        it = RingIterator(ring, TriplePattern(nobel_id, Y, Z))
        # Y follows the bound subject: forward enumeration.
        assert list(it.values(Y)) == sorted(
            {t[1] for t in g.triples if t[0] == nobel_id}
        )


class TestSinglePatternQueries:
    @pytest.mark.parametrize("query", [
        "?x adv ?y",
        "?x nom ?y",
        "Nobel win ?x",
        "?x adv Bohr",
        "?x ?p Bohr",
        "Nobel ?p ?x",
        "?x ?p ?y",
        "Bohr adv Thomson",
    ])
    def test_matches_naive(self, query):
        g = nobel_graph()
        bgp = encoded(g, query)
        check_against_naive(g, bgp)

    def test_fully_bound_present(self, nobel):
        g = nobel.graph
        bgp = encoded(g, "Bohr adv Thomson")
        assert nobel.evaluate(bgp) == [{}]

    def test_fully_bound_absent(self, nobel):
        g = nobel.graph
        bgp = encoded(g, "Thomson adv Bohr")
        assert nobel.evaluate(bgp) == []

    def test_unknown_label_yields_empty(self, nobel):
        assert nobel.evaluate("?x madeup ?y") == []

    def test_string_query_decode(self, nobel):
        out = nobel.evaluate("?z adv Bohr", decode=True)
        assert out == [{"z": "Wheeler"}]


class TestFigure4:
    """The paper's running query (Figure 4) has exactly 3 solutions."""

    QUERY = "?x nom ?y . ?x win ?z . ?z adv ?y"

    def test_three_solutions(self, nobel):
        out = nobel.evaluate(self.QUERY, decode=True)
        triples = {(s["x"], s["y"], s["z"]) for s in out}
        assert triples == {
            ("Nobel", "Strutt", "Thomson"),
            ("Nobel", "Thomson", "Bohr"),
            ("Nobel", "Wheeler", "Thorne"),
        }

    def test_matches_naive(self, nobel):
        g = nobel.graph
        check_against_naive(g, encoded(g, self.QUERY), index=nobel)

    def test_compressed_ring_agrees(self):
        g = nobel_graph()
        comp = CompressedRingIndex(g)
        assert as_solution_set(
            comp.evaluate(encoded(g, self.QUERY))
        ) == naive_evaluate(g, encoded(g, self.QUERY))


class TestJoinShapes:
    def test_path_join(self):
        g = path_graph(6)
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z)]
        )
        sols = check_against_naive(g, bgp)
        assert len(sols) == 5  # paths of length 2 in a 6-edge path

    def test_triangle_on_clique(self):
        g = clique_graph(5)
        bgp = BasicGraphPattern(
            [
                TriplePattern(X, 0, Y),
                TriplePattern(Y, 0, Z),
                TriplePattern(Z, 0, X),
            ]
        )
        sols = check_against_naive(g, bgp)
        assert len(sols) == 5 * 4 * 3  # ordered triangles in K5

    def test_star_join(self):
        g = wikidata_like(400, seed=3)
        p0 = 0
        bgp = BasicGraphPattern(
            [
                TriplePattern(X, p0, Y),
                TriplePattern(X, p0, Z),
            ]
        )
        check_against_naive(g, bgp)

    def test_constant_object_join(self):
        g = nobel_graph()
        bgp = encoded(g, "?x adv ?y . Nobel win ?y")
        check_against_naive(g, bgp)

    def test_variable_predicate_join(self):
        g = nobel_graph()
        bgp = encoded(g, "?x ?p ?y . ?y ?q ?z")
        check_against_naive(g, bgp)

    def test_repeated_variable_in_pattern(self):
        # Self-loops: add one to a clique graph.
        triples = np.vstack([clique_graph(4).triples, [[2, 0, 2]]])
        g = Graph(triples)
        bgp = BasicGraphPattern([TriplePattern(X, 0, X)])
        sols = check_against_naive(g, bgp)
        assert sols == {frozenset({(X, 2)}.__iter__())} or len(sols) == 1

    def test_repeated_variable_join(self):
        triples = np.vstack([clique_graph(4).triples, [[2, 0, 2], [3, 0, 3]]])
        g = Graph(triples)
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, X), TriplePattern(X, 0, Y)]
        )
        check_against_naive(g, bgp)

    def test_disconnected_patterns(self):
        g = nobel_graph()
        bgp = encoded(g, "?x adv ?y . Nobel win ?z")
        check_against_naive(g, bgp)


class TestEngineOptions:
    def test_limit(self, nobel):
        out = nobel.evaluate("?x nom ?y", limit=2)
        assert len(out) == 2

    def test_timeout_fires(self):
        g = wikidata_like(2000, seed=0)
        index = RingIndex(g)
        bgp = BasicGraphPattern(
            [TriplePattern(X, Var("p1"), Y), TriplePattern(Y, Var("p2"), Z)]
        )
        with pytest.raises(QueryTimeout):
            index.evaluate(bgp, timeout=1e-4)

    def test_explicit_var_order(self, nobel):
        g = nobel.graph
        bgp = encoded(g, self_query := "?x nom ?y . ?x win ?z . ?z adv ?y")
        for order in ([X, Y, Z], [Z, Y, X], [Y, Z, X]):
            got = as_solution_set(nobel.evaluate(bgp, var_order=order))
            assert got == naive_evaluate(g, bgp)

    def test_bad_var_order_rejected(self, nobel):
        g = nobel.graph
        bgp = encoded(g, "?x nom ?y . ?x win ?z . ?z adv ?y")
        with pytest.raises(ValueError):
            nobel.evaluate(bgp, var_order=[X])

    def test_lonely_optimisation_off_agrees(self):
        g = wikidata_like(300, seed=9)
        plain = RingIndex(g)
        no_lonely = RingIndex(g, use_lonely=False)
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]
        )
        assert as_solution_set(plain.evaluate(bgp)) == as_solution_set(
            no_lonely.evaluate(bgp)
        )

    def test_ordering_off_agrees(self):
        g = wikidata_like(300, seed=10)
        plain = RingIndex(g)
        no_order = RingIndex(g, use_ordering=False)
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z), TriplePattern(X, 2, Z)]
        )
        assert as_solution_set(plain.evaluate(bgp)) == as_solution_set(
            no_order.evaluate(bgp)
        )

    def test_count_helper(self, nobel):
        assert nobel.count("?x nom ?y") == 5

    def test_bytes_per_triple_positive(self, nobel):
        assert nobel.bytes_per_triple() > 0


@st.composite
def graph_and_query(draw):
    triples = draw(
        st.sets(
            st.tuples(st.integers(0, 5), st.integers(0, 2), st.integers(0, 5)),
            min_size=1,
            max_size=30,
        )
    )
    graph = Graph(np.array(sorted(triples)), n_nodes=6, n_predicates=3)
    variables = [X, Y, Z, W]
    n_patterns = draw(st.integers(1, 3))
    patterns = []
    for _ in range(n_patterns):
        terms = []
        for pos, bound in enumerate([st.integers(0, 5), st.integers(0, 2),
                                     st.integers(0, 5)]):
            use_var = draw(st.booleans())
            if use_var:
                terms.append(variables[draw(st.integers(0, 3))])
            else:
                terms.append(draw(bound))
        patterns.append(TriplePattern(*terms))
    if not any(p.variables() for p in patterns):
        patterns[0] = TriplePattern(X, patterns[0].p, patterns[0].o)
    return graph, BasicGraphPattern(patterns)


@given(graph_and_query())
@settings(max_examples=60, deadline=None)
def test_property_ltj_equals_naive(data):
    graph, bgp = data
    index = RingIndex(graph)
    assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(graph, bgp)
