"""Generation scoping of the backward-leap LRU memo.

The memo key carries the ring's *leap generation*: owners whose
mutation paths swap or rebuild backing state (the dynamic ring's
compaction, shared-memory re-attachment) bump it, after which no entry
cached under an earlier generation can ever be served again — even if
the entry is still physically in the dict.  These tests pin that
contract with a sentinel wavelet matrix: a memo hit must *not* consult
the matrix, and an invalidated memo must.
"""

import pytest

from repro.core.dynamic import DynamicRingIndex
from repro.core.system import RingIndex
from repro.graph.generators import random_graph
from repro.graph.model import S
from repro.sequences.wavelet_matrix import WaveletMatrix

SENTINEL = 31337


@pytest.fixture()
def ring():
    return RingIndex(random_graph(300, n_nodes=40, n_predicates=3, seed=13)).ring


def test_memo_hit_skips_the_wavelet_matrix(ring, monkeypatch):
    original = ring.backward_leap(S, 0, ring.n, 0)
    assert original is not None
    monkeypatch.setattr(
        WaveletMatrix, "next_in_range", lambda self, lo, hi, c: SENTINEL
    )
    assert ring.backward_leap(S, 0, ring.n, 0) == original, (
        "repeated leap must be served from the memo, not the matrix"
    )
    assert ring.leap_memo_stats()["hits"] >= 1


def test_invalidate_retires_every_cached_leap(ring, monkeypatch):
    before = ring.leap_memo_stats()["generation"]
    ring.backward_leap(S, 0, ring.n, 0)  # seed one entry
    assert ring.leap_memo_stats()["entries"] == 1
    monkeypatch.setattr(
        WaveletMatrix, "next_in_range", lambda self, lo, hi, c: SENTINEL
    )
    ring.invalidate_leap_memo()
    stats = ring.leap_memo_stats()
    assert stats["generation"] == before + 1
    assert stats["entries"] == 0
    assert ring.backward_leap(S, 0, ring.n, 0) == SENTINEL, (
        "post-invalidation leap must re-consult the matrix"
    )


def test_generation_scopes_keys_even_without_clearing(ring, monkeypatch):
    """Stale entries are unreachable by *key*, not merely evicted."""
    ring.backward_leap(S, 0, ring.n, 0)
    stale = dict(ring._leap_memo)  # simulate entries surviving the clear
    ring.invalidate_leap_memo()
    ring._leap_memo.update(stale)
    monkeypatch.setattr(
        WaveletMatrix, "next_in_range", lambda self, lo, hi, c: SENTINEL
    )
    assert ring.backward_leap(S, 0, ring.n, 0) == SENTINEL


def test_dynamic_compaction_bumps_component_generations():
    graph = random_graph(200, n_nodes=60, n_predicates=4, seed=17)
    index = DynamicRingIndex(graph, buffer_threshold=8, auto_compact=False)
    [base] = index._rings
    base.backward_leap(S, 0, base.n, 0)  # seed a memo on the static ring
    assert base.leap_memo_stats()["entries"] == 1

    inserted = 0
    for s in range(60):
        if inserted >= 9:
            break
        if index.insert(s, 3, (s + 7) % 60):
            inserted += 1
    assert inserted >= 9
    index.compact()

    assert base in index._rings, "big ring should survive geometric merge"
    assert base.leap_generation >= 1
    assert base.leap_memo_stats()["entries"] == 0
    assert all(r.leap_generation >= 1 for r in index._rings)
