"""Tests for the dynamic (LSM) ring — inserts, deletes, merges, queries.

Includes a hypothesis state machine driving random update/query mixes
against a plain Python set model.
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.dynamic import DynamicRingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from repro.graph.generators import nobel_graph, wikidata_like
from tests.util import as_solution_set, naive_evaluate

X, Y, Z = Var("x"), Var("y"), Var("z")


def empty_graph(n_nodes=10, n_predicates=3):
    return Graph(np.zeros((0, 3)), n_nodes=n_nodes, n_predicates=n_predicates)


class TestUpdates:
    def test_insert_then_query(self):
        index = DynamicRingIndex(empty_graph())
        assert index.insert(1, 0, 2)
        assert index.insert(2, 0, 3)
        assert not index.insert(1, 0, 2)  # duplicate
        bgp = BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z)])
        out = index.evaluate(bgp)
        assert as_solution_set(out) == {
            frozenset({(X, 1), (Y, 2), (Z, 3)}.__iter__())
        } or len(out) == 1

    def test_delete_buffered(self):
        index = DynamicRingIndex(empty_graph())
        index.insert(1, 0, 2)
        assert index.delete(1, 0, 2)
        assert not index.delete(1, 0, 2)
        assert index.n_triples == 0
        assert index.evaluate(BasicGraphPattern([TriplePattern(X, 0, Y)])) == []

    def test_delete_ring_resident_uses_tombstone(self):
        g = nobel_graph()
        index = DynamicRingIndex(g)
        d = g.dictionary
        triple = (d.node_id("Bohr"), d.predicate_id("adv"), d.node_id("Thomson"))
        assert index.contains(*triple)
        assert index.delete(*triple)
        assert not index.contains(*triple)
        # The query layer must not resurrect it.
        out = index.evaluate("?x adv ?y", decode=True)
        assert {(m["x"], m["y"]) for m in out} == {
            ("Thomson", "Strutt"), ("Thorne", "Wheeler"), ("Wheeler", "Bohr"),
        }

    def test_reinsert_after_tombstone(self):
        g = nobel_graph()
        index = DynamicRingIndex(g)
        d = g.dictionary
        triple = (d.node_id("Bohr"), d.predicate_id("adv"), d.node_id("Thomson"))
        index.delete(*triple)
        assert index.insert(*triple)
        assert index.contains(*triple)
        assert index.n_triples == 13

    def test_id_bounds_checked(self):
        index = DynamicRingIndex(empty_graph(n_nodes=4, n_predicates=2))
        with pytest.raises(ValueError):
            index.insert(4, 0, 0)
        with pytest.raises(ValueError):
            index.insert(0, 2, 0)

    def test_compaction_freezes_buffer(self):
        index = DynamicRingIndex(
            empty_graph(n_nodes=100), buffer_threshold=8
        )
        for i in range(30):
            index.insert(i % 90, 0, (i * 7) % 90)
        assert index.n_components <= 4
        assert index.n_triples == len({(i % 90, 0, (i * 7) % 90)
                                       for i in range(30)})

    def test_full_compaction_folds_tombstones(self):
        index = DynamicRingIndex(empty_graph(n_nodes=64), buffer_threshold=8)
        for i in range(16):
            index.insert(i, 0, i % 4)
        for i in range(8):
            index.delete(i, 0, i % 4)
        index._compact(full=True)
        assert index.n_triples == 8
        assert len(index._tombstones) == 0
        assert index.n_components <= 1


class TestQueriesMatchStaticRing:
    def test_equivalence_after_update_storm(self):
        g = wikidata_like(400, seed=0)
        index = DynamicRingIndex(g, buffer_threshold=32)
        rng = np.random.default_rng(1)
        live = {tuple(int(v) for v in t) for t in g.triples}
        for _ in range(300):
            s = int(rng.integers(0, g.n_nodes))
            p = int(rng.integers(0, g.n_predicates))
            o = int(rng.integers(0, g.n_nodes))
            if rng.random() < 0.6:
                index.insert(s, p, o)
                live.add((s, p, o))
            else:
                if rng.random() < 0.5 and live:
                    s, p, o = sorted(live)[int(rng.integers(0, len(live)))]
                index.delete(s, p, o)
                live.discard((s, p, o))
        materialised = {tuple(int(v) for v in t)
                        for t in index.to_graph().triples}
        assert materialised == live
        # Query equivalence against a fresh static ring on the live set.
        from repro.core import RingIndex

        reference = RingIndex(
            Graph(np.array(sorted(live)), n_nodes=g.n_nodes,
                  n_predicates=g.n_predicates)
        )
        queries = [
            BasicGraphPattern([TriplePattern(X, 0, Y)]),
            BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]),
            BasicGraphPattern([TriplePattern(X, Var("p"), 3)]),
        ]
        for bgp in queries:
            assert as_solution_set(index.evaluate(bgp)) == as_solution_set(
                reference.evaluate(bgp)
            )

    def test_space_stays_linear(self):
        index = DynamicRingIndex(
            empty_graph(n_nodes=2000), buffer_threshold=64
        )
        rng = np.random.default_rng(3)
        for _ in range(1000):
            index.insert(
                int(rng.integers(0, 2000)), 0, int(rng.integers(0, 2000))
            )
        # Components stay few; size is far below one ring per insert.
        assert index.n_components <= 9


class DynamicRingMachine(RuleBasedStateMachine):
    """Random update/query interleavings vs a Python-set model."""

    def __init__(self):
        super().__init__()
        self.index = DynamicRingIndex(
            empty_graph(n_nodes=6, n_predicates=2), buffer_threshold=8
        )
        self.model: set[tuple[int, int, int]] = set()

    triples = st.tuples(
        st.integers(0, 5), st.integers(0, 1), st.integers(0, 5)
    )

    @rule(t=triples)
    def insert(self, t):
        expected = t not in self.model
        assert self.index.insert(*t) == expected
        self.model.add(t)

    @rule(t=triples)
    def delete(self, t):
        expected = t in self.model
        assert self.index.delete(*t) == expected
        self.model.discard(t)

    @rule(t=triples)
    def membership(self, t):
        assert self.index.contains(*t) == (t in self.model)

    @invariant()
    def count_matches(self):
        assert self.index.n_triples == len(self.model)

    @invariant()
    def join_matches_naive(self):
        if not self.model:
            return
        graph = Graph(
            np.array(sorted(self.model)), n_nodes=6, n_predicates=2
        )
        bgp = BasicGraphPattern(
            [TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]
        )
        assert as_solution_set(self.index.evaluate(bgp)) == naive_evaluate(
            graph, bgp
        )


TestDynamicRingStateMachine = DynamicRingMachine.TestCase
TestDynamicRingStateMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
