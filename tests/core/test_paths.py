"""Tests for regular path queries over the ring (§7 extension)."""

import numpy as np
import pytest

from repro.core import RingIndex
from repro.core.paths import (
    Alt,
    Opt,
    PathSyntaxError,
    Plus,
    Pred,
    Seq,
    Star,
    compile_nfa,
    parse_path,
)
from repro.graph.dataset import Graph
from repro.graph.generators import nobel_graph, path_graph


class TestParser:
    def test_single_predicate(self):
        assert parse_path("adv") == Pred("adv")

    def test_sequence(self):
        assert parse_path("a/b") == Seq((Pred("a"), Pred("b")))

    def test_alternation_binds_looser_than_sequence(self):
        expr = parse_path("a/b|c")
        assert isinstance(expr, Alt)
        assert expr.options[0] == Seq((Pred("a"), Pred("b")))
        assert expr.options[1] == Pred("c")

    def test_closures(self):
        assert parse_path("a*") == Star(Pred("a"))
        assert parse_path("a+") == Plus(Pred("a"))
        assert parse_path("a?") == Opt(Pred("a"))

    def test_inverse(self):
        assert parse_path("^a") == Pred("a", inverse=True)

    def test_inverse_distributes_over_groups(self):
        # ^(a/b) == ^b / ^a
        expr = parse_path("^(a/b)")
        assert expr == Seq((Pred("b", True), Pred("a", True)))

    def test_parentheses(self):
        expr = parse_path("(a|b)/c")
        assert isinstance(expr, Seq)
        assert isinstance(expr.parts[0], Alt)

    def test_errors(self):
        for bad in ("", "a/", "(a", "a)", "|a", "*"):
            with pytest.raises(PathSyntaxError):
                parse_path(bad)


class TestNFA:
    def test_compile_smoke(self):
        nfa = compile_nfa(parse_path("(a|b)+/c"))
        assert nfa.start != nfa.accept
        labels = [
            lab.label
            for edges in nfa.edges.values()
            for lab, _ in edges
            if lab is not None
        ]
        assert sorted(labels) == ["a", "b", "c"]

    def test_epsilon_closure(self):
        from repro.core.paths import _epsilon_closure

        nfa = compile_nfa(parse_path("a*"))
        closure = _epsilon_closure(nfa, [nfa.start])
        # A starred expression accepts the empty path: the accept state
        # must be reachable from start through epsilon edges alone.
        assert nfa.accept in closure

    def test_epsilon_closure_plus_excludes_accept(self):
        from repro.core.paths import _epsilon_closure

        nfa = compile_nfa(parse_path("a+"))
        closure = _epsilon_closure(nfa, [nfa.start])
        assert nfa.accept not in closure


class TestEvaluation:
    @pytest.fixture(scope="class")
    def nobel(self):
        return RingIndex(nobel_graph())

    def test_single_step(self, nobel):
        assert nobel.evaluate_path("adv", "Bohr", decode=True) == {"Thomson"}

    def test_transitive_closure(self, nobel):
        # adv chain: Bohr -> Thomson -> Strutt; Thorne -> Wheeler -> Bohr.
        assert nobel.evaluate_path("adv+", "Thorne", decode=True) == {
            "Wheeler", "Bohr", "Thomson", "Strutt",
        }

    def test_star_includes_source(self, nobel):
        out = nobel.evaluate_path("adv*", "Strutt", decode=True)
        assert out == {"Strutt"}  # Strutt advises nobody

    def test_inverse_step(self, nobel):
        # ^win from Bohr: who awarded Bohr.
        assert nobel.evaluate_path("^win", "Bohr", decode=True) == {"Nobel"}

    def test_sequence_and_inverse(self, nobel):
        # nominees of the awarder of Bohr: ^win/nom.
        out = nobel.evaluate_path("^win/nom", "Bohr", decode=True)
        assert out == {"Bohr", "Strutt", "Thomson", "Thorne", "Wheeler"}

    def test_alternation(self, nobel):
        out = nobel.evaluate_path("win|nom", "Nobel", decode=True)
        assert out == {"Bohr", "Strutt", "Thomson", "Thorne", "Wheeler"}

    def test_optional(self, nobel):
        out = nobel.evaluate_path("adv?", "Bohr", decode=True)
        assert out == {"Bohr", "Thomson"}

    def test_unknown_predicate_empty(self, nobel):
        assert nobel.evaluate_path("madeup+", "Bohr", decode=True) == set()

    def test_unknown_source_empty(self, nobel):
        assert nobel.evaluate_path("adv", "Nobody") == set()

    def test_long_path_closure_with_ids(self):
        g = path_graph(50)
        index = RingIndex(g)
        from repro.core.paths import PathEvaluator, Plus, Pred

        evaluator = PathEvaluator(index.ring)
        out = evaluator.reachable(0, Plus(Pred(0)))
        assert out == set(range(1, 51))

    def test_cycle_terminates(self):
        # 0 -> 1 -> 2 -> 0 cycle must not loop forever under +.
        g = Graph(np.array([[0, 0, 1], [1, 0, 2], [2, 0, 0]]))
        from repro.core.paths import PathEvaluator, Plus, Pred

        evaluator = PathEvaluator(RingIndex(g).ring)
        assert evaluator.reachable(0, Plus(Pred(0))) == {0, 1, 2}

    def test_pairs(self):
        g = path_graph(4)
        from repro.core.paths import PathEvaluator, Plus, Pred

        evaluator = PathEvaluator(RingIndex(g).ring)
        pairs = set(evaluator.pairs(Plus(Pred(0)), range(5)))
        expected = {(a, b) for a in range(5) for b in range(a + 1, 5)}
        assert pairs == expected
