"""Frozen pack round-trips: ``save_frozen`` / ``load(mmap=...)``.

The pack is the out-of-core serving format: one flat 64-byte-aligned
file holding every succinct array, a JSON sidecar naming each array's
offset, and a ``load(mmap=True)`` path whose arrays are read-only
``np.memmap`` views.  These tests pin the contract: eager and mapped
opens answer identically, layout damage is a typed refusal (never a
wrong ring), and the legacy ``.npz`` format stays un-mappable.
"""

import json
import os

import numpy as np
import pytest

from repro.core import RingIndex
from repro.core.frozen import (
    FrozenGraph,
    RingLayoutError,
    open_frozen_ring,
    verify_frozen_layout,
)
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from repro.graph.dictionary import Dictionary
from repro.graph.generators import random_graph
from repro.reliability.integrity import IndexIntegrityError, verify_index

X, Y, Z = Var("x"), Var("y"), Var("z")
JOIN = BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)])
SCAN = BasicGraphPattern([TriplePattern(X, 0, Y)])


@pytest.fixture(scope="module")
def graph():
    return random_graph(1500, n_nodes=80, n_predicates=3, seed=7)


@pytest.fixture()
def pack(graph, tmp_path):
    path = str(tmp_path / "index.ring")
    RingIndex(graph).save_frozen(path)
    return path


def _rows(index, bgp):
    return [dict(mu) for mu in index.evaluate(bgp)]


class TestRoundTrip:
    def test_eager_load_matches_fresh_build(self, graph, pack):
        fresh = RingIndex(graph)
        loaded = RingIndex.load(pack, mmap=False)
        assert _rows(loaded, JOIN) == _rows(fresh, JOIN)
        assert loaded.ring.n == graph.n_triples

    def test_mmap_load_matches_eager(self, graph, pack):
        eager = RingIndex.load(pack, mmap=False)
        mapped = RingIndex.load(pack, mmap=True)
        assert _rows(mapped, JOIN) == _rows(eager, JOIN)
        assert _rows(mapped, SCAN) == _rows(eager, SCAN)

    def test_mmap_arrays_are_views_not_copies(self, pack):
        from repro.graph.model import S

        ring, _ = open_frozen_ring(pack, mmap=True)
        words = ring._seq[S]._bits[0]._words
        assert isinstance(words, np.memmap)
        assert not words.flags.writeable

    def test_manifest_names_every_array(self, pack):
        manifest = json.loads(open(pack + ".config.json").read())
        assert manifest["kind"] == "frozen-ring"
        size = os.path.getsize(pack)
        assert manifest["file_size"] == size
        for name, (offset, dtype, length) in manifest["arrays"].items():
            assert offset % 64 == 0, name
            assert offset + length * np.dtype(dtype).itemsize <= size

    def test_save_frozen_returns_manifest(self, graph, tmp_path):
        manifest = RingIndex(graph).save_frozen(str(tmp_path / "x.ring"))
        assert manifest["n_triples"] == graph.n_triples

    def test_compressed_ring_refuses_to_freeze(self, graph, tmp_path):
        index = RingIndex(graph, compressed=True)
        with pytest.raises(RingLayoutError):
            index.save_frozen(str(tmp_path / "c.ring"))


class TestFrozenGraph:
    def test_shape_without_materializing(self, graph, pack):
        loaded = RingIndex.load(pack, mmap=True)
        assert isinstance(loaded.graph, FrozenGraph)
        assert loaded.graph.n_triples == graph.n_triples
        assert loaded.graph.n_nodes == graph.n_nodes
        assert loaded.graph.n_predicates == graph.n_predicates

    def test_triples_decode_from_the_ring(self, graph, pack):
        loaded = RingIndex.load(pack, mmap=True)
        got = np.asarray(sorted(map(tuple, loaded.graph.triples)))
        want = np.asarray(sorted(map(tuple, graph.triples)))
        assert np.array_equal(got, want)

    def test_membership(self, graph, pack):
        loaded = RingIndex.load(pack, mmap=True)
        present = {tuple(map(int, t)) for t in graph.triples}
        s, p, o = next(iter(sorted(present)))
        assert (s, p, o) in loaded.graph
        absent = next(
            (s2, p2, o2)
            for s2 in range(graph.n_nodes)
            for p2 in range(graph.n_predicates)
            for o2 in range(graph.n_nodes)
            if (s2, p2, o2) not in present
        )
        assert absent not in loaded.graph


class TestDictionary:
    def test_labels_survive_the_pack(self, tmp_path):
        d = Dictionary()
        ids = [(d.add_node(f"n{i}")) for i in range(30)]
        d.add_predicate("edge")
        rng = np.random.default_rng(3)
        rows = np.stack(
            [
                rng.choice(ids, 120),
                np.zeros(120, dtype=np.int64),
                rng.choice(ids, 120),
            ],
            axis=1,
        )
        graph = Graph(rows, dictionary=d)
        path = str(tmp_path / "d.ring")
        RingIndex(graph).save_frozen(path)
        loaded = RingIndex.load(path, mmap=True)
        want = RingIndex(graph).evaluate("?x edge ?y", decode=True)
        got = loaded.evaluate("?x edge ?y", decode=True)
        assert list(got) == list(want)


class TestDamage:
    def test_truncation_detected(self, pack):
        with open(pack, "r+b") as fh:
            fh.truncate(os.path.getsize(pack) - 64)
        with pytest.raises(IndexIntegrityError):
            verify_frozen_layout(pack)
        with pytest.raises(IndexIntegrityError):
            RingIndex.load(pack, mmap=True)

    def test_torn_footer_detected(self, pack):
        with open(pack, "r+b") as fh:
            fh.seek(-8, os.SEEK_END)
            fh.write(b"XXXXXXXX")
        with pytest.raises(IndexIntegrityError):
            verify_frozen_layout(pack)

    def test_bad_magic_detected(self, pack):
        with open(pack, "r+b") as fh:
            fh.write(b"NOTAPACK")
        with pytest.raises(IndexIntegrityError):
            RingIndex.load(pack, mmap=True)

    def test_payload_corruption_caught_deep(self, pack):
        size = os.path.getsize(pack)
        with open(pack, "r+b") as fh:
            fh.seek(size // 2)
            byte = fh.read(1)
            fh.seek(size // 2)
            fh.write(bytes([byte[0] ^ 0xFF]))
        # The O(1) layout walk cannot see a payload flip...
        verify_frozen_layout(pack)
        # ...the deep (sha256) walk and the eager load must.
        with pytest.raises(IndexIntegrityError):
            verify_frozen_layout(pack, deep=True)
        with pytest.raises(IndexIntegrityError):
            RingIndex.load(pack, mmap=False)

    def test_verify_index_frozen_branch(self, pack):
        report = verify_index(pack)
        assert report["kind"] == "frozen-ring"
        assert any("layout" in c or "memmap" in c for c in report["checks"])

    def test_verify_index_rejects_corruption(self, pack):
        size = os.path.getsize(pack)
        with open(pack, "r+b") as fh:
            fh.seek(size // 3)
            byte = fh.read(1)
            fh.seek(size // 3)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(IndexIntegrityError):
            verify_index(pack)


class TestLegacyNpz:
    def test_mmap_on_npz_raises(self, graph, tmp_path):
        path = str(tmp_path / "legacy.npz")
        RingIndex(graph).save(path)
        with pytest.raises(ValueError, match="frozen-ring"):
            RingIndex.load(path, mmap=True)
        # The eager path still works.
        loaded = RingIndex.load(path)
        assert loaded.ring.n == graph.n_triples
