"""Property test of the variable-selection policies (ISSUE 7).

Under any interleaving of inserts, deletes, compactions and queries on
a dynamic ring:

- every policy (``static``/``rowcount``/``distinct``/``adaptive``)
  returns the *same solution multiset* for every query at every
  instant (policies may only change enumeration order, never content);
- each policy enumerates *deterministically* (two evaluations stream
  identical bytes);
- a per-policy :class:`~repro.cache.CachedQuerySystem` serve is
  byte-identical — same rows, same order — to a fresh evaluation of
  the same-policy index at that instant (the policy is part of the
  cache key, so cached rows can never leak across policies).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import CachedQuerySystem
from repro.core.dynamic import DynamicRingIndex
from repro.core.ltj import POLICIES
from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, TriplePattern, Var

N_NODES = 8
N_PREDICATES = 2

triples = st.tuples(
    st.integers(0, N_NODES - 1),
    st.integers(0, N_PREDICATES - 1),
    st.integers(0, N_NODES - 1),
)

VARIABLE_NAMES = ["x", "y", "z", "w"]


@st.composite
def bgps(draw):
    """1-3 patterns over a tiny variable pool (joins arise naturally)."""
    n_patterns = draw(st.integers(1, 3))
    patterns = []
    for _ in range(n_patterns):
        terms = []
        for bound in range(3):
            if draw(st.booleans()):
                terms.append(Var(draw(st.sampled_from(VARIABLE_NAMES))))
            else:
                limit = N_PREDICATES if bound == 1 else N_NODES
                terms.append(draw(st.integers(0, limit - 1)))
        patterns.append(TriplePattern(*terms))
    return BasicGraphPattern(patterns)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), triples),
        st.tuples(st.just("delete"), triples),
        st.tuples(st.just("compact"), st.none()),
        st.tuples(st.just("query"), bgps()),
    ),
    min_size=4,
    max_size=16,
)


def canon(result):
    """Policy-independent multiset encoding (binding order varies)."""
    return sorted(
        tuple(sorted((v.name, c) for v, c in mu.items())) for mu in result
    )


def byte_rows(result):
    """Order- and insertion-order-sensitive encoding (byte identity)."""
    return [list(mu.items()) for mu in result]


@given(ops=operations, initial=st.lists(triples, max_size=10, unique=True))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_policies_agree_and_cache_per_policy(ops, initial):
    base = np.array(sorted(set(initial)), dtype=np.int64).reshape(-1, 3)
    graph = Graph(base, n_nodes=N_NODES, n_predicates=N_PREDICATES)
    indexes = {
        policy: DynamicRingIndex(
            graph, buffer_threshold=6, auto_compact=False, policy=policy
        )
        for policy in POLICIES
    }
    cached = {
        policy: CachedQuerySystem(index) for policy, index in indexes.items()
    }

    for step, (op, arg) in enumerate(ops):
        if op == "insert":
            for system in cached.values():
                system.insert(*arg)
        elif op == "delete":
            for system in cached.values():
                system.delete(*arg)
        elif op == "compact":
            for index in indexes.values():
                index._compact()
        else:
            reference = None
            for policy in POLICIES:
                fresh = indexes[policy].evaluate(arg)
                # Same multiset across every policy, always.
                if reference is None:
                    reference = canon(fresh)
                else:
                    assert canon(fresh) == reference, (
                        f"step {step}: policy {policy} changed the answer "
                        f"of {arg!r}"
                    )
                # Per-policy determinism and byte-identical cached serves
                # (asked twice: the second is usually a hit).
                for _ in range(2):
                    served = cached[policy].evaluate(arg)
                    assert byte_rows(served) == byte_rows(fresh), (
                        f"step {step}: {policy} cached serve diverged "
                        f"on {arg!r}"
                    )
