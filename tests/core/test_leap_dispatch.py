"""Exhaustive leap-dispatch coverage: every (state, position) case.

The ring iterator's correctness rests on the Lemma 3.7 dispatch table —
backward / forward / free — being exercised for *every* combination of
bound attributes and target position that can arise at arity 3.
"""

import pytest

from repro.core.iterators import RingIterator
from repro.core.ring import Ring
from repro.graph import TriplePattern, Var
from repro.graph.generators import random_graph
from repro.graph.model import O, P, S

X, Y, Z = Var("x"), Var("y"), Var("z")


@pytest.fixture(scope="module")
def graph():
    return random_graph(150, n_nodes=10, n_predicates=4, seed=9)


@pytest.fixture(scope="module")
def ring(graph):
    return Ring(graph)


def expected_leap(graph, constants, pos, c):
    values = sorted(
        {
            t[pos]
            for t in graph.triples
            if all(t[p] == v for p, v in constants.items())
        }
    )
    return next((int(v) for v in values if v >= c), None)


ALL_VARS = {S: X, P: Y, O: Z}


def make_pattern(bound: dict[int, int]) -> TriplePattern:
    terms = []
    for pos in (S, P, O):
        terms.append(bound.get(pos, ALL_VARS[pos]))
    return TriplePattern(*terms)


class TestDispatchTable:
    """All 3 free-position cases x all bound-set shapes."""

    @pytest.mark.parametrize("target", [S, P, O])
    def test_nothing_bound(self, graph, ring, target):
        it = RingIterator(ring, make_pattern({}))
        assert it.leap_direction(ALL_VARS[target]) == "free"
        for c in range(0, 11, 2):
            assert it.leap(ALL_VARS[target], c) == expected_leap(
                graph, {}, target, c
            )

    @pytest.mark.parametrize("bound_pos", [S, P, O])
    def test_one_bound_both_directions(self, graph, ring, bound_pos):
        value = int(graph.triples[3][bound_pos])
        it = RingIterator(ring, make_pattern({bound_pos: value}))
        directions = set()
        for target in (S, P, O):
            if target == bound_pos:
                continue
            directions.add(it.leap_direction(ALL_VARS[target]))
            for c in range(0, 11, 3):
                assert it.leap(ALL_VARS[target], c) == expected_leap(
                    graph, {bound_pos: value}, target, c
                ), (bound_pos, target, c)
        # One free position leaps backwards, the other forwards.
        assert directions == {"backward", "forward"}

    @pytest.mark.parametrize(
        "bound_positions", [(S, P), (P, O), (S, O)], ids=["sp", "po", "so"]
    )
    def test_two_bound_always_backward(self, graph, ring, bound_positions):
        row = graph.triples[7]
        constants = {pos: int(row[pos]) for pos in bound_positions}
        it = RingIterator(ring, make_pattern(constants))
        (target,) = [p for p in (S, P, O) if p not in bound_positions]
        assert it.leap_direction(ALL_VARS[target]) == "backward"
        for c in range(0, 11, 2):
            assert it.leap(ALL_VARS[target], c) == expected_leap(
                graph, constants, target, c
            )

    def test_bind_transitions_match_fresh_iterators(self, graph, ring):
        """Binding incrementally must equal constructing from constants."""
        row = graph.triples[11]
        s, p, o = (int(v) for v in row)
        it = RingIterator(ring, make_pattern({}))
        it.bind(Y, p)  # predicate first (like LTJ often does)
        fresh = RingIterator(ring, make_pattern({P: p}))
        for target in (S, O):
            for c in range(0, 11, 3):
                assert it.leap(ALL_VARS[target], c) == fresh.leap(
                    ALL_VARS[target], c
                )
        it.bind(X, s)  # now subject: forward bind from the P run
        fresh2 = RingIterator(ring, make_pattern({S: s, P: p}))
        for c in range(0, 11, 2):
            assert it.leap(Z, c) == fresh2.leap(Z, c)
        it.unbind(X)
        it.unbind(Y)
        assert it.count() == ring.n
