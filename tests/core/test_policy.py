"""Unit tests of the adaptive variable-selection policies.

Covers the policy surface end to end: validation, the per-query
decision-log stats, the explicit estimate-miss fallback, the counted
degradation to static order when the ranking itself breaks (chaos site
``plan.rerank``), the ``first_var`` pinning contract of the parallel
driver, and the multiset/byte-identity guarantees across policies.
"""

import pytest

from repro.core import RingIndex
from repro.core.dynamic import DynamicRingIndex
from repro.core.ltj import DECISION_LOG_CAP, POLICIES, rank_candidates
from repro.graph.generators import skewed_graph, wikidata_like
from repro.graph.model import BasicGraphPattern, TriplePattern, Var
from repro.reliability.faults import Fault, InjectedFault, inject_faults

S, A, B = Var("s"), Var("a"), Var("b")

TWO_WING = BasicGraphPattern(
    [TriplePattern(S, 0, A), TriplePattern(S, 1, B), TriplePattern(A, 2, B)]
)


def canon(result):
    """Policy-independent multiset encoding (binding order varies)."""
    return sorted(
        tuple(sorted((v.name, c) for v, c in mu.items())) for mu in result
    )


@pytest.fixture(scope="module")
def graph():
    return skewed_graph(n_hubs=12, fan=6, noise=80, seed=1)


def test_unknown_policy_rejected(graph):
    with pytest.raises(ValueError, match="unknown policy"):
        RingIndex(graph, policy="greedy")


def test_policy_property_exposed(graph):
    for policy in POLICIES:
        assert RingIndex(graph, policy=policy).policy == policy


def test_all_policies_same_multiset(graph):
    reference = canon(RingIndex(graph).evaluate(TWO_WING))
    assert reference, "workload query must have solutions"
    for policy in POLICIES:
        rows = canon(RingIndex(graph, policy=policy).evaluate(TWO_WING))
        assert rows == reference, policy


def test_per_policy_enumeration_deterministic(graph):
    for policy in POLICIES:
        index = RingIndex(graph, policy=policy)
        first = [dict(mu) for mu in index.evaluate(TWO_WING)]
        second = [dict(mu) for mu in index.evaluate(TWO_WING)]
        assert first == second, policy


def test_adaptive_diverges_and_logs_decisions(graph):
    stats: dict = {}
    index = RingIndex(graph, policy="adaptive")
    list(index.evaluate(TWO_WING, stats=stats))
    assert stats["policy"] == "adaptive"
    assert stats["reranks"] > 0
    # The workload is built so no static order survives: half the hubs
    # must flip the elimination order of ?a / ?b.
    assert stats["rerank_divergence"] > 0
    assert stats["rerank_fallbacks"] == 0
    assert stats["estimate_misses"] == 0
    log = stats["decision_log"]
    assert 0 < len(log) <= DECISION_LOG_CAP
    for depth, name, estimate in log:
        assert isinstance(depth, int) and depth >= 0
        assert name in {"s", "a", "b"}
        assert isinstance(estimate, int) and estimate >= 0


def test_static_policy_keeps_plain_stats(graph):
    stats: dict = {}
    list(RingIndex(graph).evaluate(TWO_WING, stats=stats))
    assert stats["policy"] == "static"
    assert "reranks" not in stats  # no dynamic machinery on the static path


def test_rerank_fault_degrades_to_static_order(graph):
    reference = canon(RingIndex(graph).evaluate(TWO_WING))
    index = RingIndex(graph, policy="adaptive")
    stats: dict = {}
    fault = Fault("plan.rerank", probability=1.0, error=InjectedFault)
    with inject_faults(fault, seed=3):
        rows = canon(index.evaluate(TWO_WING, stats=stats))
    assert fault.fired >= 1
    assert rows == reference
    assert stats["rerank_fallbacks"] >= 1
    # After the first failure the rest of the query runs statically:
    # exactly one fault fires per query, not one per depth.
    assert fault.fired == 1


def test_estimate_miss_counted_on_union_iterators():
    # A dynamic ring with a non-empty buffer serves _UnionIterators,
    # which expose no distinct_estimate — the engine must count the
    # explicit fallback instead of silently treating None as a bound.
    graph = wikidata_like(300, seed=2)
    index = DynamicRingIndex(graph, buffer_threshold=64, auto_compact=False,
                             policy="distinct")
    index.insert(0, 0, 1)  # keep the write buffer non-empty
    bgp = BasicGraphPattern(
        [TriplePattern(S, 0, A), TriplePattern(A, 1, B), TriplePattern(S, 2, B)]
    )
    stats: dict = {}
    rows = canon(index.evaluate(bgp, stats=stats))
    reference = DynamicRingIndex(graph, buffer_threshold=64,
                                 auto_compact=False)
    reference.insert(0, 0, 1)
    assert rows == canon(reference.evaluate(bgp))
    assert stats["estimate_misses"] > 0


def test_first_var_requires_dynamic_policy(graph):
    static = RingIndex(graph)._engine
    encoded = RingIndex(graph).graph.encode_bgp(TWO_WING)
    with pytest.raises(ValueError, match="first_var requires"):
        list(static.evaluate(encoded, first_var=S))


def test_first_var_must_be_shared(graph):
    engine = RingIndex(graph, policy="adaptive")._engine
    encoded = RingIndex(graph).graph.encode_bgp(TWO_WING)
    with pytest.raises(ValueError, match="shared join variable"):
        list(engine.evaluate(encoded, first_var=Var("nope")))


def test_first_var_pins_only_depth_zero(graph):
    # Pinning the policy's own depth-0 choice reproduces the free
    # enumeration byte for byte (the parallel driver's contract).
    index = RingIndex(graph, policy="adaptive")
    engine = index._engine
    encoded = index.graph.encode_bgp(TWO_WING)
    free = [dict(mu) for mu in engine.evaluate(encoded)]
    analysed = engine._analyse(encoded, None)
    _live, by_var, order, _lonely = analysed
    v0 = engine.first_variable(order, by_var)
    # An equal-but-distinct Var must re-anchor across the pickle seam.
    pinned = [dict(mu) for mu in engine.evaluate(encoded, first_var=Var(v0.name))]
    assert pinned == free


def test_plan_reports_policy_and_first_variable(graph):
    index = RingIndex(graph, policy="adaptive")
    plan = index.explain(TWO_WING)
    assert plan["policy"] == "adaptive"
    assert plan["first_variable"] in plan["variable_order"]
    static_plan = RingIndex(graph).explain(TWO_WING)
    assert static_plan["policy"] == "static"
    assert static_plan["first_variable"] == static_plan["variable_order"][0]


def test_rank_candidates_tie_breaks_on_static_rank(graph):
    # "adaptive" fills root_distinct, which the "distinct" call needs.
    index = RingIndex(graph, policy="adaptive")
    engine = index._engine
    encoded = index.graph.encode_bgp(TWO_WING)
    _live, by_var, order, _lonely = engine._analyse(encoded, None)
    state = engine._policy_state(order, by_var)
    var, estimate = rank_candidates(
        "rowcount", list(order), by_var, state.static_rank, state.root_distinct
    )
    assert var in order
    assert estimate >= 0
    # Ties must resolve to the earliest static rank, never by name.
    tied, _ = rank_candidates(
        "distinct", list(reversed(order)), by_var,
        state.static_rank, {k: 1 for k in state.root_distinct},
    )
    assert tied is order[0]
