"""The batch-leap LTJ path: equivalence, accounting, memo and faults.

The ``use_batch`` fast path must be *observably identical* to the
scalar walk except for speed: same solution sets (differential vs naive
evaluation), same resource-budget semantics (bulk rows charge ops via
``tick_many``), and same failure behaviour under injected faults.  The
ring-level extras (LRU leap memo, perf counters) are covered here too.
"""

import numpy as np
import pytest

from repro.core import QueryTimeout, RingIndex
from repro.core.interface import QueryExecutionError
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import random_graph
from repro.perf import KERNEL_COUNTERS, measuring
from repro.reliability.budget import ResourceBudget
from repro.reliability.faults import Fault, InjectedFault, inject_faults
from tests.util import as_solution_set, naive_evaluate

X, Y, Z = Var("x"), Var("y"), Var("z")

SHAPES = [
    BasicGraphPattern([TriplePattern(X, 0, Y)]),
    BasicGraphPattern([TriplePattern(X, Y, Z)]),
    BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)]),
    BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(X, 1, Z)]),
    BasicGraphPattern(
        [
            TriplePattern(X, 0, Y),
            TriplePattern(Y, 0, Z),
            TriplePattern(Z, 0, X),
        ]
    ),
    BasicGraphPattern([TriplePattern(X, X, Y)]),  # repeated variable
    BasicGraphPattern([TriplePattern(X, 0, X)]),
]


@pytest.fixture(scope="module")
def graph():
    return random_graph(400, n_nodes=25, n_predicates=3, seed=11)


@pytest.fixture(scope="module")
def batch_index(graph):
    return RingIndex(graph)


@pytest.fixture(scope="module")
def scalar_index(graph):
    return RingIndex(graph, use_batch=False)


@pytest.mark.parametrize("bgp", SHAPES, ids=[repr(s) for s in SHAPES])
def test_batch_matches_scalar_and_naive(graph, batch_index, scalar_index, bgp):
    batch = as_solution_set(batch_index.evaluate(bgp))
    scalar = as_solution_set(scalar_index.evaluate(bgp))
    assert batch == scalar
    assert batch == naive_evaluate(graph, bgp)


def test_bulk_path_fires_and_is_ablatable(batch_index, scalar_index):
    """Lonely-variable queries go through bulk decode iff use_batch."""
    bgp = BasicGraphPattern([TriplePattern(X, 0, Y)])
    stats: dict = {}
    batch_index.evaluate(bgp, stats=stats)
    assert stats["bulk_rows"] > 0
    stats = {}
    scalar_index.evaluate(bgp, stats=stats)
    assert stats["bulk_rows"] == 0


def test_bulk_rows_charge_the_op_budget(batch_index):
    """Every bulk-decoded row ticks the budget (tick_many), so a tiny
    op cap must fire even when all rows come from one batch call."""
    bgp = BasicGraphPattern([TriplePattern(X, Y, Z)])
    with pytest.raises(QueryTimeout):
        batch_index.evaluate(bgp, budget=ResourceBudget(max_ops=10))
    # ...and a roomy budget records the actual row count.
    budget = ResourceBudget(max_ops=10**9)
    result = batch_index.evaluate(bgp, budget=budget)
    assert budget.ops >= len(result)


def test_perf_counters_observe_batch_kernels(batch_index):
    bgp = BasicGraphPattern([TriplePattern(X, 0, Y)])
    with measuring():
        n = len(batch_index.evaluate(bgp))
        snapshot = KERNEL_COUNTERS.snapshot()
    assert not KERNEL_COUNTERS.enabled  # restored on exit
    assert snapshot["ring.decode_range"]["ops"] >= n
    assert any(k.startswith("bits.") for k in snapshot)


def test_leap_memo_hits_on_repetition(graph):
    index = RingIndex(graph)
    ring = index.ring
    ring.clear_leap_memo()
    bgp = BasicGraphPattern(
        [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z), TriplePattern(Z, 0, X)]
    )
    index.evaluate(bgp)
    first = ring.leap_memo_stats()
    index.evaluate(bgp)  # identical query: previously-computed leaps recur
    second = ring.leap_memo_stats()
    assert second["hits"] > first["hits"]
    ring.clear_leap_memo()
    cleared = ring.leap_memo_stats()
    assert (cleared["hits"], cleared["misses"], cleared["entries"]) == (0, 0, 0)


def test_leap_memo_bounded(graph):
    index = RingIndex(graph, leap_memo_size=4)
    bgp = BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)])
    index.evaluate(bgp)
    stats = index.ring.leap_memo_stats()
    assert stats["capacity"] == 4
    assert stats["entries"] <= 4


@pytest.mark.parametrize(
    "site", ["wavelet.extract_at", "bitvector.rank_many", "wavelet.rank_many"]
)
def test_batch_path_respects_injected_faults(batch_index, site):
    """Errors injected into the batch kernels surface as typed failures,
    never as silent wrong answers (chaos invariant on the fast path)."""
    bgp = BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z)])
    reference = as_solution_set(batch_index.evaluate(bgp))
    injector = inject_faults(
        Fault(site, probability=1.0, error=InjectedFault), seed=3
    )
    with injector:
        try:
            result = as_solution_set(batch_index.evaluate(bgp))
        except QueryExecutionError:
            result = None
    if injector.fired[site]:
        assert result is None or result == reference
    else:
        assert result == reference


def test_batch_results_decode_to_ints(batch_index):
    """Bulk-decoded bindings are Python ints, not numpy scalars."""
    bgp = BasicGraphPattern([TriplePattern(X, 0, Y)])
    for mu in batch_index.evaluate(bgp, limit=5):
        for value in mu.values():
            assert type(value) is int
            assert not isinstance(value, np.integer)
