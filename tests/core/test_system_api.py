"""Tests for the packaged query-system API: projection, decode, counts."""

import pytest

from repro.core import RingIndex
from repro.graph import Var, parse_bgp
from repro.graph.generators import nobel_graph

X, Y, Z = Var("x"), Var("y"), Var("z")


@pytest.fixture(scope="module")
def nobel():
    return RingIndex(nobel_graph())


class TestProjection:
    def test_project_deduplicates(self, nobel):
        # Without projection: 9 (Nobel, ?, ?) solutions; projecting on
        # the predicate leaves the 2 distinct predicates of Nobel.
        full = nobel.evaluate("Nobel ?p ?x")
        assert len(full) == 9
        projected = nobel.evaluate("Nobel ?p ?x", project=[Var("p")])
        assert len(projected) == 2

    def test_project_with_decode(self, nobel):
        out = nobel.evaluate("Nobel ?p ?x", project=[Var("p")], decode=True)
        assert sorted(m["p"] for m in out) == ["nom", "win"]

    def test_project_respects_limit(self, nobel):
        out = nobel.evaluate("?x ?p ?y", project=[Var("p")], limit=2)
        assert len(out) == 2

    def test_project_on_join(self, nobel):
        # Who advises a laureate? Project away everything else.
        out = nobel.evaluate(
            "Nobel win ?y . ?z adv ?y", project=[Var("z")], decode=True
        )
        assert sorted(m["z"] for m in out) == ["Bohr", "Thomson", "Wheeler"]


class TestEvaluateConventions:
    def test_string_and_parsed_agree(self, nobel):
        text = "?x adv ?y"
        assert nobel.evaluate(text) == nobel.evaluate(parse_bgp(text))

    def test_decode_variable_predicate_role(self, nobel):
        out = nobel.evaluate("Bohr ?p ?o", decode=True)
        assert out == [{"p": "adv", "o": "Thomson"}]

    def test_count(self, nobel):
        assert nobel.count("?x win ?y") == 4
        assert nobel.count("?x madeup ?y") == 0

    def test_bytes_per_triple_consistent(self, nobel):
        assert nobel.bytes_per_triple() == pytest.approx(
            nobel.size_in_bits() / 8 / 13
        )

    def test_triple_accessor(self, nobel):
        assert len(nobel.triple(0)) == 3
