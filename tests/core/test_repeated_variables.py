"""Regression tests for variables repeated across triple-pattern slots.

A variable occurring in both a node slot and the predicate slot joins
two id *spaces* of different sizes; the hypothesis fuzzer caught an
index-out-of-bounds here (a node id probed into the predicate C array).
All engines must treat such values as simply never matching.
"""

import numpy as np
import pytest

from repro.baselines import FlatTrieIndex, JenaLTJIndex
from repro.core import CompressedRingIndex, RingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from tests.util import as_solution_set, naive_evaluate

X, Y = Var("x"), Var("y")

ENGINES = [RingIndex, CompressedRingIndex, FlatTrieIndex, JenaLTJIndex]


def graph_with_sp_match():
    # Node ids up to 5, predicate ids up to 2; triple (1, 1, 0) matches
    # (?x ?x ?y) while (4, 0, 0) must not (4 exceeds the pred universe).
    return Graph(
        np.array([[1, 1, 0], [4, 0, 0], [2, 0, 2]]), n_nodes=6, n_predicates=3
    )


@pytest.mark.parametrize("cls", ENGINES, ids=lambda c: c.name)
class TestCrossSpaceRepetition:
    def test_subject_equals_predicate(self, cls):
        g = graph_with_sp_match()
        bgp = BasicGraphPattern([TriplePattern(X, X, Y)])
        index = cls(g)
        assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(g, bgp)

    def test_predicate_equals_object(self, cls):
        g = Graph(
            np.array([[0, 2, 2], [3, 1, 5], [5, 0, 0]]),
            n_nodes=6,
            n_predicates=3,
        )
        bgp = BasicGraphPattern([TriplePattern(Y, X, X)])
        index = cls(g)
        assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(g, bgp)

    def test_subject_equals_object(self, cls):
        g = Graph(
            np.array([[4, 0, 4], [4, 1, 2], [0, 0, 1]]),
            n_nodes=6,
            n_predicates=3,
        )
        bgp = BasicGraphPattern([TriplePattern(X, Y, X)])
        index = cls(g)
        assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(g, bgp)

    def test_all_three_equal(self, cls):
        g = Graph(
            np.array([[1, 1, 1], [2, 2, 2], [2, 1, 2], [5, 0, 5]]),
            n_nodes=6,
            n_predicates=3,
        )
        bgp = BasicGraphPattern([TriplePattern(X, X, X)])
        index = cls(g)
        assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(g, bgp)

    def test_repeated_with_join(self, cls):
        g = graph_with_sp_match()
        bgp = BasicGraphPattern(
            [TriplePattern(X, X, Y), TriplePattern(Y, 0, Var("z"))]
        )
        index = cls(g)
        assert as_solution_set(index.evaluate(bgp)) == naive_evaluate(g, bgp)

    def test_falsifying_example_from_fuzzer(self, cls):
        g = Graph(np.array([[4, 0, 0]]), n_nodes=6, n_predicates=3)
        bgp = BasicGraphPattern([TriplePattern(X, X, 0)])
        assert cls(g).evaluate(bgp) == []
