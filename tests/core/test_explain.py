"""Tests for the query-plan introspection API (§4.3 statistics)."""

import pytest

from repro.core import RingIndex
from repro.graph import Var
from repro.graph.generators import nobel_graph


@pytest.fixture(scope="module")
def nobel():
    return RingIndex(nobel_graph())


class TestExplain:
    def test_figure4_plan(self, nobel):
        plan = nobel.explain("?x nom ?y . ?x win ?z . ?z adv ?y")
        # All three variables occur in two patterns: none lonely.
        assert plan["lonely_variables"] == []
        assert sorted(v.name for v in plan["variable_order"]) == ["x", "y", "z"]
        assert plan["uses_lonely_optimisation"]
        assert plan["uses_cardinality_ordering"]

    def test_cardinalities_are_exact(self, nobel):
        plan = nobel.explain("?x nom ?y . ?x win ?z . ?z adv ?y")
        cards = sorted(plan["pattern_cardinalities"].values())
        assert cards == [4, 4, 5]  # adv: 4, win: 4, nom: 5

    def test_selective_pattern_ordered_first(self, nobel):
        # adv (4 triples) is more selective than nom (5): its variables
        # should be eliminated before the nom-only parts.
        plan = nobel.explain("?x nom ?y . ?z adv ?y")
        assert plan["variable_order"][0] == Var("y")

    def test_lonely_detection(self, nobel):
        plan = nobel.explain("?x nom ?y . ?x win ?z")
        assert set(plan["lonely_variables"]) == {Var("y"), Var("z")}
        assert plan["variable_order"] == [Var("x")]

    def test_single_pattern_all_lonely(self, nobel):
        plan = nobel.explain("?x adv ?y")
        assert plan["variable_order"] == []
        assert set(plan["lonely_variables"]) == {Var("x"), Var("y")}

    def test_unknown_constant(self, nobel):
        plan = nobel.explain("?x madeup ?y")
        assert plan.get("empty")

    def test_ordering_flag_off(self):
        index = RingIndex(nobel_graph(), use_ordering=False)
        plan = index.explain("?x nom ?y . ?z adv ?y . ?z win ?x")
        assert not plan["uses_cardinality_ordering"]
        # Order falls back to first-appearance order.
        assert [v.name for v in plan["variable_order"]] == ["x", "y", "z"]

    def test_lonely_flag_off(self):
        index = RingIndex(nobel_graph(), use_lonely=False)
        plan = index.explain("?x nom ?y")
        assert plan["lonely_variables"] == []
        assert len(plan["variable_order"]) == 2
