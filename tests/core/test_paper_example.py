"""The paper's worked examples, asserted end-to-end at the ring level.

Complements ``tests/text/test_bwt.py`` (which checks the literal
Definition 3.1 construction): here the *production* ring must reproduce
Figure 6's zones, Example 3.2's LF walk, Figure 4's solutions and the
§5.2.1-style space relations on the Nobel graph.
"""

import pytest

from repro.core import CompressedRingIndex, RingIndex
from repro.core.ring import Ring
from repro.graph.generators import NOBEL_TRIPLES, nobel_graph
from repro.graph.model import O, P, S


@pytest.fixture(scope="module")
def graph():
    return nobel_graph()


@pytest.fixture(scope="module")
def ring(graph):
    return Ring(graph)


class TestFigure6Zones:
    """Figure 6 with our dictionary ids (the paper's 1-based mapping
    becomes 0-based label-interning order here)."""

    def test_zone_s_holds_objects_in_spo_order(self, graph, ring):
        triples = sorted(
            (
                graph.dictionary.node_id(s),
                graph.dictionary.predicate_id(p),
                graph.dictionary.node_id(o),
            )
            for s, p, o in NOBEL_TRIPLES
        )
        assert ring.zone_sequence(S).to_numpy().tolist() == [
            t[2] for t in triples
        ]

    def test_c_arrays_partition_each_zone(self, ring):
        for attr in (S, P, O):
            c = ring.c_array(attr)
            assert c[-1] == 13

    def test_adv_has_four_triples(self, graph, ring):
        adv = graph.dictionary.predicate_id("adv")
        assert ring.count_pattern({P: adv}) == 4

    def test_nobel_subject_bucket(self, graph, ring):
        nobel = graph.dictionary.node_id("Nobel")
        assert ring.count_pattern({S: nobel}) == 9  # 5 nom + 4 win


class TestExample32:
    """The triple-recovery walk of Example 3.2 (first sorted triple)."""

    def test_first_triple_is_bohr_adv_thomson(self, graph, ring):
        s, p, o = ring.triple(0)
        d = graph.dictionary
        first = min(
            (
                d.node_id(s_),
                d.predicate_id(p_),
                d.node_id(o_),
            )
            for s_, p_, o_ in NOBEL_TRIPLES
        )
        assert (s, p, o) == first

    def test_lf_cycle_returns_home(self, graph, ring):
        """LF*(LF*(LF*(t))) = t for every triple (Lemma 3.3)."""
        for i in range(13):
            o = ring.zone_sequence(S)[i]
            j = int(ring.c_array(O)[o]) + ring.zone_sequence(S).rank(o, i)
            p = ring.zone_sequence(O)[j]
            k = int(ring.c_array(P)[p]) + ring.zone_sequence(O).rank(p, j)
            s = ring.zone_sequence(P)[k]
            back = int(ring.c_array(S)[s]) + ring.zone_sequence(P).rank(s, k)
            assert back == i


class TestFigure4:
    def test_solutions_decoded(self, graph):
        index = RingIndex(graph)
        out = index.evaluate("?x nom ?y . ?x win ?z . ?z adv ?y", decode=True)
        assert sorted((m["x"], m["y"], m["z"]) for m in out) == [
            ("Nobel", "Strutt", "Thomson"),
            ("Nobel", "Thomson", "Bohr"),
            ("Nobel", "Wheeler", "Thorne"),
        ]

    def test_compressed_identical(self, graph):
        plain = RingIndex(graph)
        comp = CompressedRingIndex(graph)
        q = "?x nom ?y . ?x win ?z . ?z adv ?y"
        assert plain.evaluate(q, decode=True) == comp.evaluate(q, decode=True)


class TestSpaceClaims:
    """§3.1.2 / Theorem 3.4 on the miniature graph."""

    def test_ring_replaces_graph(self, graph, ring):
        recovered = {ring.triple(i) for i in range(13)}
        expected = {tuple(t) for t in graph.triples}
        assert recovered == expected

    def test_index_size_scales_with_packed(self):
        from repro.graph.generators import wikidata_like

        small = wikidata_like(2_000, seed=0)
        large = wikidata_like(8_000, seed=0)
        ratio = Ring(large).size_in_bits() / Ring(small).size_in_bits()
        # Quadrupling n should roughly quadruple the index (linear size).
        assert 2.5 < ratio < 6.5
