"""Tests for the C-array layouts (plain vs Elias–Fano, paper footnote 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counts import (
    EliasFanoCounts,
    PackedCounts,
    counts_from_column,
    make_counts,
)
from repro.core.ring import Ring
from repro.graph.generators import nobel_graph, wikidata_like

LAYOUTS = [PackedCounts, EliasFanoCounts]


def reference_ops(cumulative):
    c = np.asarray(cumulative)

    def access(v):
        return int(c[v])

    def bucket_of(q):
        return int(np.searchsorted(c, q, side="right")) - 1

    def next_nonempty(v):
        for i in range(max(v, 0), len(c) - 1):
            if c[i + 1] > c[i]:
                return i
        return None

    return access, bucket_of, next_nonempty


class TestCountsFromColumn:
    def test_basic(self):
        out = counts_from_column(np.array([0, 0, 2, 3]), sigma=5)
        assert out.tolist() == [0, 2, 2, 3, 4, 4]

    def test_empty_column(self):
        assert counts_from_column(np.array([], dtype=np.int64), 3).tolist() == [
            0, 0, 0, 0,
        ]


@pytest.mark.parametrize("layout", LAYOUTS, ids=lambda c: c.__name__)
class TestLayouts:
    def test_rejects_decreasing(self, layout):
        with pytest.raises(ValueError):
            layout(np.array([3, 1]))

    def test_matches_reference(self, layout):
        rng = np.random.default_rng(0)
        column = rng.integers(0, 40, size=500)
        cumulative = counts_from_column(column, sigma=40)
        counts = layout(cumulative)
        access, bucket_of, next_nonempty = reference_ops(cumulative)
        assert len(counts) == 41
        for v in range(41):
            assert counts.access(v) == access(v)
        for q in range(0, 500, 7):
            assert counts.bucket_of(q) == bucket_of(q)
        for c in range(42):
            assert counts.next_nonempty(c) == next_nonempty(c)

    def test_sparse_alphabet(self, layout):
        # Most values absent: long flat stretches in the cumulative array.
        column = np.array([3, 3, 3, 17, 30])
        cumulative = counts_from_column(column, sigma=32)
        counts = layout(cumulative)
        assert counts.next_nonempty(0) == 3
        assert counts.next_nonempty(4) == 17
        assert counts.next_nonempty(18) == 30
        assert counts.next_nonempty(31) is None
        assert counts.bucket_of(0) == 3
        assert counts.bucket_of(3) == 17
        assert counts.bucket_of(4) == 30

    def test_raw_roundtrip(self, layout):
        cumulative = counts_from_column(np.array([1, 1, 4]), sigma=6)
        assert layout(cumulative).raw().tolist() == cumulative.tolist()


class TestMakeCounts:
    def test_dispatch(self):
        col = np.array([0, 1, 1])
        assert isinstance(make_counts(col, 2, succinct=False), PackedCounts)
        assert isinstance(make_counts(col, 2, succinct=True), EliasFanoCounts)


class TestSuccinctRing:
    def test_same_answers(self):
        g = nobel_graph()
        from repro.core import RingIndex

        plain = RingIndex(g)
        succinct = RingIndex(g, succinct_counts=True)
        q = "?x nom ?y . ?x win ?z . ?z adv ?y"
        assert plain.evaluate(q, decode=True) == succinct.evaluate(
            q, decode=True
        )

    def test_triples_recoverable(self):
        g = wikidata_like(300, seed=0)
        ring = Ring(g, succinct_counts=True)
        assert [ring.triple(i) for i in range(ring.n)] == [
            tuple(t) for t in g.triples
        ]

    def test_saves_space_on_sparse_universes(self):
        # Many nodes, few distinct per column: EF C arrays much smaller.
        g = wikidata_like(2000, n_nodes=60_000, seed=1)
        plain = Ring(g)
        succinct = Ring(g, succinct_counts=True)
        assert succinct.size_in_bits() < plain.size_in_bits()


@given(st.lists(st.integers(0, 20), min_size=0, max_size=150))
@settings(max_examples=50, deadline=None)
def test_property_layouts_agree(column):
    cumulative = counts_from_column(np.array(column, dtype=np.int64), sigma=21)
    packed = PackedCounts(cumulative)
    ef = EliasFanoCounts(cumulative)
    for v in range(22):
        assert packed.access(v) == ef.access(v)
    for q in range(len(column) + 1):
        assert packed.bucket_of(q) == ef.bucket_of(q)
    for c in range(23):
        assert packed.next_nonempty(c) == ef.next_nonempty(c)
