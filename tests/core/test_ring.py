"""Tests for the Ring structure itself: zones, LF, ranges, leaps, triples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import Ring, next_attr, prev_attr
from repro.graph.dataset import Graph
from repro.graph.generators import nobel_graph, random_graph, wikidata_like
from repro.graph.model import O, P, S


@pytest.fixture(scope="module")
def nobel_ring():
    return Ring(nobel_graph())


class TestCycle:
    def test_prev_next_inverse(self):
        for attr in (S, P, O):
            assert prev_attr(next_attr(attr)) == attr
            assert next_attr(prev_attr(attr)) == attr

    def test_cycle_order(self):
        # Backwards from s is o, from o is p, from p is s (§3.1).
        assert prev_attr(S) == O
        assert prev_attr(O) == P
        assert prev_attr(P) == S


class TestConstruction:
    def test_zone_sequences_match_definition(self):
        """DESIGN.md §6.1: zone contents = per-sort columns, and they agree
        with the literal Definition 3.1 bended BWT (Lemma 3.3 bridge)."""
        g = nobel_graph()
        ring = Ring(g)
        t = g.triples
        # Zone S: objects in (s,p,o) order.
        assert ring.zone_sequence(S).to_numpy().tolist() == t[:, O].tolist()
        pos = t[np.lexsort((t[:, S], t[:, O], t[:, P]))]
        assert ring.zone_sequence(P).to_numpy().tolist() == pos[:, S].tolist()
        osp = t[np.lexsort((t[:, P], t[:, S], t[:, O]))]
        assert ring.zone_sequence(O).to_numpy().tolist() == osp[:, P].tolist()

    def test_matches_literal_bended_bwt(self):
        """The split zones equal the Definition 3.1 bended BWT zones."""
        from repro.text.bwt import bended_bwt, triple_text

        g = wikidata_like(300, seed=2)
        universe = max(g.n_nodes, g.n_predicates)
        text = triple_text(g.triples, universe)
        bstar = bended_bwt(text)
        n = g.n_triples
        ring = Ring(g)
        assert ring.zone_sequence(S).to_numpy().tolist() == (
            bstar[:n] - 2 * universe
        ).tolist()
        assert ring.zone_sequence(P).to_numpy().tolist() == bstar[n : 2 * n].tolist()
        assert ring.zone_sequence(O).to_numpy().tolist() == (
            bstar[2 * n :] - universe
        ).tolist()

    def test_empty_graph(self):
        ring = Ring(Graph(np.zeros((0, 3))))
        assert ring.n == 0
        assert ring.pattern_range({S: 0}) is None or ring.n == 0

    def test_c_arrays_are_cumulative(self, nobel_ring):
        for attr in (S, P, O):
            c = nobel_ring.c_array(attr)
            assert c[0] == 0
            assert c[-1] == nobel_ring.n
            assert (np.diff(c) >= 0).all()


class TestTripleRetrieval:
    def test_recovers_every_triple(self):
        g = wikidata_like(500, seed=1)
        ring = Ring(g)
        recovered = [ring.triple(i) for i in range(ring.n)]
        assert recovered == [tuple(t) for t in g.triples]

    def test_recovers_compressed(self):
        g = wikidata_like(200, seed=4)
        ring = Ring(g, compressed=True)
        assert [ring.triple(i) for i in range(ring.n)] == [
            tuple(t) for t in g.triples
        ]

    def test_out_of_range(self, nobel_ring):
        with pytest.raises(IndexError):
            nobel_ring.triple(13)
        with pytest.raises(IndexError):
            nobel_ring.triple(-1)

    def test_contains(self, nobel_ring):
        g = nobel_graph()
        for t in g:
            assert nobel_ring.contains(*t)
        assert not nobel_ring.contains(0, 0, 0) or (0, 0, 0) in g


class TestPatternRange:
    """Lemma 3.6: |range| equals the number of matching triples."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_counts_match_naive_all_masks(self, seed):
        g = random_graph(120, n_nodes=12, n_predicates=4, seed=seed)
        ring = Ring(g)
        triples = [tuple(t) for t in g.triples]
        rng = np.random.default_rng(seed)
        for _ in range(60):
            s = int(rng.integers(0, 12))
            p = int(rng.integers(0, 4))
            o = int(rng.integers(0, 12))
            for mask in range(1, 8):
                constants = {}
                if mask & 1:
                    constants[S] = s
                if mask & 2:
                    constants[P] = p
                if mask & 4:
                    constants[O] = o
                expected = sum(
                    1
                    for t in triples
                    if all(t[pos] == v for pos, v in constants.items())
                )
                assert ring.count_pattern(constants) == expected, constants

    def test_empty_constants_is_everything(self, nobel_ring):
        assert nobel_ring.count_pattern({}) == 13

    def test_absent_constant(self, nobel_ring):
        # Predicate id 3 does not exist (only 0..2).
        assert nobel_ring.pattern_range({P: 3}) is None


class TestLeaps:
    def test_next_value(self):
        g = Graph(np.array([[0, 0, 5], [0, 0, 7], [3, 1, 5]]))
        ring = Ring(g)
        # Subjects present: 0, 3.
        assert ring.next_value(S, 0) == 0
        assert ring.next_value(S, 1) == 3
        assert ring.next_value(S, 4) is None
        # Objects present: 5, 7.
        assert ring.next_value(O, 0) == 5
        assert ring.next_value(O, 6) == 7
        assert ring.next_value(O, 8) is None

    def test_backward_leap_matches_naive(self):
        g = random_graph(80, n_nodes=10, n_predicates=3, seed=7)
        ring = Ring(g)
        triples = [tuple(t) for t in g.triples]
        for p in range(3):
            state = ring.pattern_range({P: p})
            if state is None:
                continue
            zone, lo, hi = state
            # Backward from zone P enumerates subjects of triples with p.
            subjects = sorted({t[S] for t in triples if t[P] == p})
            for c in range(12):
                expected = next((s for s in subjects if s >= c), None)
                assert ring.backward_leap(zone, lo, hi, c) == expected

    def test_forward_leap_matches_naive(self):
        g = random_graph(80, n_nodes=10, n_predicates=3, seed=8)
        ring = Ring(g)
        triples = [tuple(t) for t in g.triples]
        for p in range(3):
            # Forward from P=p enumerates objects of triples with p.
            objects = sorted({t[O] for t in triples if t[P] == p})
            for c in range(12):
                expected = next((o for o in objects if o >= c), None)
                assert ring.forward_leap(P, p, c) == expected

    def test_forward_leap_subject_to_predicate(self):
        g = Graph(np.array([[2, 0, 1], [2, 3, 1], [4, 1, 1]]), n_predicates=5)
        ring = Ring(g)
        assert ring.forward_leap(S, 2, 0) == 0
        assert ring.forward_leap(S, 2, 1) == 3
        assert ring.forward_leap(S, 2, 4) is None
        assert ring.forward_leap(S, 4, 0) == 1

    def test_leaps_out_of_universe(self, nobel_ring):
        assert nobel_ring.next_value(P, 99) is None
        assert nobel_ring.forward_leap(P, 0, 99) is None


class TestSpace:
    def test_ring_close_to_packed_representation(self):
        """Theorem 3.4 shape: ring ≈ |G| + o(|G|) (plain bitvector
        overhead included, cf. the 57% figure of §5.2.1)."""
        g = wikidata_like(5000, seed=0)
        ring = Ring(g)
        packed = g.packed_size_in_bits()
        assert ring.size_in_bits() < 2.2 * packed
        assert ring.size_in_bits() > 0.8 * packed

    def test_compressed_ring_smaller(self):
        g = wikidata_like(5000, seed=0)
        plain = Ring(g)
        comp = Ring(g, compressed=True)
        assert comp.size_in_bits() < plain.size_in_bits()


@given(
    st.sets(
        st.tuples(st.integers(0, 7), st.integers(0, 2), st.integers(0, 7)),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_ring_replaces_graph(triple_set):
    """For any graph: every triple is recoverable and every count exact."""
    triples = np.array(sorted(triple_set), dtype=np.int64)
    g = Graph(triples, n_nodes=8, n_predicates=3)
    ring = Ring(g)
    assert [ring.triple(i) for i in range(ring.n)] == [tuple(t) for t in g.triples]
    for s, p, o in triple_set:
        assert ring.contains(s, p, o)
        assert ring.count_pattern({S: s, P: p, O: o}) == 1
