"""Tests for label-level updates on the dynamic ring."""

import pytest

from repro.core.dynamic import DynamicRingIndex
from repro.graph.dataset import Graph
from repro.graph.generators import nobel_graph

import numpy as np


class TestLabelledUpdates:
    def test_insert_labelled(self):
        index = DynamicRingIndex(nobel_graph())
        assert index.insert_labelled("Nobel", "win", "Wheeler")
        out = index.evaluate("Nobel win ?x", decode=True)
        assert {m["x"] for m in out} >= {"Wheeler", "Bohr"}

    def test_insert_labelled_duplicate(self):
        index = DynamicRingIndex(nobel_graph())
        assert not index.insert_labelled("Nobel", "win", "Bohr")

    def test_delete_labelled(self):
        index = DynamicRingIndex(nobel_graph())
        assert index.delete_labelled("Nobel", "win", "Bohr")
        out = index.evaluate("Nobel win ?x", decode=True)
        assert "Bohr" not in {m["x"] for m in out}

    def test_delete_unknown_label_is_noop(self):
        index = DynamicRingIndex(nobel_graph())
        assert not index.delete_labelled("Nobody", "win", "Bohr")

    def test_insert_unknown_label_raises(self):
        index = DynamicRingIndex(nobel_graph())
        with pytest.raises(KeyError):
            index.insert_labelled("Curie", "win", "Bohr")

    def test_requires_dictionary(self):
        g = Graph(np.array([[0, 0, 1]]), n_nodes=3, n_predicates=1)
        index = DynamicRingIndex(g)
        with pytest.raises(ValueError):
            index.insert_labelled("a", "b", "c")
