"""Tests for the shared iterator-protocol utilities."""

import pytest

from repro.core.interface import (
    PatternIterator,
    first_candidate,
    leap_based_values,
    pattern_constants,
)
from repro.core.iterators import RingIterator
from repro.core.ring import Ring
from repro.graph import TriplePattern, Var
from repro.graph.generators import nobel_graph

X, Y = Var("x"), Var("y")


class TestPatternConstants:
    def test_plain(self):
        assert pattern_constants(TriplePattern(X, 1, 2)) == {1: 1, 2: 2}

    def test_numpy_ints_accepted(self):
        import numpy as np

        out = pattern_constants(TriplePattern(np.int64(3), X, np.int32(1)))
        assert out == {0: 3, 2: 1}
        assert all(type(v) is int for v in out.values())

    def test_strings_rejected(self):
        with pytest.raises(TypeError, match="dictionary-encoded"):
            pattern_constants(TriplePattern("label", X, Y))

    def test_all_variables(self):
        assert pattern_constants(TriplePattern(X, Y, Var("z"))) == {}


class TestFirstCandidate:
    def test_returns_first(self):
        assert first_candidate([X, Y]) == X

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            first_candidate([])


class TestLeapBasedValues:
    def test_enumerates_distinct_ascending(self):
        g = nobel_graph()
        ring = Ring(g)
        p_nom = g.dictionary.predicate_id("nom")
        it = RingIterator(ring, TriplePattern(X, p_nom, Y))
        got = list(leap_based_values(it, Y))
        expected = sorted({t[2] for t in g.triples if t[1] == p_nom})
        assert got == expected

    def test_empty_pattern(self):
        g = nobel_graph()
        ring = Ring(g)
        # Constant combination with no matches.
        it = RingIterator(
            ring, TriplePattern(g.dictionary.node_id("Strutt"),
                                g.dictionary.predicate_id("adv"), Y)
        )
        assert list(leap_based_values(it, Y)) == []


class TestProtocolConformance:
    """Every iterator implementation satisfies the runtime protocol."""

    def test_ring_iterator(self):
        g = nobel_graph()
        it = RingIterator(Ring(g), TriplePattern(X, 0, Y))
        assert isinstance(it, PatternIterator)

    def test_order_set_iterator(self):
        from repro.baselines.sorted_orders import (
            ALL_ORDERS,
            OrderSet,
            OrderSetIterator,
        )

        g = nobel_graph()
        it = OrderSetIterator(OrderSet(g, ALL_ORDERS), TriplePattern(X, 0, Y))
        assert isinstance(it, PatternIterator)

    def test_union_iterator(self):
        from repro.core.dynamic import DynamicRingIndex

        g = nobel_graph()
        it = DynamicRingIndex(g).iterator(TriplePattern(X, 0, Y))
        assert isinstance(it, PatternIterator)
