"""End-to-end tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main

NT_DOC = """\
<Bohr> <adv> <Thomson> .
<Thomson> <adv> <Strutt> .
<Nobel> <win> <Bohr> .
<Nobel> <nom> <Thomson> .
"""


@pytest.fixture()
def index_path(tmp_path, capsys):
    data = tmp_path / "g.nt"
    data.write_text(NT_DOC)
    out = tmp_path / "index.npz"
    main(["build", str(data), "-o", str(out)])
    capsys.readouterr()
    return str(out)


class TestBuild:
    def test_build_reports_stats(self, tmp_path, capsys):
        data = tmp_path / "g.nt"
        data.write_text(NT_DOC)
        main(["build", str(data), "-o", str(tmp_path / "i.npz")])
        out = capsys.readouterr().out
        assert "indexed 4 triples" in out
        assert "bytes/triple" in out

    def test_build_compressed(self, tmp_path, capsys):
        data = tmp_path / "g.nt"
        data.write_text(NT_DOC)
        path = tmp_path / "c.npz"
        main(["build", str(data), "-o", str(path), "--compressed"])
        capsys.readouterr()
        main(["stats", str(path)])
        assert "compressed ring    : True" in capsys.readouterr().out

    def test_build_plain_text_format(self, tmp_path, capsys):
        data = tmp_path / "g.txt"
        data.write_text("a p b\nb p c\n")
        main(["build", str(data), "-o", str(tmp_path / "i.npz")])
        assert "indexed 2 triples" in capsys.readouterr().out


class TestQuery:
    def test_query_decoded(self, index_path, capsys):
        main(["query", index_path, "?x adv ?y"])
        out = capsys.readouterr().out
        assert "x=Bohr  y=Thomson" in out
        assert "2 solution(s)" in out

    def test_query_json(self, index_path, capsys):
        import json

        main(["query", index_path, "Nobel win ?x", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data == [{"x": "Bohr"}]

    def test_query_limit(self, index_path, capsys):
        main(["query", index_path, "?x ?p ?y", "--limit", "2"])
        assert "2 solution(s)" in capsys.readouterr().out


class TestExplainPathStats:
    def test_explain(self, index_path, capsys):
        main(["explain", index_path, "?x adv ?y . Nobel win ?x"])
        out = capsys.readouterr().out
        assert "elimination order : x" in out
        assert "lonely variables  : y" in out

    def test_explain_unknown_constant(self, index_path, capsys):
        main(["explain", index_path, "?x nope ?y"])
        assert "0 solutions" in capsys.readouterr().out

    def test_path(self, index_path, capsys):
        main(["path", index_path, "adv+", "--source", "Bohr"])
        out = capsys.readouterr().out
        assert "Thomson" in out and "Strutt" in out
        assert "2 node(s)" in out

    def test_stats(self, index_path, capsys):
        main(["stats", index_path])
        out = capsys.readouterr().out
        assert "triples            : 4" in out
        assert "predicates         : 3" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
