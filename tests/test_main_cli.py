"""End-to-end tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main

NT_DOC = """\
<Bohr> <adv> <Thomson> .
<Thomson> <adv> <Strutt> .
<Nobel> <win> <Bohr> .
<Nobel> <nom> <Thomson> .
"""


@pytest.fixture()
def index_path(tmp_path, capsys):
    data = tmp_path / "g.nt"
    data.write_text(NT_DOC)
    out = tmp_path / "index.npz"
    main(["build", str(data), "-o", str(out)])
    capsys.readouterr()
    return str(out)


class TestBuild:
    def test_build_reports_stats(self, tmp_path, capsys):
        data = tmp_path / "g.nt"
        data.write_text(NT_DOC)
        main(["build", str(data), "-o", str(tmp_path / "i.npz")])
        out = capsys.readouterr().out
        assert "indexed 4 triples" in out
        assert "bytes/triple" in out

    def test_build_compressed(self, tmp_path, capsys):
        data = tmp_path / "g.nt"
        data.write_text(NT_DOC)
        path = tmp_path / "c.npz"
        main(["build", str(data), "-o", str(path), "--compressed"])
        capsys.readouterr()
        main(["stats", str(path)])
        assert "compressed ring    : True" in capsys.readouterr().out

    def test_build_plain_text_format(self, tmp_path, capsys):
        data = tmp_path / "g.txt"
        data.write_text("a p b\nb p c\n")
        main(["build", str(data), "-o", str(tmp_path / "i.npz")])
        assert "indexed 2 triples" in capsys.readouterr().out


class TestQuery:
    def test_query_decoded(self, index_path, capsys):
        main(["query", index_path, "?x adv ?y"])
        out = capsys.readouterr().out
        assert "x=Bohr  y=Thomson" in out
        assert "2 solution(s)" in out

    def test_query_json(self, index_path, capsys):
        import json

        main(["query", index_path, "Nobel win ?x", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data == [{"x": "Bohr"}]

    def test_query_limit(self, index_path, capsys):
        main(["query", index_path, "?x ?p ?y", "--limit", "2"])
        assert "2 solution(s)" in capsys.readouterr().out

    def test_query_policy_same_answers(self, index_path, capsys):
        query = "?x adv ?y . Nobel win ?x"
        main(["query", index_path, query])
        static = capsys.readouterr().out
        for policy in ("rowcount", "distinct", "adaptive"):
            main(["query", index_path, query, "--policy", policy])
            assert capsys.readouterr().out == static

    def test_plan_policy_reports_depth0(self, index_path, capsys):
        main(["plan", index_path, "?x adv ?y . Nobel win ?x",
              "--policy", "adaptive"])
        out = capsys.readouterr().out
        assert "policy            : adaptive" in out
        assert "depth-0 choice" in out


class TestExplainPathStats:
    def test_explain(self, index_path, capsys):
        main(["explain", index_path, "?x adv ?y . Nobel win ?x"])
        out = capsys.readouterr().out
        assert "elimination order : x" in out
        assert "lonely variables  : y" in out

    def test_explain_unknown_constant(self, index_path, capsys):
        main(["explain", index_path, "?x nope ?y"])
        assert "0 solutions" in capsys.readouterr().out

    def test_path(self, index_path, capsys):
        main(["path", index_path, "adv+", "--source", "Bohr"])
        out = capsys.readouterr().out
        assert "Thomson" in out and "Strutt" in out
        assert "2 node(s)" in out

    def test_stats(self, index_path, capsys):
        main(["stats", index_path])
        out = capsys.readouterr().out
        assert "triples            : 4" in out
        assert "predicates         : 3" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


def exit_code(argv) -> int:
    with pytest.raises(SystemExit) as info:
        main(argv)
    return info.value.code


class TestVerify:
    def test_verify_ok(self, index_path, capsys):
        main(["verify", index_path])
        out = capsys.readouterr().out
        assert "sha256 checksum" in out
        assert "index integrity: OK" in out

    def test_verify_corrupted(self, index_path, capsys):
        from repro.reliability.integrity import resolve_payload

        payload = resolve_payload(index_path)
        data = bytearray(open(payload, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(payload, "wb").write(bytes(data))
        assert exit_code(["verify", index_path]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "checksum" in err

    def test_verify_missing(self, tmp_path, capsys):
        assert exit_code(["verify", str(tmp_path / "nope")]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestErrorPaths:
    def test_build_missing_input(self, tmp_path, capsys):
        assert exit_code(
            ["build", str(tmp_path / "absent.nt"), "-o", str(tmp_path / "i")]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_build_malformed_ntriples(self, tmp_path, capsys):
        data = tmp_path / "bad.nt"
        data.write_text("<a> <p> <b> .\nNOT NTRIPLES\n")
        assert exit_code(
            ["build", str(data), "-o", str(tmp_path / "i")]
        ) == 1
        err = capsys.readouterr().err
        assert "line 2" in err and "NOT NTRIPLES" in err

    def test_build_lenient_skips_bad_lines(self, tmp_path, capsys):
        data = tmp_path / "bad.nt"
        data.write_text("<a> <p> <b> .\nNOT NTRIPLES\n<b> <p> <c> .\n")
        main(["build", str(data), "-o", str(tmp_path / "i"), "--lenient"])
        captured = capsys.readouterr()
        assert "indexed 2 triples" in captured.out
        assert "skipped 1 malformed line(s)" in captured.err

    def test_query_missing_index(self, tmp_path, capsys):
        assert exit_code(
            ["query", str(tmp_path / "nope"), "?x ?p ?y"]
        ) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_query_malformed_query(self, index_path, capsys):
        assert exit_code(["query", index_path, "?x ?p"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_query_corrupted_index(self, index_path, capsys):
        from repro.reliability.integrity import resolve_payload

        payload = resolve_payload(index_path)
        open(payload, "wb").write(b"garbage")
        assert exit_code(["query", index_path, "?x ?p ?y"]) == 1
        assert "error:" in capsys.readouterr().err


class TestPartialFlag:
    def test_partial_prints_truncation_notice(self, tmp_path, capsys):
        from repro.core import RingIndex
        from repro.graph.dataset import Graph
        from repro.graph.generators import random_graph

        # CLI queries need labels, so relabel a dense random graph
        # before saving; the triangle query below cannot finish in 2ms.
        graph = random_graph(2000, n_nodes=50, n_predicates=1, seed=2)
        labelled = Graph.from_string_triples(
            (f"n{s}", "p", f"n{o}") for s, _, o in graph.triples
        )
        path = str(tmp_path / "dense")
        RingIndex(labelled).save(path)
        main(
            [
                "query", path, "?a p ?b . ?b p ?c . ?c p ?a",
                "--timeout", "0.002", "--partial", "--limit", "1000000",
            ]
        )
        out = capsys.readouterr().out
        assert "(truncated: timeout)" in out

    def test_without_partial_times_out_with_exit_2(self, tmp_path, capsys):
        from repro.core import RingIndex
        from repro.graph.dataset import Graph
        from repro.graph.generators import random_graph

        graph = random_graph(2000, n_nodes=50, n_predicates=1, seed=2)
        labelled = Graph.from_string_triples(
            (f"n{s}", "p", f"n{o}") for s, _, o in graph.triples
        )
        path = str(tmp_path / "dense")
        RingIndex(labelled).save(path)
        assert exit_code(
            [
                "query", path, "?a p ?b . ?b p ?c . ?c p ?a",
                "--timeout", "0.002", "--limit", "1000000",
            ]
        ) == 2
        assert "timed out" in capsys.readouterr().err
