"""Tests for WaveletMatrix and WaveletTree, including cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences import WaveletMatrix, WaveletTree

# The worked example of the paper's Figure 5: T = "oorcc$o" over the
# alphabet {$, c, o, r} mapped to integers {0: $, 1: c, 2: o, 3: r}.
OORCCO = [2, 2, 3, 1, 1, 0, 2]


def naive_rank(seq, symbol, i):
    return sum(1 for v in seq[:i] if v == symbol)


def naive_select(seq, symbol, k):
    seen = 0
    for pos, v in enumerate(seq):
        if v == symbol:
            seen += 1
            if seen == k:
                return pos
    raise ValueError


def naive_next_in_range(seq, lo, hi, c):
    candidates = [v for v in seq[lo:hi] if v >= c]
    return min(candidates) if candidates else None


def naive_distinct(seq, lo, hi):
    out = {}
    for v in seq[lo:hi]:
        out[v] = out.get(v, 0) + 1
    return sorted(out.items())


@pytest.fixture(params=["matrix", "matrix_rrr", "tree"])
def make_structure(request):
    def build(values, sigma=None):
        if request.param == "matrix":
            return WaveletMatrix(values, sigma)
        if request.param == "matrix_rrr":
            return WaveletMatrix(values, sigma, compressed=True)
        return WaveletTree(values, sigma)

    return build


class TestPaperExample:
    """Assertions lifted directly from §2.3.4 of the paper."""

    def test_access_figure5(self, make_structure):
        wt = make_structure(OORCCO)
        assert [wt[i] for i in range(7)] == OORCCO

    def test_access_bwt7_is_o(self, make_structure):
        # "we can compute BWT[7] ... we know that BWT[7] = o and
        #  rank_o(BWT, 7) = 3" (paper uses 1-based position 7).
        wt = make_structure(OORCCO)
        assert wt[6] == 2  # o
        assert wt.rank(2, 7) == 3

    def test_rank_c(self, make_structure):
        wt = make_structure(OORCCO)
        assert wt.rank(1, 5) == 2  # two c's among first five symbols

    def test_select(self, make_structure):
        wt = make_structure(OORCCO)
        assert wt.select(2, 1) == 0
        assert wt.select(2, 2) == 1
        assert wt.select(2, 3) == 6
        assert wt.select(0, 1) == 5


class TestOperations:
    def test_empty(self, make_structure):
        wt = make_structure([])
        assert len(wt) == 0
        assert wt.rank(0, 0) == 0
        assert wt.next_in_range(0, 0, 0) is None
        assert list(wt.distinct_in_range(0, 0)) == []

    def test_single_symbol_alphabet(self, make_structure):
        wt = make_structure([0, 0, 0], sigma=1)
        assert [wt[i] for i in range(3)] == [0, 0, 0]
        assert wt.rank(0, 2) == 2
        assert wt.select(0, 3) == 2

    def test_symbol_outside_alphabet(self, make_structure):
        wt = make_structure([0, 1, 2])
        assert wt.rank(5, 3) == 0
        with pytest.raises(ValueError):
            wt.select(5, 1)

    def test_rejects_negative(self, make_structure):
        with pytest.raises(ValueError):
            make_structure([-1, 0])

    def test_rejects_too_large(self, make_structure):
        with pytest.raises(ValueError):
            make_structure([5], sigma=5)

    def test_select_out_of_range(self, make_structure):
        wt = make_structure([1, 1, 0])
        with pytest.raises(ValueError):
            wt.select(1, 3)
        with pytest.raises(ValueError):
            wt.select(1, 0)

    def test_next_in_range(self, make_structure):
        seq = [5, 3, 9, 3, 7, 1]
        wt = make_structure(seq)
        for lo in range(len(seq)):
            for hi in range(lo, len(seq) + 1):
                for c in range(11):
                    assert wt.next_in_range(lo, hi, c) == naive_next_in_range(
                        seq, lo, hi, c
                    ), (lo, hi, c)

    def test_distinct_in_range(self, make_structure):
        seq = [4, 2, 2, 4, 0, 7, 2]
        wt = make_structure(seq)
        for lo in range(len(seq)):
            for hi in range(lo, len(seq) + 1):
                assert list(wt.distinct_in_range(lo, hi)) == naive_distinct(
                    seq, lo, hi
                )

    def test_non_power_of_two_alphabet(self, make_structure):
        # sigma = 6: the top-right part of the code space is unused.
        seq = [5, 0, 3, 5, 1, 4, 2, 5]
        wt = make_structure(seq, sigma=6)
        assert [wt[i] for i in range(len(seq))] == seq
        assert wt.next_in_range(0, len(seq), 5) == 5
        assert wt.next_in_range(0, len(seq), 6) is None

    @pytest.mark.parametrize("sigma", [2, 3, 17, 100, 1000])
    def test_random_cross_check_with_naive(self, make_structure, sigma):
        rng = np.random.default_rng(sigma)
        seq = rng.integers(0, sigma, size=300).tolist()
        wt = make_structure(seq, sigma=sigma)
        for i in rng.integers(0, 300, size=30):
            assert wt[int(i)] == seq[i]
        for symbol in rng.integers(0, sigma, size=15):
            symbol = int(symbol)
            for i in [0, 13, 150, 300]:
                assert wt.rank(symbol, i) == naive_rank(seq, symbol, i)
            total = naive_rank(seq, symbol, 300)
            for k in range(1, total + 1, max(1, total // 5)):
                assert wt.select(symbol, k) == naive_select(seq, symbol, k)
        for _ in range(20):
            lo, hi = sorted(rng.integers(0, 301, size=2))
            c = int(rng.integers(0, sigma + 2))
            assert wt.next_in_range(int(lo), int(hi), c) == naive_next_in_range(
                seq, int(lo), int(hi), c
            )


class TestMatrixSpecific:
    def test_matrix_matches_tree_everywhere(self):
        rng = np.random.default_rng(77)
        seq = rng.integers(0, 50, size=500).tolist()
        wm = WaveletMatrix(seq)
        wt = WaveletTree(seq)
        for i in range(500):
            assert wm[i] == wt[i]
        for s in range(50):
            for i in range(0, 501, 37):
                assert wm.rank(s, i) == wt.rank(s, i)
        for lo, hi in [(0, 500), (13, 14), (100, 350)]:
            assert list(wm.distinct_in_range(lo, hi)) == list(
                wt.distinct_in_range(lo, hi)
            )

    def test_matrix_smaller_than_tree_for_large_alphabets(self):
        rng = np.random.default_rng(3)
        seq = rng.integers(0, 5000, size=2000)
        wm = WaveletMatrix(seq)
        wt = WaveletTree(seq)
        # The pointer term O(sigma log n) makes the tree much bigger.
        assert wm.size_in_bits() < wt.size_in_bits() / 2

    def test_compressed_matches_plain(self):
        rng = np.random.default_rng(13)
        # Runny sequence to give RRR something to compress.
        seq = np.repeat(rng.integers(0, 30, size=60), 20)
        plain = WaveletMatrix(seq)
        comp = WaveletMatrix(seq, compressed=True)
        assert comp.size_in_bits() < plain.size_in_bits()
        for i in range(0, len(seq), 17):
            assert comp[i] == plain[i]
        for s in range(30):
            assert comp.rank(s, len(seq)) == plain.rank(s, len(seq))
        assert comp.next_in_range(5, 900, 12) == plain.next_in_range(5, 900, 12)

    def test_count_and_min(self):
        wm = WaveletMatrix([3, 1, 4, 1, 5])
        assert wm.count(1, 0, 5) == 2
        assert wm.count(1, 2, 5) == 1
        assert wm.min_in_range(0, 5) == 1
        assert wm.min_in_range(2, 3) == 4
        assert wm.count_distinct(0, 5) == 4

    def test_to_numpy_roundtrip(self):
        seq = [9, 0, 3, 9, 2]
        assert WaveletMatrix(seq).to_numpy().tolist() == seq


@given(
    st.lists(st.integers(0, 40), min_size=0, max_size=120),
    st.integers(0, 120),
    st.integers(0, 120),
    st.integers(0, 42),
)
@settings(max_examples=80, deadline=None)
def test_property_matrix_range_ops(seq, lo, hi, c):
    wm = WaveletMatrix(seq, sigma=41)
    lo, hi = min(lo, len(seq)), min(hi, len(seq))
    if lo > hi:
        lo, hi = hi, lo
    assert wm.next_in_range(lo, hi, c) == naive_next_in_range(seq, lo, hi, c)
    assert list(wm.distinct_in_range(lo, hi)) == naive_distinct(seq, lo, hi)


@given(st.lists(st.integers(0, 15), min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_property_rank_select_inverse(seq):
    wm = WaveletMatrix(seq, sigma=16)
    for symbol in set(seq):
        total = wm.rank(symbol, len(seq))
        for k in range(1, total + 1):
            pos = wm.select(symbol, k)
            assert seq[pos] == symbol
            assert wm.rank(symbol, pos) == k - 1
