"""Property tests: wavelet-matrix batch kernels agree with the scalars.

Covers ``rank_many`` / ``count_many`` / ``extract_at`` /
``bucket_starts`` / ``extract`` / ``to_numpy`` and the iterative
(explicit-stack) ``next_in_range`` / ``distinct_in_range`` rewrites,
against scalar counterparts and brute force, including empty ranges and
both alphabet edges (symbol 0 and sigma-1, sigma=1 single-symbol
alphabets).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences.wavelet_matrix import WaveletMatrix

sequences = st.lists(st.integers(0, 15), min_size=1, max_size=150)


@given(sequences, st.integers(0, 16))
@settings(max_examples=60, deadline=None)
def test_rank_many_matches_scalar(seq, symbol):
    wm = WaveletMatrix(seq, 17)
    positions = np.arange(0, len(seq) + 1)
    assert wm.rank_many(symbol, positions).tolist() == [
        wm.rank(symbol, int(i)) for i in positions
    ]


@given(sequences, st.integers(0, 16), st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_count_many_matches_scalar(seq, symbol, seed):
    wm = WaveletMatrix(seq, 17)
    rng = np.random.default_rng(seed)
    los = rng.integers(0, len(seq) + 1, size=20)
    his = rng.integers(0, len(seq) + 1, size=20)
    his = np.maximum(los, his)  # include lo == hi empty ranges
    assert wm.count_many(symbol, los, his).tolist() == [
        wm.count(symbol, int(lo), int(hi)) for lo, hi in zip(los, his)
    ]


@given(sequences)
@settings(max_examples=60, deadline=None)
def test_extract_matches_sequence(seq):
    wm = WaveletMatrix(seq, 16)
    assert wm.to_numpy().tolist() == seq
    assert wm.extract_at(np.arange(len(seq))).tolist() == seq
    mid = len(seq) // 2
    assert wm.extract(mid, len(seq)).tolist() == seq[mid:]
    assert wm.extract(0, 0).size == 0


@given(sequences)
@settings(max_examples=40, deadline=None)
def test_extract_at_bottom_is_bucketed_rank(seq):
    """The LF identity: bottom index == bucket_start(v) + rank(v, i)."""
    wm = WaveletMatrix(seq, 16)
    positions = np.arange(len(seq))
    values, bottoms = wm.extract_at(positions, return_bottom=True)
    starts = wm.bucket_starts(np.arange(16))
    for i, (v, b) in enumerate(zip(values, bottoms)):
        assert b == starts[v] + wm.rank(int(v), i)


@given(sequences, st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_next_in_range_matches_brute_force(seq, seed):
    wm = WaveletMatrix(seq, 16)
    rng = np.random.default_rng(seed)
    for _ in range(15):
        lo = int(rng.integers(0, len(seq) + 1))
        hi = int(rng.integers(lo, len(seq) + 1))
        c = int(rng.integers(0, 17))
        window = [v for v in seq[lo:hi] if v >= c]
        assert wm.next_in_range(lo, hi, c) == (min(window) if window else None)


@given(sequences, st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_distinct_in_range_matches_brute_force(seq, seed):
    wm = WaveletMatrix(seq, 16)
    rng = np.random.default_rng(seed)
    for _ in range(10):
        lo = int(rng.integers(0, len(seq) + 1))
        hi = int(rng.integers(lo, len(seq) + 1))
        got = list(wm.distinct_in_range(lo, hi))
        window = seq[lo:hi]
        expected = [(v, window.count(v)) for v in sorted(set(window))]
        assert got == expected  # increasing symbols with exact counts


def test_alphabet_edges():
    """sigma=1 and the top symbol of a power-of-two alphabet."""
    wm1 = WaveletMatrix([0, 0, 0], 1)
    assert wm1.rank_many(0, np.array([0, 1, 2, 3])).tolist() == [0, 1, 2, 3]
    assert wm1.to_numpy().tolist() == [0, 0, 0]
    assert wm1.extract_at(np.array([1])).tolist() == [0]
    assert list(wm1.distinct_in_range(0, 3)) == [(0, 3)]
    assert wm1.next_in_range(0, 3, 1) is None

    top = 7
    wm = WaveletMatrix([top, 0, top], 8)
    assert wm.rank_many(top, np.array([0, 1, 2, 3])).tolist() == [0, 1, 1, 2]
    assert wm.bucket_starts(np.array([0, top])).tolist() == [0, 1]
    assert wm.next_in_range(0, 3, top) == top
    assert list(wm.distinct_in_range(0, 3)) == [(0, 1), (top, 2)]


def test_empty_query_arrays():
    wm = WaveletMatrix([3, 1, 2], 4)
    empty = np.array([], dtype=np.int64)
    assert wm.rank_many(2, empty).size == 0
    assert wm.count_many(2, empty, empty).size == 0
    assert wm.extract_at(empty).size == 0
    assert wm.bucket_starts(empty).size == 0


def test_construction_from_ndarray_no_copy_roundtrip():
    """Constructor accepts numpy arrays directly (satellite b)."""
    arr = np.array([5, 3, 5, 0, 7], dtype=np.uint32)
    wm = WaveletMatrix(arr, 8)
    assert wm.to_numpy().tolist() == arr.tolist()
    gen = WaveletMatrix((int(v) for v in arr), 8)
    assert gen.to_numpy().tolist() == arr.tolist()
