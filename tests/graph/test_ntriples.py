"""Tests for the N-Triples subset loader."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ntriples import (
    NTriplesError,
    iter_ntriples,
    load_ntriples,
    parse_ntriples_line,
)


class TestParseLine:
    def test_iris(self):
        line = "<http://ex/s> <http://ex/p> <http://ex/o> ."
        assert parse_ntriples_line(line) == ("http://ex/s", "http://ex/p",
                                             "http://ex/o")

    def test_literal_object(self):
        line = '<http://ex/s> <http://ex/p> "Niels Bohr" .'
        assert parse_ntriples_line(line) == (
            "http://ex/s", "http://ex/p", '"Niels Bohr"'
        )

    def test_literal_with_escapes(self):
        line = '<s> <p> "a\\"b\\\\c\\nd" .'
        assert parse_ntriples_line(line)[2] == '"a"b\\c\nd"'

    def test_language_tag_kept(self):
        line = '<s> <p> "Bohr"@da .'
        assert parse_ntriples_line(line)[2] == '"Bohr"@da'

    def test_datatype_kept(self):
        line = '<s> <p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        assert parse_ntriples_line(line)[2] == (
            '"42"^^<http://www.w3.org/2001/XMLSchema#integer>'
        )

    def test_blank_nodes(self):
        line = "_:b1 <p> _:b2 ."
        assert parse_ntriples_line(line) == ("_:b1", "p", "_:b2")

    def test_comment_and_blank_lines(self):
        assert parse_ntriples_line("# comment") is None
        assert parse_ntriples_line("   ") is None

    @pytest.mark.parametrize("bad", [
        "<s> <p> <o>",  # missing dot
        "<s> <p> .",  # missing object
        "<s <p> <o> .",  # unterminated IRI
        '<s> <p> "unterminated .',
        "<s> <p> <o> . extra",
        "s p o .",  # bare words are not N-Triples
    ])
    def test_malformed(self, bad):
        with pytest.raises(NTriplesError):
            parse_ntriples_line(bad, line_no=7)

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesError, match="line 7"):
            parse_ntriples_line("<s> <p> <o>", line_no=7)


class TestLoading:
    DOC = """\
# The Nobel fragment
<Bohr> <adv> <Thomson> .
<Nobel> <win> <Bohr> .
<Nobel> <label> "Nobel Prize"@en .

<Nobel> <win> <Bohr> .
"""

    def test_iter_skips_noise_and_keeps_duplicates(self):
        triples = list(iter_ntriples(self.DOC.splitlines()))
        assert len(triples) == 4  # deduplication is the Graph's job

    def test_load_file(self, tmp_path):
        path = tmp_path / "g.nt"
        path.write_text(self.DOC)
        graph = load_ntriples(str(path))
        assert graph.n_triples == 3  # duplicate removed
        assert graph.dictionary.has_node('"Nobel Prize"@en')
        index_labels = set(graph.labelled_triples())
        assert ("Nobel", "win", "Bohr") in index_labels

    def test_queryable_after_load(self, tmp_path):
        from repro.core import RingIndex

        path = tmp_path / "g.nt"
        path.write_text(self.DOC)
        index = RingIndex(load_ntriples(str(path)))
        assert index.evaluate("?x win ?y", decode=True) == [
            {"x": "Nobel", "y": "Bohr"}
        ]


class TestDiagnostics:
    BAD_DOC = """\
<a> <p> <b> .
GARBAGE HERE
<b> <p> <c> .
<c> <p>
<c> <p> <d> .
"""

    def test_error_names_file_line_and_text(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text(self.BAD_DOC)
        with pytest.raises(NTriplesError) as info:
            load_ntriples(str(path))
        err = info.value
        assert err.source == str(path)
        assert err.line_no == 2
        assert err.text == "GARBAGE HERE"
        assert str(path) in str(err)
        assert "GARBAGE HERE" in str(err)

    def test_lenient_skips_and_counts(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text(self.BAD_DOC)
        stats: dict = {}
        graph = load_ntriples(str(path), strict=False, stats=stats)
        assert graph.n_triples == 3
        assert stats["bad_lines"] == 2
        assert stats["triples"] == 3
        assert len(stats["errors"]) == 2
        assert "line 2" in stats["errors"][0]
        assert "line 4" in stats["errors"][1]

    def test_lenient_without_stats(self):
        triples = list(
            iter_ntriples(self.BAD_DOC.splitlines(), strict=False)
        )
        assert len(triples) == 3

    def test_error_list_is_capped(self):
        lines = ["junk"] * 50
        stats: dict = {}
        assert list(iter_ntriples(lines, strict=False, stats=stats)) == []
        assert stats["bad_lines"] == 50
        assert len(stats["errors"]) == 20


@given(
    st.lists(
        st.tuples(
            st.text(
                alphabet=st.characters(
                    blacklist_characters='<>"\\\n\r ', min_codepoint=33
                ),
                min_size=1,
                max_size=12,
            ),
        ),
        min_size=0,
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_iri_roundtrip(labels):
    lines = [f"<{t[0]}> <p> <o{i}> ." for i, t in enumerate(labels)]
    parsed = list(iter_ntriples(lines))
    assert [p[0] for p in parsed] == [t[0] for t in labels]
