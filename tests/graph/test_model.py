"""Tests for triples, patterns, BGPs and the BGP parser."""

import pytest

from repro.graph import BasicGraphPattern, TriplePattern, Var, parse_bgp
from repro.graph.model import O, P, S


class TestVar:
    def test_repr(self):
        assert repr(Var("x")) == "?x"

    def test_equality_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_hashable(self):
        assert len({Var("x"), Var("x"), Var("y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Var("")


class TestTriplePattern:
    def test_variables_in_position_order(self):
        t = TriplePattern(Var("y"), "p", Var("x"))
        assert t.variables() == [Var("y"), Var("x")]

    def test_variables_deduplicated(self):
        t = TriplePattern(Var("x"), Var("x"), Var("z"))
        assert t.variables() == [Var("x"), Var("z")]

    def test_variable_positions(self):
        t = TriplePattern(Var("x"), "p", Var("x"))
        assert t.variable_positions(Var("x")) == [S, O]
        assert t.variable_positions(Var("zzz")) == []

    def test_constants(self):
        t = TriplePattern(Var("x"), "p", 7)
        assert t.constants() == [(P, "p"), (O, 7)]

    def test_has_repeated_variable(self):
        assert TriplePattern(Var("x"), "p", Var("x")).has_repeated_variable()
        assert not TriplePattern(Var("x"), "p", Var("y")).has_repeated_variable()

    def test_is_fully_bound(self):
        assert TriplePattern(1, 2, 3).is_fully_bound()
        assert not TriplePattern(1, 2, Var("x")).is_fully_bound()

    def test_substitute(self):
        t = TriplePattern(Var("x"), Var("p"), Var("x"))
        out = t.substitute({Var("x"): 5})
        assert out == TriplePattern(5, Var("p"), 5)

    def test_kind_signatures(self):
        assert TriplePattern(Var("x"), "p", Var("y")).kind() == "(?, p, ?)"
        assert TriplePattern("s", Var("p"), "o").kind() == "(s, ?, o)"
        assert TriplePattern(Var("a"), Var("b"), Var("c")).kind() == "(?, ?, ?)"


class TestBasicGraphPattern:
    def test_requires_patterns(self):
        with pytest.raises(ValueError):
            BasicGraphPattern([])

    def test_variables_first_appearance_order(self):
        bgp = BasicGraphPattern(
            [
                TriplePattern(Var("b"), "p", Var("a")),
                TriplePattern(Var("a"), "q", Var("c")),
            ]
        )
        assert bgp.variables() == [Var("b"), Var("a"), Var("c")]

    def test_patterns_with(self):
        t1 = TriplePattern(Var("x"), "p", Var("y"))
        t2 = TriplePattern(Var("y"), "q", Var("z"))
        bgp = BasicGraphPattern([t1, t2])
        assert bgp.patterns_with(Var("y")) == [t1, t2]
        assert bgp.patterns_with(Var("x")) == [t1]

    def test_lonely_variables(self):
        bgp = BasicGraphPattern(
            [
                TriplePattern(Var("x"), "p", Var("y")),
                TriplePattern(Var("y"), "q", Var("z")),
            ]
        )
        assert bgp.lonely_variables() == {Var("x"), Var("z")}

    def test_lonely_counts_patterns_not_occurrences(self):
        # x twice in ONE pattern is still lonely.
        bgp = BasicGraphPattern(
            [
                TriplePattern(Var("x"), "p", Var("x")),
                TriplePattern(Var("y"), "q", Var("z")),
            ]
        )
        assert Var("x") in bgp.lonely_variables()


class TestParser:
    def test_single_pattern(self):
        bgp = parse_bgp("?x adv ?y")
        assert len(bgp) == 1
        assert bgp.patterns[0] == TriplePattern(Var("x"), "adv", Var("y"))

    def test_figure4_query(self):
        bgp = parse_bgp("Nobel win ?x . Nobel nom ?y . ?z adv ?y")
        assert len(bgp) == 3
        assert bgp.variables() == [Var("x"), Var("y"), Var("z")]

    def test_trailing_dot_ok(self):
        assert len(parse_bgp("?x p ?y .")) == 1

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            parse_bgp("?x p")

    def test_empty(self):
        with pytest.raises(ValueError):
            parse_bgp("  .  ")

    def test_bare_question_mark(self):
        with pytest.raises(ValueError):
            parse_bgp("? p ?y")
