"""Persistence tests: graph .npz round-trips and index save/load."""

import numpy as np
import pytest

from repro.core import CompressedRingIndex, RingIndex
from repro.graph.dataset import Graph
from repro.graph.generators import nobel_graph, wikidata_like
from repro.graph.io import load_graph, save_graph


class TestGraphRoundtrip:
    def test_with_dictionary(self, tmp_path):
        g = nobel_graph()
        path = tmp_path / "nobel.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert np.array_equal(loaded.triples, g.triples)
        assert set(loaded.labelled_triples()) == set(g.labelled_triples())

    def test_without_dictionary(self, tmp_path):
        g = wikidata_like(300, seed=0)
        path = tmp_path / "g.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert np.array_equal(loaded.triples, g.triples)
        assert loaded.n_nodes == g.n_nodes
        assert loaded.n_predicates == g.n_predicates
        assert loaded.dictionary is None

    def test_empty_graph(self, tmp_path):
        g = Graph(np.zeros((0, 3)), n_nodes=5, n_predicates=2)
        path = tmp_path / "empty.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.n_triples == 0
        assert loaded.n_nodes == 5


class TestIndexRoundtrip:
    def test_ring_save_load(self, tmp_path):
        g = nobel_graph()
        index = RingIndex(g)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = RingIndex.load(path)
        q = "?x nom ?y . ?x win ?z . ?z adv ?y"
        assert loaded.evaluate(q, decode=True) == index.evaluate(q, decode=True)
        assert not loaded.ring.compressed

    def test_compressed_flag_persists(self, tmp_path):
        g = nobel_graph()
        index = CompressedRingIndex(g)
        path = tmp_path / "cindex.npz"
        index.save(path)
        loaded = RingIndex.load(path)
        assert loaded.ring.compressed

    def test_load_without_config_defaults_plain(self, tmp_path):
        g = nobel_graph()
        path = tmp_path / "bare.npz"
        save_graph(g, path)
        loaded = RingIndex.load(path)
        assert not loaded.ring.compressed
        assert loaded.count("?x adv ?y") == 4
