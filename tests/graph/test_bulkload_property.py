"""Property tests: streaming ≡ parallel ≡ in-memory build (ISSUES 9, 10).

For *any* triple multiset, presented in *any* order with *any*
duplication, built with *any* chunk size, *any* worker count and *any*
merge fan-in:

- the external-memory :func:`~repro.graph.bulkload.bulk_build` pack is
  **byte-identical** to ``RingIndex(graph).save_frozen`` of the same
  logical graph — file and manifest both — whether it was built
  serially, through the single-process partitioned path (``workers=1``)
  or by a forked worker pool (``workers>=2``), and whether the k-way
  merge ran in one pass or recursed through tiny fan-ins;
- the memmapped load of that pack answers a full scan and a join
  exactly like the in-memory index.

Byte-identity is the strongest possible equivalence: it subsumes every
query-level property and makes packs content-addressable (same logical
graph, same bytes, same sha256 — regardless of how or where they were
built).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RingIndex
from repro.graph.bulkload import bulk_build
from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, TriplePattern, Var

N_NODES = 12
N_PREDICATES = 3

X, Y, Z = Var("x"), Var("y"), Var("z")
SCAN = BasicGraphPattern([TriplePattern(X, Var("p"), Y)])
JOIN = BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 1, Z)])

triples = st.tuples(
    st.integers(0, N_NODES - 1),
    st.integers(0, N_PREDICATES - 1),
    st.integers(0, N_NODES - 1),
)


@st.composite
def noisy_inputs(draw):
    """A triple set plus a duplicated, shuffled presentation of it."""
    rows = draw(st.lists(triples, min_size=0, max_size=120))
    extra = draw(st.lists(st.sampled_from(rows), max_size=40)) if rows else []
    presented = rows + extra
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    order = rng.permutation(len(presented))
    chunk = draw(st.integers(1, 50))
    return rows, [presented[i] for i in order], chunk


def _rows(index, bgp):
    return [dict(mu) for mu in index.evaluate(bgp)]


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(noisy_inputs())
def test_streaming_equals_in_memory(tmp_path_factory, case):
    rows, presented, chunk = case
    tmp = tmp_path_factory.mktemp("bulkprop")
    arr = (
        np.array(rows, dtype=np.int64).reshape(-1, 3)
        if rows
        else np.empty((0, 3), dtype=np.int64)
    )
    graph = Graph(arr, n_nodes=N_NODES, n_predicates=N_PREDICATES)
    reference = str(tmp / "reference.ring")
    RingIndex(graph).save_frozen(reference)

    out = str(tmp / "streamed.ring")
    presented_arr = (
        np.array(presented, dtype=np.int64).reshape(-1, 3)
        if presented
        else np.empty((0, 3), dtype=np.int64)
    )
    bulk_build(
        iter(presented_arr),
        out,
        chunk_triples=chunk,
        n_nodes=N_NODES,
        n_predicates=N_PREDICATES,
    )

    with open(out, "rb") as a, open(reference, "rb") as b:
        assert a.read() == b.read()
    with open(out + ".config.json") as a, open(
        reference + ".config.json"
    ) as b:
        assert a.read() == b.read()

    mapped = RingIndex.load(out, mmap=True)
    fresh = RingIndex(graph)
    assert _rows(mapped, SCAN) == _rows(fresh, SCAN)
    assert _rows(mapped, JOIN) == _rows(fresh, JOIN)


@st.composite
def parallel_cases(draw):
    """A noisy presentation plus a (workers, fan-in) build configuration."""
    rows, presented, chunk = draw(noisy_inputs())
    workers = draw(st.sampled_from([0, 1, 2]))
    fanin = draw(st.sampled_from([2, 3, 64]))
    return rows, presented, chunk, workers, fanin


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(parallel_cases())
def test_parallel_equals_serial_equals_in_memory(tmp_path_factory, case):
    rows, presented, chunk, workers, fanin = case
    tmp = tmp_path_factory.mktemp("bulkpar")
    arr = (
        np.array(rows, dtype=np.int64).reshape(-1, 3)
        if rows
        else np.empty((0, 3), dtype=np.int64)
    )
    graph = Graph(arr, n_nodes=N_NODES, n_predicates=N_PREDICATES)
    reference = str(tmp / "reference.ring")
    RingIndex(graph).save_frozen(reference)

    presented_arr = (
        np.array(presented, dtype=np.int64).reshape(-1, 3)
        if presented
        else np.empty((0, 3), dtype=np.int64)
    )
    out = str(tmp / "parallel.ring")
    bulk_build(
        iter(presented_arr),
        out,
        chunk_triples=chunk,
        n_nodes=N_NODES,
        n_predicates=N_PREDICATES,
        workers=workers,
        merge_fanin=fanin,
    )

    with open(out, "rb") as a, open(reference, "rb") as b:
        assert a.read() == b.read()
    with open(out + ".config.json") as a, open(
        reference + ".config.json"
    ) as b:
        assert a.read() == b.read()
