"""Tests for Dictionary, Graph and the synthetic generators."""

import numpy as np
import pytest

from repro.graph import Dictionary, Graph, TriplePattern, Var
from repro.graph.generators import (
    NOBEL_TRIPLES,
    clique_graph,
    nobel_graph,
    path_graph,
    random_graph,
    wikidata_like,
)


class TestDictionary:
    def test_shared_node_space(self):
        d = Dictionary()
        bohr = d.add_node("Bohr")
        assert d.add_node("Bohr") == bohr  # idempotent
        assert d.node_id("Bohr") == bohr
        assert d.node_label(bohr) == "Bohr"

    def test_predicates_separate_space(self):
        d = Dictionary()
        a = d.add_node("x")
        b = d.add_predicate("x")
        assert a == 0 and b == 0  # same label, independent id spaces
        assert d.n_nodes == 1 and d.n_predicates == 1

    def test_unknown_raises(self):
        d = Dictionary()
        with pytest.raises(KeyError):
            d.node_id("nope")

    def test_from_triples(self):
        d = Dictionary.from_triples(NOBEL_TRIPLES)
        assert d.n_nodes == 6  # Bohr, Thomson, Strutt, Thorne, Wheeler, Nobel
        assert d.n_predicates == 3  # adv, nom, win
        assert d.has_node("Nobel") and d.has_predicate("win")
        assert not d.has_node("win")


class TestGraph:
    def test_nobel_graph_shape(self):
        g = nobel_graph()
        assert g.n_triples == 13
        assert g.n_nodes == 6
        assert g.n_predicates == 3

    def test_sorted_and_deduplicated(self):
        g = Graph(np.array([[2, 0, 1], [0, 0, 1], [2, 0, 1]]))
        assert g.n_triples == 2
        assert g.triples.tolist() == [[0, 0, 1], [2, 0, 1]]

    def test_contains(self):
        g = nobel_graph()
        d = g.dictionary
        assert (d.node_id("Bohr"), d.predicate_id("adv"), d.node_id("Thomson")) in g
        assert (d.node_id("Bohr"), d.predicate_id("adv"), d.node_id("Nobel")) not in g

    def test_roundtrip_labels(self):
        g = nobel_graph()
        assert set(g.labelled_triples()) == set(NOBEL_TRIPLES)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            Graph(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            Graph(np.array([[-1, 0, 0]]))
        with pytest.raises(ValueError):
            Graph(np.array([[5, 0, 0]]), n_nodes=3, n_predicates=1)

    def test_empty_graph(self):
        g = Graph(np.zeros((0, 3)))
        assert g.n_triples == 0
        assert list(g) == []

    def test_encode_pattern(self):
        g = nobel_graph()
        pattern = TriplePattern(Var("x"), "adv", "Bohr")
        enc = g.encode_pattern(pattern)
        assert enc.s == Var("x")
        assert enc.p == g.dictionary.predicate_id("adv")
        assert enc.o == g.dictionary.node_id("Bohr")

    def test_encode_unknown_constant_gives_none(self):
        g = nobel_graph()
        assert g.encode_pattern(TriplePattern(Var("x"), "nope", Var("y"))) is None

    def test_encode_without_dictionary_raises_for_strings(self):
        g = Graph(np.array([[0, 0, 0]]))
        with pytest.raises(ValueError):
            g.encode_pattern(TriplePattern("a", "b", "c"))

    def test_decode_solution_uses_roles(self):
        from repro.graph import BasicGraphPattern

        g = nobel_graph()
        bgp = BasicGraphPattern([TriplePattern("Nobel", Var("p"), Var("x"))])
        roles = g.variable_roles(bgp)
        sol = {Var("p"): g.dictionary.predicate_id("win"),
               Var("x"): g.dictionary.node_id("Bohr")}
        decoded = g.decode_solution(sol, roles)
        assert decoded == {"p": "win", "x": "Bohr"}

    def test_space_yardsticks(self):
        g = nobel_graph()
        assert g.plain_size_in_bits() == 13 * 96
        # 3 bits for 6 nodes (x2) + 2 bits for 3 predicates.
        assert g.packed_size_in_bits() == 13 * (3 + 3 + 2)

    def test_from_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\nBohr adv Thomson\nNobel win Bohr\n\n")
        g = Graph.from_file(str(path))
        assert g.n_triples == 2

    def test_from_file_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("just two\n")
        with pytest.raises(ValueError):
            Graph.from_file(str(path))


class TestGenerators:
    def test_wikidata_like_deterministic(self):
        g1 = wikidata_like(500, seed=3)
        g2 = wikidata_like(500, seed=3)
        assert np.array_equal(g1.triples, g2.triples)
        assert not np.array_equal(g1.triples, wikidata_like(500, seed=4).triples)

    def test_wikidata_like_size(self):
        g = wikidata_like(1000, seed=0)
        assert g.n_triples == 1000
        assert g.n_predicates < g.n_nodes

    def test_wikidata_like_is_skewed(self):
        g = wikidata_like(3000, seed=1)
        counts = np.bincount(g.triples[:, 1], minlength=g.n_predicates)
        # The most frequent predicate should dominate the least frequent.
        assert counts.max() > 5 * max(counts.min(), 1)

    def test_path_graph(self):
        g = path_graph(5)
        assert g.n_triples == 5
        assert (0, 0, 1) in g
        assert (5, 0, 6) not in g

    def test_clique_graph(self):
        g = clique_graph(4)
        assert g.n_triples == 12  # k*(k-1)
        assert (0, 0, 0) not in g

    def test_random_graph_caps_at_capacity(self):
        g = random_graph(1000, n_nodes=3, n_predicates=2, seed=0)
        assert g.n_triples == 3 * 3 * 2

    def test_random_graph_exact_count(self):
        g = random_graph(50, n_nodes=20, n_predicates=3, seed=5)
        assert g.n_triples == 50
