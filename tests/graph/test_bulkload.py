"""External-memory bulk construction (:mod:`repro.graph.bulkload`).

The contract under test: whatever the source format, chunk size, input
order or duplication, ``bulk_build`` writes the *byte-identical* pack
that ``RingIndex(graph).save_frozen`` would — with working memory
bounded by the chunk size, spills in a private directory, and typed
failures that leave no partial pack behind.
"""

import os

import numpy as np
import pytest

from repro.core import RingIndex
from repro.graph.bulkload import BulkBuildError, bulk_build
from repro.graph.dataset import Graph
from repro.graph.dictionary import Dictionary
from repro.graph.generators import random_graph
from repro.reliability.faults import Fault, InjectedFault, inject_faults


def _reference_pack(graph, tmp_path, name="reference.ring"):
    path = str(tmp_path / name)
    RingIndex(graph).save_frozen(path)
    return path


def _read(path):
    with open(path, "rb") as fh:
        return fh.read()


@pytest.fixture(scope="module")
def graph():
    return random_graph(2000, n_nodes=100, n_predicates=4, seed=11)


class TestByteIdentity:
    @pytest.mark.parametrize("chunk", [64, 777, 2000, 10_000])
    def test_every_chunk_size_matches_in_memory(self, graph, tmp_path, chunk):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / f"chunk{chunk}.ring")
        stats: dict = {}
        bulk_build(graph, out, chunk_triples=chunk, stats=stats)
        assert _read(out) == _read(reference)
        assert _read(out + ".config.json") == _read(
            reference + ".config.json"
        )
        if chunk < graph.n_triples:
            assert stats["runs_spilled"] > 1

    def test_permuted_duplicated_input(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        rng = np.random.default_rng(5)
        rows = graph.triples
        noisy = np.concatenate([rows, rows[rng.integers(0, len(rows), 500)]])
        noisy = noisy[rng.permutation(len(noisy))]
        out = str(tmp_path / "noisy.ring")
        stats: dict = {}
        bulk_build(
            iter(noisy),
            out,
            chunk_triples=300,
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
            stats=stats,
        )
        assert _read(out) == _read(reference)
        assert stats["deduplicated"] == 500

    def test_bin_source(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        src = str(tmp_path / "input.bin")
        graph.triples.astype(np.int64).tofile(src)
        out = str(tmp_path / "frombin.ring")
        bulk_build(
            src,
            out,
            chunk_triples=256,
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
        )
        assert _read(out) == _read(reference)

    def test_text_source(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        src = str(tmp_path / "input.txt")
        with open(src, "w") as fh:
            fh.write("# id triples, one per line\n")
            for s, p, o in graph.triples:
                fh.write(f"{s} {p} {o}\n")
        out = str(tmp_path / "fromtext.ring")
        bulk_build(
            src,
            out,
            chunk_triples=256,
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
        )
        assert _read(out) == _read(reference)


class TestNtriples:
    def test_nt_source_matches_loaded_graph(self, tmp_path):
        rng = np.random.default_rng(9)
        src = str(tmp_path / "data.nt")
        with open(src, "w") as fh:
            for _ in range(400):
                s, o = rng.integers(0, 40, 2)
                p = rng.integers(0, 3)
                fh.write(
                    f"<http://ex/e{s}> <http://ex/p{p}> <http://ex/e{o}> .\n"
                )
        from repro.graph.ntriples import load_ntriples

        graph = load_ntriples(src)
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "fromnt.ring")
        bulk_build(src, out, chunk_triples=64)
        assert _read(out) == _read(reference)
        # String queries decode through the pack's own dictionary.
        loaded = RingIndex.load(out, mmap=True)
        want = RingIndex(graph).evaluate("?x http://ex/p0 ?y", decode=True)
        assert list(loaded.evaluate("?x http://ex/p0 ?y", decode=True)) == list(
            want
        )

    def test_malformed_nt_is_typed(self, tmp_path):
        src = str(tmp_path / "bad.nt")
        with open(src, "w") as fh:
            fh.write("<http://ex/a> <http://ex/p>\n")  # missing object
        with pytest.raises(BulkBuildError):
            bulk_build(src, str(tmp_path / "bad.ring"))


class TestEdges:
    def test_empty_graph(self, tmp_path):
        graph = Graph(
            np.empty((0, 3), dtype=np.int64), n_nodes=5, n_predicates=2
        )
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "empty.ring")
        bulk_build(
            graph, out, chunk_triples=16, n_nodes=5, n_predicates=2
        )
        assert _read(out) == _read(reference)

    def test_single_triple(self, tmp_path):
        graph = Graph(np.array([[1, 0, 2]], dtype=np.int64))
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "one.ring")
        bulk_build(graph, out, chunk_triples=16)
        assert _read(out) == _read(reference)

    def test_inferred_universe_matches_graph(self, graph, tmp_path):
        # No pinned universes: inference must mirror Graph (max id + 1).
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "inferred.ring")
        bulk_build(iter(graph.triples), out, chunk_triples=300)
        if graph.n_nodes == int(graph.triples[:, [0, 2]].max()) + 1:
            assert _read(out) == _read(reference)

    def test_id_outside_pinned_universe(self, tmp_path):
        rows = np.array([[0, 0, 9]], dtype=np.int64)
        with pytest.raises(BulkBuildError):
            bulk_build(
                iter(rows),
                str(tmp_path / "oob.ring"),
                n_nodes=5,
                n_predicates=1,
            )

    def test_dictionary_conflict(self, tmp_path):
        d = Dictionary()
        d.add_node("a"), d.add_node("b")
        d.add_predicate("p")
        src = str(tmp_path / "two.nt")
        with open(src, "w") as fh:
            fh.write("<a> <p> <b> .\n")
        with pytest.raises(BulkBuildError, match="conflicts"):
            bulk_build(src, str(tmp_path / "c.ring"), n_nodes=99)

    def test_universe_overflow_guard(self, tmp_path):
        with pytest.raises(BulkBuildError, match="int64"):
            bulk_build(
                iter(np.empty((0, 3), dtype=np.int64)),
                str(tmp_path / "huge.ring"),
                n_nodes=2**33,
                n_predicates=2**10,
            )

    def test_bad_chunk(self, graph, tmp_path):
        with pytest.raises(ValueError):
            bulk_build(graph, str(tmp_path / "x.ring"), chunk_triples=0)


class TestFaults:
    @pytest.mark.parametrize("site", ["build.spill", "build.merge"])
    def test_crash_leaves_no_pack_and_retry_is_exact(
        self, graph, tmp_path, site
    ):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "faulted.ring")
        fault = Fault(site, probability=1.0, error=InjectedFault, max_fires=1)
        with inject_faults(fault, seed=3):
            with pytest.raises(BulkBuildError):
                bulk_build(graph, out, chunk_triples=300)
        assert fault.fired
        assert not os.path.exists(out)
        assert not os.path.exists(out + ".config.json")
        # No spill litter: the private workdir is removed either way.
        assert not [
            n for n in os.listdir(tmp_path) if n.startswith("bulkload")
        ]
        bulk_build(graph, out, chunk_triples=300)  # restart, unfaulted
        assert _read(out) == _read(reference)

    def test_failure_reports_phase(self, graph, tmp_path):
        fault = Fault(
            "build.merge", probability=1.0, error=InjectedFault, max_fires=1
        )
        with inject_faults(fault, seed=3):
            with pytest.raises(BulkBuildError) as err:
                bulk_build(
                    graph, str(tmp_path / "p.ring"), chunk_triples=300
                )
        assert "during" in str(err.value)
