"""External-memory bulk construction (:mod:`repro.graph.bulkload`).

The contract under test: whatever the source format, chunk size, input
order or duplication, ``bulk_build`` writes the *byte-identical* pack
that ``RingIndex(graph).save_frozen`` would — with working memory
bounded by the chunk size, spills in a private directory, and typed
failures that leave no partial pack behind.
"""

import json
import os

import numpy as np
import pytest

from repro.core import RingIndex
from repro.graph import bulkload
from repro.graph.bulkload import (
    BulkBuildError,
    bulk_build,
    bulk_build_sharded,
)
from repro.graph.dataset import Graph
from repro.graph.dictionary import Dictionary
from repro.graph.generators import random_graph
from repro.reliability.faults import Fault, InjectedFault, inject_faults


def _reference_pack(graph, tmp_path, name="reference.ring"):
    path = str(tmp_path / name)
    RingIndex(graph).save_frozen(path)
    return path


def _read(path):
    with open(path, "rb") as fh:
        return fh.read()


@pytest.fixture(scope="module")
def graph():
    return random_graph(2000, n_nodes=100, n_predicates=4, seed=11)


class TestByteIdentity:
    @pytest.mark.parametrize("chunk", [64, 777, 2000, 10_000])
    def test_every_chunk_size_matches_in_memory(self, graph, tmp_path, chunk):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / f"chunk{chunk}.ring")
        stats: dict = {}
        bulk_build(graph, out, chunk_triples=chunk, stats=stats)
        assert _read(out) == _read(reference)
        assert _read(out + ".config.json") == _read(
            reference + ".config.json"
        )
        if chunk < graph.n_triples:
            assert stats["runs_spilled"] > 1

    def test_permuted_duplicated_input(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        rng = np.random.default_rng(5)
        rows = graph.triples
        noisy = np.concatenate([rows, rows[rng.integers(0, len(rows), 500)]])
        noisy = noisy[rng.permutation(len(noisy))]
        out = str(tmp_path / "noisy.ring")
        stats: dict = {}
        bulk_build(
            iter(noisy),
            out,
            chunk_triples=300,
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
            stats=stats,
        )
        assert _read(out) == _read(reference)
        assert stats["deduplicated"] == 500

    def test_bin_source(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        src = str(tmp_path / "input.bin")
        graph.triples.astype(np.int64).tofile(src)
        out = str(tmp_path / "frombin.ring")
        bulk_build(
            src,
            out,
            chunk_triples=256,
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
        )
        assert _read(out) == _read(reference)

    def test_text_source(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        src = str(tmp_path / "input.txt")
        with open(src, "w") as fh:
            fh.write("# id triples, one per line\n")
            for s, p, o in graph.triples:
                fh.write(f"{s} {p} {o}\n")
        out = str(tmp_path / "fromtext.ring")
        bulk_build(
            src,
            out,
            chunk_triples=256,
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
        )
        assert _read(out) == _read(reference)


class TestNtriples:
    def test_nt_source_matches_loaded_graph(self, tmp_path):
        rng = np.random.default_rng(9)
        src = str(tmp_path / "data.nt")
        with open(src, "w") as fh:
            for _ in range(400):
                s, o = rng.integers(0, 40, 2)
                p = rng.integers(0, 3)
                fh.write(
                    f"<http://ex/e{s}> <http://ex/p{p}> <http://ex/e{o}> .\n"
                )
        from repro.graph.ntriples import load_ntriples

        graph = load_ntriples(src)
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "fromnt.ring")
        bulk_build(src, out, chunk_triples=64)
        assert _read(out) == _read(reference)
        # String queries decode through the pack's own dictionary.
        loaded = RingIndex.load(out, mmap=True)
        want = RingIndex(graph).evaluate("?x http://ex/p0 ?y", decode=True)
        assert list(loaded.evaluate("?x http://ex/p0 ?y", decode=True)) == list(
            want
        )

    def test_malformed_nt_is_typed(self, tmp_path):
        src = str(tmp_path / "bad.nt")
        with open(src, "w") as fh:
            fh.write("<http://ex/a> <http://ex/p>\n")  # missing object
        with pytest.raises(BulkBuildError):
            bulk_build(src, str(tmp_path / "bad.ring"))


class TestEdges:
    def test_empty_graph(self, tmp_path):
        graph = Graph(
            np.empty((0, 3), dtype=np.int64), n_nodes=5, n_predicates=2
        )
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "empty.ring")
        bulk_build(
            graph, out, chunk_triples=16, n_nodes=5, n_predicates=2
        )
        assert _read(out) == _read(reference)

    def test_single_triple(self, tmp_path):
        graph = Graph(np.array([[1, 0, 2]], dtype=np.int64))
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "one.ring")
        bulk_build(graph, out, chunk_triples=16)
        assert _read(out) == _read(reference)

    def test_inferred_universe_matches_graph(self, graph, tmp_path):
        # No pinned universes: inference must mirror Graph (max id + 1).
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "inferred.ring")
        bulk_build(iter(graph.triples), out, chunk_triples=300)
        if graph.n_nodes == int(graph.triples[:, [0, 2]].max()) + 1:
            assert _read(out) == _read(reference)

    def test_id_outside_pinned_universe(self, tmp_path):
        rows = np.array([[0, 0, 9]], dtype=np.int64)
        with pytest.raises(BulkBuildError):
            bulk_build(
                iter(rows),
                str(tmp_path / "oob.ring"),
                n_nodes=5,
                n_predicates=1,
            )

    def test_dictionary_conflict(self, tmp_path):
        d = Dictionary()
        d.add_node("a"), d.add_node("b")
        d.add_predicate("p")
        src = str(tmp_path / "two.nt")
        with open(src, "w") as fh:
            fh.write("<a> <p> <b> .\n")
        with pytest.raises(BulkBuildError, match="conflicts"):
            bulk_build(src, str(tmp_path / "c.ring"), n_nodes=99)

    def test_universe_overflow_guard(self, tmp_path):
        with pytest.raises(BulkBuildError, match="int64"):
            bulk_build(
                iter(np.empty((0, 3), dtype=np.int64)),
                str(tmp_path / "huge.ring"),
                n_nodes=2**33,
                n_predicates=2**10,
            )

    def test_bad_chunk(self, graph, tmp_path):
        with pytest.raises(ValueError):
            bulk_build(graph, str(tmp_path / "x.ring"), chunk_triples=0)


class TestFaults:
    @pytest.mark.parametrize("site", ["build.spill", "build.merge"])
    def test_crash_leaves_no_pack_and_retry_is_exact(
        self, graph, tmp_path, site
    ):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "faulted.ring")
        fault = Fault(site, probability=1.0, error=InjectedFault, max_fires=1)
        with inject_faults(fault, seed=3):
            with pytest.raises(BulkBuildError):
                bulk_build(graph, out, chunk_triples=300)
        assert fault.fired
        assert not os.path.exists(out)
        assert not os.path.exists(out + ".config.json")
        # No spill litter: the private workdir is removed either way.
        assert not [
            n for n in os.listdir(tmp_path) if n.startswith("bulkload")
        ]
        bulk_build(graph, out, chunk_triples=300)  # restart, unfaulted
        assert _read(out) == _read(reference)

    def test_failure_reports_phase(self, graph, tmp_path):
        fault = Fault(
            "build.merge", probability=1.0, error=InjectedFault, max_fires=1
        )
        with inject_faults(fault, seed=3):
            with pytest.raises(BulkBuildError) as err:
                bulk_build(
                    graph, str(tmp_path / "p.ring"), chunk_triples=300
                )
        assert "during" in str(err.value)


class TestKwayMerge:
    def test_default_fanin_is_single_pass(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "kway64.ring")
        stats: dict = {}
        bulk_build(graph, out, chunk_triples=150, stats=stats)
        assert _read(out) == _read(reference)
        # Many runs, one pass: every spilled byte read exactly once.
        assert stats["runs_spilled"] > 2
        assert stats["merge_extra_pass_bytes"] == 0
        assert stats["merge_bytes_read"] == stats["merge_bytes_in"]
        assert stats["merge_rounds"] == 0
        assert stats["merge_fanin"] == bulkload.DEFAULT_MERGE_FANIN

    @pytest.mark.parametrize("fanin", [2, 3])
    def test_tiny_fanin_recurses_byte_identically(self, graph, tmp_path, fanin):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / f"kway{fanin}.ring")
        stats: dict = {}
        bulk_build(
            graph, out, chunk_triples=150, merge_fanin=fanin, stats=stats
        )
        assert _read(out) == _read(reference)
        assert _read(out + ".config.json") == _read(
            reference + ".config.json"
        )
        # Reduction rounds happened and their rereads are accounted, not
        # hidden: beyond-one-pass bytes must be positive at fan-in 2-3.
        assert stats["merge_rounds"] > 0
        assert stats["merge_extra_pass_bytes"] > 0
        assert (
            stats["merge_bytes_read"]
            == stats["merge_bytes_in"] + stats["merge_extra_pass_bytes"]
        )

    def test_bad_fanin_rejected(self, graph, tmp_path):
        with pytest.raises(ValueError):
            bulk_build(graph, str(tmp_path / "x.ring"), merge_fanin=1)


class TestParallelBuild:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_workers_match_serial_bytes(self, graph, tmp_path, workers):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / f"par{workers}.ring")
        stats: dict = {}
        bulk_build(graph, out, chunk_triples=300, workers=workers, stats=stats)
        assert _read(out) == _read(reference)
        assert _read(out + ".config.json") == _read(
            reference + ".config.json"
        )
        if not stats.get("pool_degraded"):
            assert stats["pool_completed"] > 0
            assert stats["pool_serial_rescues"] == 0
            assert stats.get("worker_peak_rss_bytes") is None or (
                stats["worker_peak_rss_bytes"] > 0
            )

    def test_bad_workers_rejected(self, graph, tmp_path):
        with pytest.raises(ValueError):
            bulk_build(graph, str(tmp_path / "x.ring"), workers=-1)


class TestShardedBuild:
    def test_layout_recovers_and_answers(self, graph, tmp_path):
        from repro.graph.model import BasicGraphPattern, TriplePattern, Var
        from repro.serving.coordinator import ShardCoordinator
        from repro.serving.sharding import ShardedRingIndex

        out_dir = str(tmp_path / "shards")
        stats: dict = {}
        bulk_build_sharded(
            graph,
            out_dir,
            n_shards=2,
            chunk_triples=300,
            workers=2,
            stats=stats,
        )
        manifest = json.loads(
            open(os.path.join(out_dir, "SHARDS.json")).read()
        )
        assert manifest["n_shards"] == 2
        assert manifest["n_nodes"] == graph.n_nodes
        assert manifest["n_predicates"] == graph.n_predicates
        assert manifest["transport"] == "inproc"
        for sid in range(2):
            assert os.path.isdir(os.path.join(out_dir, f"shard-{sid:02d}"))
        assert sum(stats["shard_triples"]) == stats["n_triples"]

        x, y, z = Var("x"), Var("y"), Var("z")
        bgps = [
            BasicGraphPattern([TriplePattern(x, Var("p"), y)]),
            BasicGraphPattern(
                [TriplePattern(x, 0, y), TriplePattern(y, 1, z)]
            ),
        ]

        def rows(mus):
            return sorted(
                tuple(sorted((v.name, c) for v, c in mu.items()))
                for mu in mus
            )

        reference = RingIndex(graph)
        with ShardedRingIndex.recover(out_dir, mmap=True) as shards:
            coordinator = ShardCoordinator(shards)
            for bgp in bgps:
                got = rows(coordinator.evaluate(bgp, timeout=60.0))
                assert got == rows(reference.evaluate(bgp))
        assert rows(reference.evaluate(bgps[0]))  # scan must return rows

    def test_refuses_existing_out_dir(self, graph, tmp_path):
        out_dir = tmp_path / "taken"
        out_dir.mkdir()
        with pytest.raises(BulkBuildError, match="exists"):
            bulk_build_sharded(graph, str(out_dir), n_shards=2)


class TestWorkerFaults:
    def test_worker_fault_is_typed_and_clean(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "wfault.ring")
        # probability=1.0: the armed site fires inside the forked workers
        # (the executor is resolved per task) and in any inline rescue.
        fault = Fault("build.worker", probability=1.0, error=InjectedFault)
        with inject_faults(fault, seed=3):
            with pytest.raises(BulkBuildError):
                bulk_build(graph, out, chunk_triples=300, workers=2)
        assert not os.path.exists(out)
        assert not os.path.exists(out + ".config.json")
        bulk_build(graph, out, chunk_triples=300, workers=2)
        assert _read(out) == _read(reference)

    def test_killed_worker_is_rescued(self, graph, tmp_path):
        reference = _reference_pack(graph, tmp_path)
        out = str(tmp_path / "wkill.ring")
        stats: dict = {}
        bulkload._POOL_HOOK = lambda pool: setattr(
            pool, "_kill_after_dispatch", 0
        )
        try:
            bulk_build(graph, out, chunk_triples=300, workers=2, stats=stats)
        finally:
            bulkload._POOL_HOOK = None
        if not stats.get("pool_degraded"):
            assert stats["pool_serial_rescues"] >= 1
        assert _read(out) == _read(reference)
