"""Tests for d-ary rings and the multi-ring relational system."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.model import Var
from repro.relational import Relation, RelationalRingSystem, RelationPattern, RelationRing
from repro.relational.ring_d import UnsupportedEliminationOrder

X, Y, Z, W, V = Var("x"), Var("y"), Var("z"), Var("w"), Var("v")


def naive_join(relations_patterns, limit=None):
    """Brute-force evaluation of a list of (Relation, RelationPattern)."""
    solutions = [{}]
    for relation, pattern in relations_patterns:
        extended = []
        for binding in solutions:
            concrete = pattern.substitute(binding)
            for row in relation:
                new = dict(binding)
                ok = True
                for term, value in zip(concrete.terms, row):
                    if isinstance(term, Var):
                        if new.get(term, value) != value:
                            ok = False
                            break
                        new[term] = value
                    elif term != value:
                        ok = False
                        break
                if ok:
                    extended.append(new)
        seen, solutions = set(), []
        for b in extended:
            key = frozenset(b.items())
            if key not in seen:
                seen.add(key)
                solutions.append(b)
    return {frozenset(b.items()) for b in solutions}


class TestRelation:
    def test_dedup_and_sort(self):
        r = Relation(np.array([[1, 0], [0, 1], [1, 0]]))
        assert r.n == 2
        assert r.arity == 2

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            Relation(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            Relation(np.array([[1]]))
        with pytest.raises(ValueError):
            Relation(np.array([[-1, 0]]))
        with pytest.raises(ValueError):
            Relation(np.array([[5, 0]]), sigmas=[3, 2])

    def test_contains(self):
        r = Relation(np.array([[1, 2, 3]]))
        assert (1, 2, 3) in r
        assert (3, 2, 1) not in r


class TestRelationPattern:
    def test_construction_forms(self):
        assert RelationPattern(X, 1, Y).arity == 3
        assert RelationPattern((X, 1, Y, Z)).arity == 4

    def test_rejects_arity_one(self):
        with pytest.raises(ValueError):
            RelationPattern(X)

    def test_helpers(self):
        p = RelationPattern(X, 3, Y, X)
        assert p.variables() == [X, Y]
        assert p.variable_positions(X) == [0, 3]
        assert p.constants() == [(1, 3)]
        assert p.has_repeated_variable()
        assert not p.is_fully_bound()
        assert p.substitute({X: 9}) == RelationPattern(9, 3, Y, 9)


class TestRelationRing:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_tuple_recovery(self, d):
        rng = np.random.default_rng(d)
        tuples = rng.integers(0, 6, size=(40, d))
        rel = Relation(tuples)
        ring = RelationRing(rel, tuple(range(d)))
        recovered = sorted(ring.tuple_at(i) for i in range(ring.n))
        assert recovered == sorted(tuple(t) for t in rel)

    def test_rejects_bad_order(self):
        rel = Relation(np.array([[0, 1, 2]]))
        with pytest.raises(ValueError):
            RelationRing(rel, (0, 1))
        with pytest.raises(ValueError):
            RelationRing(rel, (0, 1, 1))

    def test_run_for(self):
        rel = Relation(np.zeros((1, 4), dtype=np.int64))
        ring = RelationRing(rel, (0, 2, 1, 3))
        assert ring.run_for(frozenset({2})) == (1, 1)
        assert ring.run_for(frozenset({0, 3})) == (3, 2)
        assert ring.run_for(frozenset({0, 1})) is None
        assert ring.run_for(frozenset()) == (0, 0)
        assert ring.run_for(frozenset({0, 1, 2, 3})) == (0, 4)

    def test_range_counts_match(self):
        rng = np.random.default_rng(0)
        rel = Relation(rng.integers(0, 4, size=(60, 4)))
        ring = RelationRing(rel, (0, 1, 2, 3))
        rows = [tuple(t) for t in rel]
        # Runs starting at position 1 of length 2: attributes 1, 2.
        for v1 in range(4):
            for v2 in range(4):
                state = ring.range_for_run(1, [v1, v2])
                expected = sum(1 for t in rows if t[1] == v1 and t[2] == v2)
                got = 0 if state is None else state[2] - state[1]
                assert got == expected

    def test_forward_leap_with_verification(self):
        rng = np.random.default_rng(3)
        rel = Relation(rng.integers(0, 3, size=(50, 4)))
        ring = RelationRing(rel, (0, 1, 2, 3))
        rows = [tuple(t) for t in rel]
        # Run = attributes (0, 1) bound; leap on attribute 2 (forward).
        for v0 in range(3):
            for v1 in range(3):
                admissible = sorted(
                    {t[2] for t in rows if t[0] == v0 and t[1] == v1}
                )
                for c in range(4):
                    expected = next((v for v in admissible if v >= c), None)
                    assert ring.forward_leap(0, [v0, v1], c) == expected


class TestRelationalSystem:
    def test_triangle_via_binary_relations(self):
        rng = np.random.default_rng(1)
        edges = Relation(rng.integers(0, 8, size=(60, 2)))
        system = RelationalRingSystem(edges)
        patterns = [
            RelationPattern(X, Y),
            RelationPattern(Y, Z),
            RelationPattern(Z, X),
        ]
        got = {frozenset(s.items()) for s in system.evaluate(patterns)}
        assert got == naive_join([(edges, p) for p in patterns])

    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_single_pattern_with_constants(self, d):
        rng = np.random.default_rng(d + 10)
        rel = Relation(rng.integers(0, 4, size=(80, d)))
        system = RelationalRingSystem(rel)
        variables = [X, Y, Z, W, V][: d - 1]
        pattern = RelationPattern(2, *variables)
        got = {frozenset(s.items()) for s in system.evaluate([pattern])}
        assert got == naive_join([(rel, pattern)])

    def test_quad_join(self):
        """Arity 4 needs cbtw(4) = 2 rings; exercise both."""
        rng = np.random.default_rng(7)
        quads = Relation(rng.integers(0, 5, size=(100, 4)))
        system = RelationalRingSystem(quads)
        assert len(system.orders) >= 2
        patterns = [
            RelationPattern(X, Y, Z, W),
            RelationPattern(Y, X, W, Z),
        ]
        got = {frozenset(s.items()) for s in system.evaluate(patterns)}
        assert got == naive_join([(quads, p) for p in patterns])

    def test_mixed_arity_star(self):
        rng = np.random.default_rng(9)
        r4 = Relation(rng.integers(0, 4, size=(70, 4)))
        system = RelationalRingSystem(r4)
        patterns = [
            RelationPattern(X, 1, Y, Z),
            RelationPattern(Z, Y, 2, W),
        ]
        got = {frozenset(s.items()) for s in system.evaluate(patterns)}
        assert got == naive_join([(r4, p) for p in patterns])

    def test_limit(self):
        rel = Relation(np.array([[i, i + 1] for i in range(20)]))
        system = RelationalRingSystem(rel)
        assert len(system.evaluate([RelationPattern(X, Y)], limit=5)) == 5

    def test_repeated_variable_rejected(self):
        rel = Relation(np.array([[0, 0]]))
        system = RelationalRingSystem(rel)
        with pytest.raises(UnsupportedEliminationOrder):
            system.evaluate([RelationPattern(X, X)])

    def test_space_scales_with_cover_size(self):
        rng = np.random.default_rng(2)
        tri = Relation(rng.integers(0, 8, size=(100, 3)))
        quad = Relation(rng.integers(0, 8, size=(100, 4)))
        s3 = RelationalRingSystem(tri)
        s4 = RelationalRingSystem(quad)
        assert len(s3.orders) == 1  # cbtw(3) = 1: one ring
        assert len(s4.orders) >= 2


@given(
    st.sets(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3),
                  st.integers(0, 3)),
        min_size=1,
        max_size=25,
    ),
    st.permutations([X, Y, Z, W]),
)
@settings(max_examples=25, deadline=None)
def test_property_quad_ring_matches_naive(tuple_set, vars_perm):
    rel = Relation(np.array(sorted(tuple_set)))
    system = RelationalRingSystem(rel)
    pattern = RelationPattern(*vars_perm)
    got = {frozenset(s.items()) for s in system.evaluate([pattern])}
    assert got == naive_join([(rel, pattern)])
