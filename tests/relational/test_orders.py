"""Tests reproducing Table 3 (number of index orders per class)."""

import pytest

from repro.relational.orders import (
    bidirectional_cyclic_orders,
    closed_form_cw,
    closed_form_tw,
    closed_form_w,
    covers_cbtw,
    covers_cbw,
    covers_ctw,
    covers_cw,
    covers_tw,
    covers_w,
    cyclic_orders,
    elimination_orders,
    find_cover,
    flat_orders,
    greedy_cover,
    minimum_orders,
    run_of,
    switching_requirements,
    table3,
)


class TestClosedForms:
    """Theorem 6.2's exact formulas."""

    @pytest.mark.parametrize(
        "d,expected", [(2, 2), (3, 6), (4, 24), (5, 120), (6, 720), (7, 5040)]
    )
    def test_w(self, d, expected):
        assert closed_form_w(d) == expected

    @pytest.mark.parametrize(
        "d,expected", [(2, 2), (3, 6), (4, 12), (5, 30), (6, 60), (7, 140), (8, 280)]
    )
    def test_tw(self, d, expected):
        assert closed_form_tw(d) == expected

    @pytest.mark.parametrize(
        "d,expected", [(2, 1), (3, 2), (4, 6), (5, 24), (6, 120), (7, 720)]
    )
    def test_cw(self, d, expected):
        assert closed_form_cw(d) == expected


class TestCandidates:
    def test_counts(self):
        assert len(flat_orders(4)) == 24
        assert len(cyclic_orders(4)) == 6
        assert len(bidirectional_cyclic_orders(4)) == 3
        assert len(bidirectional_cyclic_orders(5)) == 12

    def test_bidirectional_deduplicates_mirrors(self):
        cycles = bidirectional_cyclic_orders(4)
        # (0,1,2,3) and its mirror (0,3,2,1) must not both appear.
        assert ((0, 1, 2, 3) in cycles) != ((0, 3, 2, 1) in cycles)


class TestCoveragePredicates:
    def test_run_of(self):
        cycle = (0, 2, 1, 3)
        assert run_of(cycle, frozenset({2, 1})) == (2, 1)
        assert run_of(cycle, frozenset({3, 0})) == (3, 0)
        assert run_of(cycle, frozenset({0, 1})) is None

    def test_covers_tw(self):
        assert covers_tw((1, 0, 2), (frozenset({0, 1}), 2))
        assert not covers_tw((1, 0, 2), (frozenset({0, 2}), 1))
        assert covers_tw((1, 0, 2), (frozenset(), 1))

    def test_covers_ctw_backward_only(self):
        cycle = (0, 1, 2)
        # Run {1}: its predecessor is 0.
        assert covers_ctw(cycle, (frozenset({1}), 0))
        assert not covers_ctw(cycle, (frozenset({1}), 2))
        assert covers_ctw(cycle, (frozenset(), 2))

    def test_covers_cbtw_both_ends(self):
        cycle = (0, 1, 2)
        assert covers_cbtw(cycle, (frozenset({1}), 0))
        assert covers_cbtw(cycle, (frozenset({1}), 2))

    def test_covers_cbw_single_ring_d3(self):
        """The headline: one ring handles every elimination order at d=3."""
        cycle = (0, 1, 2)
        for pi in elimination_orders(3):
            assert covers_cbw(cycle, pi), pi

    def test_covers_cw_needs_two_at_d3(self):
        cycle = (0, 1, 2)
        covered = [pi for pi in elimination_orders(3) if covers_cw(cycle, pi)]
        # Backwards traversals only: d starting points.
        assert len(covered) == 3

    def test_covers_w_is_identity(self):
        assert covers_w((0, 1, 2), (0, 1, 2))
        assert not covers_w((0, 1, 2), (0, 2, 1))


class TestMinimumOrders:
    """Table 3, exact section (d <= 5)."""

    # Rows reconstructed from the paper's Table 3.
    PAPER = {
        2: {"w": 2, "tw": 2, "cw": 1, "ctw": 1, "cbw": 1, "cbtw": 1},
        3: {"w": 6, "tw": 6, "cw": 2, "ctw": 2, "cbw": 1, "cbtw": 1},
        4: {"w": 24, "tw": 12, "cw": 6, "ctw": 4, "cbw": 2, "cbtw": 2},
        5: {"w": 120, "tw": 30, "cw": 24, "ctw": 8, "cbw": 5, "cbtw": 5},
    }

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_exact_small(self, d):
        for cls, expected in self.PAPER[d].items():
            lo, hi = minimum_orders(cls, d)
            assert lo == hi == expected, (d, cls)

    def test_exact_d5(self):
        for cls, expected in self.PAPER[5].items():
            lo, hi = minimum_orders(cls, 5)
            assert lo == hi == expected, cls

    def test_one_ring_suffices_for_graphs(self):
        """cbw(3) = cbtw(3) = 1: 'One ring to index them all'."""
        assert minimum_orders("cbw", 3) == (1, 1)
        assert minimum_orders("cbtw", 3) == (1, 1)

    def test_d6_brackets_contain_paper_values(self):
        # Paper: ctw(6) in [10, 12]; cbw(6) = 10; cbtw(6) = 7.
        lo, hi = minimum_orders("ctw", 6, node_budget=200_000)
        assert lo <= 12 and hi >= 10
        lo, hi = minimum_orders("cbw", 6, node_budget=200_000)
        assert lo <= 10 <= hi
        lo, hi = minimum_orders("cbtw", 6, node_budget=200_000)
        assert lo <= 7 <= hi

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            minimum_orders("nope", 3)
        with pytest.raises(ValueError):
            minimum_orders("w", 1)


class TestTheorem62Inequalities:
    """The bound chain of Theorem 6.2, checked on computed values."""

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_ctw_bounds(self, d):
        lo, hi = minimum_orders("ctw", d)
        assert lo == hi
        # ceil(tw(d)/d) <= ctw(d) <= tw(d-1)
        assert -(-closed_form_tw(d) // d) <= lo
        if d >= 3:
            assert lo <= closed_form_tw(d - 1)

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_cbw_bounds(self, d):
        lo, hi = minimum_orders("cbw", d)
        assert lo == hi
        # ceil(cw(d)/2^(d-2)) <= cbw(d) <= cw(d)/2 for d > 2
        assert -(-closed_form_cw(d) // (1 << max(d - 2, 0))) <= lo
        if d > 2:
            assert lo <= closed_form_cw(d) / 2

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_cbtw_bounds(self, d):
        ctw, _ = minimum_orders("ctw", d)
        cbtw, _ = minimum_orders("cbtw", d)
        # ceil(ctw/2) <= cbtw <= ctw
        assert -(-ctw // 2) <= cbtw <= ctw

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_monotone_across_classes(self, d):
        """More index capabilities never require more orders."""
        w, _ = minimum_orders("w", d)
        tw, _ = minimum_orders("tw", d)
        ctw, _ = minimum_orders("ctw", d)
        cbtw, _ = minimum_orders("cbtw", d)
        assert w >= tw >= ctw >= cbtw


class TestCovers:
    def test_greedy_cover_covers(self):
        universe = list(range(6))
        sets = [{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}]
        chosen = greedy_cover(universe, sets)
        covered = set().union(*(sets[i] for i in chosen))
        assert covered == set(universe)

    def test_greedy_cover_uncoverable(self):
        with pytest.raises(ValueError):
            greedy_cover(list(range(3)), [{0}, {1}])

    @pytest.mark.parametrize("cls", ["tw", "ctw", "cbtw"])
    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_find_cover_is_complete(self, cls, d):
        from repro.relational.orders import (
            covers_cbtw,
            covers_ctw,
            covers_tw,
        )

        predicate = {"tw": covers_tw, "ctw": covers_ctw, "cbtw": covers_cbtw}[cls]
        cover = find_cover(cls, d)
        for req in switching_requirements(d):
            assert any(predicate(cand, req) for cand in cover), req

    def test_table3_shape(self):
        rows = table3(d_values=(2, 3), node_budget=100_000)
        assert [r["d"] for r in rows] == [2, 3]
        assert rows[1]["cbw"] == (1, 1)
