"""Every example script must run to completion (small-scale smoke runs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "bytes/triple" in out
    assert "grace and alan both work on computing" in out


def test_nobel_graph(capsys):
    run_example("nobel_graph.py")
    out = capsys.readouterr().out
    assert "Figure 4 query" in out
    assert "x=Nobel" in out
    assert "|?x adv ?y| = 4" in out


def test_wikidata_scale(capsys):
    run_example("wikidata_scale.py", ["600"])
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Ring" in out


@pytest.mark.slow
def test_relational_quads(capsys):
    run_example("relational_quads.py")
    out = capsys.readouterr().out
    assert "cbtw(4)" in out.lower() or "rings indexed" in out
    assert "co-tagging" in out


def test_dynamic_and_paths(capsys):
    run_example("dynamic_and_paths.py")
    out = capsys.readouterr().out
    assert "advisor chain" in out
    assert "winners now" in out
