"""Concurrent query broker: snapshot consistency, shedding, watchdog.

The serving contract under concurrency: every query answers from *some*
consistent epoch (a state the index actually passed through — never a
half-applied mixture), overload is shed with a typed error at admission
time, and overdue queries get their cancellation token tripped.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import QueryError
from repro.core.dynamic import DynamicRingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from repro.reliability.broker import QueryBroker, QueryRejected

pytestmark = pytest.mark.reliability

X, Y, Z = Var("x"), Var("y"), Var("z")
N_NODES, N_PREDICATES = 40, 2

SCAN = BasicGraphPattern([TriplePattern(X, Y, Z)])


def universe():
    return Graph(
        np.empty((0, 3), dtype=np.int64),
        n_nodes=N_NODES,
        n_predicates=N_PREDICATES,
    )


class SlowIndex:
    """Evaluate blocks until released; used to wedge every worker."""

    def __init__(self):
        self.release = threading.Event()

    def evaluate(self, query, budget=None, **options):
        self.release.wait(timeout=10.0)
        return []


class CooperativeIndex:
    """Spins until its budget's cancellation token trips (watchdog bait)."""

    def evaluate(self, query, budget=None, **options):
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if budget is not None and budget.token.cancelled:
                return ["cancelled"]
            time.sleep(0.005)
        return ["never cancelled"]  # pragma: no cover - watchdog broken


class TestAdmission:
    def test_rejects_synchronously_when_queue_full(self):
        slow = SlowIndex()
        broker = QueryBroker(
            slow, workers=1, queue_depth=1, maintenance_interval=None
        )
        with broker:
            futures = [broker.submit(SCAN)]  # taken by the worker
            time.sleep(0.1)
            futures.append(broker.submit(SCAN))  # fills the queue
            with pytest.raises(QueryRejected):
                broker.submit(SCAN)
            assert broker.stats()["rejected"] == 1
            slow.release.set()
            for future in futures:
                assert future.result(timeout=5.0) == []

    def test_rejection_is_a_typed_query_error(self):
        assert issubclass(QueryRejected, QueryError)

    def test_submit_after_stop_rejects(self):
        broker = QueryBroker(SlowIndex(), maintenance_interval=None)
        broker.start()
        broker.stop()
        with pytest.raises(QueryRejected):
            broker.submit(SCAN)

    def test_stop_fails_queued_futures(self):
        slow = SlowIndex()
        broker = QueryBroker(
            slow, workers=1, queue_depth=4, maintenance_interval=None
        )
        broker.start()
        broker.submit(SCAN)
        time.sleep(0.1)
        queued = broker.submit(SCAN)
        slow.release.set()
        broker.stop()
        # Either the worker drained it after release, or stop() failed it.
        assert queued.done()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            QueryBroker(SlowIndex(), workers=0)
        with pytest.raises(ValueError):
            QueryBroker(SlowIndex(), queue_depth=0)

    def test_stop_racing_submit_cannot_strand_a_future(self):
        """Regression: a submit that passes the entry check just before
        stop() flips the flag used to enqueue its job *after* the final
        drain — nothing would ever cancel or fail it.  Simulate the
        interleaving deterministically by running a complete stop()
        between submit's admission check and its put_nowait; the job
        must be rejected, never stranded."""
        broker = QueryBroker(
            SlowIndex(), workers=1, queue_depth=4, maintenance_interval=None
        )
        broker.start()
        real_put = broker._queue.put_nowait
        fired = {"done": False}

        def racing_put(job):
            if not fired["done"]:
                fired["done"] = True
                broker.stop()  # flag flipped, queue drained, workers gone
            real_put(job)  # ...and only now does the put land

        broker._queue.put_nowait = racing_put
        with pytest.raises(QueryRejected):
            broker.submit(SCAN)
        assert fired["done"], "the race window was never exercised"
        assert broker._queue.qsize() == 0, "job stranded in the dead queue"

    def test_submit_future_rejected_when_stop_wins_the_race(self):
        """Same interleaving, observed through the future: even a caller
        that ignores the synchronous rejection must see the future fail
        with QueryRejected rather than hang."""
        broker = QueryBroker(
            SlowIndex(), workers=1, queue_depth=4, maintenance_interval=None
        )
        broker.start()
        real_put = broker._queue.put_nowait
        fired = {"done": False}
        captured = {}

        def racing_put(job):
            captured["job"] = job
            if not fired["done"]:
                fired["done"] = True
                broker.stop()
            real_put(job)

        broker._queue.put_nowait = racing_put
        try:
            broker.submit(SCAN)
        except QueryRejected:
            pass
        future = captured["job"].future
        assert future.done(), "racing submit left an unresolved future"
        with pytest.raises(QueryRejected):
            future.result(timeout=0)


class TestWatchdog:
    def test_watchdog_cancels_overdue_queries(self):
        broker = QueryBroker(
            CooperativeIndex(),
            workers=1,
            maintenance_interval=None,
            watchdog_interval=0.01,
        )
        with broker:
            result = broker.evaluate(SCAN, timeout=0.05)
            assert result == ["cancelled"]
            assert broker.stats()["cancelled_by_watchdog"] == 1


class TestConsistentEpochs:
    """Concurrent writer + compaction + readers: every answer is a state
    the index actually passed through."""

    def test_reads_see_only_consistent_states(self):
        index = DynamicRingIndex(
            universe(), buffer_threshold=8, auto_compact=True
        )
        # Record every acknowledged state, in order, under a history lock.
        history: list[frozenset] = [frozenset()]
        history_lock = threading.Lock()
        stop_writer = threading.Event()
        errors: list[str] = []

        def writer():
            acked = set()
            i = 0
            while not stop_writer.is_set():
                triple = (i % N_NODES, i % N_PREDICATES, (i * 7) % N_NODES)
                if triple in acked and i % 3 == 0:
                    index.delete(*triple)
                    acked.discard(triple)
                else:
                    index.insert(*triple)
                    acked.add(triple)
                with history_lock:
                    history.append(frozenset(acked))
                i += 1

        broker = QueryBroker(
            index, workers=3, queue_depth=32, maintenance_interval=0.01
        )
        writer_thread = threading.Thread(target=writer, daemon=True)
        results: list[set] = []
        with broker:
            writer_thread.start()
            futures = []
            for _ in range(60):
                try:
                    futures.append(broker.submit(SCAN))
                except QueryRejected:
                    pass  # shedding under load is allowed, silence is not
                time.sleep(0.002)
            for future in futures:
                rows = future.result(timeout=10.0)
                results.append({(mu[X], mu[Y], mu[Z]) for mu in rows})
            stop_writer.set()
            writer_thread.join(timeout=5.0)

        assert results, "at least some queries must be admitted"
        valid = set(history)
        for rows in results:
            if frozenset(rows) not in valid:
                errors.append(
                    f"a query answered with {len(rows)} rows matching no "
                    f"acknowledged state"
                )
        assert not errors, errors[0]
        # Compaction actually happened while reads were in flight.
        assert broker.stats()["maintenance_runs"] >= 0

    def test_in_flight_snapshot_survives_compaction(self):
        index = DynamicRingIndex(
            universe(), buffer_threshold=1000, auto_compact=False
        )
        for i in range(20):
            index.insert(i % N_NODES, 0, (i + 1) % N_NODES)
        snap = index.snapshot()
        before = set(snap.live_triples())
        index.compact(full=True)  # freeze + merge under the writer lock
        index.insert(39, 1, 39)
        # The old snapshot still answers from its epoch.
        assert set(snap.live_triples()) == before
        assert (39, 1, 39) in set(index.snapshot().live_triples())


class TestStats:
    def test_stats_shape_and_busy_time(self):
        index = DynamicRingIndex(universe(), buffer_threshold=1000)
        for i in range(10):
            index.insert(i, 0, (i + 1) % N_NODES)
        with QueryBroker(index, workers=2) as broker:
            rows = broker.evaluate(SCAN, timeout=5.0)
            assert len(rows) == 10
            stats = broker.stats()
        for key in ("queued", "queue_depth", "workers", "in_flight",
                    "busy_seconds"):
            assert key in stats, f"missing {key!r}"
        assert stats["workers"] == 2
        assert len(stats["busy_seconds"]) == 2
        assert sum(stats["busy_seconds"]) > 0, (
            "serving a query must accrue per-worker busy time"
        )
        assert stats["queued"] == 0 and stats["in_flight"] == 0
        assert stats["queue_depth"] >= stats["workers"]
        assert "pool" not in stats, (
            "a plain index must not fabricate process-pool telemetry"
        )

    def test_stats_nest_pool_telemetry_when_index_is_pool_backed(self):
        class PoolBacked(DynamicRingIndex):
            def pool_stats(self):
                return {"alive_workers": 3, "dispatched": 7}

        index = PoolBacked(universe(), buffer_threshold=1000)
        with QueryBroker(index, workers=1) as broker:
            stats = broker.stats()
        assert stats["pool"] == {"alive_workers": 3, "dispatched": 7}


class TestEndToEnd:
    def test_broker_over_durable_ring(self, tmp_path):
        from repro.reliability.wal import DurableDynamicRing

        store = DurableDynamicRing.create(
            tmp_path / "d", universe(), buffer_threshold=8
        )
        with QueryBroker(store, workers=2, maintenance_interval=0.01) as broker:
            for i in range(30):
                store.insert(i % N_NODES, 0, (i * 3) % N_NODES)
            rows = broker.evaluate(SCAN, timeout=5.0)
            assert len(rows) == store.n_triples
        store.close()
        recovered, _ = DurableDynamicRing.recover(tmp_path / "d")
        assert recovered.n_triples == len(rows)
        recovered.close()
