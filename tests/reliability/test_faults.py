"""Fault injection: failure handling proven under induced failures.

The contract being tested: whatever is injected into the hot paths,
queries end in exactly one of three ways — correct results, a typed
exception, or (with ``partial=True``) a truncated-but-correct prefix.
Never a silent wrong answer.
"""

import pytest

from repro.core import QueryExecutionError, QueryTimeout, RingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import random_graph
from repro.reliability.faults import (
    Fault,
    FaultInjector,
    InjectedFault,
    available_sites,
    inject_faults,
)
from repro.reliability.integrity import IndexIntegrityError
from repro.sequences.wavelet_matrix import WaveletMatrix
from tests.util import as_solution_set, naive_evaluate

pytestmark = pytest.mark.reliability

X, Y, Z = Var("x"), Var("y"), Var("z")

# Two-hop join with a constant predicate (already dictionary-encoded).
TWO_HOP = BasicGraphPattern(
    [TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z)]
)


@pytest.fixture(scope="module")
def graph():
    return random_graph(400, n_nodes=25, n_predicates=2, seed=3)


@pytest.fixture(scope="module")
def index(graph):
    return RingIndex(graph)


class TestRegistry:
    def test_sites_cover_the_tentpole_surface(self):
        sites = available_sites()
        for expected in (
            "wavelet.rank",
            "wavelet.select",
            "wavelet.range_next_value",
            "bitvector.access",
            "io.save",
            "io.load",
        ):
            assert expected in sites

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            Fault("wavelet.frobnicate")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            Fault("wavelet.rank", probability=1.5)


class TestLatencyFaults:
    def test_latency_makes_budget_fire(self, index):
        with inject_faults(Fault("wavelet.rank", latency=0.002)):
            with pytest.raises(QueryTimeout):
                index.evaluate(TWO_HOP, timeout=0.02)

    def test_latency_with_partial_yields_correct_prefix(self, graph, index):
        reference = naive_evaluate(graph, TWO_HOP)
        with inject_faults(Fault("wavelet.rank", latency=0.002)):
            result = index.evaluate(TWO_HOP, timeout=0.02, partial=True)
        assert result.truncated
        assert result.interrupted_by == "timeout"
        # Graceful degradation, not graceful corruption: every returned
        # row is a genuine solution.
        assert as_solution_set(result) <= reference
        assert len(result) < len(reference)


class TestErrorFaults:
    def test_engine_error_wrapped_with_bgp(self, index):
        with inject_faults(Fault("wavelet.rank", error=InjectedFault)):
            with pytest.raises(QueryExecutionError) as info:
                index.evaluate(TWO_HOP)
        assert "injected fault at wavelet.rank" in str(info.value)
        assert info.value.bgp is not None

    def test_io_load_fault_is_integrity_error(self, tmp_path, index):
        path = str(tmp_path / "idx")
        index.save(path)
        with inject_faults(Fault("io.load", error=InjectedFault)):
            with pytest.raises(IndexIntegrityError, match="injected fault"):
                RingIndex.load(path)

    def test_io_save_fault_propagates(self, tmp_path, index):
        with inject_faults(Fault("io.save", error=InjectedFault)):
            with pytest.raises(InjectedFault):
                index.save(str(tmp_path / "idx"))

    def test_probabilistic_fault_is_seeded(self, index):
        # Same seed, same workload -> identical trip counts.
        counts = []
        for _ in range(2):
            injector = FaultInjector(
                [Fault("wavelet.rank", probability=0.3)], seed=42
            )
            with injector:
                index.evaluate(TWO_HOP)
            counts.append(injector.fired["wavelet.rank"])
        assert counts[0] == counts[1] > 0

    def test_max_fires_limits_trips(self, index):
        fault = Fault("wavelet.rank", latency=0.0, max_fires=3)
        injector = FaultInjector([fault])
        with injector:
            index.evaluate(TWO_HOP)
        assert fault.fired == 3


class TestHygiene:
    def test_uninstall_restores_originals(self, index):
        original = WaveletMatrix.rank
        with inject_faults(Fault("wavelet.rank", latency=0.001)):
            assert WaveletMatrix.rank is not original
        assert WaveletMatrix.rank is original

    def test_uninstall_after_crash(self, index):
        original = WaveletMatrix.rank
        with pytest.raises(QueryExecutionError):
            with inject_faults(Fault("wavelet.rank", error=InjectedFault)):
                index.evaluate(TWO_HOP)
        assert WaveletMatrix.rank is original

    def test_reinstall_rejected(self):
        injector = FaultInjector([Fault("wavelet.rank")])
        with injector:
            with pytest.raises(RuntimeError, match="already installed"):
                injector.install()

    def test_results_correct_after_faulty_run(self, graph, index):
        # A fault-ridden query must not poison subsequent clean ones.
        with pytest.raises(QueryExecutionError):
            with inject_faults(Fault("wavelet.rank", error=InjectedFault)):
                index.evaluate(TWO_HOP)
        assert as_solution_set(index.evaluate(TWO_HOP)) == naive_evaluate(
            graph, TWO_HOP
        )
