"""Crash recovery: checkpoint + WAL replay lands on the acked state.

Property under test (the durability contract): after a crash at *any*
point, recovery reconstructs exactly the set of acknowledged updates —
a torn WAL tail (unacknowledged bytes) is truncated, never partially
applied, and damage to durable artifacts raises a typed error instead
of serving a silently wrong index.
"""

import os
import random

import numpy as np
import pytest

from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from repro.reliability.integrity import IndexIntegrityError
from repro.reliability.wal import (
    HEADER_SIZE,
    WAL_FILE,
    DurableDynamicRing,
    WALError,
    replay,
    verify_dynamic_dir,
)

pytestmark = pytest.mark.reliability

X, Y, Z = Var("x"), Var("y"), Var("z")
N_NODES, N_PREDICATES = 30, 3


def universe():
    return Graph(
        np.empty((0, 3), dtype=np.int64),
        n_nodes=N_NODES,
        n_predicates=N_PREDICATES,
    )


def random_ops(rng, n):
    """A workload script with the acknowledged state after each op."""
    acked, script = set(), []
    for _ in range(n):
        if acked and rng.random() < 0.3:
            op = ("delete", rng.choice(sorted(acked)))
        else:
            op = (
                "insert",
                (
                    rng.randrange(N_NODES),
                    rng.randrange(N_PREDICATES),
                    rng.randrange(N_NODES),
                ),
            )
        verb, triple = op
        (acked.add if verb == "insert" else acked.discard)(triple)
        script.append((op, set(acked)))
    return script


def live_set(store):
    return set(store.index.snapshot().live_triples())


class TestBasicRecovery:
    def test_wal_only_round_trip(self, tmp_path):
        store = DurableDynamicRing.create(tmp_path / "d", universe())
        store.insert(1, 0, 2)
        store.insert(2, 1, 3)
        store.delete(1, 0, 2)
        store.close()
        recovered, report = DurableDynamicRing.recover(tmp_path / "d")
        assert live_set(recovered) == {(2, 1, 3)}
        assert report.checkpoint_epoch is None
        assert report.records_replayed == 3
        recovered.close()

    def test_checkpoint_plus_tail(self, tmp_path):
        store = DurableDynamicRing.create(
            tmp_path / "d", universe(), buffer_threshold=4
        )
        for i in range(10):
            store.insert(i, 0, i + 1)
        store.checkpoint()
        store.insert(20, 1, 21)  # tail beyond the checkpoint
        store.delete(0, 0, 1)
        store.close()
        recovered, report = DurableDynamicRing.recover(tmp_path / "d")
        assert report.checkpoint_epoch is not None
        assert report.records_replayed == 2
        expected = {(i, 0, i + 1) for i in range(1, 10)} | {(20, 1, 21)}
        assert live_set(recovered) == expected
        recovered.close()

    def test_checkpoint_resets_wal_and_skips_nothing_after(self, tmp_path):
        store = DurableDynamicRing.create(tmp_path / "d", universe())
        store.insert(1, 0, 2)
        store.checkpoint()
        assert store.wal_bytes == HEADER_SIZE
        store.close()
        recovered, report = DurableDynamicRing.recover(tmp_path / "d")
        assert report.records_replayed == report.records_skipped == 0
        assert live_set(recovered) == {(1, 0, 2)}
        recovered.close()

    def test_epoch_monotone_across_restarts(self, tmp_path):
        store = DurableDynamicRing.create(tmp_path / "d", universe())
        for i in range(5):
            store.insert(i, 0, i)
        first = store.checkpoint()
        store.close()
        recovered = DurableDynamicRing.open(tmp_path / "d")
        second = recovered.checkpoint()
        recovered.close()
        assert os.path.basename(second) >= os.path.basename(first)

    def test_create_with_initial_triples_checkpoints_them(self, tmp_path):
        g = Graph(
            np.array([[1, 0, 2], [3, 1, 4]], dtype=np.int64),
            n_nodes=N_NODES,
            n_predicates=N_PREDICATES,
        )
        store = DurableDynamicRing.create(tmp_path / "d", g)
        store.close()
        recovered, report = DurableDynamicRing.recover(tmp_path / "d")
        assert live_set(recovered) == {(1, 0, 2), (3, 1, 4)}
        assert report.checkpoint_epoch is not None
        recovered.close()


class TestCrashProperty:
    """Truncate the WAL at *every* byte offset: prefix consistency."""

    def test_recovery_is_prefix_consistent_at_every_offset(self, tmp_path):
        rng = random.Random(11)
        workdir = tmp_path / "d"
        store = DurableDynamicRing.create(workdir, universe())
        states = [(HEADER_SIZE, set())]
        for (verb, triple), acked in random_ops(rng, 25):
            getattr(store, verb)(*triple)
            states.append((store.wal_bytes, acked))
        store.close()

        wal_path = str(workdir / WAL_FILE)
        wal_bytes = open(wal_path, "rb").read()

        for cut in range(HEADER_SIZE, len(wal_bytes) + 1):
            with open(wal_path, "wb") as f:
                f.write(wal_bytes[:cut])
            recovered, report = DurableDynamicRing.recover(workdir)
            expected = set()
            for end, state in states:
                if end <= cut:
                    expected = state
                else:
                    break
            assert live_set(recovered) == expected, f"cut at byte {cut}"
            # The LTJ engine over the recovered index agrees with a
            # fault-free static reference built from the same set.
            if cut == len(wal_bytes):
                rows = recovered.evaluate(
                    BasicGraphPattern([TriplePattern(X, 0, Y)])
                )
                assert {(mu[X], mu[Y]) for mu in rows} == {
                    (s, o) for s, p, o in expected if p == 0
                }
            recovered.close()

    def test_mid_checkpoint_crash_keeps_previous_state(self, tmp_path):
        """A checkpoint directory without a CURRENT swap is invisible."""
        workdir = tmp_path / "d"
        store = DurableDynamicRing.create(workdir, universe())
        store.insert(1, 0, 2)
        store.checkpoint()
        store.insert(3, 1, 4)
        store.close()
        # Simulate a crash after writing the new checkpoint dir but
        # before the pointer swap: fabricate an orphan directory.
        orphan = workdir / "checkpoint-0000009999"
        orphan.mkdir()
        (orphan / "MANIFEST.json").write_text("{not json")
        recovered, _ = DurableDynamicRing.recover(workdir)
        assert live_set(recovered) == {(1, 0, 2), (3, 1, 4)}
        recovered.close()


class TestTypedFailures:
    def test_corrupt_checkpoint_ring_raises(self, tmp_path):
        workdir = tmp_path / "d"
        store = DurableDynamicRing.create(
            workdir, universe(), buffer_threshold=4
        )
        for i in range(12):
            store.insert(i, 0, i + 1)
        store.index.compact()  # freeze into a ring so the checkpoint has one
        cpdir = store.checkpoint()
        store.close()
        ring_files = [f for f in os.listdir(cpdir) if f.endswith(".npz")]
        assert ring_files, "checkpoint should persist at least one ring"
        victim = os.path.join(cpdir, ring_files[0])
        with open(victim, "r+b") as f:
            f.seek(50)
            f.write(b"\xff\xff\xff\xff")
        with pytest.raises(IndexIntegrityError):
            DurableDynamicRing.recover(workdir)

    def test_missing_wal_raises(self, tmp_path):
        workdir = tmp_path / "d"
        DurableDynamicRing.create(workdir, universe()).close()
        os.unlink(workdir / WAL_FILE)
        with pytest.raises(WALError):
            DurableDynamicRing.recover(workdir)

    def test_universe_mismatch_raises(self, tmp_path):
        workdir = tmp_path / "d"
        DurableDynamicRing.create(workdir, universe()).close()
        # Rewrite the WAL header with different universes.
        from repro.reliability.wal import WriteAheadLog

        os.unlink(workdir / WAL_FILE)
        WriteAheadLog.create(str(workdir / WAL_FILE), 7, 1).close()
        with pytest.raises(IndexIntegrityError):
            DurableDynamicRing.recover(workdir)

    def test_older_wal_generation_raises(self, tmp_path):
        workdir = tmp_path / "d"
        store = DurableDynamicRing.create(workdir, universe())
        store.insert(1, 0, 2)
        store.checkpoint()  # records WAL generation 0, resets to 1
        store.insert(2, 0, 3)
        store.checkpoint()  # records WAL generation 1, resets to 2
        store.close()
        from repro.reliability.wal import WriteAheadLog

        os.unlink(workdir / WAL_FILE)
        WriteAheadLog.create(
            str(workdir / WAL_FILE), N_NODES, N_PREDICATES, generation=0
        ).close()
        with pytest.raises(IndexIntegrityError, match="generation"):
            DurableDynamicRing.recover(workdir)


class TestVerifyDir:
    def test_clean_directory_report(self, tmp_path):
        workdir = tmp_path / "d"
        store = DurableDynamicRing.create(
            workdir, universe(), buffer_threshold=4
        )
        for i in range(9):
            store.insert(i, 0, i + 1)
        store.checkpoint()
        store.insert(20, 1, 21)
        store.close()
        report = verify_dynamic_dir(workdir)
        assert report["kind"] == "dynamic"
        assert report["n_triples"] == 10
        assert report["n_nodes"] == N_NODES
        assert "wal_tail" not in report

    def test_torn_tail_is_reported_not_fatal(self, tmp_path):
        workdir = tmp_path / "d"
        store = DurableDynamicRing.create(workdir, universe())
        store.insert(1, 0, 2)
        store.insert(3, 1, 4)
        store.close()
        wal_path = workdir / WAL_FILE
        with open(wal_path, "r+b") as f:
            f.truncate(os.path.getsize(wal_path) - 2)
        report = verify_dynamic_dir(workdir)
        assert "torn" in report["wal_tail"]
        assert report["n_triples"] == 1

    def test_verify_index_dispatches_directories(self, tmp_path):
        from repro.reliability.integrity import verify_index

        workdir = tmp_path / "d"
        store = DurableDynamicRing.create(workdir, universe())
        store.insert(1, 0, 2)
        store.close()
        assert verify_index(workdir)["kind"] == "dynamic"


class TestCLI:
    def test_recover_and_verify_commands(self, tmp_path, capsys):
        from repro.__main__ import main

        workdir = tmp_path / "d"
        store = DurableDynamicRing.create(workdir, universe())
        store.insert(1, 0, 2)
        store.insert(2, 0, 3)
        store.close()
        main(["recover", str(workdir), "--checkpoint"])
        out = capsys.readouterr().out
        assert "replayed 2 WAL record(s)" in out
        assert "checkpoint:" in out
        main(["verify", str(workdir)])
        out = capsys.readouterr().out
        assert "index integrity: OK" in out
        assert "(dynamic)" in out

    def test_serve_line_protocol(self, tmp_path, capsys, monkeypatch):
        import io

        from repro.__main__ import main

        script = "INSERT 1 0 2\nINSERT 2 0 3\nQUERY ?x 0 ?y\nSTATS\nQUIT\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        main([
            "serve", str(tmp_path / "d"), "--create",
            "--n-nodes", "10", "--n-predicates", "2",
            "--maintenance-interval", "0.01",
        ])
        out = capsys.readouterr().out
        assert out.count("ok inserted") == 2
        assert "?x=1  ?y=2" in out
        assert "-- 2 solution(s)" in out
        assert "bye" in out
