"""Unit tests for the shared resource governor."""

import time

import pytest

from repro.core.interface import QueryCancelled, QueryTimeout
from repro.reliability.budget import CancellationToken, ResourceBudget

pytestmark = pytest.mark.reliability


class TestCoerce:
    def test_none_is_unlimited(self):
        budget = ResourceBudget.coerce(None)
        assert budget.unlimited
        for _ in range(10_000):
            budget.tick()  # never raises

    def test_number_becomes_timeout(self):
        budget = ResourceBudget.coerce(5.0)
        assert budget.timeout == 5.0
        assert not budget.unlimited

    def test_budget_passes_through(self):
        original = ResourceBudget(timeout=1.0)
        assert ResourceBudget.coerce(original) is original

    def test_shared_budget_accumulates_ops(self):
        # The same governor handed to two consumers counts both:
        # that is the point of coerce() over per-engine deadlines.
        budget = ResourceBudget(max_ops=100, tick_mask=0)
        for _ in range(60):
            budget.tick()
        with pytest.raises(QueryTimeout):
            for _ in range(60):
                budget.tick()


class TestDeadline:
    def test_expired_deadline_raises_query_timeout(self):
        budget = ResourceBudget(timeout=0.0, tick_mask=0)
        with pytest.raises(QueryTimeout):
            budget.tick()

    def test_masked_ticks_skip_clock_reads(self):
        budget = ResourceBudget(timeout=0.0)  # default mask 0xFF
        # The first 255 ticks are mask hits and never touch the clock.
        for _ in range(255):
            budget.tick()
        with pytest.raises(QueryTimeout):
            for _ in range(256):
                budget.tick()

    def test_remaining_time(self):
        budget = ResourceBudget(timeout=60.0)
        assert 0 < budget.remaining_time() <= 60.0
        assert ResourceBudget().remaining_time() is None

    def test_expired_probe_does_not_raise(self):
        budget = ResourceBudget(timeout=0.0)
        assert budget.expired()
        assert not ResourceBudget(timeout=60.0).expired()


class TestOpsBudget:
    def test_op_budget_exhaustion(self):
        budget = ResourceBudget(max_ops=10, tick_mask=0)
        with pytest.raises(QueryTimeout, match="operation budget"):
            for _ in range(11):
                budget.tick()

    def test_ops_counted_even_when_masked(self):
        budget = ResourceBudget()
        for _ in range(5):
            budget.tick()
        assert budget.ops == 5


class TestCancellation:
    def test_token_cancels(self):
        token = CancellationToken()
        budget = ResourceBudget(token=token, tick_mask=0)
        budget.tick()
        token.cancel()
        with pytest.raises(QueryCancelled):
            budget.tick()

    def test_cancelled_property(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled


class TestSolutions:
    def test_admit_solution_cap(self):
        # The return value answers "may MORE solutions follow?": with a
        # cap of 2, the second admission is the last.
        budget = ResourceBudget(max_solutions=2)
        assert budget.admit_solution()
        assert not budget.admit_solution()
        assert budget.solutions == 2

    def test_unlimited_solutions(self):
        budget = ResourceBudget()
        assert all(budget.admit_solution() for _ in range(100))


class TestValidation:
    def test_deadline_is_monotonic_offset(self):
        before = time.monotonic()
        budget = ResourceBudget(timeout=10.0)
        assert budget.deadline >= before + 9.0
