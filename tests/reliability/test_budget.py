"""Unit tests for the shared resource governor."""

import time

import pytest

from repro.core.interface import QueryCancelled, QueryTimeout
from repro.reliability.budget import CancellationToken, ResourceBudget

pytestmark = pytest.mark.reliability


class TestCoerce:
    def test_none_is_unlimited(self):
        budget = ResourceBudget.coerce(None)
        assert budget.unlimited
        for _ in range(10_000):
            budget.tick()  # never raises

    def test_number_becomes_timeout(self):
        budget = ResourceBudget.coerce(5.0)
        assert budget.timeout == 5.0
        assert not budget.unlimited

    def test_budget_passes_through(self):
        original = ResourceBudget(timeout=1.0)
        assert ResourceBudget.coerce(original) is original

    def test_shared_budget_accumulates_ops(self):
        # The same governor handed to two consumers counts both:
        # that is the point of coerce() over per-engine deadlines.
        budget = ResourceBudget(max_ops=100, tick_mask=0)
        for _ in range(60):
            budget.tick()
        with pytest.raises(QueryTimeout):
            for _ in range(60):
                budget.tick()


class TestDeadline:
    def test_expired_deadline_raises_query_timeout(self):
        budget = ResourceBudget(timeout=0.0, tick_mask=0)
        with pytest.raises(QueryTimeout):
            budget.tick()

    def test_masked_ticks_skip_clock_reads(self):
        budget = ResourceBudget(timeout=0.0)  # default mask 0xFF
        # The first 255 ticks are mask hits and never touch the clock.
        for _ in range(255):
            budget.tick()
        with pytest.raises(QueryTimeout):
            for _ in range(256):
                budget.tick()

    def test_remaining_time(self):
        budget = ResourceBudget(timeout=60.0)
        assert 0 < budget.remaining_time() <= 60.0
        assert ResourceBudget().remaining_time() is None

    def test_expired_probe_does_not_raise(self):
        budget = ResourceBudget(timeout=0.0)
        assert budget.expired()
        assert not ResourceBudget(timeout=60.0).expired()


class TestOpsBudget:
    def test_op_budget_exhaustion(self):
        budget = ResourceBudget(max_ops=10, tick_mask=0)
        with pytest.raises(QueryTimeout, match="operation budget"):
            for _ in range(11):
                budget.tick()

    def test_ops_counted_even_when_masked(self):
        budget = ResourceBudget()
        for _ in range(5):
            budget.tick()
        assert budget.ops == 5


class TestCancellation:
    def test_token_cancels(self):
        token = CancellationToken()
        budget = ResourceBudget(token=token, tick_mask=0)
        budget.tick()
        token.cancel()
        with pytest.raises(QueryCancelled):
            budget.tick()

    def test_cancelled_property(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled


class TestSolutions:
    def test_admit_solution_cap(self):
        # The return value answers "may MORE solutions follow?": with a
        # cap of 2, the second admission is the last.
        budget = ResourceBudget(max_solutions=2)
        assert budget.admit_solution()
        assert not budget.admit_solution()
        assert budget.solutions == 2

    def test_unlimited_solutions(self):
        budget = ResourceBudget()
        assert all(budget.admit_solution() for _ in range(100))


class TestValidation:
    def test_deadline_is_monotonic_offset(self):
        before = time.monotonic()
        budget = ResourceBudget(timeout=10.0)
        assert budget.deadline >= before + 9.0


# -- sub-budgets & folding (the sharded serving tier's accounting) -----------

from hypothesis import given  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

maybe_timeout = st.one_of(st.none(), st.floats(0.0, 60.0, allow_nan=False))
maybe_ops = st.one_of(st.none(), st.integers(0, 10_000))


class TestSubBudget:
    @given(parent_timeout=maybe_timeout, child_timeout=maybe_timeout)
    def test_child_deadline_never_exceeds_parents(
        self, parent_timeout, child_timeout
    ):
        parent = ResourceBudget(timeout=parent_timeout)
        child = parent.sub_budget(timeout=child_timeout)
        if parent.deadline is not None:
            assert child.deadline is not None
            assert child.deadline <= parent.deadline
        elif child_timeout is not None:
            assert child.deadline is not None

    @given(
        parent_ops=maybe_ops,
        spent=st.integers(0, 10_000),
        child_ops=maybe_ops,
    )
    def test_child_op_cap_bounded_by_parents_remaining(
        self, parent_ops, spent, child_ops
    ):
        parent = ResourceBudget(max_ops=parent_ops)
        parent.ops = spent if parent_ops is None else min(spent, parent_ops)
        child = parent.sub_budget(max_ops=child_ops)
        if parent.max_ops is not None:
            assert child.max_ops is not None
            assert child.max_ops <= parent.max_ops - parent.ops
        if child_ops is not None and child.max_ops is not None:
            assert child.max_ops <= child_ops

    def test_child_shares_the_parents_token(self):
        token = CancellationToken()
        parent = ResourceBudget(token=token)
        child = parent.sub_budget(timeout=5.0)
        token.cancel()
        with pytest.raises(QueryCancelled):
            child.check()


class TestFold:
    @given(
        work=st.lists(st.integers(0, 500), min_size=1, max_size=8),
        extra_folds=st.integers(0, 3),
    )
    def test_folding_never_double_counts(self, work, extra_folds):
        """However often each child is folded — after every retry, again
        at the end, in any interleaving — the parent is charged exactly
        the total work once."""
        parent = ResourceBudget()
        children = []
        for ops in work:
            child = parent.sub_budget()
            child.ops = ops
            children.append(child)
            parent.fold(child)
            for again in children:  # refold everything seen so far
                for _ in range(extra_folds):
                    parent.fold(again)
        assert parent.ops == sum(work)

    @given(increments=st.lists(st.integers(0, 100), min_size=1, max_size=6))
    def test_incremental_folds_sum_to_child_ops(self, increments):
        parent = ResourceBudget()
        child = parent.sub_budget()
        for inc in increments:
            child.ops += inc
            parent.fold(child)
        assert parent.ops == child.ops == sum(increments)

    def test_fold_returns_the_delta(self):
        parent = ResourceBudget()
        child = parent.sub_budget()
        child.ops = 7
        assert parent.fold(child) == 7
        assert parent.fold(child) == 0
        child.ops = 10
        assert parent.fold(child) == 3
