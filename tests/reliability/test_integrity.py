"""Index persistence integrity: corruption must never load silently."""

import json
import os

import numpy as np
import pytest

from repro.core import RingIndex
from repro.graph.generators import nobel_graph, random_graph
from repro.reliability.integrity import (
    IndexIntegrityError,
    manifest_path,
    read_manifest,
    resolve_payload,
    verify_index,
    verify_ring_structure,
)

pytestmark = pytest.mark.reliability


@pytest.fixture
def saved_index(tmp_path):
    graph = random_graph(200, n_nodes=20, n_predicates=3, seed=7)
    index = RingIndex(graph)
    path = str(tmp_path / "idx")
    index.save(path)
    return path, graph


def _payload(path: str) -> str:
    return resolve_payload(path)


class TestRoundTrip:
    def test_save_load_verified(self, saved_index):
        path, graph = saved_index
        loaded = RingIndex.load(path)
        assert loaded.graph.n_triples == graph.n_triples
        assert np.array_equal(loaded.graph.triples, graph.triples)

    def test_manifest_written(self, saved_index):
        path, graph = saved_index
        manifest = read_manifest(path)
        assert manifest is not None
        assert manifest["n_triples"] == graph.n_triples
        assert manifest["sha256"]

    def test_verify_index_report(self, saved_index):
        path, _ = saved_index
        report = verify_index(path)
        assert report["manifest"] == "present"
        assert "sha256 checksum" in report["checks"]
        assert "C-array monotonicity and endpoints" in report["checks"]


class TestCorruption:
    def test_flipped_byte_detected(self, saved_index):
        path, _ = saved_index
        payload = _payload(path)
        data = bytearray(open(payload, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(payload, "wb").write(bytes(data))
        with pytest.raises(IndexIntegrityError, match="checksum"):
            RingIndex.load(path)

    def test_truncated_file_detected(self, saved_index):
        path, _ = saved_index
        payload = _payload(path)
        data = open(payload, "rb").read()
        open(payload, "wb").write(data[: len(data) // 2])
        with pytest.raises(IndexIntegrityError):
            RingIndex.load(path)

    def test_truncation_caught_even_without_manifest(self, saved_index):
        # No checksum available: deserialization itself must fail
        # loudly, wrapped in the typed error.
        path, _ = saved_index
        payload = _payload(path)
        data = open(payload, "rb").read()
        open(payload, "wb").write(data[: len(data) // 3])
        os.remove(manifest_path(path))
        with pytest.raises(IndexIntegrityError):
            RingIndex.load(path)

    def test_missing_payload(self, tmp_path):
        with pytest.raises(IndexIntegrityError, match="does not exist"):
            RingIndex.load(str(tmp_path / "never-saved"))

    def test_garbage_manifest(self, saved_index):
        path, _ = saved_index
        with open(manifest_path(path), "w") as f:
            f.write("{not json")
        with pytest.raises(IndexIntegrityError, match="manifest"):
            RingIndex.load(path)

    def test_manifest_n_triples_mismatch(self, saved_index):
        path, _ = saved_index
        manifest = json.load(open(manifest_path(path)))
        manifest["n_triples"] += 1
        json.dump(manifest, open(manifest_path(path), "w"))
        with pytest.raises(IndexIntegrityError):
            RingIndex.load(path)

    def test_verify_index_flags_corruption(self, saved_index):
        path, _ = saved_index
        payload = _payload(path)
        data = bytearray(open(payload, "rb").read())
        data[-1] ^= 0x01
        open(payload, "wb").write(bytes(data))
        with pytest.raises(IndexIntegrityError):
            verify_index(path)

    def test_unverified_load_still_possible(self, saved_index):
        # verify=False is the escape hatch for huge trusted indexes;
        # the checksum is skipped but deserialization errors still
        # surface as IndexIntegrityError.
        path, graph = saved_index
        loaded = RingIndex.load(path, verify=False)
        assert loaded.graph.n_triples == graph.n_triples


class TestStructuralCheck:
    def test_consistent_ring_passes(self):
        graph = nobel_graph()
        index = RingIndex(graph)
        checks = verify_ring_structure(index.ring, graph=graph)
        assert any("C-array" in c for c in checks)
        assert any("spot-check" in c for c in checks)

    def test_wrong_expected_n_fails(self):
        graph = nobel_graph()
        index = RingIndex(graph)
        with pytest.raises(IndexIntegrityError):
            verify_ring_structure(
                index.ring, expected_n=graph.n_triples + 5
            )

    def test_mismatched_source_graph_fails(self):
        # A ring built from one graph spot-checked against another of
        # identical size: the triple round-trips must disagree.
        a = random_graph(100, n_nodes=12, n_predicates=2, seed=0)
        b = random_graph(100, n_nodes=12, n_predicates=2, seed=99)
        index = RingIndex(a)
        with pytest.raises(IndexIntegrityError, match="disagrees"):
            verify_ring_structure(index.ring, graph=b)
