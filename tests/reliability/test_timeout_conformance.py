"""Cross-engine timeout conformance.

Every query system in the library — the ring variants, the dynamic
ring, and all baseline regimes — must raise the *same*
:class:`~repro.core.interface.QueryTimeout` when handed the same
adversarial query with a tiny budget.  Before the shared
:class:`~repro.reliability.budget.ResourceBudget`, four divergent
deadline implementations made this untestable.
"""

import pytest

from repro.baselines import (
    BlazegraphIndex,
    CyclicUnidirectionalIndex,
    EmptyHeadedIndex,
    FlatTrieIndex,
    JenaIndex,
    JenaLTJIndex,
    QdagIndex,
    RDF3XIndex,
    VirtuosoIndex,
)
from repro.core import CompressedRingIndex, QueryTimeout, RingIndex
from repro.core.dynamic import DynamicRingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import random_graph
from repro.reliability.budget import CancellationToken, ResourceBudget

pytestmark = pytest.mark.reliability

A, B, C, D = Var("a"), Var("b"), Var("c"), Var("d")

# A dense single-predicate graph (83% of all possible edges): the
# triangle query below has ~10^5 solutions, far more work than any
# engine finishes inside the budgets used here.
ALL_SYSTEMS = [
    RingIndex,
    CompressedRingIndex,
    DynamicRingIndex,
    FlatTrieIndex,
    JenaIndex,
    JenaLTJIndex,
    BlazegraphIndex,
    RDF3XIndex,
    VirtuosoIndex,
    QdagIndex,
    EmptyHeadedIndex,
    CyclicUnidirectionalIndex,
]

# Constant predicate + pairwise-distinct variables so Qdag accepts it.
TRIANGLE = BasicGraphPattern(
    [TriplePattern(A, 0, B), TriplePattern(B, 0, C), TriplePattern(C, 0, A)]
)
# Acyclic: exercises the Yannakakis path in EmptyHeadedIndex.
PATH = BasicGraphPattern(
    [TriplePattern(A, 0, B), TriplePattern(B, 0, C), TriplePattern(C, 0, D)]
)


@pytest.fixture(scope="module")
def dense_graph():
    return random_graph(3000, n_nodes=60, n_predicates=1, seed=1)


@pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=lambda c: c.name)
def test_triangle_times_out_everywhere(cls, dense_graph):
    index = cls(dense_graph)
    with pytest.raises(QueryTimeout):
        index.evaluate(TRIANGLE, timeout=0.001)


@pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=lambda c: c.name)
def test_acyclic_path_times_out_everywhere(cls, dense_graph):
    # EmptyHeaded routes acyclic queries through Yannakakis; the rest
    # must behave identically regardless of plan shape.
    index = cls(dense_graph)
    with pytest.raises(QueryTimeout):
        index.evaluate(PATH, timeout=0.001)


@pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=lambda c: c.name)
def test_op_budget_times_out_everywhere(cls, dense_graph):
    # Deterministic variant: no clock involved, so this cannot flake on
    # a fast machine.  Every engine must exhaust a 50-op budget.
    index = cls(dense_graph)
    budget = ResourceBudget(max_ops=50, tick_mask=0)
    with pytest.raises(QueryTimeout, match="operation budget"):
        index.evaluate(TRIANGLE, budget=budget)


@pytest.mark.parametrize("cls", ALL_SYSTEMS, ids=lambda c: c.name)
def test_cancellation_token_everywhere(cls, dense_graph):
    from repro.core.interface import QueryCancelled

    index = cls(dense_graph)
    token = CancellationToken()
    token.cancel()  # pre-cancelled: first budget check must notice
    with pytest.raises(QueryCancelled):
        index.evaluate(TRIANGLE, cancellation=token)


def test_timeout_preserved_after_partial_results(dense_graph):
    # A generous limit with a tiny timeout: the engine produces some
    # rows, then the governor fires mid-enumeration.
    index = RingIndex(dense_graph)
    with pytest.raises(QueryTimeout):
        index.evaluate(TRIANGLE, timeout=0.001, limit=10**9)


def test_dynamic_union_iterator_ticks_the_budget():
    # Tombstone-heavy dynamic index: nearly all of the work happens in
    # the union iterator's liveness probes (ring leaps that land on
    # deleted triples), which the engine-side ticks never see.  A small
    # op budget must still fire — proof that the union layer itself
    # ticks the governor rather than scanning tombstones for free.
    graph = random_graph(500, n_nodes=40, n_predicates=1, seed=2)
    # Huge threshold: deletes stay as tombstones over the frozen ring
    # instead of being folded away by an automatic full compaction.
    index = DynamicRingIndex(graph, buffer_threshold=10**6)
    live = {tuple(t) for t in graph.triples.tolist()}
    survivors = sorted(live)[:10]
    for triple in sorted(live - set(survivors)):
        index.delete(*triple)
    assert index.n_triples == len(survivors)

    single = BasicGraphPattern([TriplePattern(A, 0, B)])
    budget = ResourceBudget(max_ops=50, tick_mask=0)
    with pytest.raises(QueryTimeout, match="operation budget"):
        index.evaluate(single, budget=budget)
    # Sanity: the query itself is tiny — without the budget it returns
    # only the surviving rows.
    rows = index.evaluate(single)
    assert {(mu[A], mu[B]) for mu in rows} == {
        (s, o) for s, p, o in survivors
    }
