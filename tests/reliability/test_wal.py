"""Write-ahead log framing, replay, and torn-tail semantics.

The WAL's contract: an append that returned is durable; replay reads
back exactly the acknowledged prefix; anything after the first torn or
corrupt frame is discarded (it was never acknowledged); a log whose
header itself is damaged fails loudly with a typed error.
"""

import os
import struct
import zlib

import pytest

from repro.reliability.faults import Fault, InjectedFault, inject_faults
from repro.reliability.wal import (
    HEADER_SIZE,
    OP_DELETE,
    OP_INSERT,
    WALError,
    WriteAheadLog,
    replay,
)

pytestmark = pytest.mark.reliability

OPS = [
    (OP_INSERT, 1, 0, 2),
    (OP_INSERT, 2, 1, 3),
    (OP_DELETE, 1, 0, 2),
    (OP_INSERT, 5, 0, 5),
]


@pytest.fixture()
def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


def write_ops(path, ops=OPS, generation=0):
    wal = WriteAheadLog.create(path, 100, 10, generation=generation)
    for op in ops:
        wal.append(*op)
    wal.close()


class TestFraming:
    def test_round_trip(self, wal_path):
        write_ops(wal_path)
        rep = replay(wal_path)
        assert [(r.op, r.s, r.p, r.o) for r in rep.records] == OPS
        assert not rep.truncated
        assert rep.corrupt_reason is None
        assert rep.generation == 0
        assert rep.n_nodes == 100 and rep.n_predicates == 10

    def test_offsets_are_monotone_frame_starts(self, wal_path):
        write_ops(wal_path)
        rep = replay(wal_path)
        offsets = [r.offset for r in rep.records]
        assert offsets[0] == HEADER_SIZE
        assert offsets == sorted(offsets)
        assert rep.valid_bytes == os.path.getsize(wal_path)

    def test_append_returns_durable_end_offset(self, wal_path):
        wal = WriteAheadLog.create(wal_path, 8, 2)
        end = wal.append(OP_INSERT, 1, 0, 1)
        assert end == wal.tell() == os.path.getsize(wal_path)
        wal.close()

    def test_big_ids_survive(self, wal_path):
        big = 2**62
        wal = WriteAheadLog.create(wal_path, 2**63, 2**63)
        wal.append(OP_INSERT, big, big + 1, big + 2)
        wal.close()
        (rec,) = replay(wal_path).records
        assert rec.triple == (big, big + 1, big + 2)

    def test_create_refuses_to_clobber(self, wal_path):
        write_ops(wal_path)
        with pytest.raises(WALError):
            WriteAheadLog.create(wal_path, 1, 1)


class TestTornTail:
    def test_truncation_at_every_byte_yields_a_record_prefix(self, wal_path):
        write_ops(wal_path)
        reference = replay(wal_path).records
        total = os.path.getsize(wal_path)
        for cut in range(HEADER_SIZE, total + 1):
            data = open(wal_path, "rb").read()[:cut]
            torn = wal_path + ".torn"
            with open(torn, "wb") as f:
                f.write(data)
            rep = replay(torn)
            # Survivors are exactly a prefix of the acknowledged records.
            n = len(rep.records)
            assert rep.records == reference[:n]
            assert rep.valid_bytes <= cut
            if cut < total:
                assert n < len(reference) or rep.truncated is False

    def test_open_truncates_the_torn_tail_durably(self, wal_path):
        write_ops(wal_path)
        with open(wal_path, "r+b") as f:
            f.truncate(os.path.getsize(wal_path) - 3)
        wal, rep = WriteAheadLog.open(wal_path)
        assert rep.truncated
        assert len(rep.records) == len(OPS) - 1
        # The tail is physically gone; appends extend the clean prefix.
        wal.append(*OPS[-1])
        wal.close()
        assert [r.triple for r in replay(wal_path).records] == [
            (s, p, o) for _, s, p, o in OPS
        ]

    def test_crc_flip_cuts_the_tail_there(self, wal_path):
        write_ops(wal_path)
        rep = replay(wal_path)
        third = rep.records[2].offset
        with open(wal_path, "r+b") as f:
            f.seek(third + 8 + 2)  # inside the third record's payload
            byte = f.read(1)
            f.seek(third + 8 + 2)
            f.write(bytes([byte[0] ^ 0xFF]))
        rep = replay(wal_path)
        assert len(rep.records) == 2
        assert "CRC mismatch" in rep.corrupt_reason
        assert rep.valid_bytes == third

    def test_unknown_opcode_cuts_the_tail(self, wal_path):
        wal = WriteAheadLog.create(wal_path, 8, 2)
        payload = struct.pack("<BQQQ", 77, 1, 1, 1)
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        wal._f.write(frame)
        wal.close()
        rep = replay(wal_path)
        assert rep.records == []
        assert "unknown opcode" in rep.corrupt_reason


class TestHeader:
    def test_headerless_file_fails_loudly(self, wal_path):
        with open(wal_path, "wb") as f:
            f.write(b"\x01\x02")
        with pytest.raises(WALError):
            replay(wal_path)

    def test_bad_magic_fails_loudly(self, wal_path):
        write_ops(wal_path)
        with open(wal_path, "r+b") as f:
            f.write(b"NOTAWAL1")
        with pytest.raises(WALError, match="magic"):
            replay(wal_path)

    def test_missing_file_fails_loudly(self, wal_path):
        with pytest.raises(WALError):
            replay(wal_path)


class TestReset:
    def test_reset_bumps_generation_and_empties(self, wal_path):
        wal = WriteAheadLog.create(wal_path, 9, 3)
        wal.append(*OPS[0])
        wal.reset(5)
        wal.append(*OPS[1])
        wal.close()
        rep = replay(wal_path)
        assert rep.generation == 5
        assert [(r.op, r.s, r.p, r.o) for r in rep.records] == [OPS[1]]
        assert rep.n_nodes == 9 and rep.n_predicates == 3


class TestFaultSites:
    def test_fsync_fault_fires_inside_append(self, wal_path):
        wal = WriteAheadLog.create(wal_path, 8, 2)
        with inject_faults(Fault("wal.fsync", error=InjectedFault)):
            with pytest.raises(InjectedFault):
                wal.append(OP_INSERT, 1, 0, 1)
        # Unacknowledged: replay after a clean close may or may not see
        # it, but a subsequent append still lands on a consistent log.
        wal.append(OP_INSERT, 2, 0, 2)
        wal.close()
        triples = [r.triple for r in replay(wal_path).records]
        assert (2, 0, 2) in triples

    def test_append_fault_writes_nothing(self, wal_path):
        wal = WriteAheadLog.create(wal_path, 8, 2)
        with inject_faults(Fault("wal.append", error=InjectedFault)):
            with pytest.raises(InjectedFault):
                wal.append(OP_INSERT, 1, 0, 1)
        wal.close()
        assert replay(wal_path).records == []
