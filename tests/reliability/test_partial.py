"""Graceful degradation: ``partial=True`` and cooperative cancellation."""

import threading

import pytest

from repro.core import (
    QueryCancelled,
    QueryResult,
    QueryTimeout,
    RingIndex,
)
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import nobel_graph, random_graph
from repro.reliability.budget import CancellationToken, ResourceBudget

pytestmark = pytest.mark.reliability

A, B, C = Var("a"), Var("b"), Var("c")

TRIANGLE = BasicGraphPattern(
    [TriplePattern(A, 0, B), TriplePattern(B, 0, C), TriplePattern(C, 0, A)]
)


@pytest.fixture(scope="module")
def dense_graph():
    return random_graph(3000, n_nodes=60, n_predicates=1, seed=1)


@pytest.fixture(scope="module")
def dense_index(dense_graph):
    return RingIndex(dense_graph)


def assert_triangles(result, graph) -> None:
    """Every returned binding must be a genuine triangle in ``graph``."""
    edges = {(int(s), int(o)) for s, p, o in graph.triples}
    for mu in result:
        a, b, c = mu[A], mu[B], mu[C]
        assert (a, b) in edges and (b, c) in edges and (c, a) in edges, mu


class TestPartialResults:
    def test_partial_returns_truncated_flag(self, dense_index):
        result = dense_index.evaluate(TRIANGLE, timeout=0.005, partial=True)
        assert isinstance(result, QueryResult)
        assert result.truncated
        assert result.interrupted_by == "timeout"

    def test_partial_rows_are_correct(self, dense_index, dense_graph):
        # Degraded, not corrupted: every row in the truncated prefix is
        # a genuine triangle.
        result = dense_index.evaluate(TRIANGLE, timeout=0.005, partial=True)
        assert result.truncated
        assert_triangles(result, dense_graph)

    def test_default_is_raise_not_truncate(self, dense_index):
        with pytest.raises(QueryTimeout):
            dense_index.evaluate(TRIANGLE, timeout=0.005)

    def test_untruncated_result_flags(self):
        index = RingIndex(nobel_graph())
        result = index.evaluate("?x adv ?y")
        assert isinstance(result, QueryResult)
        assert not result.truncated
        assert result.interrupted_by is None

    def test_decoded_result_keeps_flags(self):
        # decode=True needs a dictionary, so run on the labelled Nobel
        # graph and force truncation with a tiny op budget.
        index = RingIndex(nobel_graph())
        budget = ResourceBudget(max_ops=3, tick_mask=0)
        result = index.evaluate(
            "?x ?p ?y . ?y ?q ?z", budget=budget, partial=True, decode=True
        )
        assert result.truncated
        assert result.interrupted_by == "timeout"
        assert all(isinstance(k, str) for mu in result for k in mu)

    def test_partial_with_op_budget(self, dense_index):
        budget = ResourceBudget(max_ops=500, tick_mask=0)
        result = dense_index.evaluate(TRIANGLE, budget=budget, partial=True)
        assert result.truncated
        assert result.interrupted_by == "timeout"


class TestCancellation:
    def test_precancelled_token_raises(self, dense_index):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            dense_index.evaluate(TRIANGLE, cancellation=token)

    def test_cancel_from_another_thread(self, dense_index):
        token = CancellationToken()
        timer = threading.Timer(0.02, token.cancel)
        timer.start()
        try:
            with pytest.raises(QueryCancelled):
                # No timeout: only the token can stop this enumeration.
                dense_index.evaluate(TRIANGLE, cancellation=token)
        finally:
            timer.cancel()

    def test_cancelled_partial_is_labelled(self, dense_index):
        token = CancellationToken()
        token.cancel()
        result = dense_index.evaluate(
            TRIANGLE, cancellation=token, partial=True
        )
        assert result.truncated
        assert result.interrupted_by == "cancelled"


class TestLimits:
    def test_limit_is_not_truncation(self, dense_index):
        # Stopping at `limit` is the caller's request, not degradation.
        result = dense_index.evaluate(TRIANGLE, limit=5)
        assert len(result) == 5
        assert not result.truncated

    def test_limit_rows_are_correct(self, dense_index, dense_graph):
        limited = dense_index.evaluate(TRIANGLE, limit=7)
        assert_triangles(limited, dense_graph)
