"""A miniature of the paper's evaluation: space and time across systems.

Builds a Wikidata-shaped synthetic graph, instantiates WGPB-style
queries (Figure 7 shapes) by random walks, and prints a small Table 1:
bytes per triple and mean query time for the ring, the C-ring and a
selection of baselines.

Run with::

    python examples/wikidata_scale.py [n_triples]
"""

import sys

from repro.baselines import FlatTrieIndex, JenaIndex, JenaLTJIndex, QdagIndex
from repro.bench.report import format_table1
from repro.bench.runner import run_benchmark
from repro.bench.wgpb import generate_wgpb_queries
from repro.core import CompressedRingIndex, RingIndex
from repro.graph.generators import wikidata_like


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    graph = wikidata_like(n, seed=0)
    print(f"synthetic Wikidata-like graph: {graph!r}")

    queries = generate_wgpb_queries(graph, queries_per_shape=3, seed=0)
    total = sum(len(qs) for qs in queries.values())
    print(f"{total} WGPB-style queries over {len(queries)} shapes "
          f"(Figure 7)\n")

    systems = []
    for cls in (RingIndex, CompressedRingIndex, FlatTrieIndex, QdagIndex,
                JenaIndex, JenaLTJIndex):
        print(f"building {cls.name} …")
        systems.append(cls(graph))

    result = run_benchmark(systems, queries, limit=1000, timeout=10.0)
    print()
    print(format_table1(systems, result))
    print(
        "\nExpected shape (cf. paper Table 1): the Ring within ~2x of the\n"
        "packed data size and several times smaller than the 6-order\n"
        "indexes; wco systems stable across shapes; Qdag smallest but\n"
        "slow on the larger acyclic shapes."
    )


if __name__ == "__main__":
    main()
