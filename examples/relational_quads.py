"""Rings in higher dimensions (§6): joining quad relations.

Shows (a) the Table 3 arithmetic — how many orders each index class
needs as arity grows — and (b) an actual wco join over a 4-ary relation
using the ``cbtw(4) = 2`` rings the theory prescribes.

Run with::

    python examples/relational_quads.py
"""

import numpy as np

from repro.bench.report import format_table3
from repro.graph.model import Var
from repro.relational import (
    Relation,
    RelationalRingSystem,
    RelationPattern,
    table3,
)


def main() -> None:
    # Table 3 for small arities (exact search; §6).
    print(format_table3(table3(d_values=(2, 3, 4, 5), node_budget=3_000_000)))
    print("\nAt d=3 one bidirectional ring suffices — the paper's title.\n")

    # A quad relation: (user, item, tag, timestamp-bucket) events.
    rng = np.random.default_rng(42)
    events = Relation(rng.integers(0, 20, size=(400, 4)))
    system = RelationalRingSystem(events)
    print(f"quad relation: {events!r}")
    print(f"rings indexed (cbtw(4)): {len(system.orders)} — "
          f"orders {system.orders}")
    print(f"space: {system.size_in_bits() / 8 / events.n:.1f} bytes/tuple\n")

    # Who tagged the same item as user 3, with the same tag, any time?
    user, item, tag, t1, t2, other = (
        Var("user"), Var("item"), Var("tag"), Var("t1"), Var("t2"),
        Var("other"),
    )
    query = [
        RelationPattern(3, item, tag, t1),
        RelationPattern(other, item, tag, t2),
    ]
    solutions = system.evaluate(query, limit=10)
    print(f"first {len(solutions)} co-tagging matches:")
    for mu in solutions:
        print(
            f"  item={mu[item]:>2} tag={mu[tag]:>2} "
            f"other_user={mu[other]:>2} (t1={mu[t1]}, t2={mu[t2]})"
        )


if __name__ == "__main__":
    main()
