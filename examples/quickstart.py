"""Quickstart: index a labelled graph with a ring and run graph patterns.

Run with::

    python examples/quickstart.py
"""

from repro.core import CompressedRingIndex, RingIndex
from repro.graph import Graph

# 1. A graph is just labelled (subject, predicate, object) triples.
TRIPLES = [
    ("ada", "knows", "grace"),
    ("ada", "knows", "alan"),
    ("grace", "knows", "alan"),
    ("alan", "knows", "ada"),
    ("ada", "field", "mathematics"),
    ("grace", "field", "computing"),
    ("alan", "field", "computing"),
    ("alan", "awarded", "smith_prize"),
    ("grace", "awarded", "medal_of_technology"),
]


def main() -> None:
    graph = Graph.from_string_triples(TRIPLES)
    print(f"graph: {graph.n_triples} triples, {graph.n_nodes} nodes, "
          f"{graph.n_predicates} predicates")

    # 2. Build the ring index — it *replaces* the triples: any triple can
    #    be read back from the index alone.
    index = RingIndex(graph)
    print(f"ring index: {index.bytes_per_triple():.2f} bytes/triple")
    print(f"first triple, recovered from the index: {index.triple(0)}")

    # 3. Basic graph patterns use a tiny SPARQL-like syntax: '?name' is a
    #    variable, everything else a constant.  This one asks for pairs
    #    of people who know each other and share a field.
    query = "?x knows ?y . ?x field ?f . ?y field ?f"
    for solution in index.evaluate(query, decode=True):
        print(f"  {solution['x']} and {solution['y']} "
              f"both work on {solution['f']}")

    # 4. Queries can mix constants in any position and use variable
    #    predicates — one index order serves them all.
    print("\neverything known about alan:")
    for solution in index.evaluate("alan ?p ?o", decode=True):
        print(f"  alan --{solution['p']}--> {solution['o']}")

    # 5. The compressed variant (the paper's C-Ring) trades speed for
    #    space; answers are identical.
    compressed = CompressedRingIndex(graph)
    assert compressed.evaluate(query) == index.evaluate(query)
    print(f"\nC-Ring: {compressed.bytes_per_triple():.2f} bytes/triple "
          f"(plain ring: {index.bytes_per_triple():.2f})")


if __name__ == "__main__":
    main()
