"""Beyond the paper: live updates and regular path queries.

Demonstrates the two §7 future-work features this library implements:

- the **dynamic ring** (LSM-style buffer + static ring merges +
  tombstones) with inserts and deletes between queries;
- **regular path queries** (``adv+``, ``^win/nom`` …) evaluated with
  product-automaton BFS over the ring's own leap primitives.

Run with::

    python examples/dynamic_and_paths.py
"""

from repro.core import RingIndex
from repro.core.dynamic import DynamicRingIndex
from repro.graph.generators import nobel_graph


def main() -> None:
    graph = nobel_graph()
    d = graph.dictionary

    # -- regular path queries over the static ring ------------------------
    index = RingIndex(graph)
    print("advisor chain upwards from Thorne (adv+):")
    for label in sorted(index.evaluate_path("adv+", "Thorne", decode=True)):
        print(f"  {label}")

    print("\nnominees of whoever awarded Bohr (^win/nom):")
    for label in sorted(index.evaluate_path("^win/nom", "Bohr", decode=True)):
        print(f"  {label}")

    # -- live updates over the dynamic ring ------------------------------
    dynamic = DynamicRingIndex(graph, buffer_threshold=8)
    print(f"\ndynamic ring: {dynamic.n_triples} triples, "
          f"{dynamic.n_components} component(s)")

    # Wheeler gets the prize; the committee strikes one nomination.
    dynamic.insert(d.node_id("Nobel"), d.predicate_id("win"),
                   d.node_id("Wheeler"))
    dynamic.delete(d.node_id("Nobel"), d.predicate_id("nom"),
                   d.node_id("Strutt"))
    print(f"after 1 insert + 1 delete: {dynamic.n_triples} triples")

    print("\nFigure 4 query on the updated graph:")
    for mu in dynamic.evaluate("?x nom ?y . ?x win ?z . ?z adv ?y",
                               decode=True):
        print(f"  x={mu['x']:<7} y={mu['y']:<8} z={mu['z']}")

    winners = dynamic.evaluate("Nobel win ?x", decode=True)
    print(f"\nwinners now: {sorted(m['x'] for m in winners)}")


if __name__ == "__main__":
    main()
