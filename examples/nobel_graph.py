"""The paper's running example, end to end (Figures 3, 4 and 6).

Builds the Nobel graph of Figure 3, shows the ring's three BWT zones
(the split form of Figure 6), recovers triples by LF-walking the ring
(Example 3.2), and evaluates the Figure 4 basic graph pattern with LTJ.

Run with::

    python examples/nobel_graph.py
"""

from repro.core import RingIndex
from repro.core.ring import Ring
from repro.graph.generators import nobel_graph
from repro.graph.model import O, P, S


def main() -> None:
    graph = nobel_graph()
    print("Figure 3 graph:", graph)
    for s, p, o in sorted(graph.labelled_triples()):
        print(f"  {s:>8} --{p}--> {o}")

    # The ring: three wavelet matrices, one per bended-BWT zone.
    ring = Ring(graph)
    print("\nRing zones (Figure 6, split form of §4.1):")
    print("  zone S (objects,    spo-sorted):",
          ring.zone_sequence(S).to_numpy().tolist())
    print("  zone P (subjects,   pos-sorted):",
          ring.zone_sequence(P).to_numpy().tolist())
    print("  zone O (predicates, osp-sorted):",
          ring.zone_sequence(O).to_numpy().tolist())

    # Example 3.2: recover a triple by cycling o -> p -> s with LF steps.
    print("\nTriples recovered from the index alone (Example 3.2):")
    d = graph.dictionary
    for i in (0, 5, 12):
        s, p, o = ring.triple(i)
        print(f"  triple {i:>2}: ({d.node_label(s)}, "
              f"{d.predicate_label(p)}, {d.node_label(o)})")

    # Figure 4: x nominates y, x awards z, and z was advised by y.
    index = RingIndex(graph)
    print("\nFigure 4 query: ?x nom ?y . ?x win ?z . ?z adv ?y")
    for mu in index.evaluate("?x nom ?y . ?x win ?z . ?z adv ?y",
                             decode=True):
        print(f"  x={mu['x']:<7} y={mu['y']:<8} z={mu['z']}")

    # On-the-fly statistics (§4.3): pattern cardinalities in O(log U).
    print("\nExact pattern cardinalities from the C arrays (§4.3):")
    for text in ("?x adv ?y", "Nobel nom ?y", "?x win Bohr"):
        print(f"  |{text}| = {index.count(text)}")


if __name__ == "__main__":
    main()
