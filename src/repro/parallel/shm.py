"""Zero-copy ring sharing via ``multiprocessing.shared_memory``.

A frozen :class:`~repro.core.ring.Ring` bottoms out in a handful of
numpy arrays: per wavelet-matrix level a plain bitvector (``_words``
uint64 payload, ``_super`` uint64 superblock counters, ``_rel`` uint16
in-superblock counters) and per attribute one int64 cumulative-count
array.  :func:`export_ring` copies those arrays once into a single
shared-memory segment (64-byte aligned, so every view is at its natural
alignment) and records their offsets in a small picklable
:class:`RingHandle`; :func:`attach_ring` rebuilds a fully functional
``Ring`` in another process whose arrays are *views into the segment* —
no pickling of index data, no per-worker copy, RSS grows by pages
touched, not by index size.

Only the plain-bitvector, plain-counts ring is exportable: RRR
bitvectors and Elias–Fano counts keep Python-object state that a flat
segment cannot carry; exporting one raises :class:`ShmExportError`
(callers fall back to serial execution).

Lifetime: the exporting process owns the segment and unlinks it in
:meth:`SharedRing.close`.  Attached processes only close their mapping;
they also *unregister* the segment from their ``resource_tracker`` —
without that, the tracker of the first worker to exit would unlink the
segment while the parent (and sibling workers) still use it (Python
3.11 has no ``track=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.bits.bitvector import BitVector
from repro.core.counts import PackedCounts
from repro.core.frozen import RingLayoutError, collect_ring_arrays
from repro.core.ring import Ring
from repro.graph.model import O, P, S
from repro.sequences.wavelet_matrix import WaveletMatrix

_ALIGN = 64

#: ``path -> (offset, dtype, length)``; paths are ``wm{zone}.l{lvl}.words``
#: / ``.super`` / ``.rel`` and ``c{attr}``.
ArrayTable = dict[str, tuple[int, str, int]]


class ShmExportError(RingLayoutError):
    """The ring's layout cannot be exported to a flat shared segment."""


@dataclass(frozen=True)
class RingHandle:
    """Everything a worker needs to re-attach the ring (picklable)."""

    name: str  #: shared-memory segment name
    size: int  #: segment size in bytes
    meta: dict = field(repr=False)  #: ring scalars (n, sigma, wm shapes…)
    arrays: ArrayTable = field(repr=False)


@dataclass(frozen=True)
class PackHandle:
    """Attach target for a frozen pack on disk (picklable).

    A ring already persisted as a frozen pack needs no shm segment at
    all: every worker maps the *file* read-only and the page cache is
    the shared memory — same zero-copy property, no O(index) export
    copy, and the mapping works across unrelated processes and
    restarts.
    """

    path: str  #: frozen pack file (``repro.core.frozen`` layout)


class SharedRing:
    """Owner-side wrapper: the segment plus its :class:`RingHandle`.

    The exporting process keeps this alive for as long as any worker may
    attach; :meth:`close` unmaps and unlinks the segment.  Usable as a
    context manager.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: RingHandle) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.handle = handle

    @property
    def size(self) -> int:
        return self.handle.size

    def close(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _collect_arrays(ring: Ring) -> tuple[dict, dict[str, np.ndarray]]:
    """Walk the ring; return (meta scalars, path -> source array).

    Delegates to the shared flat-buffer collector
    (:func:`repro.core.frozen.collect_ring_arrays` — the same layout the
    frozen pack persists), surfacing layout failures as
    :class:`ShmExportError` (RRR bitvectors, Elias–Fano counts).
    """
    try:
        return collect_ring_arrays(ring)
    except ShmExportError:
        raise
    except RingLayoutError as exc:
        raise ShmExportError(str(exc)) from None


def export_ring(ring: Ring, name: Optional[str] = None) -> SharedRing:
    """Copy the ring's backing arrays into one shared segment.

    One-time O(index size) copy in the exporting process; every
    subsequent :func:`attach_ring` is zero-copy.
    """
    meta, sources = _collect_arrays(ring)
    table: ArrayTable = {}
    offset = 0
    for path, arr in sources.items():
        offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
        table[path] = (offset, arr.dtype.str, int(arr.size))
        offset += arr.nbytes
    size = max(offset, 1)
    shm = shared_memory.SharedMemory(create=True, size=size, name=name)
    for path, arr in sources.items():
        off, dtype, length = table[path]
        view = np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        view[:] = arr
    handle = RingHandle(name=shm.name, size=size, meta=meta, arrays=table)
    return SharedRing(shm, handle)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop this process's resource tracker from unlinking the segment.

    Attaching registers the segment with the local tracker; on worker
    exit the tracker would *destroy* it even though the owner still uses
    it.  Python 3.11 lacks ``SharedMemory(..., track=False)``, so we
    unregister by hand (best-effort: tracker internals are private).
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


def _attach_bitvector(
    shm: shared_memory.SharedMemory,
    table: ArrayTable,
    prefix: str,
    level_meta: dict,
) -> BitVector:
    return BitVector.from_components(
        _view(shm, table, f"{prefix}.words"),
        _view(shm, table, f"{prefix}.super"),
        _view(shm, table, f"{prefix}.rel"),
        n=int(level_meta["n"]),
        ones=int(level_meta["ones"]),
    )


def _view(
    shm: shared_memory.SharedMemory, table: ArrayTable, path: str
) -> np.ndarray:
    off, dtype, length = table[path]
    arr = np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
    arr.flags.writeable = False
    return arr


def attach_ring(handle: RingHandle, untrack: bool = False) -> Ring:
    """Rebuild a fully functional ring over the shared segment.

    Every array of the result is a read-only view into the segment —
    attaching allocates only Python object shells (a few KB).  The
    returned ring keeps the mapping alive through a ``_shm`` attribute;
    it is independent of the exporting ring (own leap memo, generation
    0) and read-only by construction.

    ``untrack=True`` removes the segment from this process's resource
    tracker.  Pass it when the attaching process has its *own* tracker
    (``spawn``/``forkserver`` workers) — otherwise that tracker would
    unlink the segment when the worker exits.  Leave it False when the
    tracker is shared with the exporting process (``fork`` workers, or
    attaching within the exporter itself): the registration being
    removed would then be the *owner's*, breaking its cleanup.

    A :class:`PackHandle` attaches by memory-mapping the frozen pack
    file instead (``untrack`` is irrelevant: there is no segment to
    leak, the kernel drops the mapping with the process).
    """
    if isinstance(handle, PackHandle):
        from repro.core.frozen import open_frozen_ring

        ring, _ = open_frozen_ring(handle.path, mmap=True, verify=True)
        return ring
    shm = shared_memory.SharedMemory(name=handle.name)
    if untrack:
        _untrack(shm)
    meta, table = handle.meta, handle.arrays
    seq = {}
    for zone in (S, P, O):
        wmm = meta["wm"][zone]
        levels = [
            _attach_bitvector(shm, table, f"wm{zone}.l{level}", lm)
            for level, lm in enumerate(wmm["level_meta"])
        ]
        seq[zone] = WaveletMatrix.from_levels(
            levels,
            [int(z) for z in wmm["zeros"]],
            n=int(wmm["n"]),
            sigma=int(wmm["sigma"]),
        )
    counts = {
        attr: PackedCounts.from_raw(
            _view(shm, table, f"c{attr}"), validate=False
        )
        for attr in (S, P, O)
    }
    ring = Ring.from_components(
        seq,
        counts,
        n=int(meta["n"]),
        sigma=tuple(int(s) for s in meta["sigma"]),
        compressed=False,
        leap_memo_size=int(meta["leap_memo_size"]),
    )
    ring._shm = shm  # keeps the mapping alive for the ring's lifetime
    return ring


def detach_ring(ring: Ring) -> None:
    """Close an attached ring's mapping (the owner still holds the
    segment; this only unmaps the local view)."""
    shm = getattr(ring, "_shm", None)
    if shm is not None:
        ring._shm = None
        shm.close()
