"""The slice-executing worker pool: budgets, cancellation, degradation.

Each worker process attaches the shared ring once
(:func:`~repro.parallel.shm.attach_ring`, zero-copy) and then serves
slice tasks from its own queue: ``(bgp, var_order, first_range,
budget spec)`` → the worker runs the *standard serial engine*
(:class:`~repro.core.ltj.LeapfrogTrieJoin`) restricted to its slice and
ships the solution rows back.  The driver merges blocks in slice order
(:func:`merge_blocks`), which makes the parallel output byte-identical
to the serial enumeration — LTJ emits the first variable in increasing
order, and the slices tile its domain in increasing order.

Budget propagation (ISSUE: identical semantics to the serial path):

- **deadline** — forwarded as remaining wall-clock seconds at dispatch
  time; each worker builds its own :class:`ResourceBudget` against it;
- **op cap** — the parent's remaining ``max_ops`` is split evenly into
  per-slice sub-budgets (op exhaustion in any slice surfaces as the
  same :class:`~repro.core.interface.QueryTimeout`);
- **cancellation** — one shared ``multiprocessing.Value`` flag, polled
  by workers through a duck-typed token at every budget check (the
  engine polls every ``tick_mask + 1`` ops, exactly as the serial
  path polls a :class:`CancellationToken`).

Degradation: a worker that dies mid-query (OOM-kill, crash, injected
``parallel.spawn`` fault at respawn) never loses or corrupts answers —
the driver detects the dead process, re-executes its unfinished slices
*serially in the parent* via the caller-supplied fallback, and respawns
the worker after the query.  A fully unspawnable pool raises
:class:`PoolUnavailable` and the system layer runs the query serially.
"""

from __future__ import annotations

import importlib
import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
from typing import Callable, Optional, Sequence

from repro.core.interface import QueryCancelled, QueryTimeout
from repro.core.iterators import RingIterator
from repro.core.ltj import LeapfrogTrieJoin
from repro.graph.model import BasicGraphPattern, Var
from repro.parallel.shm import RingHandle, attach_ring

#: Environment override for the multiprocessing start method; ``fork``
#: is the default (workers inherit the parent's imports, so attach is
#: milliseconds; ``spawn``/``forkserver`` also work, just slower).
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"

#: ``(status, rows, stats, ops)`` of one slice, in slice order.
Block = tuple[str, list, dict, int]

#: Parent-side re-execution of one slice: ``(first_range) -> Block``.
SerialFallback = Callable[[tuple[int, int]], Block]


class PoolUnavailable(RuntimeError):
    """No live worker can take tasks; callers degrade to serial."""


class _FlagToken:
    """Duck-typed cancellation token over a shared ``mp.Value``.

    :class:`ResourceBudget` only reads ``token.cancelled``, so a plain
    property over the cross-process flag slots straight in.
    """

    __slots__ = ("_flag",)

    def __init__(self, flag) -> None:
        self._flag = flag

    @property
    def cancelled(self) -> bool:
        return self._flag.value != 0


def _worker_main(
    worker_id: int,
    handle: RingHandle,
    engine_opts: dict,
    task_q,
    result_q,
    cancel_flag,
    own_tracker: bool,
) -> None:
    """Worker entry point: attach once, serve slice tasks forever."""
    from repro.reliability.budget import ResourceBudget

    try:
        # spawn/forkserver workers run their own resource tracker, which
        # must forget the segment or it unlinks it on worker exit; fork
        # workers share the parent's tracker and must leave it alone.
        ring = attach_ring(handle, untrack=own_tracker)
    except Exception:  # parent sees the dead process and rescues
        return
    engine = LeapfrogTrieJoin(
        lambda pattern: RingIterator(ring, pattern), ring.n, **engine_opts
    )
    token = _FlagToken(cancel_flag)
    while True:
        task = task_q.get()
        if task is None:
            return
        task_id, bgp, var_order, first_range, spec = task
        started = time.monotonic()
        budget = ResourceBudget(
            timeout=spec["timeout"],
            max_ops=spec["max_ops"],
            token=token,
            tick_mask=spec["tick_mask"],
        )
        rows: list[dict[Var, int]] = []
        stats: dict = {}
        status, error = "ok", None
        max_rows = spec.get("max_solutions")
        # Dynamic variable-selection policies: the driver pins only the
        # sliced first variable and lets every deeper depth re-rank, so
        # this worker's subtree enumeration matches the serial policy
        # search node for node.
        pin_first = spec.get("pin_first", False)
        try:
            if max_rows is None or max_rows > 0:
                for solution in engine.evaluate(
                    bgp,
                    timeout=budget,
                    var_order=None if pin_first else var_order,
                    stats=stats,
                    first_range=first_range,
                    first_var=var_order[0] if pin_first else None,
                ):
                    rows.append(solution)
                    # A capped block keeps status "ok": the parent never
                    # consumes more than max_rows rows in total, so it
                    # cannot need the tail this break abandons.
                    if max_rows is not None and len(rows) >= max_rows:
                        break
        except QueryTimeout:
            status = "timeout"
        except QueryCancelled:
            status = "cancelled"
        except BaseException as exc:  # ship the failure, keep serving
            status, error = "error", f"{type(exc).__name__}: {exc}"
        result_q.put(
            (
                worker_id,
                task_id,
                status,
                rows,
                stats,
                budget.ops,
                time.monotonic() - started,
                error,
            )
        )


def _spawn_worker(ctx, worker_id, handle, engine_opts, task_q, result_q, cancel_flag):
    """Start one worker process (chaos site ``parallel.spawn``)."""
    own_tracker = ctx.get_start_method() != "fork"
    proc = ctx.Process(
        target=_worker_main,
        args=(
            worker_id,
            handle,
            engine_opts,
            task_q,
            result_q,
            cancel_flag,
            own_tracker,
        ),
        name=f"ring-worker-{worker_id}",
        daemon=True,
    )
    proc.start()
    return proc


def merge_blocks(blocks: Sequence[Block]) -> tuple[list, Optional[str], dict, int]:
    """Deterministic slice merge (chaos site ``parallel.slice_merge``).

    Blocks arrive in slice (= ascending first-value) order.  The merged
    output is every complete block before the first non-``ok`` slice,
    plus that slice's partial rows — i.e. a *prefix* of the serial
    enumeration, matching what a serial run interrupted at the same
    point would have produced.  Later blocks are dropped: including
    them would yield a non-contiguous (silently misleading) result.

    Returns ``(rows, first_bad_status_or_None, summed stats, summed ops)``.
    """
    rows: list = []
    stats: dict = {}
    ops = 0
    for status, block, block_stats, block_ops in blocks:
        ops += block_ops
        for key, value in block_stats.items():
            if isinstance(value, (int, float)):
                stats[key] = stats.get(key, 0) + value
            else:  # e.g. the "error" message of a failed slice
                stats.setdefault(key, value)
        if status == "error":
            return rows, status, stats, ops
        rows.extend(block)
        if status != "ok":
            return rows, status, stats, ops
    return rows, None, stats, ops


class WorkerPool:
    """A fixed set of ring workers serving range-partitioned queries.

    One parallel query runs at a time (guarded by an internal lock);
    concurrent callers queue up, which matches the broker's admission
    model one layer above.  Workers are long-lived: the attach cost is
    paid once per worker, not per query.
    """

    def __init__(
        self,
        handle: RingHandle,
        workers: int = 2,
        engine_opts: Optional[dict] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        method = start_method or os.environ.get(START_METHOD_ENV, "fork")
        self._ctx = mp.get_context(method)
        self._handle = handle
        self._engine_opts = dict(engine_opts or {})
        self._cancel = self._ctx.Value("i", 0)
        # Per-worker queue pairs: a process killed mid-get/mid-put can
        # leave a queue's internal lock held forever, so queues are never
        # shared across workers and a respawned worker gets fresh ones —
        # a crash can only poison queues that die with it.
        self._result_qs = [self._ctx.Queue() for _ in range(workers)]
        self._task_qs = [self._ctx.Queue() for _ in range(workers)]
        self._procs: list = [None] * workers
        self._busy = [0.0] * workers
        self._lock = threading.Lock()
        self._task_counter = itertools.count()
        self._counters = {
            "queries": 0,
            "dispatched": 0,
            "completed": 0,
            "respawns": 0,
            "serial_rescues": 0,
            "spawn_failures": 0,
        }
        #: Test hook: worker id to ``kill()`` right after dispatch —
        #: deterministically exercises the dead-worker rescue path.
        self._kill_after_dispatch: Optional[int] = None
        self._closed = False
        for wid in range(workers):
            self._try_spawn(wid)
        if not any(p is not None for p in self._procs):
            self.close()
            raise PoolUnavailable("no worker process could be spawned")

    # -- lifecycle -----------------------------------------------------------

    def _try_spawn(self, wid: int) -> None:
        try:
            self._procs[wid] = _spawn_worker(
                self._ctx,
                wid,
                self._handle,
                self._engine_opts,
                self._task_qs[wid],
                self._result_qs[wid],
                self._cancel,
            )
        except Exception:
            self._procs[wid] = None
            self._counters["spawn_failures"] += 1

    @property
    def workers(self) -> int:
        return len(self._procs)

    @property
    def alive_workers(self) -> int:
        return sum(1 for p in self._procs if p is not None and p.is_alive())

    @property
    def alive(self) -> bool:
        return not self._closed and self.alive_workers > 0

    def close(self) -> None:
        """Stop every worker and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._cancel.value = 1
        for tq, proc in zip(self._task_qs, self._procs):
            if proc is not None and proc.is_alive():
                try:
                    tq.put_nowait(None)
                except Exception:
                    pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for q in [*self._result_qs, *self._task_qs]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- execution -----------------------------------------------------------

    def run_slices(
        self,
        bgp: BasicGraphPattern,
        var_order: Sequence[Var],
        slices: Sequence[tuple[int, int]],
        budget,
        serial_fallback: SerialFallback,
        pin_first: bool = False,
    ) -> list[Block]:
        """Execute one task per slice; blocks return in slice order.

        ``budget`` is the parent query's :class:`ResourceBudget`: its
        remaining wall clock and an even split of its remaining op cap
        parameterise each worker-side sub-budget, and its expiry (or
        its token's cancellation) trips the shared flag so workers stop
        within one check interval.  ``serial_fallback(first_range)``
        re-executes a slice in the calling process when its worker died
        before answering.  With ``pin_first`` (dynamic variable-selection
        policies) workers pin only ``var_order[0]`` — the sliced
        variable — and re-rank every deeper depth themselves.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        with self._lock:
            return self._run_slices_locked(
                bgp, var_order, list(slices), budget, serial_fallback, pin_first
            )

    def _run_slices_locked(
        self, bgp, var_order, slices, budget, serial_fallback, pin_first=False
    ):
        alive = [
            wid
            for wid, p in enumerate(self._procs)
            if p is not None and p.is_alive()
        ]
        if not alive:
            raise PoolUnavailable("no live workers")
        self._counters["queries"] += 1
        self._cancel.value = 0
        for rq in self._result_qs:  # stale results from a prior query
            self._drain(rq)

        if budget.max_ops is not None:
            remaining_ops = max(budget.max_ops - budget.ops, 1)
            sub_ops = max(remaining_ops // len(slices), 1)
        else:
            sub_ops = None
        row_demand = getattr(budget, "row_demand", None)
        if row_demand is not None:
            # The parent consumes at most L raw rows total, so it can
            # never need more than L rows from any single block: capping
            # each worker at the remaining L preserves first-L-rows
            # identity while sparing workers the (possibly huge) slice
            # tail.  row_demand is only set when no dedup sits between
            # the stream and the consumer (see BaseQuerySystem.evaluate).
            sub_solutions = max(row_demand - budget.solutions, 0)
        else:
            sub_solutions = None
        spec = {
            "timeout": budget.remaining_time(),
            "max_ops": sub_ops,
            "tick_mask": budget.tick_mask,
            "max_solutions": sub_solutions,
            "pin_first": pin_first,
        }

        task_ids = [next(self._task_counter) for _ in slices]
        index_of = {tid: i for i, tid in enumerate(task_ids)}
        assignment: dict[int, int] = {}
        for i, (tid, slc) in enumerate(zip(task_ids, slices)):
            wid = alive[i % len(alive)]
            self._task_qs[wid].put((tid, bgp, var_order, slc, spec))
            assignment[tid] = wid
            self._counters["dispatched"] += 1

        if self._kill_after_dispatch is not None:
            wid, self._kill_after_dispatch = self._kill_after_dispatch, None
            proc = self._procs[wid]
            if proc is not None:
                proc.kill()
                proc.join(timeout=1.0)

        results: dict[int, Block] = {}
        flag_set = False
        while len(results) < len(slices):
            progressed = False
            for rq in list(self._result_qs):
                while True:
                    try:
                        msg = rq.get_nowait()
                    except (queue_mod.Empty, OSError, ValueError):
                        break
                    progressed = True
                    (wid, tid, status, rows, stats, ops, elapsed, error) = msg
                    if tid not in index_of or tid in results:
                        continue  # stale or already rescued
                    if status == "error" and error:
                        stats = dict(stats)
                        stats["error"] = error
                    results[tid] = (status, rows, stats, ops)
                    self._busy[wid] += elapsed
                    self._counters["completed"] += 1
            if len(results) >= len(slices):
                break
            if not progressed:
                if not flag_set and budget.expired():
                    # Mirror the parent's exhaustion into every worker;
                    # they observe it at their next budget check.
                    self._cancel.value = 1
                    flag_set = True
                self._rescue_dead(
                    assignment, results, index_of, slices, serial_fallback
                )
                time.sleep(0.005)

        self._respawn_dead()
        return [results[tid] for tid in task_ids]

    def _rescue_dead(self, assignment, results, index_of, slices, serial_fallback):
        """Serially re-execute unfinished slices of dead workers."""
        for tid, wid in assignment.items():
            if tid in results:
                continue
            proc = self._procs[wid]
            if proc is not None and proc.is_alive():
                continue
            results[tid] = serial_fallback(slices[index_of[tid]])
            self._counters["serial_rescues"] += 1

    def _respawn_dead(self) -> None:
        """Replace dead workers after the query (keeps drills observable:
        the degraded query ran short-handed; the next one is whole).

        The dead worker's queues are *discarded*, never reused: a
        process killed inside ``Queue.get`` leaves the queue's internal
        lock acquired forever, so a replacement sharing it would hang on
        its first read.  Fresh queues also obsolete any undelivered
        tasks the parent already rescued.
        """
        for wid, proc in enumerate(self._procs):
            if proc is not None and proc.is_alive():
                continue
            if proc is not None:
                proc.join(timeout=0.5)
            for old in (self._task_qs[wid], self._result_qs[wid]):
                try:
                    old.close()
                    old.cancel_join_thread()
                except Exception:
                    pass
            self._task_qs[wid] = self._ctx.Queue()
            self._result_qs[wid] = self._ctx.Queue()
            self._try_spawn(wid)
            if self._procs[wid] is not None:
                self._counters["respawns"] += 1

    @staticmethod
    def _drain(q) -> None:
        while True:
            try:
                q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Pool telemetry: worker liveness, throughput, busy seconds."""
        return {
            "workers": len(self._procs),
            "alive_workers": self.alive_workers,
            "busy_seconds": list(self._busy),
            **self._counters,
        }


# -- generic task pool -------------------------------------------------------


class TaskError(RuntimeError):
    """A :class:`TaskPool` task raised in its worker (message attached)."""


def _task_worker_main(worker_id: int, executor: str, task_q, result_q) -> None:
    """Generic worker loop: resolve the executor, serve tasks forever.

    The executor is re-resolved from its module **per task**, not
    captured at spawn: fault injection (:mod:`repro.reliability.faults`)
    patches module attributes, and fork-started workers inherit the
    patched module — so a site armed around the executor fires inside
    workers exactly as it does inline.
    """
    mod_name, _, attr = executor.partition(":")
    while True:
        task = task_q.get()
        if task is None:
            return
        task_id, payload = task
        try:
            fn = getattr(importlib.import_module(mod_name), attr)
            result = fn(payload)
            status, error = "ok", None
        except BaseException as exc:  # ship the failure, keep serving
            result, status = None, "error"
            error = f"{type(exc).__name__}: {exc}"
        result_q.put((worker_id, task_id, status, result, error))


class TaskPool:
    """A fixed set of generic task workers with WorkerPool's failure model.

    Where :class:`WorkerPool` is specialised to ring slices, this pool
    runs arbitrary picklable payloads through one module-level executor
    (``"package.module:function"``) — the bulk builder's partition and
    wavelet tasks are its first client.  It keeps the battle-tested
    idioms of the slice pool:

    - **per-worker queue pairs** — a process killed mid-``get``/``put``
      can leave a queue's internal lock held forever, so queues are
      never shared and a respawned worker gets fresh ones;
    - **inline rescue** — tasks of a dead worker are re-executed in the
      calling process (through the same module attribute, so injected
      faults apply there too), never silently dropped;
    - **respawn after the batch** — the degraded batch ran
      short-handed; the next one is whole;
    - a ``_kill_after_dispatch`` test hook and the same counter set,
      so chaos drills can assert the rescue path deterministically.

    A task that *raises* (rather than dies) surfaces as
    :class:`TaskError` after the whole batch has settled — callers get
    deterministic all-or-error semantics, and file outputs written with
    ``"wb"`` truncation make re-execution idempotent.
    """

    def __init__(
        self,
        executor: str,
        workers: int = 2,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if ":" not in executor:
            raise ValueError("executor must be 'package.module:function'")
        method = start_method or os.environ.get(START_METHOD_ENV, "fork")
        self._ctx = mp.get_context(method)
        self._executor = executor
        self._result_qs = [self._ctx.Queue() for _ in range(workers)]
        self._task_qs = [self._ctx.Queue() for _ in range(workers)]
        self._procs: list = [None] * workers
        self._task_counter = itertools.count()
        self._counters = {
            "batches": 0,
            "dispatched": 0,
            "completed": 0,
            "respawns": 0,
            "serial_rescues": 0,
            "spawn_failures": 0,
        }
        #: Test/chaos hook: worker id to ``kill()`` right after dispatch.
        self._kill_after_dispatch: Optional[int] = None
        self._closed = False
        for wid in range(workers):
            self._try_spawn(wid)
        if not any(p is not None for p in self._procs):
            self.close()
            raise PoolUnavailable("no task worker could be spawned")

    # -- lifecycle -----------------------------------------------------------

    def _try_spawn(self, wid: int) -> None:
        try:
            proc = self._ctx.Process(
                target=_task_worker_main,
                args=(
                    wid,
                    self._executor,
                    self._task_qs[wid],
                    self._result_qs[wid],
                ),
                name=f"task-worker-{wid}",
                daemon=True,
            )
            proc.start()
            self._procs[wid] = proc
        except Exception:
            self._procs[wid] = None
            self._counters["spawn_failures"] += 1

    @property
    def workers(self) -> int:
        return len(self._procs)

    @property
    def alive_workers(self) -> int:
        return sum(1 for p in self._procs if p is not None and p.is_alive())

    def close(self) -> None:
        """Stop every worker and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for tq, proc in zip(self._task_qs, self._procs):
            if proc is not None and proc.is_alive():
                try:
                    tq.put_nowait(None)
                except Exception:
                    pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for q in [*self._result_qs, *self._task_qs]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- execution -----------------------------------------------------------

    def _resolve(self):
        mod_name, _, attr = self._executor.partition(":")
        return getattr(importlib.import_module(mod_name), attr)

    def run(self, payloads: Sequence) -> list:
        """Execute one task per payload; results return in payload order.

        Dead workers' unfinished tasks are rescued inline; a task that
        raised (in a worker or during rescue) makes the whole call raise
        :class:`TaskError` — after every other task has settled, so
        callers never leave orphan work running.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        alive = [
            wid
            for wid, p in enumerate(self._procs)
            if p is not None and p.is_alive()
        ]
        if not alive:
            raise PoolUnavailable("no live workers")
        self._counters["batches"] += 1
        for rq in self._result_qs:  # stale results from a prior batch
            self._drain(rq)

        payloads = list(payloads)
        task_ids = [next(self._task_counter) for _ in payloads]
        index_of = {tid: i for i, tid in enumerate(task_ids)}
        assignment: dict[int, int] = {}
        for i, (tid, payload) in enumerate(zip(task_ids, payloads)):
            wid = alive[i % len(alive)]
            self._task_qs[wid].put((tid, payload))
            assignment[tid] = wid
            self._counters["dispatched"] += 1

        if self._kill_after_dispatch is not None:
            wid, self._kill_after_dispatch = self._kill_after_dispatch, None
            proc = self._procs[wid]
            if proc is not None:
                proc.kill()
                proc.join(timeout=1.0)

        results: dict[int, object] = {}
        errors: dict[int, str] = {}
        while len(results) < len(payloads):
            progressed = False
            for rq in list(self._result_qs):
                while True:
                    try:
                        msg = rq.get_nowait()
                    except (queue_mod.Empty, OSError, ValueError):
                        break
                    progressed = True
                    wid, tid, status, result, error = msg
                    if tid not in index_of or tid in results:
                        continue  # stale or already rescued
                    results[tid] = result
                    if status != "ok":
                        errors[tid] = error or "unknown worker error"
                    self._counters["completed"] += 1
            if len(results) >= len(payloads):
                break
            if not progressed:
                self._rescue_dead(assignment, results, errors, index_of, payloads)
                time.sleep(0.005)

        self._respawn_dead()
        if errors:
            tid = min(errors)  # deterministic: lowest task id first
            raise TaskError(
                f"task {index_of[tid]} failed: {errors[tid]}"
            )
        return [results[tid] for tid in task_ids]

    def _rescue_dead(self, assignment, results, errors, index_of, payloads):
        """Inline re-execution of unfinished tasks of dead workers."""
        fn = None
        for tid, wid in assignment.items():
            if tid in results:
                continue
            proc = self._procs[wid]
            if proc is not None and proc.is_alive():
                continue
            if fn is None:
                fn = self._resolve()
            try:
                results[tid] = fn(payloads[index_of[tid]])
            except BaseException as exc:
                results[tid] = None
                errors[tid] = f"{type(exc).__name__}: {exc}"
            self._counters["serial_rescues"] += 1

    def _respawn_dead(self) -> None:
        """Replace dead workers after the batch (fresh queues, same
        reasoning as :meth:`WorkerPool._respawn_dead`)."""
        for wid, proc in enumerate(self._procs):
            if proc is not None and proc.is_alive():
                continue
            if proc is not None:
                proc.join(timeout=0.5)
            for old in (self._task_qs[wid], self._result_qs[wid]):
                try:
                    old.close()
                    old.cancel_join_thread()
                except Exception:
                    pass
            self._task_qs[wid] = self._ctx.Queue()
            self._result_qs[wid] = self._ctx.Queue()
            self._try_spawn(wid)
            if self._procs[wid] is not None:
                self._counters["respawns"] += 1

    @staticmethod
    def _drain(q) -> None:
        while True:
            try:
                q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Pool telemetry: worker liveness plus the batch counters."""
        return {
            "workers": len(self._procs),
            "alive_workers": self.alive_workers,
            **self._counters,
        }
