"""Range partitioning of the first join variable (the slice planner).

LTJ eliminates the first variable in increasing value order, so
restricting it to ``[a, b)`` (``first_range`` in
:meth:`~repro.core.ltj.LeapfrogTrieJoin.evaluate`) yields a *contiguous
run* of the serial enumeration: disjoint ranges give disjoint solution
sets whose ascending concatenation is exactly the serial output.  The
planner's job is to pick K such ranges with balanced work.

Boundary snapping: cuts are always placed on *distinct-value starts* of
the guiding pattern — read off its cumulative-count array
(``np.searchsorted`` on the C array when the variable is unbound) or
off a ``distinct_in_range`` enumeration of its wavelet-matrix range —
so no value's subtree straddles two slices and slice weights measure
actual triples, not alphabet span.  When the guiding pattern offers no
cheap histogram (a forward-leap position, or more distinct values than
``MAX_ENUMERATED``) the planner falls back to equal-width value cuts,
which are still correct (any partition of the value space is), just
less balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.interface import PatternIterator
from repro.core.iterators import RingIterator
from repro.core.ring import prev_attr
from repro.graph.model import BasicGraphPattern, Var

#: Hard cap on distinct values materialised by the histogram probe; a
#: first variable with more candidates than this is partitioned by
#: equal-width value cuts instead (planning stays O(K + cap)).
MAX_ENUMERATED = 1 << 16


@dataclass(frozen=True)
class SlicePlan:
    """The partition handed to the pool: one task per slice."""

    var: Optional[Var]  #: the sliced (first) variable; None = unsliceable
    slices: list[tuple[int, int]] = field(default_factory=list)
    weights: list[int] = field(default_factory=list)  #: estimated rows/slice

    @property
    def viable(self) -> bool:
        """Whether fanning out is worth it (>= 2 non-empty slices)."""
        return self.var is not None and len(self.slices) >= 2


def _histogram(it: PatternIterator, var: Var) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """(values, counts) of ``var`` in ``it``, or None when not cheap.

    Ring iterators answer from the C array (unbound) or the zone's
    wavelet matrix (backward position); anything else — including
    non-ring iterators — reports no histogram.
    """
    if not isinstance(it, RingIterator):
        return None
    positions = it._var_positions.get(var, ())
    if len(positions) != 1:
        return None
    pos = positions[0]
    ring = it._ring
    state = it.zone_state()
    if state is None:
        c = ring.c_array(pos)
        counts = np.diff(c)
        values = np.nonzero(counts)[0]
        return values.astype(np.int64), counts[values].astype(np.int64)
    zone, lo, hi = state
    if pos != prev_attr(zone):
        return None
    wm = ring.zone_sequence(zone)
    if wm.distinct_estimate(lo, hi, max_nodes=MAX_ENUMERATED) > MAX_ENUMERATED:
        return None
    pairs = list(wm.distinct_in_range(lo, hi))
    if not pairs:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    values = np.array([v for v, _ in pairs], dtype=np.int64)
    counts = np.array([c for _, c in pairs], dtype=np.int64)
    return values, counts


def _cut_weighted(
    values: np.ndarray, counts: np.ndarray, ceiling: int, k: int
) -> tuple[list[tuple[int, int]], list[int]]:
    """Partition distinct values into <= k runs of roughly equal weight.

    Cuts land exactly on value starts (the snapping invariant); each
    slice's bounds are ``[values[cut_i], values[cut_{i+1}])`` with the
    final bound at ``ceiling``, so the slices tile ``[first, ceiling)``.
    """
    total = int(counts.sum())
    if total == 0 or len(values) == 0:
        return [], []
    prefix = np.cumsum(counts)
    targets = np.arange(1, k) * (total / k)
    cut_idx = np.searchsorted(prefix, targets, side="left") + 1
    cut_idx = np.unique(np.clip(cut_idx, 1, len(values)))
    starts = [int(values[0])]
    for idx in cut_idx:
        if idx < len(values):
            starts.append(int(values[idx]))
    bounds = starts + [int(ceiling)]
    slices, weights = [], []
    for a, b in zip(bounds, bounds[1:]):
        if a >= b:
            continue
        mask = (values >= a) & (values < b)
        w = int(counts[mask].sum())
        if w > 0:
            slices.append((a, b))
            weights.append(w)
    return slices, weights


def _cut_equal_width(ceiling: int, k: int) -> tuple[list[tuple[int, int]], list[int]]:
    if ceiling <= 0:
        return [], []
    k = min(k, ceiling)
    bounds = [round(i * ceiling / k) for i in range(k + 1)]
    slices = [(a, b) for a, b in zip(bounds, bounds[1:]) if a < b]
    return slices, [b - a for a, b in slices]


def plan_slices(
    iterators: Sequence[PatternIterator],
    bgp: BasicGraphPattern,
    order: Sequence[Var],
    num_slices: int,
) -> SlicePlan:
    """Plan the fan-out for ``bgp`` under elimination order ``order``.

    ``iterators`` are fresh pattern iterators for the BGP (one per
    pattern, positions aligned); the guiding pattern is the one with the
    fewest matching triples among those containing the first variable —
    the same statistic the §4.3 ordering minimises, so its histogram is
    the tightest cheap bound on the first variable's branching.
    """
    if not order or num_slices < 2:
        return SlicePlan(var=None)
    v0 = order[0]
    guides = [it for it in iterators if v0 in it.pattern.variables()]
    if not guides:
        return SlicePlan(var=None)
    guide = min(guides, key=lambda it: it.count())
    if not isinstance(guide, RingIterator):
        return SlicePlan(var=None)
    # The slices only need to cover values admissible in *one* pattern:
    # any solution value must satisfy the guide too, so the guide's
    # attribute universe bounds the domain.
    ceiling = min(
        guide._ring.sigma(p)
        for p in guide.pattern.variable_positions(v0)
    )
    hist = _histogram(guide, v0)
    if hist is not None:
        slices, weights = _cut_weighted(hist[0], hist[1], ceiling, num_slices)
    else:
        slices, weights = _cut_equal_width(ceiling, num_slices)
    return SlicePlan(var=v0, slices=slices, weights=weights)
