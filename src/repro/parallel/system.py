""":class:`ParallelRingIndex` — the pool-backed drop-in ring system.

Construction builds the ordinary serial :class:`RingIndex`, exports its
ring into shared memory once, and spawns the worker pool.  At query
time the driver:

1. computes the elimination order (the same cardinality-guided §4.3
   order the serial engine would use — workers receive it explicitly so
   every process runs the identical plan);
2. asks the slice planner for a balanced, boundary-snapped partition of
   the first variable's domain;
3. fans the slices out over the pool, folding worker op counts and
   engine stats back into the parent budget, and merges the blocks in
   slice order — the output is byte-identical to the serial
   enumeration, including the *prefix* semantics of ``partial=True``
   under timeout/cancellation.

Whenever fanning out is impossible or pointless — no shared join
variable, fewer than two non-empty slices, an unexportable ring, a
fully dead pool — the query silently runs on the inherited serial
engine instead: parallelism is an optimisation, never a requirement.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.interface import (
    PatternIterator,
    QueryCancelled,
    QueryTimeout,
)
from repro.core.system import RingIndex
from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, Var
from repro.parallel import pool as pool_mod
from repro.parallel.pool import PoolUnavailable, WorkerPool
from repro.parallel.shm import ShmExportError, export_ring
from repro.parallel.slices import plan_slices
from repro.reliability.budget import ResourceBudget


class ParallelRingIndex(RingIndex):
    """LTJ over the ring, range-partitioned across worker processes.

    Parameters
    ----------
    workers:
        Worker processes to spawn (each attaches the shared ring
        zero-copy).
    num_slices:
        Slices per query; defaults to ``2 * workers`` so the fastest
        worker picks up slack from skewed slices.
    start_method:
        ``multiprocessing`` start method (default ``fork``, overridable
        via ``REPRO_PARALLEL_START_METHOD``).

    Only the plain (uncompressed, plain-counts) ring is shareable;
    requesting a compressed one raises
    :class:`~repro.parallel.shm.ShmExportError` at construction.
    """

    name = "ParallelRing"

    def __init__(
        self,
        graph: Graph,
        workers: int = 2,
        num_slices: Optional[int] = None,
        start_method: Optional[str] = None,
        use_lonely: bool = True,
        use_ordering: bool = True,
        use_batch: bool = True,
        leap_memo_size: int = 1 << 16,
        policy: str = "static",
    ) -> None:
        super().__init__(
            graph,
            compressed=False,
            use_lonely=use_lonely,
            use_ordering=use_ordering,
            use_batch=use_batch,
            leap_memo_size=leap_memo_size,
            policy=policy,
        )
        self._use_lonely = use_lonely
        self._workers = max(1, int(workers))
        self._num_slices = int(num_slices) if num_slices else 2 * self._workers
        self._shared = export_ring(self._ring)
        try:
            self._pool: Optional[WorkerPool] = WorkerPool(
                self._shared.handle,
                workers=self._workers,
                engine_opts={
                    "use_lonely": use_lonely,
                    "use_ordering": use_ordering,
                    "use_batch": use_batch,
                    "policy": policy,
                },
                start_method=start_method,
            )
        except PoolUnavailable:
            self._pool = None  # degraded: every query runs serially

    @classmethod
    def from_ring(
        cls,
        ring,
        graph: Graph,
        *,
        workers: int = 2,
        num_slices: Optional[int] = None,
        start_method: Optional[str] = None,
        use_lonely: bool = True,
        use_ordering: bool = True,
        use_batch: bool = True,
        policy: str = "static",
    ) -> "ParallelRingIndex":
        """Parallel driver over a prebuilt ring (no index construction).

        This is how ``ParallelRingIndex.load(path, mmap=True)`` serves a
        frozen pack: a pack-backed ring skips the shm export entirely —
        workers map the pack *file* (:class:`~repro.parallel.shm.PackHandle`)
        and the page cache is the shared memory, so a 100 GB index fans
        out across workers in O(working set) RAM.  Rings without a pack
        behind them (shm-attached, hand-built) export as usual.
        """
        index = RingIndex.from_ring.__func__(
            cls,
            ring,
            graph,
            use_lonely=use_lonely,
            use_ordering=use_ordering,
            use_batch=use_batch,
            policy=policy,
        )
        index._use_lonely = use_lonely
        index._workers = max(1, int(workers))
        index._num_slices = (
            int(num_slices) if num_slices else 2 * index._workers
        )
        pack_path = getattr(ring, "_pack_path", None)
        if pack_path is not None and getattr(ring, "_pack_mmap", False):
            from repro.parallel.shm import PackHandle

            index._shared = None
            handle = PackHandle(pack_path)
        else:
            index._shared = export_ring(ring)
            handle = index._shared.handle
        try:
            index._pool = WorkerPool(
                handle,
                workers=index._workers,
                engine_opts={
                    "use_lonely": use_lonely,
                    "use_ordering": use_ordering,
                    "use_batch": use_batch,
                    "policy": policy,
                },
                start_method=start_method,
            )
        except PoolUnavailable:
            index._pool = None
        return index

    # -- lifecycle -----------------------------------------------------------

    @property
    def pool(self) -> Optional[WorkerPool]:
        return self._pool

    def pool_stats(self) -> dict:
        """Worker-pool telemetry (empty when degraded to serial)."""
        return self._pool.stats() if self._pool is not None else {}

    def cache_generation(self) -> int:
        """Constant token: the frozen ring is immutable, so cached
        results never go stale.  A serving cache sits *above* the
        parallel driver — cached rows are served without touching the
        worker pool at all."""
        return 0

    def close(self) -> None:
        """Stop the workers and release the shared segment."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._shared is not None:
            self._shared.close()

    def __enter__(self) -> "ParallelRingIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- the parallel driver -------------------------------------------------

    def _solutions(
        self,
        bgp: BasicGraphPattern,
        timeout,
        var_order: Optional[Sequence[Var]] = None,
        stats: Optional[dict] = None,
    ) -> Iterable[dict[Var, int]]:
        budget = ResourceBudget.coerce(timeout)
        pool = self._pool
        if pool is None or not pool.alive:
            yield from self._engine.evaluate(
                bgp, timeout=budget, var_order=var_order, stats=stats
            )
            return

        # Replicate the engine's preamble so the parent, the planner and
        # every worker agree on the same live iterators and order.
        iters = [self.iterator(t) for t in bgp]
        live: list[PatternIterator] = []
        for it in iters:
            if it.count() == 0:
                return  # some pattern is unsatisfiable
            if not it.pattern.is_fully_bound():
                live.append(it)
        by_var: dict[Var, list[PatternIterator]] = {}
        for it in live:
            for var in it.pattern.variables():
                by_var.setdefault(var, []).append(it)
        lonely = (
            {v for v, its in by_var.items() if len(its) == 1}
            if self._use_lonely
            else set()
        )
        shared = [v for v in by_var if v not in lonely]
        if var_order is not None:
            order = [v for v in var_order if v in by_var and v not in lonely]
            if set(order) != set(shared):
                raise ValueError("var_order must cover every non-lonely variable")
        else:
            order = self._engine._variable_order(shared, by_var)

        # Dynamic policies: the sliced (and per-worker pinned) first
        # variable is the policy's own depth-0 choice, so workers only
        # re-rank depths >= 1 and the merged slices reproduce the serial
        # policy enumeration byte for byte.  Slices may diverge in the
        # deeper order — each worker re-ranks against its own narrowed
        # ranges — but those choices are deterministic functions of the
        # shared ring state, identical to what the serial search decides
        # at the same node.
        pin_first = var_order is None and self._engine.policy != "static"
        if pin_first and order:
            v0 = self._engine.first_variable(order, by_var, stats)
            if v0 is not order[0]:
                order = [v0] + [v for v in order if v is not v0]

        plan = plan_slices(live, bgp, order, self._num_slices) if order else None
        if plan is None or not plan.viable:
            yield from self._engine.evaluate(
                bgp, timeout=budget, var_order=var_order, stats=stats
            )
            return

        def serial_fallback(first_range):
            # Dead-worker rescue: re-run the slice in this process,
            # charging the parent budget directly (its ticks are already
            # accounted, hence ops=0 in the returned block).
            rows: list = []
            slice_stats: dict = {}
            status = "ok"
            row_demand = getattr(budget, "row_demand", None)
            if row_demand is not None:
                # Same cap the pool hands its workers: the consumer never
                # needs more than the remaining row allowance from any
                # single slice, so a rescue may stop there too.
                max_rows = max(row_demand - budget.solutions, 0)
            else:
                max_rows = None
            try:
                if max_rows is None or max_rows > 0:
                    for solution in self._engine.evaluate(
                        bgp,
                        timeout=budget,
                        var_order=None if pin_first else order,
                        stats=slice_stats,
                        first_range=first_range,
                        first_var=order[0] if pin_first else None,
                    ):
                        rows.append(solution)
                        if max_rows is not None and len(rows) >= max_rows:
                            break
            except QueryTimeout:
                status = "timeout"
            except QueryCancelled:
                status = "cancelled"
            except Exception as exc:
                status = "error"
                slice_stats["error"] = f"{type(exc).__name__}: {exc}"
            return (status, rows, slice_stats, 0)

        try:
            blocks = pool.run_slices(
                bgp, order, plan.slices, budget, serial_fallback,
                pin_first=pin_first,
            )
        except PoolUnavailable:
            yield from self._engine.evaluate(
                bgp, timeout=budget, var_order=var_order, stats=stats
            )
            return

        # Called through the module so the ``parallel.slice_merge``
        # chaos site (which patches the module attribute) intercepts it.
        rows, bad, merged_stats, worker_ops = pool_mod.merge_blocks(blocks)
        budget.ops += worker_ops  # fold the fan-out into the governor
        if stats is not None:
            for key, value in merged_stats.items():
                if isinstance(value, (int, float)):
                    stats[key] = stats.get(key, 0) + value
            stats["slices"] = len(plan.slices)
        yield from rows
        if bad == "error":
            raise RuntimeError(
                "parallel worker failed: "
                + str(merged_stats.get("error", "unknown error"))
            )
        if bad is not None:
            # Prefer the parent's own verdict (it distinguishes a true
            # deadline from an external cancellation); fall back to the
            # slice's status when the parent governor is still fine
            # (e.g. a per-slice op sub-budget fired first).
            budget.check()
            if bad == "cancelled":
                raise QueryCancelled("query cancelled during parallel execution")
            raise QueryTimeout("resource budget exhausted during parallel execution")
