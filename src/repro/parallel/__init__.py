"""Shared-memory parallel query execution.

The ring is a frozen read-only structure (three wavelet matrices plus
three cumulative-count arrays), so a pool of worker *processes* can map
one copy of it and run disjoint pieces of the same LTJ search — the
parallelisation the paper's single-index-order design invites.

- :mod:`repro.parallel.shm` — export the ring's numpy backing arrays
  into one ``multiprocessing.shared_memory`` segment; zero-copy
  re-attach on the worker side.
- :mod:`repro.parallel.slices` — split the first join variable's value
  domain into balanced, boundary-snapped ``[a, b)`` slices.
- :mod:`repro.parallel.pool` — the worker pool: per-worker task queues,
  budget propagation, shared cancellation, dead-worker degradation.
- :mod:`repro.parallel.system` — :class:`ParallelRingIndex`, the
  drop-in :class:`~repro.core.system.RingIndex` that fans each query
  out over the pool and merges slice results deterministically.
"""

from repro.parallel.shm import (
    RingHandle,
    SharedRing,
    ShmExportError,
    attach_ring,
    export_ring,
)
from repro.parallel.slices import SlicePlan, plan_slices
from repro.parallel.pool import TaskError, TaskPool, WorkerPool, merge_blocks
from repro.parallel.system import ParallelRingIndex

__all__ = [
    "ParallelRingIndex",
    "RingHandle",
    "SharedRing",
    "ShmExportError",
    "SlicePlan",
    "WorkerPool",
    "attach_ring",
    "export_ring",
    "merge_blocks",
    "plan_slices",
]
