"""Transport-agnostic shard endpoints.

The coordinator (:mod:`repro.serving.coordinator`) never talks to an
engine or a :class:`~repro.reliability.broker.QueryBroker` directly; it
talks to an :class:`EngineEndpoint` — the minimal failable surface of a
shard.  The interface is deliberately the *broker's* intake surface
(``submit`` returning a future, ``stats``), extracted here so that a
future socket transport can implement the same five methods and the
coordinator, breaker, and supervisor stay untouched.

:class:`InProcessEndpoint` is the one transport this PR ships: a
factory-constructed engine (typically a
:class:`~repro.reliability.wal.DurableDynamicRing`, so restarts recover
through the WAL) behind its own private broker.  It adds the lifecycle
the supervisor needs — :meth:`kill` to simulate a crash (chaos drills,
tests), :meth:`restart` to rebuild engine + broker through the factory,
an ``incarnation`` counter that bumps on every restart (feeding the
shard-generation vector the cache layer invalidates on), and
:meth:`health_check` for the supervisor's probe loop.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.reliability.broker import QueryBroker, QueryRejected

__all__ = ["EngineEndpoint", "EndpointDown", "InProcessEndpoint"]


class EndpointDown(QueryRejected):
    """The endpoint's engine is not running (crashed or shut down).

    A :class:`~repro.reliability.broker.QueryRejected` subtype: the
    coordinator treats it as a transient, retryable shard failure, and
    front ends map it to load shedding rather than a query bug.
    """


@runtime_checkable
class EngineEndpoint(Protocol):
    """What the coordinator requires of a shard, transport aside.

    ``submit`` mirrors :meth:`QueryBroker.submit` (synchronous typed
    rejection, future of the result); ``alive``/``health_check`` feed
    the breaker and the supervisor; ``incarnation`` distinguishes
    restarts of the same shard for cache invalidation.
    """

    def submit(self, query, **kwargs) -> Future: ...

    def health_check(self) -> bool: ...

    @property
    def alive(self) -> bool: ...

    @property
    def incarnation(self) -> int: ...

    def stats(self) -> dict: ...


class InProcessEndpoint:
    """A supervised in-process shard: engine + private broker.

    Parameters
    ----------
    factory:
        Zero-argument callable returning the shard's engine.  Called
        once at construction and again on every :meth:`restart` — for a
        durable shard the factory's restart path goes through
        ``DurableDynamicRing.recover``, so a killed shard comes back
        with every acknowledged write.
    broker_options:
        Keyword arguments for the per-shard :class:`QueryBroker`
        (workers, queue_depth, maintenance_interval, ...).
    """

    def __init__(
        self,
        factory: Callable[[], object],
        broker_options: Optional[dict] = None,
    ) -> None:
        self._factory = factory
        self._broker_options = dict(broker_options or {})
        self._lock = threading.RLock()
        self._engine = None
        self._broker: Optional[QueryBroker] = None
        self._incarnation = 0
        self._restarts = 0
        self._start_engine()

    # -- lifecycle -----------------------------------------------------------

    def _start_engine(self) -> None:
        engine = self._factory()
        broker = QueryBroker(engine, **self._broker_options)
        broker.start()
        with self._lock:
            self._engine = engine
            self._broker = broker

    def kill(self) -> None:
        """Simulate a crash: drop the broker and the engine, no checkpoint.

        Queued work fails with :class:`QueryRejected`; a durable engine
        is closed *without* checkpointing so the subsequent
        :meth:`restart` exercises the WAL recovery path, exactly like a
        process that died mid-write.
        """
        with self._lock:
            broker, engine = self._broker, self._engine
            self._broker = None
            self._engine = None
        if broker is not None:
            broker.stop()
        if engine is not None and hasattr(engine, "close"):
            try:
                engine.close(checkpoint=False)
            except TypeError:
                engine.close()
            except Exception:
                pass  # crashing engines may fail to close cleanly

    def restart(self) -> None:
        """Rebuild engine + broker through the factory; bumps incarnation."""
        with self._lock:
            if self._broker is not None:
                return  # already running
        self._start_engine()
        with self._lock:
            self._incarnation += 1
            self._restarts += 1

    def shutdown(self, checkpoint: bool = True) -> None:
        """Orderly stop (checkpointing durable engines by default)."""
        with self._lock:
            broker, engine = self._broker, self._engine
            self._broker = None
            self._engine = None
        if broker is not None:
            broker.stop()
        if engine is not None and hasattr(engine, "close"):
            try:
                engine.close(checkpoint=checkpoint)
            except TypeError:
                engine.close()

    # -- the EngineEndpoint surface ------------------------------------------

    def submit(self, query, **kwargs) -> Future:
        with self._lock:
            broker = self._broker
        if broker is None:
            raise EndpointDown("shard engine is down")
        return broker.submit(query, **kwargs)

    def evaluate(self, query, **kwargs):
        return self.submit(query, **kwargs).result()

    def health_check(self) -> bool:
        """Cheap liveness probe: broker running and engine reachable."""
        with self._lock:
            broker, engine = self._broker, self._engine
        if broker is None or engine is None:
            return False
        probe = getattr(engine, "n_triples", None)
        try:
            if probe is not None:
                int(probe)
            return True
        except Exception:
            return False

    @property
    def alive(self) -> bool:
        with self._lock:
            return self._broker is not None

    @property
    def incarnation(self) -> int:
        with self._lock:
            return self._incarnation

    @property
    def engine(self):
        """The current engine instance (``None`` while down)."""
        with self._lock:
            return self._engine

    @property
    def n_triples(self) -> int:
        engine = self.engine
        if engine is None:
            return 0
        return int(getattr(engine, "n_triples", 0))

    def dump(self) -> list:
        """Every triple of the shard (replica catch-up, tests)."""
        engine = self.engine
        if engine is None:
            raise EndpointDown("shard engine is down")
        return [tuple(map(int, t)) for t in engine.to_graph().triples]

    # -- writes (routed by the sharding layer) -------------------------------

    def insert(self, s: int, p: int, o: int) -> bool:
        engine = self.engine
        if engine is None:
            raise EndpointDown("shard engine is down")
        return engine.insert(s, p, o)

    def delete(self, s: int, p: int, o: int) -> bool:
        engine = self.engine
        if engine is None:
            raise EndpointDown("shard engine is down")
        return engine.delete(s, p, o)

    # -- introspection -------------------------------------------------------

    def cache_generation(self):
        """The engine's generation (``None`` while down or non-generational)."""
        engine = self.engine
        gen = getattr(engine, "cache_generation", None)
        if callable(gen):
            return gen()
        return None

    def stats(self) -> dict:
        with self._lock:
            broker = self._broker
            engine = self._engine
            out = {
                "alive": broker is not None,
                "incarnation": self._incarnation,
                "restarts": self._restarts,
            }
        if engine is not None:
            n = getattr(engine, "n_triples", None)
            if n is not None:
                out["n_triples"] = int(n)
        if broker is not None:
            out["broker"] = broker.stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "down"
        return f"InProcessEndpoint({state}, incarnation={self.incarnation})"
