"""Robust scatter-gather evaluation over a :class:`ShardedRingIndex`.

The coordinator is where the distributed-systems discipline lives; the
evaluation strategy itself is the simplest one that is *provably
correct* for subject-hash shards:

1. **Scatter per pattern** — each triple pattern of the BGP is a
   sub-query any shard can answer from its own partition alone.  A
   pattern whose subject is a constant routes to the single owning
   shard; every other pattern fans out to all shards.  Dispatches go
   through each shard's broker (bounded admission, watchdog) with a
   per-shard sub-deadline derived from the parent
   :class:`~repro.reliability.budget.ResourceBudget` via
   :meth:`~repro.reliability.budget.ResourceBudget.sub_budget`.
2. **Gather with failure handling** — every shard call is failable:
   transient errors (admission sheds, endpoint down, injected faults,
   shard-side stalls) are retried under a bounded
   :class:`~repro.serving.breaker.RetryPolicy` whose backoff is clamped
   to the parent's remaining time; a per-shard
   :class:`~repro.serving.breaker.CircuitBreaker` refuses calls to a
   shard that keeps failing.  Per-shard answers are merged with the
   same :func:`~repro.parallel.pool.merge_blocks` machinery the
   process-pool tier uses, folding shard ops into the parent budget
   exactly once per attempt (:meth:`ResourceBudget.fold`).
3. **Local join** — the matched triples are reconstructed from the
   pattern bindings, unioned into a small local
   :class:`~repro.graph.dataset.Graph`, and the *full* BGP is joined
   locally by a fresh :class:`~repro.core.system.RingIndex`.  Joins
   therefore never depend on shard boundaries; sharding only
   distributes the *scan* work.
4. **Canonical order** — final rows are sorted by their canonical
   variable ids (:func:`repro.cache.canonical.canonicalize`), making
   the output deterministic, independent of gather timing and variable
   names, and therefore safe to cache byte-identically.  ``limit`` is
   applied after the sort.

**Partial-result contract.**  A shard that fails any of its sub-queries
(after retries / breaker refusal) is excluded *entirely*: the result
equals an exact evaluation over the union of the surviving shards'
partitions — a deterministic subset of the true answer, never a
half-shard mixture.  With ``partial=True`` that degraded result is
returned with ``truncated=True`` and a :class:`ShardReport` on
``result.shards`` naming exactly which shards answered; with
``partial=False`` (the default) the coordinator raises
:class:`ShardUnavailable` instead of silently under-reporting.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.cache.canonical import canonicalize
from repro.core.interface import (
    QueryCancelled,
    QueryError,
    QueryTimeout,
    UnsupportedQueryError,
)
from repro.core.system import QueryResult, RingIndex
from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, Var
from repro.graph.parser import parse_bgp
from repro.parallel.pool import merge_blocks
from repro.reliability.budget import ResourceBudget
from repro.serving.breaker import CircuitBreaker, RetryPolicy
from repro.serving.sharding import ShardedRingIndex

__all__ = ["ShardCoordinator", "ShardReport", "ShardUnavailable"]

#: Errors that indicate a broken *query*, not a broken shard — they
#: propagate immediately, are never retried, and never trip a breaker.
_PERMANENT_ERRORS = (UnsupportedQueryError, QueryCancelled, ValueError, TypeError)


class ShardUnavailable(QueryError):
    """A shard could not answer and the caller required complete results.

    Carries the failed shard ids in ``shard_ids``.
    """

    def __init__(self, message: str, shard_ids: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.shard_ids = tuple(shard_ids)


class ShardReport:
    """Which shards contributed to a result (``QueryResult.shards``).

    ``failovers`` names the shards whose :class:`ReplicaSet` transparently
    failed over to a secondary during this query — the answer is still
    complete and byte-identical; the report just makes the event visible.
    """

    __slots__ = ("answered", "failed", "retries", "complete", "failovers")

    def __init__(self, answered, failed, retries, failovers=()) -> None:
        self.answered = tuple(sorted(answered))
        self.failed = tuple(sorted(failed))
        self.retries = retries
        self.failovers = tuple(sorted(failovers))
        self.complete = not self.failed

    def as_dict(self) -> dict:
        return {
            "answered": list(self.answered),
            "failed": list(self.failed),
            "retries": self.retries,
            "failovers": list(self.failovers),
            "complete": self.complete,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "complete" if self.complete else "partial"
        return (
            f"ShardReport({kind}, answered={self.answered}, "
            f"failed={self.failed}, retries={self.retries}, "
            f"failovers={self.failovers})"
        )


# -- fault sites -------------------------------------------------------------
# Module-level indirection so the chaos harness can monkeypatch the exact
# seams a real transport would expose (see reliability/faults.py:
# ``shard.dispatch`` / ``shard.gather``).


def dispatch_shard(endpoint, query, *, timeout, max_ops, options):
    """Submit one sub-query to one shard endpoint (fault site)."""
    return endpoint.submit(query, timeout=timeout, max_ops=max_ops, **options)


def gather_block(future, timeout):
    """Collect one shard future (fault site)."""
    return future.result(timeout=timeout)


#: Waiting indefinitely on an unbudgeted shard call would turn a wedged
#: shard into a wedged coordinator; cap every gather instead.
DEFAULT_GATHER_TIMEOUT = 30.0


class _GatherInterrupted(Exception):
    """Internal: the parent budget tripped mid-gather under partial=True."""

    def __init__(self, reason: str) -> None:
        self.reason = reason


class ShardCoordinator:
    """Fault-tolerant scatter-gather front of a :class:`ShardedRingIndex`.

    Exposes the :meth:`~repro.core.system.BaseQuerySystem.evaluate`
    surface (so brokers, caches, and the CLI drop it in anywhere an
    index goes) plus the cache hooks ``cache_generation`` (the shard
    generation vector) and ``cache_plan_signature`` (constant — the
    coordinator's canonical sort makes row order plan-independent).

    Parameters
    ----------
    shards:
        The sharded index to coordinate.
    retry_policy:
        Backoff schedule for transient per-shard failures.
    breaker_factory:
        Zero-argument callable building one breaker per shard (defaults
        to ``CircuitBreaker()``); pass a lambda to tune thresholds or
        inject a test clock.
    shard_timeout:
        Optional per-dispatch deadline (seconds); always additionally
        clamped to the parent budget's remaining time.
    gather_timeout:
        Hard cap on any single gather wait (a wedged shard must not
        wedge the coordinator even on unbudgeted queries).
    """

    name = "ShardedRing"

    def __init__(
        self,
        shards: ShardedRingIndex,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_factory=None,
        shard_timeout: Optional[float] = None,
        gather_timeout: float = DEFAULT_GATHER_TIMEOUT,
        policy: str = "static",
    ) -> None:
        self.shards = shards
        self.retry_policy = retry_policy or RetryPolicy()
        #: Variable-selection policy of the coordinator-side local join
        #: (:data:`repro.core.ltj.POLICIES`).  The canonical row sort
        #: makes the output order policy-independent, so this is purely
        #: a performance knob — answers stay byte-identical across
        #: policies here.
        self.policy = policy
        make = breaker_factory or CircuitBreaker
        self.breakers = [make() for _ in range(shards.n_shards)]
        self.shard_timeout = shard_timeout
        self.gather_timeout = gather_timeout
        self._stats = {
            "queries": 0,
            "partial_results": 0,
            "shard_calls": 0,
            "shard_failures": 0,
            "retries": 0,
            "breaker_refusals": 0,
        }

    # -- delegation -----------------------------------------------------------

    @property
    def graph(self) -> Graph:
        return self.shards.graph

    def insert(self, s: int, p: int, o: int) -> bool:
        return self.shards.insert(s, p, o)

    def delete(self, s: int, p: int, o: int) -> bool:
        return self.shards.delete(s, p, o)

    def cache_generation(self):
        return self.shards.cache_generation()

    def cache_plan_signature(self, encoded) -> tuple:
        """Constant signature: the canonical sort makes the coordinator's
        row order independent of any engine plan, so the cache key needs
        no plan component (see ``CachedQuerySystem._key_info``)."""
        return ((), ())

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        query,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        decode: bool = False,
        project: Optional[Sequence[Var]] = None,
        partial: bool = False,
        cancellation=None,
        budget: Optional[ResourceBudget] = None,
        **options,
    ) -> QueryResult:
        """Distributed :meth:`BaseQuerySystem.evaluate` (same contract,
        plus the partial-result semantics documented on the module)."""
        self._stats["queries"] += 1
        bgp = parse_bgp(query) if isinstance(query, str) else query
        encoded = self.graph.encode_bgp(bgp)
        if budget is None:
            budget = ResourceBudget(
                timeout=timeout, max_solutions=limit, token=cancellation
            )
        if encoded is None:  # a constant is absent from the dictionary
            out = QueryResult()
            out.budget = budget
            out.shards = ShardReport(range(self.shards.n_shards), (), 0)
            return out

        failover_base = self._failover_snapshot()
        answered, failed, retries, triples, interrupted = self._scatter_gather(
            encoded, budget, partial, options
        )
        failovers = [
            sid
            for sid, (before, after) in enumerate(
                zip(failover_base, self._failover_snapshot())
            )
            if after > before
        ]
        if failed and not partial:
            raise ShardUnavailable(
                f"shards {sorted(failed)} unavailable and partial=False",
                shard_ids=sorted(failed),
            )

        out = self._local_join(encoded, triples, budget, limit, project, partial)
        out.shards = ShardReport(answered, failed, retries, failovers)
        if interrupted is not None and out.interrupted_by is None:
            out.interrupted_by = interrupted
        if failed:
            out.truncated = True
            if out.interrupted_by is None:
                out.interrupted_by = "shard-failure"
            self._stats["partial_results"] += 1
        if decode:
            roles = self.graph.variable_roles(bgp)
            out = QueryResult(
                self.graph.decode_solution(s, roles) for s in out
            )._copy_flags(out)
        return out

    def count(self, query, timeout: Optional[float] = None, **options) -> int:
        return len(self.evaluate(query, timeout=timeout, **options))

    def _failover_snapshot(self) -> list[int]:
        """Per-shard replica-failover counters (0 for plain endpoints)."""
        return [
            int(getattr(ep, "failovers", 0)) for ep in self.shards.endpoints
        ]

    # -- scatter / gather ------------------------------------------------------

    def _scatter_gather(self, encoded, budget, partial, options):
        """Run every (pattern, shard) sub-query.

        Returns ``(answered, failed, retries, matched_triples,
        interrupted_or_None)``.  A shard that fails *any* of its
        sub-queries is excluded entirely (all its matches dropped) so
        the surviving data is the exact union of whole partitions.
        """
        sub_options = dict(options)
        sub_options.setdefault("limit", None)
        tasks = []  # [shard_id, single-pattern BGP, first-attempt future]
        for pattern in encoded.patterns:
            single = BasicGraphPattern([pattern])
            for sid in self._targets(pattern):
                tasks.append([sid, single, None])

        failed: set[int] = set()
        retries = 0
        interrupted: Optional[str] = None
        # First-attempt fan-out: one submit per task, every shard working
        # concurrently under its own broker before any gather blocks.
        for task in tasks:
            if task[0] not in failed:
                task[2] = self._try_dispatch(task[0], task[1], budget, sub_options)

        rows_by_shard: dict[int, list] = {}
        for i, (sid, single, future) in enumerate(tasks):
            if sid in failed:
                continue
            try:
                rows, used = self._gather_with_retry(
                    sid, single, future, budget, sub_options
                )
            except (QueryTimeout, QueryCancelled) as exc:
                if not partial:
                    raise
                # The PARENT budget tripped: no time for the remaining
                # gathers either — collect only what is already done.
                interrupted = (
                    "cancelled" if isinstance(exc, QueryCancelled) else "timeout"
                )
                failed.add(sid)
                for later_sid, later_single, later_future in tasks[i + 1 :]:
                    if later_sid in failed:
                        continue
                    rows = self._drain_finished(later_future, budget)
                    if rows is None:
                        failed.add(later_sid)
                    else:
                        rows_by_shard.setdefault(later_sid, []).append(
                            (later_single.patterns[0], rows)
                        )
                break
            retries += used
            if rows is None:
                failed.add(sid)
            else:
                rows_by_shard.setdefault(sid, []).append((single.patterns[0], rows))

        answered = set(range(self.shards.n_shards)) - failed
        # Reuse the parallel tier's deterministic merge for the gather:
        # blocks in shard order, statuses checked in one place.
        ok_blocks = [
            ("ok", [(pattern, row) for row in rows], {}, 0)
            for sid in sorted(rows_by_shard)
            if sid not in failed
            for pattern, rows in rows_by_shard[sid]
        ]
        merged_rows, bad, _stats, _ops = merge_blocks(ok_blocks)
        assert bad is None  # only "ok" blocks are merged
        triples = {_bind_triple(pattern, row) for pattern, row in merged_rows}
        return answered, failed, retries, triples, interrupted

    def _targets(self, pattern) -> list[int]:
        """Shards that can own matches of ``pattern``: the single owner
        when the subject is a constant, every shard otherwise."""
        if not isinstance(pattern.s, Var):
            return [self.shards.shard_for(int(pattern.s))]
        return list(range(self.shards.n_shards))

    def _try_dispatch(self, sid, single, budget, sub_options):
        """One dispatch attempt; ``None`` when refused or failed (the
        gather phase owns retries for it)."""
        breaker = self.breakers[sid]
        if not breaker.allow():
            self._stats["breaker_refusals"] += 1
            return None
        self._stats["shard_calls"] += 1
        sub = budget.sub_budget(timeout=self.shard_timeout)
        try:
            return dispatch_shard(
                self.shards.endpoints[sid],
                single,
                timeout=sub.timeout,
                max_ops=sub.max_ops,
                options=sub_options,
            )
        except _PERMANENT_ERRORS:
            raise
        except Exception:
            self._stats["shard_failures"] += 1
            breaker.record_failure()
            return None

    def _gather_with_retry(self, sid, single, future, budget, sub_options):
        """Collect one sub-query, retrying transient failures.

        Returns ``(rows, retries_used)``; rows is ``None`` when the
        shard is given up on.  Permanent conditions — the *parent*
        budget tripping (:class:`QueryTimeout`/:class:`QueryCancelled`),
        a broken query — propagate immediately.
        """
        breaker = self.breakers[sid]
        retries_used = 0
        delays = self.retry_policy.delays()
        while True:
            if future is not None:
                try:
                    result = gather_block(future, self._gather_deadline(budget))
                except _PERMANENT_ERRORS:
                    raise
                except QueryTimeout:
                    # The shard's sub-deadline fired.  When the parent is
                    # also out of time that is permanent (check() raises);
                    # otherwise the shard stalled — retry may reach a
                    # healthy incarnation.
                    budget.check()
                    self._stats["shard_failures"] += 1
                    breaker.record_failure()
                except Exception:
                    self._stats["shard_failures"] += 1
                    breaker.record_failure()
                else:
                    breaker.record_success()
                    if getattr(result, "budget", None) is not None:
                        budget.fold(result.budget)
                    return list(result), retries_used
            # This attempt failed (or the breaker refused the dispatch).
            delay = next(delays, None)
            if delay is None:
                return None, retries_used
            remaining = budget.remaining_time()
            if remaining is not None:
                budget.check()  # permanent when the parent expired
                delay = min(delay, remaining)
            if delay > 0:
                time.sleep(delay)
            budget.check()
            retries_used += 1
            self._stats["retries"] += 1
            future = self._try_dispatch(sid, single, budget, sub_options)

    def _drain_finished(self, future, budget):
        """Non-blocking salvage of an already-completed first attempt
        (used when the parent budget trips mid-gather)."""
        if future is None or not future.done():
            return None
        try:
            result = future.result(timeout=0)
        except BaseException:
            return None
        if getattr(result, "budget", None) is not None:
            budget.fold(result.budget)
        return list(result)

    def _gather_deadline(self, budget) -> float:
        remaining = budget.remaining_time()
        if remaining is None:
            return self.gather_timeout
        # Slightly past the shard's own sub-deadline, so the shard-side
        # QueryTimeout (a classified, typed error) wins the race against
        # the raw concurrent.futures timeout.
        return min(self.gather_timeout, remaining + 0.05)

    # -- local join ------------------------------------------------------------

    def _local_join(
        self, encoded, triples, budget, limit, project, partial
    ) -> QueryResult:
        """Join the gathered triples locally; canonically order rows."""
        if triples:
            arr = np.array(sorted(triples), dtype=np.int64)
        else:
            arr = np.empty((0, 3), dtype=np.int64)
        local_graph = Graph(
            arr,
            n_nodes=self.graph.n_nodes,
            n_predicates=self.graph.n_predicates,
        )
        local = RingIndex(local_graph, policy=self.policy)
        sub = budget.sub_budget()
        # No limit here: a pre-sort cutoff would make the output depend
        # on engine enumeration order, breaking canonical determinism.
        result = local.evaluate(encoded, budget=sub, partial=partial)
        budget.fold(sub)

        mapping = canonicalize(encoded).mapping
        order = sorted(mapping, key=lambda v: mapping[v])
        keep = (
            [v for v in order if v in set(project)] if project is not None else order
        )
        rows = sorted(
            ({v: row[v] for v in keep if v in row} for row in result),
            key=lambda row: tuple(row.get(v, -1) for v in keep),
        )
        if project is not None:
            deduped, seen = [], set()
            for row in rows:
                key = tuple(sorted((mapping[v], val) for v, val in row.items()))
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped

        out = QueryResult()
        out.budget = budget
        for row in rows:
            out.append(row)
            if not budget.admit_solution() or (
                limit is not None and len(out) >= limit
            ):
                out.truncated = len(out) < len(rows)
                break
        out.interrupted_by = result.interrupted_by
        if result.truncated:
            out.truncated = True
        return out

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        out = dict(self._stats)
        out["breakers"] = [b.stats() for b in self.breakers]
        out["shards"] = self.shards.stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardCoordinator({self.shards!r})"


def _bind_triple(pattern, row) -> tuple[int, int, int]:
    """Reconstruct the matched triple from a pattern and its bindings."""
    return tuple(
        int(row[term]) if isinstance(term, Var) else int(term)
        for term in pattern.terms
    )
