"""Failure-handling policies of the sharded serving tier.

Two small, composable state machines the coordinator wraps around every
per-shard call:

- :class:`RetryPolicy` — bounded retry with exponential backoff and
  deterministic (seeded) jitter.  The coordinator classifies shard
  errors as *transient* (dispatch failures, admission sheds, wrapped
  engine faults) or *permanent* (unsupported query shapes, the parent
  deadline itself) and only retries the former; every delay is further
  clamped to the parent budget's remaining time, so retrying can never
  blow the caller's deadline.
- :class:`CircuitBreaker` — the classic closed/open/half-open breaker,
  one per shard.  Consecutive failures past ``failure_threshold`` open
  the circuit; while open, calls are refused *without touching the
  shard* (the shard gets restarted by the supervisor in the meantime,
  and the coordinator degrades to a partial result).  After
  ``reset_timeout`` seconds the breaker admits a limited number of
  half-open *probe* calls: enough successes re-close it, any failure
  re-opens it for another full window.

Both take an injectable ``clock`` (``time.monotonic`` by default) so the
state machines are unit-testable without sleeping.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Iterator, Optional

__all__ = ["CircuitBreaker", "RetryPolicy", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total tries per call, the first one included (``1`` = no retry).
    base_delay:
        Delay before the first retry, in seconds.
    multiplier:
        Backoff growth factor per retry.
    max_delay:
        Ceiling on any single delay.
    jitter:
        Fraction of the delay added as uniform random noise — retry
        storms from many coordinators decorrelate, yet a fixed ``seed``
        keeps tests and chaos drills reproducible.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.01,
        multiplier: float = 2.0,
        max_delay: float = 0.25,
        jitter: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0 or multiplier < 1 or jitter < 0:
            raise ValueError("retry parameters must be non-negative (multiplier >= 1)")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def delays(self) -> Iterator[float]:
        """The backoff delays between attempts (``max_attempts - 1`` of
        them), jittered.  A fresh iterator per call."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            with self._lock:
                noise = self._rng.random()
            jittered = min(delay, self.max_delay) * (1.0 + self.jitter * noise)
            yield jittered
            delay *= self.multiplier

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(attempts={self.max_attempts}, "
            f"base={self.base_delay:g}s, x{self.multiplier:g}, "
            f"cap={self.max_delay:g}s)"
        )


class CircuitBreaker:
    """Per-shard closed/open/half-open circuit breaker (thread-safe).

    State machine:

    - **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open (any success resets the streak);
    - **open** — :meth:`allow` refuses everything until ``reset_timeout``
      seconds have passed since the trip;
    - **half-open** — up to ``probe_limit`` concurrent probe calls are
      admitted.  ``probe_successes`` successful probes re-close the
      breaker; a single failed probe re-opens it (fresh window).

    The breaker only *observes* outcomes reported via
    :meth:`record_success` / :meth:`record_failure`; it never wraps the
    call itself, so the coordinator stays in charge of budgets and
    error typing.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        probe_limit: int = 1,
        probe_successes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1 or probe_limit < 1 or probe_successes < 1:
            raise ValueError("breaker thresholds must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.probe_limit = probe_limit
        self.probe_successes = probe_successes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._probe_successes_seen = 0
        self._stats = {"opened": 0, "reopened": 0, "closed": 0, "refused": 0}

    # -- queries -------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, with the open→half-open transition applied."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        In half-open state each ``True`` reserves one probe slot; the
        caller MUST report the outcome (success or failure) to release
        it, exactly as it must for ordinary calls.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_in_flight < self.probe_limit:
                self._probes_in_flight += 1
                return True
            self._stats["refused"] += 1
            return False

    # -- outcome reporting ---------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)
                self._probe_successes_seen += 1
                if self._probe_successes_seen >= self.probe_successes:
                    self._state = CLOSED
                    self._consecutive_failures = 0
                    self._opened_at = None
                    self._stats["closed"] += 1
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)
                self._trip(reopen=True)
                return
            if self._state == OPEN:
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip(reopen=False)

    # -- internals (call with the lock held) ---------------------------------

    def _trip(self, reopen: bool) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._probe_successes_seen = 0
        self._stats["reopened" if reopen else "opened"] += 1

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes_seen = 0

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                **self._stats,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.state})"
