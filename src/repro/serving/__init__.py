"""Sharded, fault-tolerant serving tier (INTERNALS §11).

The ring's succinctness makes shards cheap; this package supplies the
discipline for *surviving* them: subject-hash sharding over supervised
per-shard engines (:mod:`~repro.serving.sharding`,
:mod:`~repro.serving.endpoint`), a scatter-gather coordinator with
retry/backoff, per-shard circuit breakers, and deterministic
partial-result degradation (:mod:`~repro.serving.coordinator`,
:mod:`~repro.serving.breaker`), automatic crash recovery
(:mod:`~repro.serving.supervisor`), and an asyncio front end with
admission control (:mod:`~repro.serving.frontend`, exposed as the
``repro shard-serve`` CLI command).  Shards can run process-isolated
(:mod:`~repro.serving.process`, INTERNALS §13) and replicated with
transparent primary→secondary failover (:mod:`~repro.serving.replica`).
"""

from repro.serving.breaker import CircuitBreaker, RetryPolicy
from repro.serving.coordinator import (
    ShardCoordinator,
    ShardReport,
    ShardUnavailable,
)
from repro.serving.endpoint import EndpointDown, EngineEndpoint, InProcessEndpoint
from repro.serving.frontend import ShardFrontend
from repro.serving.process import (
    ProcessEndpoint,
    ShardConnectionReset,
    ShardProcessDied,
)
from repro.serving.replica import ReplicaSet
from repro.serving.sharding import ShardedRingIndex, partition_graph, shard_of
from repro.serving.supervisor import ShardSupervisor

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "ShardCoordinator",
    "ShardReport",
    "ShardUnavailable",
    "EngineEndpoint",
    "EndpointDown",
    "InProcessEndpoint",
    "ProcessEndpoint",
    "ReplicaSet",
    "ShardConnectionReset",
    "ShardProcessDied",
    "ShardFrontend",
    "ShardedRingIndex",
    "ShardSupervisor",
    "partition_graph",
    "shard_of",
]
