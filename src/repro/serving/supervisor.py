"""Shard supervision: health checks and automatic restart.

A :class:`ShardSupervisor` is a daemon thread that periodically probes
every endpoint of a :class:`~repro.serving.sharding.ShardedRingIndex`
(``alive`` + ``health_check``) and restarts any shard found dead.  For
durable shards a restart goes through the factory's
``DurableDynamicRing.recover`` path, so the shard comes back with every
acknowledged write and a bumped ``incarnation`` — the coordinator's
half-open breaker probes then find a healthy engine and re-close the
circuit, and the cache layer's shard-generation vector changes so no
stale entry survives the crash.

The actual restart goes through the module-level :func:`restart_shard`
(fault site ``shard.restart``), so chaos drills can make *recovery
itself* fail and assert the supervisor degrades to counting the failure
rather than dying.

Endpoints exposing ``repair()`` (replica sets) are delegated to instead:
the set restarts its own dead members under per-replica flap caps —
respawning :class:`~repro.serving.process.ProcessEndpoint` members
through WAL recovery with an incarnation bump, reaping the dead process
first — and then catches up any replica that missed writes.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.serving.sharding import ShardedRingIndex

__all__ = ["ShardSupervisor", "restart_shard"]


def restart_shard(endpoint) -> None:
    """Restart one dead endpoint (fault site ``shard.restart``)."""
    endpoint.restart()


class ShardSupervisor:
    """Health-check loop over a sharded index's endpoints.

    Parameters
    ----------
    shards:
        The sharded index to supervise.
    interval:
        Seconds between sweeps.
    max_restarts:
        Per-shard cap on automatic restarts (``None`` = unbounded); a
        shard that keeps dying past the cap is left down — flapping
        engines must not turn the supervisor into a crash loop.
    """

    def __init__(
        self,
        shards: ShardedRingIndex,
        interval: float = 0.05,
        max_restarts: Optional[int] = None,
    ) -> None:
        self.shards = shards
        self.interval = interval
        self.max_restarts = max_restarts
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._checks = 0
        self._restarts = [0] * shards.n_shards
        self._failed_restarts = [0] * shards.n_shards

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="shard-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the sweep -----------------------------------------------------------

    def sweep(self) -> int:
        """One supervision pass; returns how many shards were restarted.

        Public so tests (and synchronous callers) can drive supervision
        deterministically without the background thread.
        """
        restarted = 0
        with self._lock:
            self._checks += 1
        for sid, endpoint in enumerate(self.shards.endpoints):
            repair = getattr(endpoint, "repair", None)
            if repair is not None:
                # Replica sets own their member lifecycle (per-replica
                # flap caps, catch-up); the supervisor just drives the
                # pass and counts outcomes — repair() never raises.
                revived = repair()
                if revived:
                    with self._lock:
                        self._restarts[sid] += revived
                    restarted += revived
                continue
            if endpoint.alive and endpoint.health_check():
                continue
            with self._lock:
                if (
                    self.max_restarts is not None
                    and self._restarts[sid] >= self.max_restarts
                ):
                    continue
            try:
                restart_shard(endpoint)
            except Exception:
                with self._lock:
                    self._failed_restarts[sid] += 1
                continue
            with self._lock:
                self._restarts[sid] += 1
            restarted += 1
        return restarted

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.sweep()
            except Exception:  # pragma: no cover - keep the thread alive
                pass
            self._stop.wait(self.interval)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "running": self._thread is not None,
                "checks": self._checks,
                "restarts": list(self._restarts),
                "failed_restarts": list(self._failed_restarts),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._thread is not None else "stopped"
        return f"ShardSupervisor({state}, restarts={sum(self._restarts)})"
