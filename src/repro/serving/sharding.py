"""Subject-hash sharding of a graph across supervised shard engines.

A :class:`ShardedRingIndex` splits a graph's triples by
``shard_of(subject)`` — a splitmix64 finalizer, so shard assignment is
stable across processes and independent of Python's salted ``hash`` —
and runs each partition behind its own
:class:`~repro.serving.endpoint.InProcessEndpoint` (engine + private
broker).  Because the ring is succinct, N shards cost barely more than
one index over the union; what the split buys is *blast-radius
containment*: a crashed or wedged shard takes out only its partition,
and the coordinator (:mod:`repro.serving.coordinator`) degrades to the
survivors.

Deployment axes, same object afterwards:

- :meth:`ShardedRingIndex.from_graph` — in-memory shards
  (:class:`~repro.core.dynamic.DynamicRingIndex`); a restarted shard
  recovers to its *initial* partition (writes after construction are
  lost — the non-durable trade-off, stated rather than hidden);
- :meth:`ShardedRingIndex.create_durable` / :meth:`recover` — per-shard
  :class:`~repro.reliability.wal.DurableDynamicRing` directories
  (``shard-00/``, ``shard-01/``, …) beside a ``SHARDS.json`` manifest;
  a restarted shard replays its WAL, so every acknowledged write
  survives a kill;
- ``processes=True`` (durable modes) — each store runs in its own OS
  process behind a :class:`~repro.serving.process.ProcessEndpoint`, so
  a crash is genuine process death and recovery a genuine respawn;
- ``replicas=N`` — every partition is held by a
  :class:`~repro.serving.replica.ReplicaSet` of N endpoints (directory
  layout ``shard-SS/replica-R/``), giving transparent read failover.

All ids stay *global* (every shard shares the parent universe sizes),
so per-shard solutions need no translation before merging.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.dynamic import DynamicRingIndex
from repro.graph.dataset import Graph
from repro.serving.endpoint import InProcessEndpoint

__all__ = [
    "shard_of",
    "shard_vector",
    "partition_graph",
    "write_shards_manifest",
    "ShardedRingIndex",
]

MANIFEST_NAME = "SHARDS.json"
_MASK64 = (1 << 64) - 1


def write_shards_manifest(
    directory,
    *,
    n_shards: int,
    n_nodes: int,
    n_predicates: int,
    replicas: int = 1,
    transport: str = "inproc",
) -> dict:
    """Write ``SHARDS.json`` for a durable sharded layout.

    Shared by :meth:`ShardedRingIndex.create_durable` and the bulk
    builder's sharded emit (:func:`repro.graph.bulkload.bulk_build_sharded`),
    so both produce manifests :meth:`ShardedRingIndex.recover` accepts.
    """
    manifest = {
        "version": 2,
        "n_shards": int(n_shards),
        "n_nodes": int(n_nodes),
        "n_predicates": int(n_predicates),
        "replicas": int(replicas),
        "transport": transport,
    }
    (Path(directory) / MANIFEST_NAME).write_text(json.dumps(manifest))
    return manifest


def shard_of(subject: int, n_shards: int) -> int:
    """Stable shard id of a subject (splitmix64 finalizer mod ``n_shards``).

    Deterministic across processes and runs — unlike builtin ``hash``,
    which is salted per interpreter — so a manifest written by one
    process routes identically in every other.
    """
    z = (int(subject) + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z % n_shards


def shard_vector(subjects: np.ndarray, n_shards: int) -> np.ndarray:
    """Vectorized :func:`shard_of` over an array of subject ids."""
    z = subjects.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return (z % np.uint64(n_shards)).astype(np.int64)


def partition_graph(graph: Graph, n_shards: int) -> list[Graph]:
    """Split a graph into ``n_shards`` disjoint subgraphs by subject hash.

    Every partition keeps the parent's universe sizes (and dictionary),
    so ids remain global and per-shard answers merge without remapping.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    arr = graph.triples
    if len(arr):
        owner = shard_vector(arr[:, 0], n_shards)
    else:
        owner = np.empty(0, dtype=np.int64)
    return [
        Graph(
            arr[owner == sid],
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
            dictionary=graph.dictionary,
        )
        for sid in range(n_shards)
    ]


def _memory_factory(initial: Graph, buffer_threshold: int):
    def factory():
        return DynamicRingIndex(
            initial, buffer_threshold=buffer_threshold, auto_compact=False
        )

    return factory


#: ``DurableDynamicRing.recover``-only keywords that ``create`` rejects.
_RECOVER_ONLY_OPTIONS = ("mmap", "verify")


def _create_options(wal_options: dict) -> dict:
    return {
        k: v for k, v in wal_options.items() if k not in _RECOVER_ONLY_OPTIONS
    }


def _durable_factory(shard_dir: Path, initial: Optional[Graph], wal_options: dict):
    """First call creates the store (when ``initial`` is given); every
    later call — i.e. every supervisor restart — recovers via the WAL.
    Recovery honours the full option set (including ``mmap=True`` to
    serve checkpointed rings off their frozen packs); creation drops
    the recover-only keys."""
    from repro.reliability.wal import DurableDynamicRing

    state = {"created": initial is None}

    def factory():
        if not state["created"]:
            state["created"] = True
            return DurableDynamicRing.create(
                shard_dir, initial, **_create_options(wal_options)
            )
        store, _report = DurableDynamicRing.recover(shard_dir, **wal_options)
        return store

    return factory


def _replica_dirs(directory: Path, sid: int, replicas: int) -> list[Path]:
    """On-disk layout: ``shard-SS/`` solo, ``shard-SS/replica-R/`` replicated."""
    shard_dir = directory / f"shard-{sid:02d}"
    if replicas == 1:
        return [shard_dir]
    return [shard_dir / f"replica-{rid}" for rid in range(replicas)]


def _build_durable_shard(
    dirs: list[Path],
    initial: Optional[Graph],
    processes: bool,
    broker_options: Optional[dict],
    wal_options: dict,
    replica_options: Optional[dict],
):
    """One durable shard: an endpoint per replica dir, wrapped when N > 1."""
    endpoints = []
    for d in dirs:
        if processes:
            if initial is not None:
                # The child always opens through ``recover``, so the
                # store must exist before the first spawn.
                from repro.reliability.wal import DurableDynamicRing

                DurableDynamicRing.create(
                    d, initial, **_create_options(wal_options)
                ).close(checkpoint=True)
            from repro.serving.process import ProcessEndpoint

            endpoints.append(
                ProcessEndpoint(
                    d, store_options=wal_options, broker_options=broker_options
                )
            )
        else:
            endpoints.append(
                InProcessEndpoint(_durable_factory(d, initial, wal_options), broker_options)
            )
    if len(endpoints) == 1:
        return endpoints[0]
    from repro.serving.replica import ReplicaSet

    return ReplicaSet(endpoints, **(replica_options or {}))


class ShardedRingIndex:
    """N supervised shard engines addressed by subject hash.

    This class owns shard *placement and lifecycle* only — routing
    writes, killing/restarting shards, aggregating generations and
    stats.  Query evaluation across shards lives in
    :class:`~repro.serving.coordinator.ShardCoordinator`.
    """

    def __init__(
        self,
        endpoints: list,  # EngineEndpoint per shard (endpoint or ReplicaSet)
        universe: Graph,
        directory: Optional[Path] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("need at least one shard")
        self.endpoints = endpoints
        self._universe = universe
        self.directory = directory
        self._write_lock = threading.Lock()

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        n_shards: int,
        buffer_threshold: int = 64,
        broker_options: Optional[dict] = None,
        *,
        replicas: int = 1,
        replica_options: Optional[dict] = None,
    ) -> "ShardedRingIndex":
        """In-memory shards over a hash-partition of ``graph``."""
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        parts = partition_graph(graph, n_shards)
        endpoints = []
        for part in parts:
            members = [
                InProcessEndpoint(
                    _memory_factory(part, buffer_threshold), broker_options
                )
                for _ in range(replicas)
            ]
            if replicas == 1:
                endpoints.append(members[0])
            else:
                from repro.serving.replica import ReplicaSet

                endpoints.append(ReplicaSet(members, **(replica_options or {})))
        return cls(endpoints, _universe_of(graph))

    @classmethod
    def create_durable(
        cls,
        directory,
        graph: Graph,
        n_shards: int,
        broker_options: Optional[dict] = None,
        *,
        replicas: int = 1,
        processes: bool = False,
        replica_options: Optional[dict] = None,
        **wal_options,
    ) -> "ShardedRingIndex":
        """Durable shards under ``directory`` (one WAL'd store each)."""
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        write_shards_manifest(
            directory,
            n_shards=n_shards,
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
            replicas=replicas,
            transport="process" if processes else "inproc",
        )
        parts = partition_graph(graph, n_shards)
        endpoints = [
            _build_durable_shard(
                _replica_dirs(directory, sid, replicas),
                part,
                processes,
                broker_options,
                wal_options,
                replica_options,
            )
            for sid, part in enumerate(parts)
        ]
        return cls(endpoints, _universe_of(graph), directory)

    @classmethod
    def recover(
        cls,
        directory,
        broker_options: Optional[dict] = None,
        *,
        processes: Optional[bool] = None,
        replica_options: Optional[dict] = None,
        **wal_options,
    ) -> "ShardedRingIndex":
        """Reopen a durable sharded index from its manifest + WALs.

        ``processes`` defaults to whatever transport the manifest was
        created with (version-1 manifests mean in-process, one replica).
        """
        directory = Path(directory)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        replicas = int(manifest.get("replicas", 1))
        if processes is None:
            processes = manifest.get("transport") == "process"
        universe = Graph(
            np.empty((0, 3), dtype=np.int64),
            n_nodes=manifest["n_nodes"],
            n_predicates=manifest["n_predicates"],
        )
        endpoints = [
            _build_durable_shard(
                _replica_dirs(directory, sid, replicas),
                None,
                processes,
                broker_options,
                wal_options,
                replica_options,
            )
            for sid in range(manifest["n_shards"])
        ]
        return cls(endpoints, universe, directory)

    # -- addressing ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.endpoints)

    def shard_for(self, subject: int) -> int:
        return shard_of(subject, self.n_shards)

    @property
    def graph(self) -> Graph:
        """The shared universe (sizes + dictionary; no triples).

        Enough for :meth:`Graph.encode_bgp` / ``decode_solution`` at the
        coordinator — the actual triples live in the shards.
        """
        return self._universe

    @property
    def n_triples(self) -> int:
        """Total across *alive* shards (a down shard contributes 0)."""
        total = 0
        for ep in self.endpoints:
            try:
                total += int(getattr(ep, "n_triples", 0) or 0)
            except Exception:
                pass  # a shard dying mid-probe counts 0, like down
        return total

    # -- writes --------------------------------------------------------------

    def insert(self, s: int, p: int, o: int) -> bool:
        return self.endpoints[self.shard_for(s)].insert(s, p, o)

    def delete(self, s: int, p: int, o: int) -> bool:
        return self.endpoints[self.shard_for(s)].delete(s, p, o)

    # -- lifecycle -----------------------------------------------------------

    def kill_shard(self, sid: int) -> None:
        """Crash one shard (chaos hook; no checkpoint, WAL left as-is)."""
        self.endpoints[sid].kill()

    def restart_shard(self, sid: int) -> None:
        self.endpoints[sid].restart()

    def shutdown(self, checkpoint: bool = True) -> None:
        for ep in self.endpoints:
            ep.shutdown(checkpoint=checkpoint)

    def __enter__(self) -> "ShardedRingIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- cache integration ---------------------------------------------------

    def cache_generation(self) -> tuple:
        """Shard-generation vector: ``(incarnation, engine_generation)``
        per shard, with a ``"down"`` marker while a shard is dead.

        Any write bumps its shard's engine generation; any crash or
        restart changes the incarnation or the marker — either way the
        vector differs and every cached result keyed on it is stale.
        """
        vector = []
        for ep in self.endpoints:
            if not ep.alive:
                vector.append(("down", ep.incarnation))
            else:
                vector.append((ep.incarnation, ep.cache_generation()))
        return tuple(vector)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate readiness/liveness plus per-shard endpoint stats."""
        shards = [ep.stats() for ep in self.endpoints]
        live = [ep.alive for ep in self.endpoints]
        ready = [a and ep.health_check() for a, ep in zip(live, self.endpoints)]
        return {
            "n_shards": self.n_shards,
            "live": sum(live),
            "ready": all(ready),
            "n_triples": self.n_triples,
            "shards": shards,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedRingIndex(n_shards={self.n_shards}, live={sum(ep.alive for ep in self.endpoints)})"


def _universe_of(graph: Graph) -> Graph:
    return Graph(
        np.empty((0, 3), dtype=np.int64),
        n_nodes=graph.n_nodes,
        n_predicates=graph.n_predicates,
        dictionary=graph.dictionary,
    )
