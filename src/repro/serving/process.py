"""Process-isolated shard endpoints: one OS process per shard replica.

:class:`ProcessEndpoint` is the remote transport the
:class:`~repro.serving.endpoint.EngineEndpoint` protocol was designed
for: the shard's :class:`~repro.reliability.wal.DurableDynamicRing` and
its private :class:`~repro.reliability.broker.QueryBroker` live in a
*child OS process*, and the parent talks to them over a
``multiprocessing.Pipe`` duplex connection (length-prefixed pickle
framing, provided by :class:`multiprocessing.connection.Connection`).
A crashed shard is now genuine process death — ``kill -9`` — not a
simulated ``kill()`` inside one interpreter, and recovery is a real
respawn through WAL replay.

Wire protocol (all messages are small picklable tuples):

- parent → child: ``(kind, req_id, payload)`` where ``kind`` is one of
  ``evaluate`` / ``insert`` / ``delete`` / ``health`` / ``stats`` /
  ``generation`` / ``ntriples`` / ``dump`` / ``shutdown``;
- child → parent: ``(req_id, "ok" | "err", payload_or_exception)``.
  Responses may arrive out of order (the child answers queries from
  broker worker callbacks), so the parent keeps a pending-future table
  keyed by ``req_id`` and a single reader thread resolves them.

**Failure classification** — the coordinator's breaker must open on the
right signal, so the parent distinguishes three terminal conditions:

- *timeout*: the child is alive but the sub-deadline fired; surfaces as
  a typed :class:`~repro.core.interface.QueryTimeout` (either the
  child's own, shipped back over the pipe, or the parent-side RPC wait
  expiring).  Counted, retryable, shard still up.
- *dead process*: the pipe broke and ``Process.exitcode`` shows an
  abnormal exit (signal or nonzero) — :class:`ShardProcessDied`.
- *connection reset*: the pipe broke while the process is still running
  or exited cleanly (orderly drain) — :class:`ShardConnectionReset`.

Both death classes subtype :class:`~repro.serving.endpoint.EndpointDown`
(itself a ``QueryRejected``), so the coordinator's retry/breaker path
treats them as transient shard failures exactly like the in-process
transport — every pending future is failed with the classified error,
never left hanging.

**Graceful SIGTERM drain** — the child installs a SIGTERM handler that
merely sets a flag; the serve loop (a ``poll``/``recv`` loop, so the
flag is observed within one poll interval) then stops admitting new
requests, lets the broker finish every in-flight query (their responses
still go out), writes a final checkpoint, and exits 0.  ``kill -9``
skips all of that, which is exactly what the WAL recovery path is for.

The module-level :func:`spawn_process` and :func:`heartbeat` seams are
fault sites (``proc.spawn`` / ``proc.heartbeat``) so chaos drills can
fail respawns and health probes without touching a real process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from concurrent.futures import Future
from typing import Optional

from repro.core.interface import QueryTimeout
from repro.core.system import QueryResult
from repro.reliability.broker import QueryRejected
from repro.serving.endpoint import EndpointDown

__all__ = [
    "ProcessEndpoint",
    "ShardProcessDied",
    "ShardConnectionReset",
    "spawn_process",
    "heartbeat",
]

#: Override the multiprocessing start method (mirrors parallel.pool).
START_METHOD_ENV = "REPRO_PROC_START_METHOD"


class ShardProcessDied(EndpointDown):
    """The shard process exited abnormally (killed or crashed)."""


class ShardConnectionReset(EndpointDown):
    """The pipe to the shard broke while its process looked healthy."""


# -- fault sites -------------------------------------------------------------


def spawn_process(ctx, target, args) -> mp.process.BaseProcess:
    """Start one shard server process (fault site ``proc.spawn``)."""
    proc = ctx.Process(target=target, args=args, daemon=True, name="repro-shard")
    proc.start()
    return proc


def heartbeat(endpoint: "ProcessEndpoint", timeout: float) -> bool:
    """One health probe RPC to a shard process (fault site ``proc.heartbeat``)."""
    return bool(endpoint._rpc("health", None, timeout=timeout))


# -- child side --------------------------------------------------------------


def _result_payload(result) -> dict:
    """Flatten a QueryResult into a plain picklable dict."""
    budget = getattr(result, "budget", None)
    return {
        "rows": list(result),
        "truncated": bool(getattr(result, "truncated", False)),
        "interrupted_by": getattr(result, "interrupted_by", None),
        "ops": int(getattr(budget, "ops", 0)) if budget is not None else 0,
    }


def _revive_result(payload: dict) -> QueryResult:
    from repro.reliability.budget import ResourceBudget

    out = QueryResult(payload["rows"])
    out.truncated = payload["truncated"]
    out.interrupted_by = payload["interrupted_by"]
    budget = ResourceBudget()
    budget.ops = payload["ops"]
    out.budget = budget
    return out


def _shard_server_main(parent_end, conn, directory, store_options, broker_options):
    """Entry point of one shard process: recover, serve, drain, exit 0."""
    # Close the parent's pipe end *in this process* — without this the
    # child holds both ends and the parent would never see EOF on death.
    if parent_end is not None:
        try:
            parent_end.close()
        except OSError:  # pragma: no cover - defensive
            pass

    draining = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: draining.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from repro.reliability.broker import QueryBroker
    from repro.reliability.wal import DurableDynamicRing

    send_lock = threading.Lock()

    def send(msg) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                pass  # parent gone; nothing left to tell it

    def send_error(req_id, exc) -> None:
        try:
            send((req_id, "err", exc))
        except Exception:
            # Unpicklable exception: degrade to its repr, keep the type
            # family recognisable as a server-side failure.
            send((req_id, "err", RuntimeError(f"{type(exc).__name__}: {exc}")))

    try:
        store, _report = DurableDynamicRing.recover(directory, **dict(store_options))
    except Exception as exc:  # recovery failure must reach the parent typed
        send((None, "err", RuntimeError(f"shard recovery failed: {exc}")))
        return
    broker = QueryBroker(store, **dict(broker_options or {})).start()
    send((None, "ready", {"pid": os.getpid(), "n_triples": int(store.n_triples)}))

    def answer(req_id, future) -> None:
        try:
            result = future.result()
        except BaseException as exc:
            send_error(req_id, exc)
        else:
            send((req_id, "ok", _result_payload(result)))

    checkpoint_on_exit = True
    try:
        while not draining.is_set():
            if not conn.poll(0.1):
                continue
            try:
                kind, req_id, payload = conn.recv()
            except (EOFError, OSError):
                break  # parent died: drain and exit cleanly anyway
            try:
                if kind == "evaluate":
                    future = broker.submit(
                        payload["query"],
                        timeout=payload["timeout"],
                        max_ops=payload["max_ops"],
                        **payload["options"],
                    )
                    future.add_done_callback(
                        lambda f, rid=req_id: answer(rid, f)
                    )
                elif kind == "insert":
                    send((req_id, "ok", bool(store.insert(*payload))))
                elif kind == "delete":
                    send((req_id, "ok", bool(store.delete(*payload))))
                elif kind == "health":
                    send((req_id, "ok", int(store.n_triples) >= 0))
                elif kind == "stats":
                    send(
                        (
                            req_id,
                            "ok",
                            {
                                "n_triples": int(store.n_triples),
                                "broker": broker.stats(),
                            },
                        )
                    )
                elif kind == "generation":
                    send((req_id, "ok", store.cache_generation()))
                elif kind == "ntriples":
                    send((req_id, "ok", int(store.n_triples)))
                elif kind == "dump":
                    send(
                        (
                            req_id,
                            "ok",
                            [tuple(map(int, t)) for t in store.to_graph().triples],
                        )
                    )
                elif kind == "shutdown":
                    checkpoint_on_exit = bool(payload.get("checkpoint", True))
                    send((req_id, "ok", True))
                    break
                else:
                    send_error(req_id, ValueError(f"unknown request {kind!r}"))
            except Exception as exc:
                send_error(req_id, exc)
    finally:
        # Orderly drain: stop admitting (loop exited), finish in-flight
        # (broker.stop joins workers, completing their futures — the
        # answer callbacks above still ship responses), checkpoint, bye.
        try:
            broker.stop()
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            store.close(checkpoint=checkpoint_on_exit)
        except Exception:  # pragma: no cover - crashing store on exit
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


# -- parent side -------------------------------------------------------------


class ProcessEndpoint:
    """A shard served by its own OS process (EngineEndpoint transport).

    Parameters
    ----------
    directory:
        The shard's :class:`DurableDynamicRing` directory.  Must already
        be initialised (``DurableDynamicRing.create``); the child always
        opens it through ``recover``, so a respawn after ``kill -9``
        replays the WAL exactly like a real crash restart.
    store_options:
        Keyword arguments for the child-side ``recover`` call
        (buffer_threshold, policy, fsync, ...).
    broker_options:
        Keyword arguments for the child's private :class:`QueryBroker`.
    spawn_timeout:
        Seconds to wait for the child's ready handshake (covers WAL
        recovery time).
    rpc_timeout:
        Default parent-side wait for synchronous RPCs (writes, stats).
    heartbeat_timeout:
        Wait for one health probe; a probe slower than this counts as a
        failed heartbeat, not a hang.
    """

    def __init__(
        self,
        directory,
        *,
        store_options: Optional[dict] = None,
        broker_options: Optional[dict] = None,
        start_method: Optional[str] = None,
        spawn_timeout: float = 30.0,
        rpc_timeout: float = 30.0,
        heartbeat_timeout: float = 2.0,
    ) -> None:
        self.directory = str(directory)
        self._store_options = dict(store_options or {})
        self._broker_options = dict(broker_options or {})
        self._start_method = start_method
        self.spawn_timeout = spawn_timeout
        self.rpc_timeout = rpc_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self._lock = threading.RLock()
        self._send_lock = threading.Lock()
        self._conn = None
        self._proc: Optional[mp.process.BaseProcess] = None
        self._pending: dict[int, tuple[Future, Optional[callable]]] = {}
        self._next_id = 0
        self._alive = False
        self._incarnation = 0
        self._restarts = 0
        self._last_exitcode: Optional[int] = None
        self._counters = {
            "deaths": 0,
            "resets": 0,
            "timeouts": 0,
            "spawn_failures": 0,
            "heartbeat_failures": 0,
        }
        self._start()

    # -- lifecycle -----------------------------------------------------------

    def _start(self) -> None:
        method = self._start_method or os.environ.get(START_METHOD_ENV, "fork")
        ctx = mp.get_context(method)
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        ready: Future = Future()
        try:
            proc = spawn_process(
                ctx,
                _shard_server_main,
                (
                    parent_conn,
                    child_conn,
                    self.directory,
                    self._store_options,
                    self._broker_options,
                ),
            )
        except Exception as exc:
            self._counters["spawn_failures"] += 1
            parent_conn.close()
            child_conn.close()
            raise ShardProcessDied(f"could not spawn shard process: {exc}") from exc
        child_conn.close()
        with self._lock:
            self._conn = parent_conn
            self._proc = proc
            self._pending = {}
            self._ready = ready
            self._alive = True
            self._last_exitcode = None
        reader = threading.Thread(
            target=self._reader,
            args=(parent_conn, proc, ready),
            name="shard-endpoint-reader",
            daemon=True,
        )
        reader.start()
        try:
            ready.result(timeout=self.spawn_timeout)
        except Exception as exc:
            self._counters["spawn_failures"] += 1
            self.kill()
            raise ShardProcessDied(
                f"shard process failed to become ready: {exc}"
            ) from exc

    def _reader(self, conn, proc, ready: Future) -> None:
        """Single reader: resolves pending futures, classifies EOF."""
        try:
            while True:
                req_id, status, payload = conn.recv()
                if req_id is None:  # ready handshake (or recovery failure)
                    if status == "ready":
                        if not ready.done():
                            ready.set_result(payload)
                    elif not ready.done():
                        ready.set_exception(payload)
                    continue
                with self._lock:
                    entry = self._pending.pop(req_id, None)
                if entry is None:
                    continue  # request already timed out parent-side
                future, transform = entry
                if status == "ok":
                    try:
                        future.set_result(
                            transform(payload) if transform else payload
                        )
                    except Exception as exc:  # transform bug, still resolve
                        future.set_exception(exc)
                else:
                    future.set_exception(payload)
        except (EOFError, OSError, ValueError):
            pass
        self._on_connection_lost(conn, proc, ready)

    def _on_connection_lost(self, conn, proc, ready: Future) -> None:
        with self._lock:
            if self._conn is not conn:
                return  # a restart already replaced this connection
            self._alive = False
            pending = list(self._pending.values())
            self._pending.clear()
        if proc is not None:
            proc.join(timeout=5.0)  # reap the zombie
        error = self._classify_death(proc)
        if not ready.done():
            ready.set_exception(error)
        for future, _transform in pending:
            if not future.done():
                future.set_exception(error)
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def _classify_death(self, proc) -> EndpointDown:
        exitcode = proc.exitcode if proc is not None else None
        with self._lock:
            self._last_exitcode = exitcode
        if exitcode is None or exitcode == 0:
            self._counters["resets"] += 1
            detail = (
                "process still running" if exitcode is None else "clean exit"
            )
            return ShardConnectionReset(f"shard connection reset ({detail})")
        self._counters["deaths"] += 1
        if exitcode < 0:
            detail = f"killed by signal {-exitcode}"
        else:
            detail = f"exit code {exitcode}"
        return ShardProcessDied(f"shard process died ({detail})")

    def kill(self) -> None:
        """``kill -9`` the shard process (chaos lever; WAL left as-is)."""
        with self._lock:
            proc = self._proc
            self._alive = False
        if proc is not None and proc.pid is not None and proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # pragma: no cover
                pass
            proc.join(timeout=5.0)
        # The reader thread observes EOF and fails every pending future.

    def terminate(self, wait: float = 10.0) -> Optional[int]:
        """SIGTERM the shard: drain in-flight, checkpoint, exit 0.

        Returns the child's exit code (``0`` on a clean drain).
        """
        with self._lock:
            proc = self._proc
        if proc is None or proc.pid is None or not proc.is_alive():
            return self._last_exitcode
        try:
            os.kill(proc.pid, signal.SIGTERM)
        except (OSError, ProcessLookupError):  # pragma: no cover
            pass
        proc.join(timeout=wait)
        if proc.is_alive():  # drain wedged: escalate
            self.kill()
        return proc.exitcode

    def restart(self) -> None:
        """Respawn the process through WAL recovery; bumps incarnation."""
        with self._lock:
            if self._alive and self._proc is not None and self._proc.is_alive():
                return  # already running
            proc = self._proc
        if proc is not None:
            proc.join(timeout=5.0)  # reap before respawning
        self._start()
        with self._lock:
            self._incarnation += 1
            self._restarts += 1

    def shutdown(self, checkpoint: bool = True) -> None:
        """Orderly stop: graceful RPC, then SIGTERM, then SIGKILL."""
        with self._lock:
            proc = self._proc
            running = self._alive and proc is not None and proc.is_alive()
        if running:
            try:
                self._rpc(
                    "shutdown", {"checkpoint": checkpoint}, timeout=self.rpc_timeout
                )
            except Exception:
                pass
            proc.join(timeout=10.0)
            if proc.is_alive():
                self.terminate()

    # -- RPC plumbing ---------------------------------------------------------

    def _request(self, kind, payload, transform=None) -> Future:
        with self._lock:
            if not self._alive or self._conn is None:
                raise EndpointDown("shard process is down")
            conn = self._conn
            req_id = self._next_id
            self._next_id += 1
            future: Future = Future()
            self._pending[req_id] = (future, transform)
        try:
            with self._send_lock:
                conn.send((kind, req_id, payload))
        except (OSError, ValueError, BrokenPipeError) as exc:
            with self._lock:
                self._pending.pop(req_id, None)
            raise ShardConnectionReset(f"shard pipe write failed: {exc}") from exc
        return future

    def _rpc(self, kind, payload, *, timeout: float):
        future = self._request(kind, payload)
        try:
            return future.result(timeout=timeout)
        except TimeoutError:
            with self._lock:
                self._pending = {
                    rid: entry
                    for rid, entry in self._pending.items()
                    if entry[0] is not future
                }
            self._counters["timeouts"] += 1
            raise QueryTimeout(f"shard rpc {kind!r} timed out after {timeout}s")

    # -- the EngineEndpoint surface ------------------------------------------

    def submit(
        self,
        query,
        *,
        timeout: Optional[float] = None,
        max_ops: Optional[int] = None,
        **options,
    ) -> Future:
        return self._request(
            "evaluate",
            {
                "query": query,
                "timeout": timeout,
                "max_ops": max_ops,
                "options": options,
            },
            transform=_revive_result,
        )

    def evaluate(self, query, **kwargs):
        return self.submit(query, **kwargs).result()

    def health_check(self) -> bool:
        if not self.alive:
            return False
        try:
            return heartbeat(self, self.heartbeat_timeout)
        except Exception:
            self._counters["heartbeat_failures"] += 1
            return False

    @property
    def alive(self) -> bool:
        with self._lock:
            return (
                self._alive and self._proc is not None and self._proc.is_alive()
            )

    @property
    def incarnation(self) -> int:
        with self._lock:
            return self._incarnation

    @property
    def pid(self) -> Optional[int]:
        with self._lock:
            return self._proc.pid if self._proc is not None else None

    @property
    def exitcode(self) -> Optional[int]:
        with self._lock:
            if self._proc is not None and self._proc.exitcode is not None:
                return self._proc.exitcode
            return self._last_exitcode

    @property
    def engine(self):
        """No in-process engine: the store lives in the child."""
        return None

    @property
    def n_triples(self) -> int:
        try:
            return int(self._rpc("ntriples", None, timeout=self.rpc_timeout))
        except Exception:
            return 0

    # -- writes ---------------------------------------------------------------

    def insert(self, s: int, p: int, o: int) -> bool:
        return bool(self._rpc("insert", (s, p, o), timeout=self.rpc_timeout))

    def delete(self, s: int, p: int, o: int) -> bool:
        return bool(self._rpc("delete", (s, p, o), timeout=self.rpc_timeout))

    def dump(self) -> list[tuple[int, int, int]]:
        """Every triple of the shard (replica catch-up, tests)."""
        return self._rpc("dump", None, timeout=max(self.rpc_timeout, 60.0))

    # -- introspection --------------------------------------------------------

    def cache_generation(self):
        try:
            return self._rpc("generation", None, timeout=self.rpc_timeout)
        except Exception:
            return None

    def stats(self) -> dict:
        with self._lock:
            out = {
                "alive": self._alive,
                "incarnation": self._incarnation,
                "restarts": self._restarts,
                "pid": self._proc.pid if self._proc is not None else None,
                "exitcode": self._last_exitcode,
                "transport": dict(self._counters),
            }
        if self.alive:
            try:
                out.update(self._rpc("stats", None, timeout=self.rpc_timeout))
            except Exception:
                pass
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "down"
        return (
            f"ProcessEndpoint({state}, pid={self.pid}, "
            f"incarnation={self.incarnation})"
        )
