"""Asyncio front end for the sharded serving tier (``repro shard-serve``).

Speaks the same line protocol as ``repro serve`` (INSERT / DELETE /
QUERY / STATS / QUIT) plus the shard-specific verbs KILL and RESTART
(chaos levers for drills and demos), over either stdin or a TCP socket.

Robustness posture:

- **admission control** — at most ``max_in_flight`` queries evaluate
  concurrently; excess load is shed *immediately* with a typed
  ``error: rejected`` line (the
  :class:`~repro.reliability.broker.QueryRejected` discipline), never
  queued unboundedly.  One stdin client can hardly trip it; concurrent
  socket connections can;
- **degraded answers are labelled** — queries run with ``partial=True``
  through the coordinator, and every response's trailer names the
  shards that answered, so a client can always tell a complete answer
  from a partial one;
- **blocking evaluation off the event loop** — the coordinator call
  runs in a worker thread (``run_in_executor``), keeping the loop free
  to accept, shed, and answer STATS while queries are in flight.
"""

from __future__ import annotations

import asyncio
import sys
import threading
from typing import Optional

from repro.core.interface import QueryError, QueryTimeout
from repro.reliability.broker import QueryRejected
from repro.serving.coordinator import ShardCoordinator
from repro.serving.supervisor import ShardSupervisor

__all__ = ["ShardFrontend"]


class ShardFrontend:
    """Line-protocol server over a :class:`ShardCoordinator`.

    Parameters
    ----------
    coordinator:
        The scatter-gather evaluator (its ``shards`` is also the write
        router).
    supervisor:
        Optional :class:`ShardSupervisor` whose counters show up in
        STATS.
    max_in_flight:
        Concurrent query cap; further QUERYs are shed with
        ``error: rejected``.
    default_timeout:
        Deadline applied to every query (seconds; ``None`` = none).
    decode:
        Decode solutions through the dictionary when the universe has
        one.
    """

    def __init__(
        self,
        coordinator: ShardCoordinator,
        supervisor: Optional[ShardSupervisor] = None,
        max_in_flight: int = 8,
        default_timeout: Optional[float] = None,
        decode: bool = False,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.coordinator = coordinator
        self.supervisor = supervisor
        self.max_in_flight = max_in_flight
        self.default_timeout = default_timeout
        self.decode = decode
        self._in_flight = 0
        self._gate = threading.Lock()
        self._shed = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_requested = threading.Event()
        self._drain_waiter: Optional[asyncio.Event] = None

    # -- graceful drain --------------------------------------------------------

    def request_drain(self) -> None:
        """Begin a graceful shutdown (signal-handler safe).

        The serve loop stops admitting new requests, waits for every
        in-flight query to finish, and returns — the CLI then writes the
        final checkpoint.  Callable from any thread; idempotent.
        """
        self._drain_requested.set()
        loop, waiter = self._loop, self._drain_waiter
        if loop is not None and waiter is not None:
            loop.call_soon_threadsafe(waiter.set)

    async def _await_drained(self, poll: float = 0.02, timeout: float = 30.0) -> None:
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            with self._gate:
                if self._in_flight == 0:
                    return
            await asyncio.sleep(poll)

    # -- one protocol line ----------------------------------------------------

    async def handle_line(self, line: str) -> tuple[bool, list[str]]:
        """Process one request; returns ``(keep_going, response_lines)``."""
        line = line.strip()
        if not line or line.startswith("#"):
            return True, []
        tokens = line.split(None, 1)
        verb = tokens[0].upper()
        rest = tokens[1] if len(tokens) > 1 else ""
        try:
            if verb == "QUIT":
                return False, []
            if verb == "QUERY":
                return True, await self._query(rest)
            if verb in ("INSERT", "DELETE"):
                return True, self._write(verb, rest)
            if verb == "STATS":
                return True, self._stats_lines()
            if verb in ("KILL", "RESTART"):
                sid = int(rest)
                if not 0 <= sid < self.coordinator.shards.n_shards:
                    return True, [f"error: no shard {sid}"]
                if verb == "KILL":
                    self.coordinator.shards.kill_shard(sid)
                    return True, [f"ok killed shard {sid}"]
                self.coordinator.shards.restart_shard(sid)
                return True, [f"ok restarted shard {sid}"]
            return True, [
                f"error: unknown command {verb!r} "
                f"(INSERT/DELETE/QUERY/STATS/KILL/RESTART/QUIT)"
            ]
        except QueryRejected as exc:
            return True, [f"error: rejected: {exc}"]
        except QueryTimeout:
            return True, ["error: timeout"]
        except (QueryError, ValueError, KeyError) as exc:
            return True, [f"error: {str(exc) or type(exc).__name__}"]

    async def _query(self, text: str) -> list[str]:
        from repro.__main__ import _coerce_query

        bgp = _coerce_query(text, self.coordinator.graph)
        with self._gate:
            if self._in_flight >= self.max_in_flight:
                self._shed += 1
                raise QueryRejected(
                    f"{self._in_flight} queries in flight "
                    f"(max {self.max_in_flight}); try later"
                )
            self._in_flight += 1
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                None,
                lambda: self.coordinator.evaluate(
                    bgp,
                    timeout=self.default_timeout,
                    decode=self.decode,
                    partial=True,
                ),
            )
        finally:
            with self._gate:
                self._in_flight -= 1
        out = []
        for mu in result:
            items = sorted(mu.items(), key=lambda kv: str(kv[0]))
            out.append("  ".join(f"{k}={v}" for k, v in items))
        report = getattr(result, "shards", None)
        # A result without a shard report came from the cache layer
        # (hits replay stored complete answers; partials are never
        # stored, so "complete" is accurate).
        tag = (
            f"shards {','.join(map(str, report.answered))}"
            if report is not None
            else "cached"
        )
        state = "complete" if (report is None or report.complete) else "partial"
        out.append(f"-- {len(result)} solution(s) [{state}; {tag}]")
        return out

    def _write(self, verb: str, rest: str) -> list[str]:
        parts = rest.split()
        if len(parts) != 3:
            raise ValueError(f"{verb} needs exactly 3 terms")
        shards = self.coordinator.shards
        graph = self.coordinator.graph
        if graph.dictionary is not None and not all(
            t.lstrip("-").isdigit() for t in parts
        ):
            raise ValueError(
                "labelled writes are not supported by shard-serve; use ids"
            )
        method = shards.insert if verb == "INSERT" else shards.delete
        changed = method(*(int(t) for t in parts))
        if verb == "INSERT":
            return ["ok inserted" if changed else "ok duplicate"]
        return ["ok deleted" if changed else "ok absent"]

    def _stats_lines(self) -> list[str]:
        stats = self.coordinator.stats()
        shard_stats = stats.pop("shards")
        breakers = stats.pop("breakers")
        lines = []
        for key in sorted(stats):
            lines.append(f"{key:<18}: {stats[key]}")
        lines.append(f"{'shed':<18}: {self._shed}")
        lines.append(
            f"{'shards':<18}: {shard_stats['live']}/{shard_stats['n_shards']} "
            f"live, ready={shard_stats['ready']}, "
            f"triples={shard_stats['n_triples']}"
        )
        lines.append(
            f"{'breakers':<18}: "
            + " ".join(b["state"] for b in breakers)
        )
        if self.supervisor is not None:
            sup = self.supervisor.stats()
            lines.append(
                f"{'supervisor':<18}: checks={sup['checks']} "
                f"restarts={sup['restarts']} failed={sup['failed_restarts']}"
            )
        return lines

    # -- transports -----------------------------------------------------------

    async def serve_stdin(self, stdin=None, stdout=None) -> None:
        """Serve newline-delimited requests from a file-like ``stdin``.

        The reader runs on a thread (plain blocking iteration), so a
        monkeypatched ``io.StringIO`` stdin works in tests and a real
        tty works in production — no loop-specific pipe wiring.
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def _reader() -> None:
            for raw in stdin:
                loop.call_soon_threadsafe(queue.put_nowait, raw)
            loop.call_soon_threadsafe(queue.put_nowait, None)

        threading.Thread(target=_reader, name="shard-stdin", daemon=True).start()
        self._loop = loop
        self._drain_waiter = asyncio.Event()
        if self._drain_requested.is_set():  # signal raced the startup
            self._drain_waiter.set()
        print("ready", file=stdout, flush=True)
        while not self._drain_requested.is_set():
            get_task = asyncio.ensure_future(queue.get())
            drain_task = asyncio.ensure_future(self._drain_waiter.wait())
            done, _pending = await asyncio.wait(
                {get_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
            )
            drain_task.cancel()
            if get_task not in done:
                get_task.cancel()
                break  # drain requested: stop admitting
            raw = get_task.result()
            if raw is None:
                break
            keep_going, lines = await self.handle_line(raw)
            for out_line in lines:
                print(out_line, file=stdout)
            stdout.flush()
            if not keep_going:
                break
        if self._drain_requested.is_set():
            with self._gate:
                pending = self._in_flight
            if pending:
                print(f"draining: {pending} in flight", file=stdout, flush=True)
            await self._await_drained()
        print("bye", file=stdout, flush=True)

    async def serve_socket(self, host: str = "127.0.0.1", port: int = 0):
        """TCP transport: one protocol session per connection.

        Returns the started :class:`asyncio.Server` (caller owns its
        lifetime; ``server.sockets[0].getsockname()`` gives the bound
        port when ``port=0``).
        """

        async def _session(reader, writer):
            writer.write(b"ready\n")
            await writer.drain()
            try:
                while True:
                    raw = await reader.readline()
                    if not raw:
                        break
                    keep_going, lines = await self.handle_line(
                        raw.decode("utf-8", "replace")
                    )
                    for out_line in lines:
                        writer.write((out_line + "\n").encode())
                    await writer.drain()
                    if not keep_going:
                        break
                writer.write(b"bye\n")
                await writer.drain()
            finally:
                writer.close()

        return await asyncio.start_server(_session, host, port)
