"""Primary/secondary replication of one shard partition.

A :class:`ReplicaSet` wraps N :class:`~repro.serving.endpoint.EngineEndpoint`
instances holding *the same partition* and presents the single-endpoint
surface to the coordinator — replication is invisible above this layer
except for the ``failovers`` counter the
:class:`~repro.serving.coordinator.ShardReport` samples.

**Reads** go to the primary; when the primary dies mid-call (an
:class:`~repro.serving.endpoint.EndpointDown` — process death, pipe
reset, engine gone) the set *fails over*: it promotes the next clean
live replica (module-level :func:`promote_replica`, fault site
``replica.failover``) and transparently resubmits, resolving the same
outer future.  Because every replica holds the identical partition and
the coordinator canonically sorts rows, a failed-over answer is
byte-identical to the one the dead primary would have produced —
complete, cacheable, no ``truncated`` flag.  Typed query errors
(timeout, rejection, bad query) are *not* failed over: they mean the
replica is up and the query itself is the problem, so they propagate
for the coordinator's retry/breaker machinery to handle.

**Writes** fan out to every replica under a write lock; a replica that
misses a write (dead, or the write errored) is marked *dirty* and
excluded from reads until :meth:`catch_up` reconciles it from a clean
peer by triple-set diff (the durable transports recover their own
acknowledged prefix from the WAL, so the diff only covers the missed
tail — cheap WAL-shipping by state rather than by log).

**Repair** (called by the :class:`~repro.serving.supervisor.ShardSupervisor`)
restarts dead replicas under a per-replica flap cap and then catches up
every dirty one.  A replica set with no clean live member reports
``alive == False`` and the coordinator degrades to the PR 6
flagged-partial contract — replication narrows the failure window, it
never fabricates data.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Optional, Sequence

from repro.serving.endpoint import EndpointDown

__all__ = ["ReplicaSet", "promote_replica"]


def promote_replica(replica_set: "ReplicaSet", rid: int) -> None:
    """Make replica ``rid`` the primary (fault site ``replica.failover``)."""
    replica_set._set_primary(rid)


def _is_replica_death(exc: BaseException) -> bool:
    """Failures that mean *this replica* is gone (failover is sound),
    as opposed to typed query failures the replica answered with."""
    return isinstance(
        exc, (EndpointDown, EOFError, BrokenPipeError, ConnectionError)
    )


class ReplicaSet:
    """N same-partition endpoints behind one endpoint surface.

    Parameters
    ----------
    replicas:
        The member endpoints (any :class:`EngineEndpoint` transport;
        index 0 starts as primary).
    max_restarts:
        Per-replica flap cap for :meth:`repair` (``None`` = unbounded).
    """

    def __init__(
        self,
        replicas: Sequence,
        *,
        max_restarts: Optional[int] = None,
    ) -> None:
        self.replicas = list(replicas)
        if not self.replicas:
            raise ValueError("need at least one replica")
        self.max_restarts = max_restarts
        self._lock = threading.RLock()
        self._write_lock = threading.Lock()
        self._primary = 0
        self._dirty = [False] * len(self.replicas)
        self._restarts = [0] * len(self.replicas)
        self._failed_restarts = [0] * len(self.replicas)
        self._counters = {
            "failovers": 0,
            "failover_errors": 0,
            "catch_ups": 0,
            "catch_up_failures": 0,
            "write_misses": 0,
        }

    # -- routing --------------------------------------------------------------

    @property
    def primary(self) -> int:
        with self._lock:
            return self._primary

    def _set_primary(self, rid: int) -> None:
        with self._lock:
            self._primary = rid

    def _eligible(self, exclude=()) -> list[int]:
        """Clean live replica ids, primary first."""
        with self._lock:
            primary = self._primary
            dirty = list(self._dirty)
        order = [primary] + [
            rid for rid in range(len(self.replicas)) if rid != primary
        ]
        return [
            rid
            for rid in order
            if rid not in exclude
            and not dirty[rid]
            and self.replicas[rid].alive
        ]

    # -- reads (submit + transparent failover) --------------------------------

    def submit(self, query, **kwargs) -> Future:
        outer: Future = Future()
        self._attempt(outer, query, kwargs, tried=set())
        return outer

    def _attempt(self, outer: Future, query, kwargs, tried: set) -> None:
        candidates = self._eligible(exclude=tried)
        if not candidates:
            outer.set_exception(
                EndpointDown("no live replica holds this partition")
            )
            return
        rid = candidates[0]
        with self._lock:
            primary = self._primary
        if rid != primary and primary not in candidates and primary not in tried:
            # The primary is ineligible (dead or dirty) before we even
            # submitted: promote the read target so the event is counted
            # and later queries route to the new primary directly.
            try:
                promote_replica(self, rid)
            except Exception:
                with self._lock:
                    self._counters["failover_errors"] += 1
                outer.set_exception(
                    EndpointDown("replica promotion failed; shard degraded")
                )
                return
            with self._lock:
                self._counters["failovers"] += 1
        tried.add(rid)
        try:
            inner = self.replicas[rid].submit(query, **kwargs)
        except Exception as exc:
            self._after_failure(outer, query, kwargs, tried, rid, exc)
            return
        inner.add_done_callback(
            lambda f: self._on_inner_done(outer, query, kwargs, tried, rid, f)
        )

    def _on_inner_done(self, outer, query, kwargs, tried, rid, inner) -> None:
        exc = inner.exception()
        if exc is None:
            if not outer.done():
                outer.set_result(inner.result())
            return
        self._after_failure(outer, query, kwargs, tried, rid, exc)

    def _after_failure(self, outer, query, kwargs, tried, rid, exc) -> None:
        if not _is_replica_death(exc):
            if not outer.done():
                outer.set_exception(exc)
            return
        # This replica is gone.  Fail over when another clean live one
        # remains; otherwise surface the death (coordinator degrades to
        # the flagged-partial contract).
        candidates = self._eligible(exclude=tried)
        if not candidates:
            if not outer.done():
                outer.set_exception(exc)
            return
        if rid == self.primary:
            try:
                promote_replica(self, candidates[0])
            except Exception:
                # Failover itself failed (chaos site): degrade to a
                # plain shard failure — never a wrong answer.
                with self._lock:
                    self._counters["failover_errors"] += 1
                if not outer.done():
                    outer.set_exception(exc)
                return
        with self._lock:
            self._counters["failovers"] += 1
        self._attempt(outer, query, kwargs, tried)

    def evaluate(self, query, **kwargs):
        return self.submit(query, **kwargs).result()

    # -- writes (fan-out + dirty tracking) ------------------------------------

    def insert(self, s: int, p: int, o: int) -> bool:
        return self._write("insert", (s, p, o))

    def delete(self, s: int, p: int, o: int) -> bool:
        return self._write("delete", (s, p, o))

    def _write(self, verb: str, triple) -> bool:
        with self._write_lock:
            results: dict[int, bool] = {}
            for rid, replica in enumerate(self.replicas):
                if not replica.alive:
                    self._mark_dirty(rid)
                    continue
                try:
                    results[rid] = bool(getattr(replica, verb)(*triple))
                except Exception:
                    self._mark_dirty(rid)
            if not results:
                raise EndpointDown("no replica accepted the write")
            primary = self.primary
            return results[primary] if primary in results else results[min(results)]

    def _mark_dirty(self, rid: int) -> None:
        with self._lock:
            if not self._dirty[rid]:
                self._dirty[rid] = True
                self._counters["write_misses"] += 1

    # -- catch-up (WAL-recovered replicas reconcile the missed tail) ----------

    def catch_up(self, rid: int) -> bool:
        """Reconcile replica ``rid`` from a clean live peer by set diff."""
        source_ids = [
            src for src in self._eligible() if src != rid
        ]
        replica = self.replicas[rid]
        if not source_ids or not replica.alive:
            return False
        source = self.replicas[source_ids[0]]
        try:
            with self._write_lock:  # freeze writes while diffing
                want = {tuple(map(int, t)) for t in source.dump()}
                have = {tuple(map(int, t)) for t in replica.dump()}
                for t in have - want:
                    replica.delete(*t)
                for t in want - have:
                    replica.insert(*t)
            with self._lock:
                self._dirty[rid] = False
                self._counters["catch_ups"] += 1
            return True
        except Exception:
            with self._lock:
                self._counters["catch_up_failures"] += 1
            return False

    # -- lifecycle (supervisor surface) ---------------------------------------

    def kill(self, rid: Optional[int] = None) -> None:
        """Crash one replica (default: the primary) — chaos lever."""
        self.replicas[self.primary if rid is None else rid].kill()

    def restart(self) -> None:
        """Supervisor-compatible restart: repair the whole set."""
        self.repair()

    def repair(self) -> int:
        """Restart dead replicas (flap-capped) and catch up dirty ones.

        Returns how many replicas were restarted.  Never raises: a
        replica that cannot be revived is counted and left down.
        """
        restarted = 0
        for rid, replica in enumerate(self.replicas):
            if replica.alive:
                continue
            with self._lock:
                if (
                    self.max_restarts is not None
                    and self._restarts[rid] >= self.max_restarts
                ):
                    continue
            try:
                replica.restart()
            except Exception:
                with self._lock:
                    self._failed_restarts[rid] += 1
                continue
            with self._lock:
                self._restarts[rid] += 1
                # A revived replica may have missed writes while down.
                self._dirty[rid] = True
            restarted += 1
        for rid in range(len(self.replicas)):
            with self._lock:
                dirty = self._dirty[rid]
            if dirty and self.replicas[rid].alive:
                self.catch_up(rid)
        return restarted

    def shutdown(self, checkpoint: bool = True) -> None:
        for replica in self.replicas:
            replica.shutdown(checkpoint=checkpoint)

    # -- the EngineEndpoint surface -------------------------------------------

    def health_check(self) -> bool:
        return any(
            self.replicas[rid].health_check() for rid in self._eligible()
        )

    @property
    def alive(self) -> bool:
        return bool(self._eligible())

    @property
    def incarnation(self) -> tuple:
        return tuple(r.incarnation for r in self.replicas)

    @property
    def failovers(self) -> int:
        """Total transparent read failovers (sampled by ShardReport)."""
        with self._lock:
            return self._counters["failovers"]

    @property
    def engine(self):
        eligible = self._eligible()
        if not eligible:
            return None
        return getattr(self.replicas[eligible[0]], "engine", None)

    @property
    def n_triples(self) -> int:
        for rid in self._eligible():
            try:
                return int(getattr(self.replicas[rid], "n_triples", 0) or 0)
            except Exception:
                continue
        return 0

    def dump(self) -> list[tuple[int, int, int]]:
        eligible = self._eligible()
        if not eligible:
            raise EndpointDown("no live replica holds this partition")
        return self.replicas[eligible[0]].dump()

    def cache_generation(self):
        """Per-replica generation vector with down/dirty markers.

        Any death, restart, promotion-relevant state change, or missed
        write perturbs the vector, so cached results keyed on it can
        only be invalidated too eagerly, never kept stale.
        """
        with self._lock:
            dirty = list(self._dirty)
        vector = []
        for rid, replica in enumerate(self.replicas):
            if not replica.alive:
                vector.append(("down", replica.incarnation))
            elif dirty[rid]:
                vector.append(("dirty", replica.incarnation))
            else:
                vector.append((replica.incarnation, replica.cache_generation()))
        return tuple(vector)

    def stats(self) -> dict:
        with self._lock:
            out = {
                "alive": self.alive,
                "primary": self._primary,
                "dirty": list(self._dirty),
                "restarts": list(self._restarts),
                "failed_restarts": list(self._failed_restarts),
                "incarnation": self.incarnation,
            }
            out.update(self._counters)
        out["replicas"] = [r.stats() for r in self.replicas]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = sum(r.alive for r in self.replicas)
        return (
            f"ReplicaSet({live}/{len(self.replicas)} live, "
            f"primary={self.primary}, failovers={self.failovers})"
        )
