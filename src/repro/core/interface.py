"""Shared protocols for graph indexes and pattern iterators.

Both the ring and the baseline indexes plug into the same
:class:`~repro.core.ltj.LeapfrogTrieJoin` engine through the
:class:`PatternIterator` protocol — the trie-iterator abstraction of
Definition 2.1 extended with the bind/unbind state the engine drives.
"""

from __future__ import annotations

import operator
from typing import Iterable, Iterator, Optional, Protocol, runtime_checkable

from repro.graph.model import TriplePattern, Var


class QueryError(Exception):
    """Base class for every typed query-evaluation failure.

    The serving layer (:class:`~repro.core.system.BaseQuerySystem`)
    guarantees that evaluation only ever raises subclasses of this (or
    returns correct results) — the contract the fault-injection suite in
    ``tests/reliability`` enforces.
    """


class QueryTimeout(QueryError):
    """Raised by engines when a query exceeds its time or op budget."""


class QueryCancelled(QueryError):
    """Raised when an external CancellationToken is triggered."""


class UnsupportedQueryError(QueryError):
    """The index cannot evaluate this query shape (by design)."""


class QueryExecutionError(QueryError):
    """An engine failed mid-evaluation; carries the failing BGP.

    Wraps unexpected internal errors (e.g. a corrupted structure read or
    an injected fault) so callers never see raw engine internals.  The
    original exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, bgp=None) -> None:
        super().__init__(message)
        self.bgp = bgp


@runtime_checkable
class PatternIterator(Protocol):
    """Per-triple-pattern state machine used by LTJ.

    Implementations maintain the set of values bound so far for the
    pattern's variables.  ``leap`` is Definition 2.1 evaluated *under the
    current bindings*: the smallest constant ``>= c`` for ``var`` such
    that the partially-substituted pattern still has matches.
    """

    def leap(self, var: Var, c: int) -> Optional[int]:
        """Smallest eliminator ``>= c`` of ``var``, or ``None``."""
        ...

    def bind(self, var: Var, value: int) -> None:
        """Fix ``var := value`` (must be a value ``leap`` admitted)."""
        ...

    def unbind(self, var: Var) -> None:
        """Undo the most recent ``bind`` (LIFO discipline)."""
        ...

    def count(self) -> int:
        """Number of triples matching the current partial binding."""
        ...

    def values(self, var: Var) -> Iterator[int]:
        """Distinct admissible values of ``var`` in increasing order."""
        ...

    def preferred_lonely(self, candidates: Iterable[Var]) -> Var:
        """Which of ``candidates`` this iterator enumerates cheapest."""
        ...


class GraphIndexProtocol(Protocol):
    """What the benchmark harness requires of every system."""

    name: str

    def evaluate(self, bgp, limit=None, timeout=None, **kwargs):
        ...

    def size_in_bits(self) -> int:
        ...


def leap_based_values(iterator: PatternIterator, var: Var) -> Iterator[int]:
    """Default ``values`` implementation: repeated leaps.

    Correct for every iterator; specialised iterators (e.g. the ring's
    backward enumeration via ``distinct_in_range``) override it when a
    cheaper path exists.
    """
    c = 0
    while True:
        value = iterator.leap(var, c)
        if value is None:
            return
        yield value
        c = value + 1


def first_candidate(candidates: Iterable[Var]) -> Var:
    """Fallback ``preferred_lonely``: any candidate."""
    for var in candidates:
        return var
    raise ValueError("no candidates")


def pattern_constants(pattern: TriplePattern) -> dict[int, int]:
    """Bound positions of an *encoded* pattern as ``{position: id}``.

    Accepts any integral constant (plain or ``numpy``); strings mean the
    pattern was never dictionary-encoded, which is a caller bug.
    """
    out = {}
    for pos, term in enumerate(pattern.terms):
        if not isinstance(term, Var):
            try:
                out[pos] = operator.index(term)
            except TypeError:
                raise TypeError(
                    f"engine patterns must be dictionary-encoded, got {term!r}"
                ) from None
    return out
