"""Packaged query systems: build an index from a Graph, evaluate BGPs.

:class:`BaseQuerySystem` fixes the query-time conventions the benchmark
harness relies on (string or parsed BGPs, result ``limit`` as in the
paper's experiments, per-query ``timeout``, optional label decoding);
:class:`BaseLTJSystem` adds LTJ plumbing shared by the ring and the
wco baselines.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union  # noqa: F401

from repro.core.interface import (
    PatternIterator,
    QueryCancelled,
    QueryError,
    QueryExecutionError,
    QueryTimeout,
)
from repro.core.iterators import RingIterator
from repro.core.ltj import LeapfrogTrieJoin
from repro.core.ring import Ring
from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, TriplePattern, Var
from repro.graph.parser import parse_bgp
from repro.reliability.budget import CancellationToken, ResourceBudget

Query = Union[str, BasicGraphPattern]

#: Engine exceptions forwarded verbatim by :meth:`BaseQuerySystem.evaluate`
#: (typed query errors, plus caller-side argument mistakes); anything else
#: is wrapped into :class:`~repro.core.interface.QueryExecutionError`.
_PASSTHROUGH_ERRORS = (QueryError, ValueError, TypeError)


class QueryResult(list):
    """A plain list of solutions plus graceful-degradation metadata.

    ``truncated`` is True when evaluation stopped early (deadline hit
    with ``partial=True``); ``interrupted_by`` then names the cause
    (``"timeout"`` or ``"cancelled"``).  Being a ``list`` subclass, it
    is drop-in compatible with every existing caller.
    """

    __slots__ = ("truncated", "interrupted_by", "budget", "cached", "shards")

    def __init__(self, iterable=()) -> None:
        super().__init__(iterable)
        self.truncated = False
        self.interrupted_by: Optional[str] = None
        #: The ResourceBudget the query ran under (None for decode-only
        #: copies before flags are copied); lets serving layers read
        #: ops_used/deadline telemetry off the result.
        self.budget: Optional[ResourceBudget] = None
        #: True when the rows were served from the result cache
        #: (:class:`repro.cache.system.CachedQuerySystem`) instead of a
        #: fresh evaluation.
        self.cached = False
        #: Scatter-gather provenance set by the sharded serving tier
        #: (:mod:`repro.serving`): a :class:`~repro.serving.coordinator.
        #: ShardReport` naming which shards answered and which failed.
        #: ``None`` for single-node evaluations.
        self.shards = None

    def _copy_flags(self, other: "QueryResult") -> "QueryResult":
        self.truncated = other.truncated
        self.interrupted_by = other.interrupted_by
        self.budget = other.budget
        self.cached = other.cached
        self.shards = other.shards
        return self


class BaseQuerySystem:
    """Common evaluate()/space conventions for every system."""

    name = "abstract"

    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    @property
    def graph(self) -> Graph:
        return self._graph

    # -- to be provided by subclasses ---------------------------------------

    def _solutions(
        self,
        bgp: BasicGraphPattern,
        timeout: Optional[float],
        **options,
    ) -> Iterable[dict[Var, int]]:
        raise NotImplementedError

    def size_in_bits(self) -> int:
        raise NotImplementedError

    def cache_generation(self):
        """Invalidation token for the serving caches (hashable).

        Cached results and memoized planner statistics are tagged with
        this value and served only on an exact match.  Static indexes
        never change, so the base implementation is the constant ``0``;
        mutable indexes override it with a token that changes on every
        visible write (:class:`~repro.core.dynamic.DynamicRingIndex`
        returns its epoch,
        :class:`~repro.reliability.wal.DurableDynamicRing` pairs the
        epoch with the WAL generation so checkpoints/recovery invalidate
        too).
        """
        return 0

    # -- public API -----------------------------------------------------------

    def evaluate(
        self,
        query: Query,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        decode: bool = False,
        project: Optional[Sequence[Var]] = None,
        partial: bool = False,
        cancellation: Optional[CancellationToken] = None,
        budget: Optional[ResourceBudget] = None,
        **options,
    ) -> QueryResult:
        """Evaluate a basic graph pattern.

        Parameters mirror the paper's experimental protocol: ``limit``
        (1000 in the paper) caps the number of solutions, ``timeout`` (in
        seconds) aborts long evaluations by raising
        :class:`~repro.core.interface.QueryTimeout`.

        Reliability controls (all optional):

        - ``partial=True`` degrades gracefully: instead of discarding
          the work done when the deadline (or a cancellation) fires, the
          solutions found so far are returned with
          ``result.truncated == True``;
        - ``cancellation`` is an external
          :class:`~repro.reliability.budget.CancellationToken` that
          aborts evaluation with
          :class:`~repro.core.interface.QueryCancelled`;
        - ``budget`` supplies a pre-built
          :class:`~repro.reliability.budget.ResourceBudget` (overriding
          ``timeout``/``limit``/``cancellation``), e.g. one shared
          across the queries of a batch.

        Unexpected engine failures (corrupted reads, injected faults)
        are wrapped into
        :class:`~repro.core.interface.QueryExecutionError` with the
        failing BGP attached — callers only ever see
        :class:`~repro.core.interface.QueryError` subclasses or correct
        results.

        ``project`` restricts solutions to the given variables with
        duplicate elimination (SPARQL ``SELECT DISTINCT`` semantics — one
        of the §7 "further query operators", layered on top of the
        index).  ``decode=True`` returns ``{name: label}`` dictionaries
        through the graph's dictionary; otherwise solutions are
        ``{Var: id}``.
        """
        bgp = parse_bgp(query) if isinstance(query, str) else query
        encoded = self._graph.encode_bgp(bgp)
        if encoded is None:  # a constant is absent from the graph
            return QueryResult()
        if budget is None:
            budget = ResourceBudget(
                timeout=timeout, max_solutions=limit, token=cancellation
            )
        out = QueryResult()
        out.budget = budget
        if project is None:
            # Without projection dedup every raw row is admitted, so the
            # consumption loop below pulls at most this many rows — a
            # bound parallel drivers use to cap per-slice enumeration.
            demands = [x for x in (limit, budget.max_solutions) if x is not None]
            budget.row_demand = min(demands) if demands else None
        else:
            budget.row_demand = None  # dedup may skip arbitrarily many rows
        seen: set[frozenset] = set()
        try:
            for solution in self._solutions(encoded, budget, **options):
                if project is not None:
                    solution = {v: solution[v] for v in project if v in solution}
                    key = frozenset(solution.items())
                    if key in seen:
                        continue
                    seen.add(key)
                out.append(solution)
                if not budget.admit_solution() or (
                    limit is not None and len(out) >= limit
                ):
                    break
        except (QueryTimeout, QueryCancelled) as exc:
            if not partial:
                raise
            out.truncated = True
            out.interrupted_by = (
                "cancelled" if isinstance(exc, QueryCancelled) else "timeout"
            )
        except _PASSTHROUGH_ERRORS:
            raise
        except Exception as exc:
            raise QueryExecutionError(
                f"{self.name} engine failed on {bgp!r}: "
                f"{type(exc).__name__}: {exc}",
                bgp=bgp,
            ) from exc
        if decode:
            roles = self._graph.variable_roles(bgp)
            out = QueryResult(
                self._graph.decode_solution(s, roles) for s in out
            )._copy_flags(out)
        return out

    def count(
        self,
        query: Query,
        timeout: Optional[float] = None,
        **options,
    ) -> int:
        """Number of solutions (no limit)."""
        return len(self.evaluate(query, timeout=timeout, **options))

    def bytes_per_triple(self) -> float:
        """The space unit of the paper's Tables 1 and 2."""
        n = max(self._graph.n_triples, 1)
        return self.size_in_bits() / 8 / n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self._graph.n_triples})"


class BaseLTJSystem(BaseQuerySystem):
    """A system whose engine is Leapfrog TrieJoin over its iterators."""

    def __init__(
        self,
        graph: Graph,
        use_lonely: bool = True,
        use_ordering: bool = True,
        use_batch: bool = True,
        policy: str = "static",
    ) -> None:
        super().__init__(graph)
        self._engine = LeapfrogTrieJoin(
            self.iterator,
            graph.n_triples,
            use_lonely=use_lonely,
            use_ordering=use_ordering,
            use_batch=use_batch,
            policy=policy,
        )

    @property
    def policy(self) -> str:
        """The engine's variable-selection policy
        (:data:`repro.core.ltj.POLICIES`)."""
        return self._engine.policy

    def iterator(self, pattern: TriplePattern) -> PatternIterator:
        raise NotImplementedError

    def _solutions(
        self,
        bgp: BasicGraphPattern,
        timeout: Optional[float],
        var_order: Optional[Sequence[Var]] = None,
        stats: Optional[dict] = None,
    ) -> Iterable[dict[Var, int]]:
        return self._engine.evaluate(
            bgp, timeout=timeout, var_order=var_order, stats=stats
        )

    def explain(self, query: Query) -> dict:
        """The §4.3 plan: elimination order, lonely variables, and the
        exact on-the-fly pattern cardinalities driving both."""
        bgp = parse_bgp(query) if isinstance(query, str) else query
        encoded = self._graph.encode_bgp(bgp)
        if encoded is None:
            return {
                "variable_order": [],
                "lonely_variables": [],
                "pattern_cardinalities": {},
                "empty": True,
            }
        return self._engine.plan(encoded)


class RingIndex(BaseLTJSystem):
    """The paper's system: LTJ over a (plain-bitvector) ring."""

    name = "Ring"

    def __init__(
        self,
        graph: Graph,
        compressed: bool = False,
        block_size: int = 15,
        succinct_counts: bool = False,
        use_lonely: bool = True,
        use_ordering: bool = True,
        use_batch: bool = True,
        leap_memo_size: int = 1 << 16,
        policy: str = "static",
    ) -> None:
        super().__init__(
            graph,
            use_lonely=use_lonely,
            use_ordering=use_ordering,
            use_batch=use_batch,
            policy=policy,
        )
        self._ring = Ring(
            graph,
            compressed=compressed,
            block_size=block_size,
            succinct_counts=succinct_counts,
            leap_memo_size=leap_memo_size,
        )

    @classmethod
    def from_ring(
        cls,
        ring: Ring,
        graph: Graph,
        *,
        use_lonely: bool = True,
        use_ordering: bool = True,
        use_batch: bool = True,
        policy: str = "static",
    ) -> "RingIndex":
        """Wrap a prebuilt ring (memmapped, shm-attached or streamed)
        without re-running index construction."""
        index = cls.__new__(cls)
        BaseLTJSystem.__init__(
            index,
            graph,
            use_lonely=use_lonely,
            use_ordering=use_ordering,
            use_batch=use_batch,
            policy=policy,
        )
        index._ring = ring
        return index

    @property
    def ring(self) -> Ring:
        return self._ring

    def iterator(self, pattern: TriplePattern) -> RingIterator:
        return RingIterator(self._ring, pattern)

    def triple(self, i: int) -> tuple[int, int, int]:
        """Recover a triple from the index alone (§3.1.2)."""
        return self._ring.triple(i)

    def size_in_bits(self) -> int:
        return self._ring.size_in_bits()


    # -- regular path queries (§7) ----------------------------------------------

    def evaluate_path(self, expression: str, source, decode: bool = False):
        """Nodes reachable from ``source`` along a regular path.

        ``expression`` uses the mini-syntax of :mod:`repro.core.paths`
        (``adv+``, ``nom/^win``, ``(adv|nom)*`` …).  ``source`` may be a
        node label (dictionary-backed graphs) or an id.  One of the §7
        "further query operators", layered on the ring's leap/enumerate
        primitives — no adjacency lists are materialised.
        """
        from repro.core.paths import PathEvaluator, parse_path

        d = self._graph.dictionary
        if isinstance(source, str):
            if d is None:
                raise ValueError("string nodes require a dictionary")
            if not d.has_node(source):
                return set()
            source_id = d.node_id(source)
        else:
            source_id = int(source)

        def resolve(label):
            if isinstance(label, str):
                if d is None:
                    raise ValueError("string predicates require a dictionary")
                return d.predicate_id(label)  # KeyError -> no matches
            return label

        evaluator = PathEvaluator(self._ring, predicate_resolver=resolve)
        result = evaluator.reachable(source_id, parse_path(expression))
        if decode:
            if d is None:
                raise ValueError("decode requires a dictionary")
            return {d.node_label(v) for v in result}
        return result

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Persist the index (source graph + configuration) to ``path``.

        Loading rebuilds the succinct structures — construction is fast
        (§4.4) and the on-disk format stays a plain ``.npz`` plus a JSON
        sidecar manifest carrying the configuration and the payload's
        SHA-256 (see :mod:`repro.reliability.integrity`).
        """
        from repro.graph import io as graph_io
        from repro.reliability.integrity import write_manifest

        graph_io.save_graph(self._graph, path)
        write_manifest(path, compressed=self._ring.compressed, graph=self._graph)

    def save_frozen(self, path) -> dict:
        """Persist the *built ring* as a memory-mappable frozen pack.

        Unlike :meth:`save` (graph ``.npz``, rebuild on load), a frozen
        pack stores the succinct arrays themselves in the flat aligned
        layout of :mod:`repro.core.frozen`, so :meth:`load` can reopen
        it with ``mmap=True`` in O(1) RAM.  Only plain rings freeze
        (RRR/Elias–Fano state raises
        :class:`~repro.core.frozen.RingLayoutError`).  Returns the
        manifest written to the sidecar.
        """
        from repro.core.frozen import write_frozen_ring

        return write_frozen_ring(
            self._ring,
            path,
            n_nodes=self._graph.n_nodes,
            n_predicates=self._graph.n_predicates,
            dictionary=self._graph.dictionary,
        )

    @classmethod
    def load(
        cls, path, verify: bool = True, mmap: bool = False, **options
    ) -> "RingIndex":
        """Inverse of :meth:`save` / :meth:`save_frozen`, with integrity
        checks.

        With ``verify=True`` (default) the payload checksum is compared
        against the manifest, deserialization failures become typed
        :class:`~repro.reliability.integrity.IndexIntegrityError`\\ s,
        and the rebuilt ring runs its structural self-check — a
        corrupted or truncated index is *never* silently served.
        Legacy sidecars without a checksum skip the hash comparison.
        Extra ``options`` (e.g. ``policy=...``) go to the constructor —
        engine configuration is per-process, not part of the manifest.

        Frozen packs (``kind: "frozen-ring"`` sidecars) are detected
        automatically; ``mmap=True`` then backs the arrays with
        read-only ``np.memmap`` views (O(1) RAM, verified layout before
        first touch) instead of one eager read.  ``mmap=True`` on a
        legacy ``.npz`` index raises ``ValueError`` — zip archives are
        not mappable; re-save with :meth:`save_frozen` first.
        """
        from repro.reliability.integrity import (
            checked_load_graph,
            read_manifest,
            verify_file,
            verify_ring_structure,
        )

        manifest = read_manifest(path)
        from repro.core.frozen import is_frozen_manifest

        if is_frozen_manifest(manifest):
            return cls._load_frozen(
                path, manifest, verify=verify, mmap=mmap, **options
            )
        if mmap:
            raise ValueError(
                f"{path}: mmap load requires a frozen-ring pack; this is a "
                "legacy .npz index — re-save it with save_frozen() or "
                "`repro build --frozen`"
            )
        if verify:
            verify_file(path, manifest)
        graph = checked_load_graph(path)
        compressed = bool((manifest or {}).get("compressed", False))
        index = cls(graph, compressed=compressed, **options)
        if verify:
            expected_n = (manifest or {}).get("n_triples", graph.n_triples)
            verify_ring_structure(
                index.ring,
                graph=graph,
                expected_n=expected_n,
                path=path,
            )
        return index

    @classmethod
    def _load_frozen(
        cls, path, manifest, *, verify: bool, mmap: bool, **options
    ) -> "RingIndex":
        """Open a frozen pack (mmap or eager) behind :meth:`load`.

        Eager opens keep the classic deep-verification contract (full
        SHA-256 — the file is read anyway); mmap opens run the O(1)
        layout validation plus the structural spot-check, touching only
        the pages the spot-check needs.
        """
        from repro.core.frozen import (
            FrozenGraph,
            manifest_dictionary,
            open_frozen_ring,
        )
        from repro.reliability.integrity import verify_ring_structure

        ring, manifest = open_frozen_ring(
            path,
            manifest,
            mmap=mmap,
            verify=verify,
            deep_verify=verify and not mmap,
        )
        graph = FrozenGraph(
            ring,
            int(manifest["n_nodes"]),
            int(manifest["n_predicates"]),
            dictionary=manifest_dictionary(manifest),
        )
        index = cls.from_ring(ring, graph, **options)
        if verify:
            verify_ring_structure(
                ring,
                expected_n=int(manifest["n_triples"]),
                path=path,
            )
        return index


class CompressedRingIndex(RingIndex):
    """The C-Ring: RRR-compressed bitvectors, parameter ``b`` (§4.4)."""

    name = "C-Ring"

    def __init__(
        self,
        graph: Graph,
        block_size: int = 15,
        use_lonely: bool = True,
        use_ordering: bool = True,
        use_batch: bool = True,
        policy: str = "static",
    ) -> None:
        super().__init__(
            graph,
            compressed=True,
            block_size=block_size,
            use_lonely=use_lonely,
            use_ordering=use_ordering,
            use_batch=use_batch,
            policy=policy,
        )


__all__ = [
    "BaseLTJSystem",
    "BaseQuerySystem",
    "CompressedRingIndex",
    "QueryResult",
    "QueryTimeout",
    "RingIndex",
]
