"""The ring trie-iterator: ``leap`` with bind/unbind state (§3.2, §4.2).

A :class:`RingIterator` wraps one triple pattern.  It keeps the pattern's
current constants (original ones plus values bound by LTJ) and the zone
range ``A[s..e]`` of Lemma 3.6, *maintained incrementally* across binds —
the paper's §4.2 first optimisation ("for each t we maintain the values
s_i, e_i instead of computing them from scratch during each leap").

Leap dispatch (Lemma 3.7) for a variable at position ``pos``:

- no constants bound → answer from the ``C`` array of ``pos`` alone;
- ``pos`` cyclically precedes the run start → **backward leap**
  (range-next-value on the zone's wavelet matrix);
- exactly one constant, ``pos`` follows it → **forward leap**
  (rank/select on the next zone, then binary search on its ``C``).

In arity 3 these cases are exhaustive.  Variables repeated inside one
pattern (outside the paper's wco guarantee; cf. its §6 discussion) are
handled soundly by candidate generation + verification.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.interface import first_candidate, pattern_constants
from repro.core.ring import Ring, ZoneState, next_attr, prev_attr
from repro.graph.model import O, S, TriplePattern, Var

#: Rows decoded per chunk by :meth:`RingIterator.solutions_bulk` — bounds
#: peak memory and keeps budget/timeout checks responsive on huge ranges.
BULK_CHUNK_ROWS = 8192


class RingIterator:
    """Trie-iterator (Definition 2.1) over a :class:`~repro.core.ring.Ring`."""

    def __init__(self, ring: Ring, pattern: TriplePattern) -> None:
        self._ring = ring
        self._pattern = pattern
        self._constants: dict[int, int] = pattern_constants(pattern)
        self._var_positions = {
            var: tuple(pattern.variable_positions(var))
            for var in pattern.variables()
        }
        # Undo stack: (var, positions, saved_state, saved_empty).
        self._stack: list[tuple[Var, tuple[int, ...], Optional[ZoneState], bool]] = []
        self._empty = False
        self._state: Optional[ZoneState] = None  # None => no constants bound
        if self._constants:
            state = ring.pattern_range(self._constants)
            if state is None:
                self._empty = True
            else:
                self._state = state

    # -- inspection ---------------------------------------------------------

    @property
    def pattern(self) -> TriplePattern:
        return self._pattern

    def count(self) -> int:
        """Matching triples under the current constants (exact, §4.3)."""
        if self._empty:
            return 0
        if self._state is None:
            return self._ring.n
        return self._state[2] - self._state[1]

    def selectivity(self) -> float:
        """The paper's ``c(t) = (e - s + 1) / n`` statistic."""
        return self.count() / max(self._ring.n, 1)

    def zone_state(self) -> Optional[ZoneState]:
        """The maintained Lemma 3.6 range, or ``None`` when nothing is
        bound (exposed for the parallel slice planner)."""
        return None if self._empty else self._state

    def distinct_estimate(self, var: Var, max_nodes: int = 64) -> int:
        """Lower bound on the distinct admissible values of ``var``.

        The branching factor this pattern would contribute if ``var``
        were eliminated next — the statistic the cardinality-guided
        variable ordering ranks by.  Answered from the wavelet matrix
        in O(``max_nodes`` · levels) when ``var`` sits just behind the
        bound run (:meth:`WaveletMatrix.distinct_estimate`), from the
        ``C`` array when nothing is bound, and by the range size (a
        safe upper bound used as a tie-breaking proxy) otherwise.
        """
        if self._empty:
            return 0
        positions = self._var_positions[var]
        if len(positions) != 1:
            return self.count()
        pos = positions[0]
        ring = self._ring
        if self._state is None:
            c = ring.c_array(pos)
            return int(np.count_nonzero(np.diff(c)))
        zone, lo, hi = self._state
        if pos == prev_attr(zone):
            wm = ring.zone_sequence(zone)
            return wm.distinct_estimate(lo, hi, max_nodes=max_nodes)
        return hi - lo

    def leap_direction(self, var: Var) -> str:
        """How a leap on ``var`` would be answered from the current state:
        ``"backward"`` (range-next-value), ``"forward"`` (rank/select on
        the next zone), ``"free"`` (C array alone) or ``"repeated"``.

        Exposed so the unidirectional-ring ablation can route forward
        leaps to a second, reversed ring.
        """
        positions = self._var_positions[var]
        if len(positions) != 1:
            return "repeated"
        if self._state is None:
            return "free"
        if positions[0] == prev_attr(self._state[0]):
            return "backward"
        return "forward"

    # -- leap ------------------------------------------------------------------

    def leap(self, var: Var, c: int) -> Optional[int]:
        """Smallest value ``>= c`` for ``var`` keeping the pattern
        satisfiable, or ``None``."""
        if self._empty:
            return None
        positions = self._var_positions[var]
        if len(positions) == 1:
            return self._leap_single(positions[0], c)
        return self._leap_repeated(positions, c)

    def _leap_single(self, pos: int, c: int) -> Optional[int]:
        ring = self._ring
        if self._state is None:
            return ring.next_value(pos, c)
        zone, lo, hi = self._state
        if pos == prev_attr(zone):
            return ring.backward_leap(zone, lo, hi, c)
        if len(self._constants) == 1 and pos == next_attr(zone):
            return ring.forward_leap(zone, self._constants[zone], c)
        raise AssertionError(
            f"unreachable leap case: pos={pos}, zone={zone}, "
            f"constants={sorted(self._constants)}"
        )

    def _leap_repeated(self, positions: tuple[int, ...], c: int) -> Optional[int]:
        """Candidate-and-verify leap for a twice-occurring variable.

        Candidates come from relaxing all but the first occurrence; each
        is verified with a full Lemma 3.6 range computation.  Correct but
        only wco when equalities are frequent in the data — the paper
        makes the same concession (§6).
        """
        probe_pos = positions[0]
        # A value must fit every position it occupies (a subject/object id
        # can exceed the predicate universe, e.g. for (?x, ?x, o)).
        ceiling = min(self._ring.sigma(pos) for pos in positions)
        while True:
            candidate = self._probe_leap(probe_pos, c)
            if candidate is None or candidate >= ceiling:
                return None
            trial = dict(self._constants)
            for pos in positions:
                trial[pos] = candidate
            if self._ring.pattern_range(trial) is not None:
                return candidate
            c = candidate + 1

    def _probe_leap(self, pos: int, c: int) -> Optional[int]:
        """Leap for ``pos`` ignoring the variable's other occurrences."""
        ring = self._ring
        if self._state is None:
            return ring.next_value(pos, c)
        zone, lo, hi = self._state
        if pos == prev_attr(zone):
            return ring.backward_leap(zone, lo, hi, c)
        if len(self._constants) == 1 and pos == next_attr(zone):
            return ring.forward_leap(zone, self._constants[zone], c)
        # Run of length 2 with the probe on its far side cannot happen for
        # single-occurrence vars but can for relaxed repeated ones; fall
        # back to value-by-value verification against the C array.
        return ring.next_value(pos, c)

    # -- bind / unbind --------------------------------------------------------------

    def bind(self, var: Var, value: int) -> None:
        """Fix ``var := value``; maintains the zone range incrementally."""
        positions = self._var_positions[var]
        self._stack.append((var, positions, self._state, self._empty))
        if self._empty:
            return
        ring = self._ring
        if len(positions) > 1:
            for pos in positions:
                self._constants[pos] = value
            state = ring.pattern_range(self._constants)
            if state is None:
                self._empty = True
            else:
                self._state = state
            return
        pos = positions[0]
        if self._state is None:
            self._state = ring.attribute_range(pos, value)
        else:
            zone, lo, hi = self._state
            if pos == prev_attr(zone):
                self._state = ring.backward_step(zone, lo, hi, value)
            elif len(self._constants) == 1 and pos == next_attr(zone):
                base = ring.attribute_range(pos, value)
                self._state = ring.backward_step(
                    base[0], base[1], base[2], self._constants[zone]
                )
            else:  # pragma: no cover - unreachable for arity 3
                raise AssertionError("unreachable bind case")
        self._constants[pos] = value
        if self._state[1] >= self._state[2]:
            self._empty = True

    def unbind(self, var: Var) -> None:
        """Undo the most recent bind (must match LIFO order)."""
        if not self._stack:
            raise ValueError("unbind without matching bind")
        top_var, positions, state, empty = self._stack.pop()
        if top_var != var:
            self._stack.append((top_var, positions, state, empty))
            raise ValueError(f"unbind order violation: expected {top_var}, got {var}")
        for pos in positions:
            self._constants.pop(pos, None)
        self._state = state
        self._empty = empty

    # -- enumeration (lonely variables, §4.2) ----------------------------------------

    def values(self, var: Var) -> Iterator[int]:
        """Distinct admissible values of ``var``, increasing.

        Uses the wavelet matrix's ``distinct_in_range`` (O(k log(σ/k)))
        when ``var`` sits just behind the bound run — the §4.2 lonely
        variables fast path — and repeated leaps otherwise.
        """
        if self._empty:
            return
        positions = self._var_positions[var]
        if len(positions) == 1 and self._state is not None:
            zone, lo, hi = self._state
            if positions[0] == prev_attr(zone):
                wm = self._ring.zone_sequence(zone)
                for value, _count in wm.distinct_in_range(lo, hi):
                    yield value
                return
        c = 0
        while True:
            value = self.leap(var, c)
            if value is None:
                return
            yield value
            c = value + 1

    def solutions_bulk(
        self, vars_: Iterable[Var], chunk: int = BULK_CHUNK_ROWS
    ) -> Optional[Iterator[tuple[dict[Var, np.ndarray], int]]]:
        """Batch enumeration of this pattern's remaining lonely bindings.

        Once the shared variables are bound, the pattern's Lemma 3.6
        range points at its matching triples, whose *unbound* attributes
        are exactly the cyclic predecessors of the range's zone; bulk-
        decoding the range (:meth:`~repro.core.ring.Ring.decode_range`)
        therefore yields one solution row per triple — all rows distinct,
        because the bound attributes are fixed and triples are unique.

        Returns ``None`` when the fast path does not apply (a repeated
        variable, or ``vars_`` not matching the unbound positions) —
        callers then fall back to the scalar enumeration.  Otherwise
        yields ``({var: column}, n_rows)`` chunks of at most ``chunk``
        rows, columns row-aligned.
        """
        vars_ = list(vars_)
        positions: dict[Var, int] = {}
        for var in vars_:
            var_pos = self._var_positions[var]
            if len(var_pos) != 1:
                return None  # repeated variable: verify-per-value instead
            positions[var] = var_pos[0]
        if self._state is None:
            zone, lo, hi = S, 0, self._ring.n
        else:
            zone, lo, hi = self._state
        unbound = []
        attr = zone
        for _ in vars_:
            attr = prev_attr(attr)
            unbound.append(attr)
        if set(unbound) != set(positions.values()):
            return None
        if self._empty:
            lo = hi  # no rows; still answer through the fast path

        def chunks() -> Iterator[tuple[dict[Var, np.ndarray], int]]:
            for start in range(lo, hi, chunk):
                stop = min(start + chunk, hi)
                decoded = self._ring.decode_range(zone, start, stop, len(vars_))
                yield (
                    {var: decoded[positions[var]] for var in vars_},
                    stop - start,
                )

        return chunks()

    def preferred_lonely(self, candidates: Iterable[Var]) -> Var:
        """Pick the candidate enumerable backwards from the current run."""
        candidates = list(candidates)
        if self._state is not None:
            target = prev_attr(self._state[0])
            for var in candidates:
                if target in self._var_positions[var]:
                    return var
        else:
            # Nothing bound: start with the object, so subsequent
            # variables of this pattern continue backwards (o → p → s).
            for var in candidates:
                if O in self._var_positions[var]:
                    return var
        return first_candidate(candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingIterator({self._pattern!r}, count={self.count()})"
