"""Cumulative-count arrays: the ring's ``C`` components.

The paper stores ``C`` either as a plain array or — footnote 2 — "as a
bitvector to save space for large alphabets.  In this case the binary
search is replaced by ``c_x = select_0(D, q) - q``".  Both layouts live
here behind one interface:

- :class:`PackedCounts` — the plain layout: a monotone integer array
  (bit-packed for the space accounting), binary search via numpy;
- :class:`EliasFanoCounts` — the succinct layout: the monotone sequence
  in Elias–Fano encoding, searches via rank/select on its high part.

Operations (all the ring needs):

- ``access(v)``      — ``C[v]``: number of triples with value < v;
- ``bucket_of(q)``   — the value whose range contains row ``q``
  (the paper's ``select_0`` trick / our binary search);
- ``next_nonempty(c)`` — smallest value ``>= c`` that occurs at all.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.bits.elias_fano import EliasFano


class CumulativeCounts(Protocol):
    """What :class:`~repro.core.ring.Ring` requires of a C array."""

    def __len__(self) -> int: ...

    def access(self, v: int) -> int: ...

    def access_many(self, vs) -> np.ndarray: ...

    def bucket_of(self, q: int) -> int: ...

    def next_nonempty(self, c: int) -> int | None: ...

    def size_in_bits(self) -> int: ...


def counts_from_column(column: np.ndarray, sigma: int) -> np.ndarray:
    """The raw cumulative array: ``out[v]`` = #values < v, length σ+1."""
    counts = (
        np.bincount(column, minlength=sigma)
        if len(column)
        else np.zeros(sigma, dtype=np.int64)
    )
    out = np.zeros(sigma + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


class PackedCounts:
    """Plain layout.

    Queries run on a 64-bit numpy mirror (vectorised binary search);
    the accounted size is the ``ceil(log2(n+1))``-bit packed width the
    array information-theoretically occupies — the mirror is a
    reconstructible acceleration structure, consistent with how the
    paper counts its plain ``C`` arrays.
    """

    def __init__(self, cumulative: np.ndarray) -> None:
        self._c = np.asarray(cumulative, dtype=np.int64)
        if len(self._c) == 0 or (np.diff(self._c) < 0).any():
            raise ValueError("cumulative counts must be non-decreasing")
        self._n = int(self._c[-1])

    @classmethod
    def from_raw(
        cls, cumulative: np.ndarray, *, validate: bool = True
    ) -> "PackedCounts":
        """Adopt a cumulative array without copying (mmap / shm views).

        With ``validate=False`` the O(σ) monotonicity scan is skipped —
        the frozen open path defers it to the layout verifier so a
        memory-mapped open touches no pages beyond the last entry.
        """
        if validate:
            return cls(cumulative)
        pc = cls.__new__(cls)
        pc._c = np.asarray(cumulative, dtype=np.int64)
        if len(pc._c) == 0:
            raise ValueError("cumulative counts must be non-empty")
        pc._n = int(pc._c[-1])
        return pc

    def __len__(self) -> int:
        return len(self._c)

    def access(self, v: int) -> int:
        return int(self._c[v])

    def access_many(self, vs) -> np.ndarray:
        """``C[v]`` over an array of values (one fancy-index call)."""
        return self._c[np.asarray(vs, dtype=np.int64)]

    def bucket_of(self, q: int) -> int:
        """Largest ``v`` with ``C[v] <= q`` (the row's value bucket)."""
        return int(np.searchsorted(self._c, q, side="right")) - 1

    def next_nonempty(self, c: int) -> int | None:
        if c >= len(self._c) - 1:
            return None
        base = int(self._c[max(c, 0)])
        if base >= self._n:
            return None
        v = int(np.searchsorted(self._c, base, side="right")) - 1
        return v if v < len(self._c) - 1 else None

    def raw(self) -> np.ndarray:
        """The cumulative array itself (testing/inspection)."""
        return self._c

    def size_in_bits(self) -> int:
        entry_bits = max(1, int(self._n).bit_length())
        return entry_bits * len(self._c) + 128


class EliasFanoCounts:
    """Succinct layout (paper footnote 2): Elias–Fano over the array."""

    def __init__(self, cumulative: np.ndarray) -> None:
        c = np.asarray(cumulative, dtype=np.int64)
        if len(c) == 0 or (np.diff(c) < 0).any():
            raise ValueError("cumulative counts must be non-decreasing")
        self._n = int(c[-1])
        self._ef = EliasFano(c, universe=self._n + 1)

    def __len__(self) -> int:
        return len(self._ef)

    def access(self, v: int) -> int:
        return self._ef[v]

    def access_many(self, vs) -> np.ndarray:
        """``C[v]`` over an array of values (scalar-loop fallback)."""
        v = np.asarray(vs, dtype=np.int64)
        return np.fromiter(
            (self._ef[int(x)] for x in v), dtype=np.int64, count=v.size
        ).reshape(v.shape)

    def bucket_of(self, q: int) -> int:
        return self._ef.rank_lt(q + 1) - 1

    def next_nonempty(self, c: int) -> int | None:
        last = len(self._ef) - 1
        if c >= last:
            return None
        base = self.access(max(c, 0))
        if base >= self._n:
            return None
        v = self._ef.rank_lt(base + 1) - 1
        return v if v < last else None

    def raw(self) -> np.ndarray:
        """Materialise the cumulative array (testing/inspection)."""
        return np.fromiter(self._ef, dtype=np.int64, count=len(self._ef))

    def size_in_bits(self) -> int:
        return self._ef.size_in_bits() + 64


def make_counts(
    column: np.ndarray, sigma: int, succinct: bool = False
) -> CumulativeCounts:
    """Build a C array in the requested layout."""
    cumulative = counts_from_column(column, sigma)
    return EliasFanoCounts(cumulative) if succinct else PackedCounts(cumulative)
