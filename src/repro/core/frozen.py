"""Frozen ring packs: the memory-mappable on-disk index format.

The classic ``RingIndex.save`` path persists the *source graph* as a
compressed ``.npz`` and rebuilds the succinct structures on load — fast,
but it requires the whole triple set (and the rebuilt ring) to fit in
RAM.  A **frozen pack** persists the ring's backing arrays themselves in
a flat, aligned, checksummed layout, so the index can be reopened either
eagerly (one sequential read) or *memory-mapped*: ``np.memmap`` views
replace the arrays and the OS pages in only what queries touch — RSS
grows with the working set, not with the index (ROADMAP item 2; the
locality argument is Zinn's out-of-core LTJ study, arXiv 1501.06689).

Pack layout (``<path>``)::

    [0, 8)          magic  b"RINGPK01"
    [64, ...)       the arrays, each 64-byte aligned, in collect order:
                    wm{zone}.l{level}.{words,super,rel} for zones S,P,O,
                    then c0, c1, c2
    [size-8, size)  footer b"RINGEND!"

plus the usual JSON sidecar ``<path>.config.json`` with
``kind: "frozen-ring"``: format version, SHA-256 and byte size of the
pack, the array table (``path -> [offset, dtype, length]``), per-zone
wavelet metadata (n, sigma, zeros, per-level ones), the graph universes
and the optional dictionary.  The magic/footer pair makes a truncated or
torn pack an O(1) detection *before* any array is touched; the sidecar
table makes full layout validation possible without materializing a
single array (:func:`verify_frozen_layout`).

The array naming and ordering are exactly those of the shared-memory
export (:mod:`repro.parallel.shm`), which proved these structures are
plain exportable buffers; both paths share :func:`collect_ring_arrays`
and the ``from_components`` constructors.  Unlike a shm segment, a pack
outlives its creating process and is the unit the streaming bulk
builder (:mod:`repro.graph.bulkload`) writes directly, level by level,
without ever holding the full triple set.
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from repro.bits.bitvector import WORDS_PER_SUPERBLOCK, BitVector
from repro.core.counts import PackedCounts
from repro.core.ring import Ring, prev_attr
from repro.graph.dataset import Graph
from repro.graph.dictionary import Dictionary
from repro.graph.model import O, P, S
from repro.reliability.integrity import (
    IndexIntegrityError,
    file_checksum,
    manifest_path,
    read_manifest,
)
from repro.sequences.wavelet_matrix import WaveletMatrix

MAGIC = b"RINGPK01"
FOOTER = b"RINGEND!"
ALIGN = 64
FROZEN_KIND = "frozen-ring"
FROZEN_FORMAT_VERSION = 1

#: dtypes a pack may carry (little-endian only; validated by the layout
#: check so a foreign-endian or bogus-dtype manifest cannot drive
#: ``np.dtype`` into arbitrary territory).
_ALLOWED_DTYPES = {"<u8", "<u2", "<i8"}

__all__ = [
    "FROZEN_KIND",
    "FrozenGraph",
    "RingLayoutError",
    "PackWriter",
    "collect_ring_arrays",
    "is_frozen_manifest",
    "open_frozen_ring",
    "verify_frozen_layout",
    "write_frozen_ring",
    "write_pack_manifest",
]


class RingLayoutError(ValueError):
    """The ring's state is not a flat set of exportable numpy arrays."""


def collect_ring_arrays(ring: Ring) -> tuple[dict, dict[str, np.ndarray]]:
    """Walk the ring; return (meta scalars, path -> source array).

    The single source of truth for the flat-buffer layout shared by the
    shared-memory export and the frozen pack: paths are
    ``wm{zone}.l{level}.words`` / ``.super`` / ``.rel`` and ``c{attr}``,
    in this exact order.  Raises :class:`RingLayoutError` on any
    component whose state is not a set of flat numpy arrays (RRR
    bitvectors, Elias–Fano counts).
    """
    if ring.compressed:
        raise RingLayoutError(
            "compressed (C-Ring) bitvectors have no flat-buffer form; "
            "use a plain ring"
        )
    arrays: dict[str, np.ndarray] = {}
    wm_meta: dict[int, dict] = {}
    for zone in (S, P, O):
        wm = ring.zone_sequence(zone)
        levels_meta = []
        for level, bv in enumerate(wm._bits):
            if type(bv) is not BitVector:
                raise RingLayoutError(
                    f"zone {zone} level {level} uses {type(bv).__name__}; "
                    "only plain BitVector levels have a flat-buffer form"
                )
            prefix = f"wm{zone}.l{level}"
            arrays[f"{prefix}.words"] = bv._words
            arrays[f"{prefix}.super"] = bv._super
            arrays[f"{prefix}.rel"] = bv._rel
            levels_meta.append({"n": bv._n, "ones": bv._ones})
        wm_meta[zone] = {
            "n": wm._n,
            "sigma": wm._sigma,
            "levels": wm._levels,
            "zeros": list(wm._zeros),
            "level_meta": levels_meta,
        }
    for attr in (S, P, O):
        counts = ring.counts(attr)
        if type(counts) is not PackedCounts:
            raise RingLayoutError(
                f"attribute {attr} uses {type(counts).__name__}; only "
                "PackedCounts (plain cumulative arrays) have a flat-buffer "
                "form"
            )
        arrays[f"c{attr}"] = counts.raw()
    meta = {
        "n": ring.n,
        "sigma": tuple(ring.sigma(a) for a in (S, P, O)),
        "leap_memo_size": ring._leap_memo_size,
        "wm": wm_meta,
    }
    return meta, arrays


# -- writing ---------------------------------------------------------------


class PackWriter:
    """Append-only pack writer (used whole-ring and by the bulk builder).

    Writes to ``<path>.tmp`` and atomically renames in :meth:`finish`,
    so a crash mid-write never leaves a file the open path would accept:
    either the final pack exists complete (footer in place) or only a
    ``.tmp`` orphan does.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._tmp = self.path + ".tmp"
        self._f = open(self._tmp, "wb")
        self._f.write(MAGIC)
        self._offset = len(MAGIC)
        self.table: dict[str, tuple[int, str, int]] = {}

    def add_array(self, name: str, arr: np.ndarray) -> None:
        """Append one array, 64-byte aligned, recording its table entry."""
        if name in self.table:
            raise ValueError(f"duplicate array {name!r}")
        arr = np.ascontiguousarray(arr)
        aligned = (self._offset + ALIGN - 1) & ~(ALIGN - 1)
        if aligned > self._offset:
            self._f.write(b"\0" * (aligned - self._offset))
        self.table[name] = (aligned, arr.dtype.str, int(arr.size))
        self._f.write(memoryview(arr).cast("B"))
        self._offset = aligned + arr.nbytes

    def add_array_from_file(
        self, name: str, path: str, dtype: str, length: int,
        block: int = 1 << 20,
    ) -> None:
        """Append one array by streaming its raw bytes from ``path``.

        The stitch path of the partitioned bulk builder: workers spill
        finished arrays to scratch files and the driver replays them
        here in canonical order — byte-identical to :meth:`add_array`
        of the materialised array, without ever holding it.
        """
        if name in self.table:
            raise ValueError(f"duplicate array {name!r}")
        dt = np.dtype(dtype)
        nbytes = dt.itemsize * int(length)
        actual = os.path.getsize(path)
        if actual != nbytes:
            raise ValueError(
                f"{path}: array {name!r} should be {nbytes} bytes, "
                f"file holds {actual}"
            )
        aligned = (self._offset + ALIGN - 1) & ~(ALIGN - 1)
        if aligned > self._offset:
            self._f.write(b"\0" * (aligned - self._offset))
        self.table[name] = (aligned, dt.str, int(length))
        with open(path, "rb") as src:
            while True:
                chunk = src.read(block)
                if not chunk:
                    break
                self._f.write(chunk)
        self._offset = aligned + nbytes

    def finish(self) -> int:
        """Write the footer, fsync, atomically publish; returns the size."""
        self._f.write(FOOTER)
        self._offset += len(FOOTER)
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        os.replace(self._tmp, self.path)
        return self._offset

    def abort(self) -> None:
        """Drop the partial ``.tmp`` file (crash/error cleanup)."""
        try:
            self._f.close()
        finally:
            if os.path.exists(self._tmp):
                os.unlink(self._tmp)


def write_pack_manifest(
    path,
    *,
    meta: dict,
    table: dict[str, tuple[int, str, int]],
    file_size: int,
    n_nodes: int,
    n_predicates: int,
    dictionary: Optional[Dictionary] = None,
) -> dict:
    """Write the frozen sidecar; shared by :func:`write_frozen_ring` and
    the streaming builder so both produce byte-identical manifests."""
    payload: dict = {
        "format_version": FROZEN_FORMAT_VERSION,
        "kind": FROZEN_KIND,
        "compressed": False,
        "sha256": file_checksum(path),
        "file_size": int(file_size),
        "n_triples": int(meta["n"]),
        "n_nodes": int(n_nodes),
        "n_predicates": int(n_predicates),
        "leap_memo_size": int(meta["leap_memo_size"]),
        "wm": {
            str(zone): {
                "n": int(wmm["n"]),
                "sigma": int(wmm["sigma"]),
                "levels": int(wmm["levels"]),
                "zeros": [int(z) for z in wmm["zeros"]],
                "level_meta": [
                    {"n": int(lm["n"]), "ones": int(lm["ones"])}
                    for lm in wmm["level_meta"]
                ],
            }
            for zone, wmm in meta["wm"].items()
        },
        "arrays": {
            name: [int(off), dtype, int(length)]
            for name, (off, dtype, length) in table.items()
        },
    }
    if dictionary is not None:
        payload["dictionary"] = {
            "nodes": list(dictionary.nodes()),
            "predicates": list(dictionary.predicates()),
        }
    with open(manifest_path(path), "w") as f:
        json.dump(payload, f)
    return payload


def write_frozen_ring(
    ring: Ring,
    path,
    *,
    n_nodes: int,
    n_predicates: int,
    dictionary: Optional[Dictionary] = None,
) -> dict:
    """Persist a built ring as a frozen pack; returns the manifest."""
    meta, arrays = collect_ring_arrays(ring)
    writer = PackWriter(path)
    try:
        for name, arr in arrays.items():
            writer.add_array(name, arr)
        size = writer.finish()
    except BaseException:
        writer.abort()
        raise
    return write_pack_manifest(
        path,
        meta=meta,
        table=writer.table,
        file_size=size,
        n_nodes=n_nodes,
        n_predicates=n_predicates,
        dictionary=dictionary,
    )


# -- layout validation (no array materialization) --------------------------


def is_frozen_manifest(manifest: Optional[dict]) -> bool:
    return bool(manifest) and manifest.get("kind") == FROZEN_KIND


def _dtype_size(dtype: str) -> int:
    if dtype not in _ALLOWED_DTYPES:
        raise IndexIntegrityError(
            "<manifest>", f"array dtype {dtype!r} is not a pack dtype"
        )
    return np.dtype(dtype).itemsize


def verify_frozen_layout(
    path, manifest: Optional[dict] = None, *, deep: bool = False
) -> list[str]:
    """Validate a pack's on-disk layout without materializing arrays.

    Pure arithmetic over the manifest's array table plus O(1) reads of
    the magic and footer — a truncated, torn or mis-offset pack fails
    here before a single array byte is interpreted.  With ``deep=True``
    the full SHA-256 is additionally streamed and compared (what
    ``repro verify`` runs).  Returns the list of checks performed.
    """
    path = str(path)
    if manifest is None:
        manifest = read_manifest(path)
    if not is_frozen_manifest(manifest):
        raise IndexIntegrityError(path, "manifest is not a frozen-ring pack")
    checks: list[str] = []

    def fail(reason: str) -> None:
        raise IndexIntegrityError(path, reason)

    if not os.path.exists(path):
        fail("pack file does not exist")
    actual_size = os.path.getsize(path)
    expected_size = int(manifest.get("file_size", -1))
    if actual_size != expected_size:
        fail(
            f"pack is {actual_size} bytes, manifest says {expected_size}: "
            "truncated or foreign file"
        )
    checks.append("file size")

    with open(path, "rb") as f:
        if f.read(len(MAGIC)) != MAGIC:
            fail("bad magic: not a frozen ring pack")
        f.seek(actual_size - len(FOOTER))
        if f.read(len(FOOTER)) != FOOTER:
            fail("missing footer: pack was torn mid-write")
    checks.append("magic + footer")

    table = manifest.get("arrays")
    if not isinstance(table, dict) or not table:
        fail("manifest carries no array table")
    lo, hi = len(MAGIC), actual_size - len(FOOTER)
    spans = []
    for name, entry in table.items():
        try:
            off, dtype, length = int(entry[0]), str(entry[1]), int(entry[2])
        except (TypeError, ValueError, IndexError):
            fail(f"malformed table entry for {name!r}")
        if off % ALIGN:
            fail(f"array {name!r} offset {off} is not {ALIGN}-byte aligned")
        nbytes = length * _dtype_size(dtype)
        if off < lo or off + nbytes > hi:
            fail(
                f"array {name!r} spans [{off}, {off + nbytes}) outside the "
                f"payload region [{lo}, {hi})"
            )
        spans.append((off, off + nbytes, name))
    spans.sort()
    for (_, end_a, name_a), (start_b, _, name_b) in zip(spans, spans[1:]):
        if start_b < end_a:
            fail(f"arrays {name_a!r} and {name_b!r} overlap")
    checks.append(f"array table bounds ({len(table)} arrays)")

    n = int(manifest.get("n_triples", -1))
    n_nodes = int(manifest.get("n_nodes", -1))
    n_predicates = int(manifest.get("n_predicates", -1))
    if n < 0 or n_nodes < 0 or n_predicates < 0:
        fail("manifest lacks n_triples/n_nodes/n_predicates")
    sigma = {S: n_nodes, P: n_predicates, O: n_nodes}
    wm_meta = manifest.get("wm", {})
    nwords = -(-max(n, 1) // 64)
    nsuper = -(-nwords // WORDS_PER_SUPERBLOCK)
    expected_paths = set()
    for zone in (S, P, O):
        wmm = wm_meta.get(str(zone))
        if wmm is None:
            fail(f"manifest lacks wavelet metadata for zone {zone}")
        want_sigma = sigma[prev_attr(zone)]
        if int(wmm["n"]) != n:
            fail(f"zone {zone} wavelet n {wmm['n']} != n_triples {n}")
        if int(wmm["sigma"]) != want_sigma:
            fail(
                f"zone {zone} alphabet {wmm['sigma']} != expected "
                f"{want_sigma}"
            )
        levels = max(1, (want_sigma - 1).bit_length())
        if int(wmm["levels"]) != levels or len(wmm["zeros"]) != levels:
            fail(f"zone {zone} level count inconsistent with its alphabet")
        if len(wmm["level_meta"]) != levels:
            fail(f"zone {zone} per-level metadata inconsistent")
        for level, lm in enumerate(wmm["level_meta"]):
            if int(lm["n"]) != n:
                fail(f"zone {zone} level {level} length {lm['n']} != {n}")
            if not 0 <= int(lm["ones"]) <= n:
                fail(f"zone {zone} level {level} ones count out of range")
            zeros = int(wmm["zeros"][level])
            if zeros + int(lm["ones"]) != n:
                fail(
                    f"zone {zone} level {level} zeros+ones "
                    f"{zeros}+{lm['ones']} != {n}"
                )
            prefix = f"wm{zone}.l{level}"
            for suffix, dtype, length in (
                ("words", "<u8", nwords),
                ("super", "<u8", nsuper + 1),
                ("rel", "<u2", nwords),
            ):
                name = f"{prefix}.{suffix}"
                entry = table.get(name)
                if entry is None:
                    fail(f"array table lacks {name!r}")
                if str(entry[1]) != dtype or int(entry[2]) != length:
                    fail(
                        f"array {name!r} is {entry[2]} x {entry[1]}, "
                        f"expected {length} x {dtype}"
                    )
                expected_paths.add(name)
    for attr in (S, P, O):
        name = f"c{attr}"
        entry = table.get(name)
        if entry is None:
            fail(f"array table lacks {name!r}")
        if str(entry[1]) != "<i8" or int(entry[2]) != sigma[attr] + 1:
            fail(
                f"array {name!r} is {entry[2]} x {entry[1]}, expected "
                f"{sigma[attr] + 1} x <i8"
            )
        expected_paths.add(name)
    extra = set(table) - expected_paths
    if extra:
        fail(f"array table has unexpected entries: {sorted(extra)}")
    checks.append("wavelet/C shape arithmetic")

    if deep:
        expected = manifest.get("sha256")
        if expected is not None:
            actual = file_checksum(path)
            if actual != expected:
                fail(
                    f"checksum mismatch (expected {expected[:12]}…, got "
                    f"{actual[:12]}…): pack corrupted"
                )
            checks.append("sha256 checksum")
    return checks


# -- opening ---------------------------------------------------------------


def _open_memmap(path) -> np.ndarray:
    """Map the pack read-only (the ``mmap.open`` fault site)."""
    return np.memmap(path, dtype=np.uint8, mode="r")


def _read_eager(path) -> np.ndarray:
    return np.fromfile(path, dtype=np.uint8)


def open_frozen_ring(
    path,
    manifest: Optional[dict] = None,
    *,
    mmap: bool = True,
    verify: bool = True,
    deep_verify: bool = False,
) -> tuple[Ring, dict]:
    """Open a frozen pack as a fully functional :class:`Ring`.

    ``mmap=True`` backs every array with a read-only ``np.memmap`` view
    — nothing is materialized, the OS pages in what queries touch;
    ``mmap=False`` performs one sequential read and serves the same
    views over a RAM buffer.  ``verify=True`` runs the O(1)+arithmetic
    layout validation before any array is interpreted (torn/truncated
    packs raise :class:`IndexIntegrityError` here, never return wrong
    answers); ``deep_verify=True`` additionally streams the SHA-256 —
    that reads the whole file, so it defeats the point of a cold mmap
    open and is reserved for explicit ``repro verify`` runs and eager
    loads.
    """
    path = str(path)
    if manifest is None:
        manifest = read_manifest(path)
    if not is_frozen_manifest(manifest):
        raise IndexIntegrityError(path, "manifest is not a frozen-ring pack")
    if verify:
        verify_frozen_layout(path, manifest, deep=deep_verify)
    try:
        buf = _open_memmap(path) if mmap else _read_eager(path)
    except IndexIntegrityError:
        raise
    except Exception as exc:
        raise IndexIntegrityError(
            path, f"cannot open pack: {type(exc).__name__}: {exc}"
        ) from exc

    table = manifest["arrays"]

    def view(name: str) -> np.ndarray:
        off, dtype, length = table[name]
        off, length = int(off), int(length)
        nbytes = length * _dtype_size(str(dtype))
        arr = buf[off : off + nbytes].view(np.dtype(str(dtype)))
        if arr.flags.writeable:  # eager buffers are writeable; views must not be
            arr.flags.writeable = False
        return arr

    n = int(manifest["n_triples"])
    seq = {}
    for zone in (S, P, O):
        wmm = manifest["wm"][str(zone)]
        prefix = f"wm{zone}"
        levels = [
            BitVector.from_components(
                view(f"{prefix}.l{level}.words"),
                view(f"{prefix}.l{level}.super"),
                view(f"{prefix}.l{level}.rel"),
                n=int(lm["n"]),
                ones=int(lm["ones"]),
            )
            for level, lm in enumerate(wmm["level_meta"])
        ]
        seq[zone] = WaveletMatrix.from_levels(
            levels,
            [int(z) for z in wmm["zeros"]],
            n=int(wmm["n"]),
            sigma=int(wmm["sigma"]),
        )
    counts = {
        attr: PackedCounts.from_raw(view(f"c{attr}"), validate=verify)
        for attr in (S, P, O)
    }
    n_nodes = int(manifest["n_nodes"])
    n_predicates = int(manifest["n_predicates"])
    ring = Ring.from_components(
        seq,
        counts,
        n=n,
        sigma=(n_nodes, n_predicates, n_nodes),
        compressed=False,
        leap_memo_size=int(manifest.get("leap_memo_size", 1 << 16)),
    )
    ring._pack_path = path  # provenance: lets owners re-open / report
    ring._pack_mmap = bool(mmap)
    return ring, manifest


def manifest_dictionary(manifest: dict) -> Optional[Dictionary]:
    """Rebuild the dictionary stored in a frozen manifest, if any."""
    meta = manifest.get("dictionary")
    if not meta:
        return None
    d = Dictionary()
    for label in meta.get("nodes", ()):
        d.add_node(label)
    for label in meta.get("predicates", ()):
        d.add_predicate(label)
    return d


class FrozenGraph(Graph):
    """Universe/dictionary view of a frozen ring: no materialized triples.

    The ring *is* the graph (§3.1.2): membership and iteration are
    answered from the index, and :attr:`triples` — needed only by
    legacy code paths — decodes on demand (O(n), so callers that merely
    want shapes never pay it).
    """

    def __init__(
        self,
        ring: Ring,
        n_nodes: int,
        n_predicates: int,
        dictionary: Optional[Dictionary] = None,
    ) -> None:
        super().__init__(
            np.empty((0, 3), dtype=np.int64),
            n_nodes=n_nodes,
            n_predicates=n_predicates,
            dictionary=dictionary,
        )
        self._frozen_ring = ring

    @property
    def n_triples(self) -> int:
        return self._frozen_ring.n

    def __len__(self) -> int:
        return self._frozen_ring.n

    def __iter__(self):
        for i in range(self._frozen_ring.n):
            yield self._frozen_ring.triple(i)

    def __contains__(self, triple) -> bool:
        s, p, o = (int(x) for x in triple)
        if not (
            0 <= s < self.n_nodes
            and 0 <= p < self.n_predicates
            and 0 <= o < self.n_nodes
        ):
            return False
        return self._frozen_ring.contains(s, p, o)

    @property
    def triples(self) -> np.ndarray:
        """Decode the whole triple set from the ring (materializes!)."""
        ring = self._frozen_ring
        n = ring.n
        if n == 0:
            return np.empty((0, 3), dtype=np.int64)
        cols = ring.decode_range(S, 0, n, 3)
        out = np.empty((n, 3), dtype=np.int64)
        for attr in (S, P, O):
            out[:, attr] = cols[attr]
        return out
