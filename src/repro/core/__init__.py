"""The paper's contribution: the ring index and Leapfrog TrieJoin.

- :class:`~repro.core.ring.Ring` — the bended-BWT index of §3, engineered
  per §4.1 as three per-attribute wavelet matrices plus three ``C``
  arrays.  ``compressed=True`` yields the **C-Ring** (RRR bitvectors).
- :class:`~repro.core.iterators.RingIterator` — the trie-iterator
  (Definition 2.1) over a ring: ``leap`` in ``O(log U)`` per Lemma 3.7.
- :class:`~repro.core.ltj.LeapfrogTrieJoin` — Algorithm 1, generic over
  any index exposing the iterator protocol, with the §4.3 on-the-fly
  variable ordering and the §4.2 lonely-variables optimisation.
- :class:`~repro.core.system.RingIndex` — the packaged query engine
  (build from a :class:`~repro.graph.Graph`, evaluate basic graph
  patterns, measure space).
"""

from repro.core.interface import (
    QueryCancelled,
    QueryError,
    QueryExecutionError,
    QueryTimeout,
    UnsupportedQueryError,
)
from repro.core.ltj import LeapfrogTrieJoin
from repro.core.ring import Ring
from repro.core.system import CompressedRingIndex, QueryResult, RingIndex

__all__ = [
    "CompressedRingIndex",
    "LeapfrogTrieJoin",
    "QueryCancelled",
    "QueryError",
    "QueryExecutionError",
    "QueryResult",
    "QueryTimeout",
    "Ring",
    "RingIndex",
    "UnsupportedQueryError",
]
