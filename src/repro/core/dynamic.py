"""Dynamic ring: insertions and deletions over static rings (§7).

The paper's conclusions sketch two routes to updates; this implements
the second: *"we can trade such a penalty factor for amortised update
times by taking the union of results over a small dynamic text index
where new triples are added, and a constant amount of increasing static
rings for handling space overflows [32].  Various static rings can be
merged periodically with the dynamic index to build a bigger ring."*

Concretely (an LSM shape):

- inserts land in a small **buffer** (indexed with sorted orders so it
  can serve LTJ leaps);
- when the buffer exceeds its threshold it is frozen into a new static
  :class:`~repro.core.ring.Ring`; rings of similar size are merged
  geometrically, keeping the component count logarithmic;
- deletes of buffered triples remove them outright; deletes of
  ring-resident triples become **tombstones**, folded away at the next
  merge touching their ring;
- queries run LTJ over a **union iterator**: a leap over the union is
  the minimum of the component leaps, with a live-ness check against
  the tombstones (skipping values whose only support was deleted).

Queries therefore stay worst-case optimal up to the (logarithmic)
component count and the tombstone volume — the amortised trade the
paper describes.

Concurrency model (the serving-layer contract):

- every mutation (``insert``/``delete``/``compact``) runs under one
  writer lock and bumps a monotonically increasing **epoch**;
- every query captures an immutable :class:`DynamicSnapshot` — the
  component rings, a frozen copy of the buffer and tombstones, and the
  epoch — under the same lock, then evaluates entirely against that
  snapshot.  A merge or freeze racing with the query swaps the
  component list *behind* it; the snapshot keeps the old (immutable)
  rings alive, so in-flight queries always see exactly the state of
  one epoch, never a torn mix;
- the union iterator charges the query's
  :class:`~repro.reliability.budget.ResourceBudget` one tick per
  component leap, per liveness probe, and per tombstone scanned, so op
  caps, deadlines and cancellation fire on the dynamic engine exactly
  as they do on the static ones.

Durability (WAL + checkpoints) and admission control live one layer up
in :mod:`repro.reliability.wal` and :mod:`repro.reliability.broker`.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.baselines.sorted_orders import ALL_ORDERS, OrderSet, OrderSetIterator
from repro.core.interface import first_candidate
from repro.core.iterators import RingIterator
from repro.core.ring import Ring
from repro.core.system import BaseLTJSystem
from repro.graph.dataset import Graph
from repro.graph.model import TriplePattern, Var
from repro.reliability.budget import ResourceBudget

DEFAULT_BUFFER_THRESHOLD = 1024

Triple = tuple[int, int, int]


def _matches(pattern: TriplePattern, triple: Triple) -> bool:
    binding: dict[Var, int] = {}
    for term, value in zip(pattern.terms, triple):
        if isinstance(term, Var):
            if binding.get(term, value) != value:
                return False
            binding[term] = value
        elif term != value:
            return False
    return True


class _UnionIterator:
    """LTJ iterator over several components minus tombstones.

    All work that the engine cannot see — the fan-out over component
    leaps, liveness probes, and tombstone scans — is charged to the
    query's :class:`ResourceBudget` here, one tick per elementary
    operation, matching how the static engines account theirs.
    """

    def __init__(
        self,
        components: list,
        tombstones: frozenset[Triple],
        pattern: TriplePattern,
        budget: Optional[ResourceBudget] = None,
    ) -> None:
        self._components = components
        self._tombstones = tombstones
        self._pattern = pattern
        self._budget = budget if budget is not None else ResourceBudget()
        self._binding: dict[Var, int] = {}
        self._stack: list[Var] = []

    @property
    def pattern(self) -> TriplePattern:
        return self._pattern

    def _current_pattern(self) -> TriplePattern:
        return self._pattern.substitute(self._binding)

    def _tomb_count(self, pattern: TriplePattern) -> int:
        if not self._tombstones:
            return 0
        self._budget.tick_many(len(self._tombstones))
        return sum(1 for t in self._tombstones if _matches(pattern, t))

    def count(self) -> int:
        self._budget.tick_many(len(self._components))
        total = sum(c.count() for c in self._components)
        return max(total - self._tomb_count(self._current_pattern()), 0)

    def leap(self, var: Var, c: int) -> Optional[int]:
        budget = self._budget
        while True:
            candidate: Optional[int] = None
            for comp in self._components:
                budget.tick()
                value = comp.leap(var, c)
                if value is not None and (candidate is None or value < candidate):
                    candidate = value
            if candidate is None:
                return None
            if not self._tombstones:
                return candidate
            # Live-ness: some matching triple must survive the tombstones.
            trial = self._current_pattern().substitute({var: candidate})
            support = 0
            for comp in self._components:
                budget.tick()
                comp.bind(var, candidate)
                support += comp.count()
                comp.unbind(var)
            if support - self._tomb_count(trial) > 0:
                return candidate
            c = candidate + 1

    def bind(self, var: Var, value: int) -> None:
        for comp in self._components:
            comp.bind(var, value)
        self._binding[var] = value
        self._stack.append(var)

    def unbind(self, var: Var) -> None:
        if not self._stack or self._stack[-1] != var:
            raise ValueError("unbind order violation")
        self._stack.pop()
        del self._binding[var]
        for comp in self._components:
            comp.unbind(var)

    def values(self, var: Var) -> Iterator[int]:
        c = 0
        while True:
            value = self.leap(var, c)
            if value is None:
                return
            yield value
            c = value + 1

    def preferred_lonely(self, candidates: Iterable[Var]) -> Var:
        return first_candidate(candidates)


class _EmptyIterator:
    """Iterator of an empty component (placates the union)."""

    def __init__(self, pattern: TriplePattern) -> None:
        self.pattern = pattern

    def count(self) -> int:
        return 0

    def leap(self, var: Var, c: int) -> Optional[int]:
        return None

    def bind(self, var: Var, value: int) -> None:
        pass

    def unbind(self, var: Var) -> None:
        pass

    def values(self, var: Var) -> Iterator[int]:
        return iter(())

    def preferred_lonely(self, candidates: Iterable[Var]) -> Var:
        return first_candidate(candidates)


class DynamicSnapshot:
    """An immutable view of the index at one epoch.

    Rings are immutable objects shared with the live index; the buffer
    and tombstone sets are frozen copies.  Queries built from a
    snapshot are unaffected by concurrent inserts, deletes, freezes and
    merges — they answer exactly as the index did at ``epoch``.
    """

    __slots__ = ("epoch", "rings", "buffer", "orders", "tombstones")

    def __init__(
        self,
        epoch: int,
        rings: tuple[Ring, ...],
        buffer: frozenset[Triple],
        orders: Optional[OrderSet],
        tombstones: frozenset[Triple],
    ) -> None:
        self.epoch = epoch
        self.rings = rings
        self.buffer = buffer
        self.orders = orders
        self.tombstones = tombstones

    @property
    def n_triples(self) -> int:
        return sum(r.n for r in self.rings) + len(self.buffer) - len(self.tombstones)

    def iterator(
        self,
        pattern: TriplePattern,
        budget: Optional[ResourceBudget] = None,
    ) -> _UnionIterator:
        components: list = [RingIterator(r, pattern) for r in self.rings]
        if self.buffer:
            components.append(OrderSetIterator(self.orders, pattern))
        if not components:
            components.append(_EmptyIterator(pattern))
        return _UnionIterator(components, self.tombstones, pattern, budget)

    def live_triples(self) -> set[Triple]:
        """Materialise the snapshot's triples as plain tuples."""
        live: set[Triple] = set(self.buffer)
        for ring in self.rings:
            live.update(ring.triple(i) for i in range(ring.n))
        live -= self.tombstones
        return live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicSnapshot(epoch={self.epoch}, rings={len(self.rings)}, "
            f"buffer={len(self.buffer)}, tombstones={len(self.tombstones)})"
        )


class DynamicRingIndex(BaseLTJSystem):
    """A ring index supporting ``insert`` and ``delete``.

    Parameters
    ----------
    graph:
        Initial contents (may be empty).
    buffer_threshold:
        Buffered inserts before the buffer freezes into a ring.
    auto_compact:
        Freeze/merge automatically when thresholds are crossed (the
        default).  ``False`` defers all compaction to explicit
        :meth:`compact` / :meth:`maintenance` calls — the mode the
        query broker uses to run merges on a background thread.
    """

    name = "DynamicRing"

    def __init__(
        self,
        graph: Graph,
        buffer_threshold: int = DEFAULT_BUFFER_THRESHOLD,
        use_lonely: bool = True,
        use_ordering: bool = True,
        auto_compact: bool = True,
        policy: str = "static",
    ) -> None:
        super().__init__(
            graph,
            use_lonely=use_lonely,
            use_ordering=use_ordering,
            policy=policy,
        )
        self._n_nodes = graph.n_nodes
        self._n_predicates = graph.n_predicates
        self._threshold = max(buffer_threshold, 8)
        self._auto_compact = auto_compact
        self._rings: list[Ring] = []
        if graph.n_triples:
            self._rings.append(Ring(graph))
        self._buffer: set[Triple] = set()
        self._buffer_orders: Optional[OrderSet] = None
        self._tombstones: set[Triple] = set()
        self._lock = threading.RLock()
        self._epoch = 0
        self._tls = threading.local()

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_components(
        cls,
        universe: Graph,
        rings: Iterable[Ring],
        buffer: Iterable[Triple],
        tombstones: Iterable[Triple],
        buffer_threshold: int = DEFAULT_BUFFER_THRESHOLD,
        epoch: int = 0,
        **kwargs,
    ) -> "DynamicRingIndex":
        """Reassemble an index from persisted components (recovery path).

        ``universe`` fixes the id universes (and carries the dictionary,
        if any) but contributes no triples of its own; the contents come
        from ``rings``, ``buffer`` and ``tombstones`` exactly as a
        checkpoint captured them.  ``epoch`` seeds the epoch counter so
        it stays monotone across restarts (checkpoint directories are
        named by epoch).
        """
        if universe.n_triples:
            raise ValueError(
                "from_components wants an empty universe graph; initial "
                "triples belong in the ring components"
            )
        index = cls(universe, buffer_threshold=buffer_threshold, **kwargs)
        index._rings = list(rings)
        index._buffer = {tuple(int(v) for v in t) for t in buffer}
        index._tombstones = {tuple(int(v) for v in t) for t in tombstones}
        index._buffer_orders = None
        index._epoch = int(epoch)
        return index

    # -- sizes -----------------------------------------------------------------

    @property
    def n_triples(self) -> int:
        with self._lock:
            return (
                sum(r.n for r in self._rings)
                + len(self._buffer)
                - len(self._tombstones)
            )

    @property
    def n_components(self) -> int:
        with self._lock:
            return len(self._rings) + (1 if self._buffer else 0)

    @property
    def epoch(self) -> int:
        """Monotonic version counter; bumped by every mutation."""
        return self._epoch

    def cache_generation(self) -> int:
        """Serving-cache invalidation token: the epoch.

        Every ``insert``/``delete`` *and* every compaction bumps the
        epoch, so generation-tagged cache entries (see
        :mod:`repro.cache`) go stale on any visible write — compaction
        included, which is logically content-preserving but swaps the
        component set cached plans and statistics were measured
        against.
        """
        return self._epoch

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> DynamicSnapshot:
        """Capture an immutable view of the current epoch.

        O(|buffer| + |tombstones|) set copies plus (amortised) the
        buffer's :class:`OrderSet`, which is cached until the next
        buffer mutation and shared by every snapshot of the epoch.
        """
        with self._lock:
            orders = self._orders() if self._buffer else None
            return DynamicSnapshot(
                self._epoch,
                tuple(self._rings),
                frozenset(self._buffer),
                orders,
                frozenset(self._tombstones),
            )

    def _orders(self) -> OrderSet:
        if self._buffer_orders is None:
            self._buffer_orders = OrderSet(
                self._graph_of(sorted(self._buffer)), ALL_ORDERS
            )
        return self._buffer_orders

    # -- updates ----------------------------------------------------------------

    def _contains_static(self, triple: Triple) -> bool:
        return any(r.contains(*triple) for r in self._rings)

    def contains(self, s: int, p: int, o: int) -> bool:
        triple = (int(s), int(p), int(o))
        with self._lock:
            if triple in self._buffer:
                return True
            if triple in self._tombstones:
                return False
            return self._contains_static(triple)

    def insert(self, s: int, p: int, o: int) -> bool:
        """Add a triple; returns ``False`` when it was already present.

        Node/predicate ids must fit the universes fixed at construction
        (growing the dictionary means growing the wavelet alphabets,
        which a static ring cannot do — the paper's structure shares
        this constraint).
        """
        triple = (int(s), int(p), int(o))
        self._check_ids(triple)
        with self._lock:
            if triple in self._tombstones:
                self._tombstones.discard(triple)
                self._epoch += 1
                return True
            if triple in self._buffer or self._contains_static(triple):
                return False
            self._buffer.add(triple)
            self._buffer_orders = None
            self._epoch += 1
            if self._auto_compact and len(self._buffer) >= self._threshold:
                self._compact()
            return True

    def delete(self, s: int, p: int, o: int) -> bool:
        """Remove a triple; returns ``False`` when it was absent."""
        triple = (int(s), int(p), int(o))
        with self._lock:
            if triple in self._buffer:
                self._buffer.discard(triple)
                self._buffer_orders = None
                self._epoch += 1
                return True
            if triple in self._tombstones:
                return False
            if self._contains_static(triple):
                self._tombstones.add(triple)
                self._epoch += 1
                if self._auto_compact and len(self._tombstones) >= self._threshold:
                    self._compact(full=True)
                return True
            return False

    def insert_labelled(self, s: str, p: str, o: str) -> bool:
        """Label-level insert (requires a dictionary-backed graph).

        Labels must already be interned: a static ring's wavelet
        alphabets cannot grow, so genuinely new constants require a
        rebuild — the same constraint the paper's structure has.
        """
        return self.insert(*self._encode_labels(s, p, o))

    def delete_labelled(self, s: str, p: str, o: str) -> bool:
        """Label-level delete (requires a dictionary-backed graph)."""
        try:
            triple = self._encode_labels(s, p, o)
        except KeyError:
            return False  # unknown label: nothing to delete
        return self.delete(*triple)

    def _encode_labels(self, s: str, p: str, o: str) -> Triple:
        d = self.graph.dictionary
        if d is None:
            raise ValueError("label-level updates require a dictionary")
        return (d.node_id(s), d.predicate_id(p), d.node_id(o))

    def _check_ids(self, triple: Triple) -> None:
        s, p, o = triple
        if not (0 <= s < self._n_nodes and 0 <= o < self._n_nodes):
            raise ValueError("node id outside the graph's universe")
        if not 0 <= p < self._n_predicates:
            raise ValueError("predicate id outside the graph's universe")

    # -- compaction --------------------------------------------------------------

    def compact(self, full: bool = False) -> None:
        """Freeze the buffer and run geometric merges, under the lock.

        Safe to call from a background thread: in-flight queries hold
        snapshots of the pre-merge components and finish against those;
        only queries admitted after the swap see the merged layout.
        """
        with self._lock:
            self._compact(full=full)

    @property
    def needs_compaction(self) -> bool:
        """Whether a maintenance pass would do any work right now."""
        with self._lock:
            return (
                len(self._buffer) >= self._threshold
                or len(self._tombstones) >= self._threshold
                or len(self._rings) > 8
            )

    def maintenance(self) -> bool:
        """One background maintenance step; returns whether it compacted."""
        with self._lock:
            if not self.needs_compaction:
                return False
            self._compact(full=len(self._tombstones) >= self._threshold)
            return True

    def _compact(self, full: bool = False) -> None:
        """Freeze the buffer into a ring; merge similar-sized rings.

        ``full=True`` merges *everything* (used to fold tombstones away).
        Caller holds the writer lock (public entry points acquire it).
        """
        if self._buffer:
            self._rings.append(Ring(self._graph_of(sorted(self._buffer))))
            self._buffer.clear()
            self._buffer_orders = None
        if full:
            merged = set()
            for ring in self._rings:
                merged.update(ring.triple(i) for i in range(ring.n))
            merged -= self._tombstones
            self._tombstones.clear()
            self._rings = (
                [Ring(self._graph_of(sorted(merged)))] if merged else []
            )
            self._epoch += 1
            return
        # Geometric merging: keep sizes growing by at least 2x.
        self._rings.sort(key=lambda r: r.n)
        while len(self._rings) >= 2 and (
            self._rings[-1].n < 2 * self._rings[-2].n or len(self._rings) > 8
        ):
            a = self._rings.pop()
            b = self._rings.pop()
            triples = {a.triple(i) for i in range(a.n)}
            triples.update(b.triple(i) for i in range(b.n))
            survivors = triples - self._tombstones
            self._tombstones -= triples
            if survivors:
                self._rings.append(Ring(self._graph_of(sorted(survivors))))
            self._rings.sort(key=lambda r: r.n)
        # Retire memoised leaps on the retained rings.  Component rings
        # are immutable, so their memos could never serve a *wrong*
        # answer — but the component set just changed under them, and
        # bumping the generation here guarantees no cached leap predates
        # the current epoch even if a future ring variant (shared-memory
        # re-attach, in-place patching) breaks that immutability
        # assumption.  Cost: one counter bump + dict clear per ring.
        for ring in self._rings:
            ring.invalidate_leap_memo()
        self._epoch += 1

    def _graph_of(self, triples) -> Graph:
        arr = np.array(triples, dtype=np.int64).reshape(-1, 3)
        return Graph(
            arr, n_nodes=self._n_nodes, n_predicates=self._n_predicates
        )

    # -- queries ----------------------------------------------------------------

    def _solutions(self, bgp, timeout, **options):
        # Pin one snapshot (and the query's budget) for the whole
        # evaluation: the engine's iterator-factory calls below land on
        # it via the thread-local stack, so every pattern iterator of
        # this query sees the same epoch even while writers and the
        # background compactor run.
        budget = ResourceBudget.coerce(timeout)
        snap = self.snapshot()
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append((snap, budget))
        try:
            yield from self._engine.evaluate(bgp, timeout=budget, **options)
        finally:
            stack.pop()

    def iterator(self, pattern: TriplePattern) -> _UnionIterator:
        stack = getattr(self._tls, "stack", None)
        if stack:
            snap, budget = stack[-1]
        else:  # direct engine use outside evaluate(): fresh snapshot
            snap, budget = self.snapshot(), None
        return snap.iterator(pattern, budget)

    def to_graph(self) -> Graph:
        """Materialise the current live triples."""
        return self._graph_of(sorted(self.snapshot().live_triples()))

    def size_in_bits(self) -> int:
        with self._lock:
            ring_bits = sum(r.size_in_bits() for r in self._rings)
            buffer_bits = 3 * 64 * len(self._buffer)
            tomb_bits = 3 * 64 * len(self._tombstones)
            if self._buffer_orders is not None:
                buffer_bits += self._buffer_orders.size_in_bits()
            return ring_bits + buffer_bits + tomb_bits + 256
