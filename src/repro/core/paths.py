"""Regular path queries over the ring (§7: "Supporting further query
operators, such as … regular path queries").

A regular path expression over predicate labels::

    expr  := alt
    alt   := seq ('|' seq)*
    seq   := unary ('/' unary)*
    unary := atom ('*' | '+' | '?')*
    atom  := predicate | '^' atom | '(' expr ')'

``^p`` traverses ``p`` backwards.  The expression compiles to a Thompson
NFA; evaluation is a BFS over the product of graph nodes and NFA states.
Neighbour enumeration is served by the ring itself — forward edges
``(v, p, ?o)`` via a backward leap from the (s, p) run and inverse edges
``(?s, p, v)`` via the (p, o) run — so no adjacency lists are
materialised; the index *is* the graph (§3.1.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Union

from repro.core.ring import Ring
from repro.graph.model import O, P, S

# -- expression AST --------------------------------------------------------


@dataclass(frozen=True)
class Pred:
    """One predicate step; ``inverse`` walks object→subject."""

    label: Union[str, int]
    inverse: bool = False


@dataclass(frozen=True)
class Seq:
    """Concatenation: ``a/b``."""

    parts: tuple


@dataclass(frozen=True)
class Alt:
    """Alternation: ``a|b``."""

    options: tuple


@dataclass(frozen=True)
class Star:
    """Kleene star: ``a*`` (zero or more)."""

    inner: object


@dataclass(frozen=True)
class Plus:
    """One or more: ``a+``."""

    inner: object


@dataclass(frozen=True)
class Opt:
    """Optional: ``a?``."""

    inner: object


class PathSyntaxError(ValueError):
    """Malformed regular path expression."""


def parse_path(text: str):
    """Parse the textual syntax above into an AST."""
    tokens = _tokenize(text)
    expr, pos = _parse_alt(tokens, 0)
    if pos != len(tokens):
        raise PathSyntaxError(f"trailing input at token {pos}: {tokens[pos:]}")
    return expr


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "()/|*+?^":
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < len(text) and (text[j] not in "()/|*+?^" and
                                     not text[j].isspace()):
                j += 1
            tokens.append(text[i:j])
            i = j
    if not tokens:
        raise PathSyntaxError("empty path expression")
    return tokens


def _parse_alt(tokens, pos):
    parts = []
    expr, pos = _parse_seq(tokens, pos)
    parts.append(expr)
    while pos < len(tokens) and tokens[pos] == "|":
        expr, pos = _parse_seq(tokens, pos + 1)
        parts.append(expr)
    return (parts[0] if len(parts) == 1 else Alt(tuple(parts))), pos


def _parse_seq(tokens, pos):
    parts = []
    expr, pos = _parse_unary(tokens, pos)
    parts.append(expr)
    while pos < len(tokens) and tokens[pos] == "/":
        expr, pos = _parse_unary(tokens, pos + 1)
        parts.append(expr)
    return (parts[0] if len(parts) == 1 else Seq(tuple(parts))), pos


def _parse_unary(tokens, pos):
    expr, pos = _parse_atom(tokens, pos)
    while pos < len(tokens) and tokens[pos] in "*+?":
        if tokens[pos] == "*":
            expr = Star(expr)
        elif tokens[pos] == "+":
            expr = Plus(expr)
        else:
            expr = Opt(expr)
        pos += 1
    return expr, pos


def _parse_atom(tokens, pos):
    if pos >= len(tokens):
        raise PathSyntaxError("unexpected end of expression")
    token = tokens[pos]
    if token == "(":
        expr, pos = _parse_alt(tokens, pos + 1)
        if pos >= len(tokens) or tokens[pos] != ")":
            raise PathSyntaxError("unbalanced parenthesis")
        return expr, pos + 1
    if token == "^":
        expr, pos = _parse_atom(tokens, pos + 1)
        return _invert(expr), pos
    if token in ")/|*+?":
        raise PathSyntaxError(f"unexpected token {token!r}")
    return Pred(token), pos + 1


def _invert(expr):
    if isinstance(expr, Pred):
        return Pred(expr.label, not expr.inverse)
    if isinstance(expr, Seq):
        return Seq(tuple(_invert(p) for p in reversed(expr.parts)))
    if isinstance(expr, Alt):
        return Alt(tuple(_invert(p) for p in expr.options))
    if isinstance(expr, Star):
        return Star(_invert(expr.inner))
    if isinstance(expr, Plus):
        return Plus(_invert(expr.inner))
    if isinstance(expr, Opt):
        return Opt(_invert(expr.inner))
    raise TypeError(f"unknown node {expr!r}")


# -- Thompson NFA ------------------------------------------------------------


@dataclass
class _NFA:
    """ε-NFA with predicate-labelled transitions."""

    start: int
    accept: int
    # state -> list of (label: Pred | None, target)
    edges: dict[int, list[tuple[Optional[Pred], int]]] = field(
        default_factory=dict
    )

    def add(self, src: int, label: Optional[Pred], dst: int) -> None:
        self.edges.setdefault(src, []).append((label, dst))


def compile_nfa(expr) -> _NFA:
    """Thompson construction: path AST -> epsilon-NFA."""
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def build(node) -> tuple[int, int, list]:
        edges: list = []
        if isinstance(node, Pred):
            a, b = fresh(), fresh()
            edges.append((a, node, b))
            return a, b, edges
        if isinstance(node, Seq):
            first_start = None
            prev_accept = None
            for part in node.parts:
                s, a, e = build(part)
                edges.extend(e)
                if first_start is None:
                    first_start = s
                else:
                    edges.append((prev_accept, None, s))
                prev_accept = a
            return first_start, prev_accept, edges
        if isinstance(node, Alt):
            a, b = fresh(), fresh()
            for option in node.options:
                s, t, e = build(option)
                edges.extend(e)
                edges.append((a, None, s))
                edges.append((t, None, b))
            return a, b, edges
        if isinstance(node, (Star, Plus, Opt)):
            s, t, e = build(node.inner)
            edges.extend(e)
            a, b = fresh(), fresh()
            edges.append((a, None, s))
            edges.append((t, None, b))
            if isinstance(node, (Star, Opt)):
                edges.append((a, None, b))
            if isinstance(node, (Star, Plus)):
                edges.append((t, None, s))
            return a, b, edges
        raise TypeError(f"unknown node {node!r}")

    start, accept, edge_list = build(expr)
    nfa = _NFA(start, accept)
    for src, label, dst in edge_list:
        nfa.add(src, label, dst)
    return nfa


def _epsilon_closure(nfa: _NFA, states: Iterable[int]) -> frozenset[int]:
    seen = set(states)
    stack = list(seen)
    while stack:
        state = stack.pop()
        for label, target in nfa.edges.get(state, ()):
            if label is None and target not in seen:
                seen.add(target)
                stack.append(target)
    return frozenset(seen)


# -- evaluation over the ring ---------------------------------------------------


class PathEvaluator:
    """BFS product-automaton evaluation of regular path queries."""

    def __init__(self, ring: Ring, predicate_resolver=None) -> None:
        self._ring = ring
        self._resolve = predicate_resolver or (lambda label: label)

    def _pred_id(self, pred: Pred) -> Optional[int]:
        try:
            value = self._resolve(pred.label)
        except KeyError:
            return None
        return int(value)

    def _neighbours(self, node: int, pred: Pred) -> Iterator[int]:
        """Successors of ``node`` over one predicate step, via the ring."""
        ring = self._ring
        p = self._pred_id(pred)
        if p is None:
            return
        if pred.inverse:
            constants = {P: p, O: node}
        else:
            constants = {S: node, P: p}
        state = ring.pattern_range(constants)
        if state is None:
            return
        zone, lo, hi = state
        # The free attribute cyclically precedes the run start: enumerate
        # it backwards with the wavelet matrix's distinct operation.
        wm = ring.zone_sequence(zone)
        for value, _count in wm.distinct_in_range(lo, hi):
            yield value

    def reachable(self, source: int, expr) -> set[int]:
        """All nodes reachable from ``source`` along paths matching
        ``expr``.

        Product BFS over (graph node, NFA state) pairs; ε transitions
        are walked like ordinary edges, so no closure precomputation is
        needed.
        """
        nfa = compile_nfa(expr)
        start = (source, nfa.start)
        visited: set[tuple[int, int]] = {start}
        frontier: deque[tuple[int, int]] = deque([start])
        out: set[int] = set()
        if nfa.start == nfa.accept:
            out.add(source)
        while frontier:
            node, state = frontier.popleft()
            for label, target in nfa.edges.get(state, ()):
                if label is None:
                    candidates = [(node, target)]
                else:
                    candidates = [
                        (nbr, target) for nbr in self._neighbours(node, label)
                    ]
                for pair in candidates:
                    if pair in visited:
                        continue
                    visited.add(pair)
                    frontier.append(pair)
                    if pair[1] == nfa.accept:
                        out.add(pair[0])
        return out

    def pairs(self, expr, sources: Iterable[int]) -> Iterator[tuple[int, int]]:
        """``(source, target)`` pairs for each source (documented as the
        O(sources × states × edges) product construction)."""
        for source in sources:
            for target in self.reachable(source, expr):
                yield (source, target)
