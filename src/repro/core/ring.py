"""The ring index (§3–§4 of the paper).

Representation (§4.1, the split form): instead of one wavelet tree over
the shifted 3n-symbol bended BWT, the ring keeps one wavelet matrix per
zone with identifiers in non-shifted form:

- ``seq[S]``  — the *objects* of the triples sorted by ``(s, p, o)``
  (the paper's ``BWT_o``),
- ``seq[P]``  — the *subjects* sorted by ``(p, o, s)`` (``BWT_s``),
- ``seq[O]``  — the *predicates* sorted by ``(o, s, p)`` (``BWT_p``),

plus three cumulative-count arrays ``C[S]``, ``C[P]``, ``C[O]`` over the
subject, predicate and object values respectively.  Zone ``z``'s sequence
holds the attribute that *cyclically precedes* ``z`` (the BWT symbol), so
an LF step moves S → O → P → S — one step backwards around the cyclic
triple (Lemma 3.3).  No suffix array is ever materialised: because the
text is a concatenation of sorted stratified triples, the three zones are
obtained directly by three sorts (see DESIGN.md §6.1; the equivalence
with Definition 3.1 is asserted by the test-suite against
:mod:`repro.text`).

The ring *replaces* the graph: :meth:`Ring.triple` recovers any triple in
``O(log U)``, exactly as §3.1.2 describes.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.core.counts import make_counts
from repro.graph.dataset import Graph
from repro.graph.model import O, P, S
from repro.perf.counters import KERNEL_COUNTERS as _perf
from repro.sequences.wavelet_matrix import WaveletMatrix

ZoneState = tuple[int, int, int]  # (zone attribute, lo, hi) with [lo, hi)

_MEMO_MISS = object()  # sentinel: None is a cacheable leap answer


def prev_attr(attr: int) -> int:
    """Attribute cyclically preceding ``attr`` (o before s, s before p…)."""
    return (attr - 1) % 3


def next_attr(attr: int) -> int:
    """Attribute cyclically following ``attr``."""
    return (attr + 1) % 3


class Ring:
    """Bended-BWT index over a :class:`~repro.graph.Graph`.

    Parameters
    ----------
    graph:
        Source triples (sorted, deduplicated by the Graph container).
    compressed:
        Use RRR bitvectors inside the wavelet matrices — the **C-Ring**.
    block_size:
        RRR block size (paper's sdsl ``b``; 15 ≈ the paper's ``b=16``
        C-Ring, 63 ≈ its ``b=64`` compression-study variant).
    """

    def __init__(
        self,
        graph: Graph,
        compressed: bool = False,
        block_size: int = 15,
        succinct_counts: bool = False,
        leap_memo_size: int = 1 << 16,
    ) -> None:
        triples = graph.triples
        self._n = len(triples)
        # LRU memo for backward leaps, keyed (generation, zone, lo, hi, c).
        # The ring is immutable, so memoisation is sound for any one
        # generation; repeated seeks inside one query (leapfrog revisits
        # the same ranges as it cycles through the iterators) hit instead
        # of re-descending the wavelet matrix.  The generation counter
        # scopes the cache: owners that swap or mutate the backing state
        # (the dynamic ring's compaction, a re-attached shared-memory
        # segment) call :meth:`invalidate_leap_memo`, after which no key
        # of an earlier generation can ever be served again.
        # ``leap_memo_size=0`` disables memoisation.
        self._leap_memo: OrderedDict[
            tuple[int, int, int, int, int], Optional[int]
        ]
        self._leap_memo = OrderedDict()
        self._leap_generation = 0
        self._leap_memo_size = leap_memo_size
        self._leap_memo_hits = 0
        self._leap_memo_misses = 0
        self._sigma = (graph.n_nodes, graph.n_predicates, graph.n_nodes)
        self._compressed = compressed

        # Zone S holds objects in (s, p, o) order; Graph stores triples
        # already sorted that way.
        spo = triples
        pos = triples[np.lexsort((triples[:, S], triples[:, O], triples[:, P]))]
        osp = triples[np.lexsort((triples[:, P], triples[:, S], triples[:, O]))]
        self._seq = {
            S: WaveletMatrix(
                spo[:, O], self._sigma[O], compressed, block_size
            ),
            P: WaveletMatrix(
                pos[:, S], self._sigma[S], compressed, block_size
            ),
            O: WaveletMatrix(
                osp[:, P], self._sigma[P], compressed, block_size
            ),
        }
        self._c = {
            attr: make_counts(
                triples[:, attr], self._sigma[attr], succinct_counts
            )
            for attr in (S, P, O)
        }

    @classmethod
    def from_components(
        cls,
        seq: dict,
        counts: dict,
        *,
        n: int,
        sigma: tuple[int, int, int],
        compressed: bool = False,
        leap_memo_size: int = 1 << 16,
    ) -> "Ring":
        """Assemble a ring from prebuilt zone sequences and C components.

        The copy-free path shared by the shared-memory attach
        (:func:`repro.parallel.shm.attach_ring`), the frozen
        ``mmap_mode`` open (:mod:`repro.core.frozen`) and the streaming
        bulk builder: ``seq`` maps zones to wavelet matrices, ``counts``
        maps attributes to C components.  Nothing is copied; the result
        has a fresh leap memo at generation 0.
        """
        ring = cls.__new__(cls)
        ring._n = int(n)
        ring._sigma = tuple(int(x) for x in sigma)
        ring._compressed = bool(compressed)
        if set(seq) != {S, P, O} or set(counts) != {S, P, O}:
            raise ValueError("seq/counts must cover exactly the zones S, P, O")
        ring._seq = dict(seq)
        ring._c = dict(counts)
        ring._leap_memo = OrderedDict()
        ring._leap_generation = 0
        ring._leap_memo_size = int(leap_memo_size)
        ring._leap_memo_hits = 0
        ring._leap_memo_misses = 0
        return ring

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of indexed triples."""
        return self._n

    @property
    def compressed(self) -> bool:
        return self._compressed

    def sigma(self, attr: int) -> int:
        """Universe size of attribute ``attr``."""
        return self._sigma[attr]

    def zone_sequence(self, zone: int) -> WaveletMatrix:
        """The wavelet matrix of ``zone`` (symbols of ``prev_attr(zone)``)."""
        return self._seq[zone]

    def c_array(self, attr: int) -> np.ndarray:
        """Cumulative counts of attribute ``attr``'s values (raw array)."""
        return self._c[attr].raw()

    def counts(self, attr: int):
        """The C component itself (plain or Elias–Fano layout)."""
        return self._c[attr]

    # -- LF machinery -----------------------------------------------------------

    def backward_step(
        self, zone: int, lo: int, hi: int, symbol: int
    ) -> ZoneState:
        """Batch LF step (Eq. 2): prepend ``symbol`` to the bound run.

        Maps the range ``[lo, hi)`` of zone ``zone`` to the range of
        rotations additionally starting with ``symbol`` in zone
        ``prev_attr(zone)``.  May return an empty range.
        """
        target = prev_attr(zone)
        wm = self._seq[zone]
        base = self._c[target].access(symbol)
        return (target, base + wm.rank(symbol, lo), base + wm.rank(symbol, hi))

    def attribute_range(self, attr: int, value: int) -> ZoneState:
        """Range of rotations starting with ``value`` at attribute ``attr``."""
        c = self._c[attr]
        if not 0 <= value < self._sigma[attr]:
            return (attr, 0, 0)
        return (attr, c.access(value), c.access(value + 1))

    def pattern_range(self, constants: dict[int, int]) -> Optional[ZoneState]:
        """Lemma 3.6: locate the occurrences of a triple pattern.

        ``constants`` maps bound positions to values.  Returns the zone
        state whose range points at the occurrences (the zone is the
        first bound attribute of the cyclic run), or ``None`` when the
        pattern has no occurrences.  With no constants the full zone S is
        returned (any zone would do).
        """
        if not constants:
            return (S, 0, self._n)
        for attr, value in constants.items():
            if not 0 <= value < self._sigma[attr]:
                return None
        run = self._cyclic_run(tuple(sorted(constants)))
        value = constants[run[-1]]
        state = self.attribute_range(run[-1], value)
        if state[1] >= state[2]:
            return None
        for attr in reversed(run[:-1]):
            state = self.backward_step(state[0], state[1], state[2], constants[attr])
            if state[1] >= state[2]:
                return None
        return state

    @staticmethod
    def _cyclic_run(positions: tuple[int, ...]) -> tuple[int, ...]:
        """Order bound positions as a cyclically contiguous run.

        Any subset of {S, P, O} is contiguous on a 3-cycle; the run start
        is chosen so the whole subset follows consecutively.
        """
        if positions == (S, O):
            return (O, S)  # cyclically o precedes s
        return positions

    # -- leaps (Lemma 3.7) ---------------------------------------------------------

    def next_value(self, attr: int, c: int) -> Optional[int]:
        """Smallest value ``>= c`` of attribute ``attr`` present in the
        graph (the unconstrained leap, answered from ``C`` alone)."""
        if c < 0:
            c = 0
        if c >= self._sigma[attr]:
            return None
        return self._c[attr].next_nonempty(c)

    def backward_leap(
        self, zone: int, lo: int, hi: int, c: int
    ) -> Optional[int]:
        """Smallest value ``>= c`` of ``prev_attr(zone)`` co-occurring with
        the bound run: range-next-value on the zone's wavelet matrix,
        behind the LRU leap memo."""
        if self._leap_memo_size <= 0:
            return self._seq[zone].next_in_range(lo, hi, c)
        memo = self._leap_memo
        key = (self._leap_generation, zone, lo, hi, c)
        value = memo.get(key, _MEMO_MISS)
        if value is not _MEMO_MISS:
            memo.move_to_end(key)
            self._leap_memo_hits += 1
            if _perf.enabled:
                _perf.record("ring.leap_memo_hit", 1)
            return value
        self._leap_memo_misses += 1
        value = self._seq[zone].next_in_range(lo, hi, c)
        memo[key] = value
        if len(memo) > self._leap_memo_size:
            memo.popitem(last=False)
        return value

    def leap_memo_stats(self) -> dict[str, int]:
        """Hit/miss/size counters of the backward-leap memo."""
        return {
            "hits": self._leap_memo_hits,
            "misses": self._leap_memo_misses,
            "entries": len(self._leap_memo),
            "capacity": self._leap_memo_size,
            "generation": self._leap_generation,
        }

    def clear_leap_memo(self) -> None:
        """Drop every memoised leap (counters reset too)."""
        self._leap_memo.clear()
        self._leap_memo_hits = 0
        self._leap_memo_misses = 0

    @property
    def leap_generation(self) -> int:
        """Generation scoping the leap memo (see :meth:`backward_leap`)."""
        return self._leap_generation

    def invalidate_leap_memo(self) -> None:
        """Retire every memoised leap by bumping the generation.

        Called by owners whose mutation paths could otherwise leave the
        memo answering for a state the index no longer has (the dynamic
        ring's update/compaction paths, shared-memory re-attachment).
        Entries of older generations become unreachable immediately —
        the memo is also cleared so they don't occupy LRU capacity.
        """
        self._leap_generation += 1
        self._leap_memo.clear()

    def forward_leap(self, attr: int, d: int, c: int) -> Optional[int]:
        """Smallest value ``>= c`` of ``next_attr(attr)`` among triples
        whose ``attr`` equals ``d`` (§3.2.2, the forward case).

        In zone ``B = next_attr(attr)`` the BWT symbols are ``attr``
        values; the first occurrence of ``d`` at a zone-B position whose
        rotation starts with a value ``>= c`` names the answer, recovered
        by binary search on ``C[B]``.
        """
        target = next_attr(attr)
        if c < 0:
            c = 0
        if c >= self._sigma[target]:
            return None
        wm = self._seq[target]
        start = self._c[target].access(c)
        before = wm.rank(d, start)
        if before >= wm.rank(d, self._n):
            return None
        q = wm.select(d, before + 1)
        value = self._c[target].bucket_of(q)
        return value if value < self._sigma[target] else None

    # -- triple retrieval --------------------------------------------------------

    def triple(self, i: int) -> tuple[int, int, int]:
        """Recover the i-th triple in ``(s, p, o)`` order in O(log U).

        This is why the ring *replaces* the raw data (§3.1.2): the index
        is the graph.
        """
        if not 0 <= i < self._n:
            raise IndexError(f"triple index {i} out of range [0, {self._n})")
        o = self._seq[S][i]
        j = self._c[O].access(o) + self._seq[S].rank(o, i)
        p = self._seq[O][j]
        k = self._c[P].access(p) + self._seq[O].rank(p, j)
        s = self._seq[P][k]
        return (s, p, o)

    def contains(self, s: int, p: int, o: int) -> bool:
        """Membership test via Lemma 3.6."""
        return self.pattern_range({S: s, P: p, O: o}) is not None

    # -- bulk decoding (the batch-leap substrate) ------------------------------

    def lf_many(
        self, zone: int, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch LF step: decode + map an array of zone positions at once.

        Returns ``(values, mapped)`` where ``values[i]`` is the symbol of
        ``prev_attr(zone)`` at ``positions[i]`` and ``mapped[i]`` its LF
        image in zone ``prev_attr(zone)`` — the vectorised form of the
        two-line body of :meth:`triple`.  The per-position rank is free:
        the wavelet matrix's access descent already ends at
        ``bucket_start(value) + rank(value, position)`` (see
        :meth:`~repro.sequences.wavelet_matrix.WaveletMatrix.extract_at`),
        so only one batched descent per *distinct* value remains.
        """
        wm = self._seq[zone]
        target = prev_attr(zone)
        values, bottoms = wm.extract_at(positions, return_bottom=True)
        uniques, inverse = np.unique(values, return_inverse=True)
        ranks = bottoms - wm.bucket_starts(uniques)[inverse]
        mapped = self._c[target].access_many(uniques)[inverse] + ranks
        return values, mapped

    def decode_range(
        self, zone: int, lo: int, hi: int, n_attrs: int
    ) -> dict[int, np.ndarray]:
        """Decode ``n_attrs`` attributes of every triple in ``[lo, hi)``.

        Walks backwards from ``zone`` (the direction LF steps go:
        ``prev_attr(zone)`` first), so with the range of Lemma 3.6 in
        hand the result holds exactly the *unbound* attributes of every
        matching triple, aligned by row — the bulk engine behind the
        lonely-variables batch path.  O(levels) Python calls per
        attribute instead of O(rows · levels).
        """
        started = time.perf_counter() if _perf.enabled else 0.0
        if not 1 <= n_attrs <= 3:
            raise ValueError("n_attrs must be in [1, 3]")
        positions = np.arange(max(lo, 0), min(hi, self._n), dtype=np.int64)
        out: dict[int, np.ndarray] = {}
        current = zone
        for step in range(n_attrs):
            if step == n_attrs - 1:  # last attribute: no LF map needed
                out[prev_attr(current)] = self._seq[current].extract_at(
                    positions
                )
            else:
                values, positions = self.lf_many(current, positions)
                out[prev_attr(current)] = values
                current = prev_attr(current)
        if _perf.enabled:
            _perf.record(
                "ring.decode_range",
                (min(hi, self._n) - max(lo, 0)) * n_attrs,
                time.perf_counter() - started,
            )
        return out

    def count_pattern(self, constants: dict[int, int]) -> int:
        """Number of triples matching the bound positions (on-the-fly
        statistics of §4.3: exact, in O(log U))."""
        state = self.pattern_range(constants)
        return 0 if state is None else state[2] - state[1]

    # -- accounting -----------------------------------------------------------------

    def size_in_bits(self) -> int:
        """Wavelet matrices plus the three C arrays (stored packed)."""
        seq_bits = sum(wm.size_in_bits() for wm in self._seq.values())
        c_bits = sum(c.size_in_bits() for c in self._c.values())
        return seq_bits + c_bits + 256

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "C-Ring" if self._compressed else "Ring"
        return f"{kind}(n={self._n}, nodes={self._sigma[S]}, preds={self._sigma[P]})"
