"""Leapfrog TrieJoin (Algorithm 1) over the trie-iterator protocol.

The engine is index-agnostic: anything supplying per-pattern
:class:`~repro.core.interface.PatternIterator` objects can execute wco
joins through it (the ring, the 6-order flat tries, the B+tree orders…).

Besides the core variable-elimination loop it implements the paper's two
engineering refinements:

- §4.3 *on-the-fly variable ordering*: variables (that appear in more
  than one pattern) are eliminated by increasing ``c_min(x) =
  min_{t ∈ Q_x} count(t)/n``, keeping each new variable connected to the
  previously chosen ones when possible;
- §4.2 *lonely variables*: variables occurring in a single pattern are
  deferred; once the shared variables are bound, each pattern's remaining
  bindings are read off its range directly (cross-product across
  patterns), enumerating backwards so the wavelet matrices' ``distinct``
  operation applies.

On top of those the engine has a **batch-leap path** (``use_batch``,
on by default) that leans on the vectorised succinct kernels:

- when a variable is covered by a *single* iterator, the seek sequence
  ``seek(0), seek(v+1), …`` degenerates to that iterator's ordered value
  enumeration, which the ring answers with one ``distinct_in_range``
  sweep instead of one wavelet descent per value;
- lonely patterns whose iterator offers ``solutions_bulk`` have their
  whole Lemma 3.6 range bulk-decoded into row-aligned numpy columns
  (chunked), replacing the per-triple bind/leap walk;
- repeated seeks hit the ring's LRU leap memo (see
  :meth:`repro.core.ring.Ring.backward_leap`).

Batch work charges the shared :class:`ResourceBudget` through
``tick_many`` — one op per logical row/leap, identical to the scalar
path — so op caps, timeouts and cancellation behave the same either way.

All refinements can be disabled (``use_lonely`` / ``use_ordering`` /
``use_batch``) for the ablation benchmarks.

**Adaptive intra-query planning** (``policy``): the §4.3 order is
computed once before the first leap, so one skewed join (power-law
predicates, star subjects) can lock the whole search into a
pathological order.  The dynamic policies instead re-rank the *next*
variable at every binding depth from O(1)-maintained per-iterator
bounds — the Lemma 3.6 range width ``count()`` is updated incrementally
by ``bind``/``unbind``, and the root distinct estimates are computed
once per query (never re-descending the wavelet matrix on the hot
path):

- ``static``   — today's behaviour: the precomputed §4.3 order;
- ``rowcount`` — minimize the current range width ``min count(t)``;
- ``distinct`` — minimize the root distinct-value estimate;
- ``adaptive`` — minimize the partial-binding bound
  ``min(count(t), distinct_root)``: the narrowed width caps the root
  branching estimate, so a variable whose candidate range collapsed
  under the current partial binding is eliminated immediately.

Ties break on the static §4.3 rank (renaming-invariant via the plan
signature), so every policy enumerates deterministically; a failing
estimator degrades the rest of the query to the static order
(chaos site ``plan.rerank``), never to a wrong answer.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence, Union

from repro.core.interface import PatternIterator, QueryCancelled, QueryTimeout
from repro.graph.model import BasicGraphPattern, TriplePattern, Var
from repro.perf.counters import event
from repro.reliability.budget import ResourceBudget

IteratorFactory = Callable[[TriplePattern], PatternIterator]

#: The variable-selection policies of the per-depth planner.
POLICIES = ("static", "rowcount", "distinct", "adaptive")

#: Per-query cap on the recorded (depth, variable, estimate) decisions:
#: re-ranking fires at every search-tree node, so the log is a bounded
#: sample — the totals live in the ``reranks``/``rerank_divergence``
#: stats and the ``plan.*`` kernel counters.
DECISION_LOG_CAP = 128


def rank_candidates(
    policy: str,
    candidates: Sequence[Var],
    by_var: dict[Var, list[PatternIterator]],
    static_rank: dict[Var, int],
    root_distinct: dict[tuple[int, Var], int],
) -> tuple[Var, int]:
    """Pick the next variable a dynamic ``policy`` would eliminate.

    Every bound is O(1) per iterator: ``count()`` reads the current
    Lemma 3.6 range width off the incrementally-maintained zone state,
    and ``root_distinct`` was filled once at analysis time.  Ties break
    on the static §4.3 rank so the choice is renaming-invariant and
    deterministic across processes (the parallel workers re-run this
    exact computation).  Registered as chaos fault site ``plan.rerank``:
    callers treat any exception as "degrade to the static order".
    """
    best: Optional[Var] = None
    best_key: Optional[tuple[int, int]] = None
    for v in candidates:
        if policy == "rowcount":
            estimate = min(it.count() for it in by_var[v])
        elif policy == "distinct":
            estimate = min(root_distinct[(id(it), v)] for it in by_var[v])
        else:  # adaptive: the narrowed width clips the root estimate
            estimate = min(
                min(it.count(), root_distinct[(id(it), v)])
                for it in by_var[v]
            )
        key = (estimate, static_rank[v])
        if best_key is None or key < best_key:
            best_key, best = key, v
    assert best is not None and best_key is not None
    return best, best_key[0]


class _PolicyState:
    """Per-query state of a dynamic variable-selection policy."""

    __slots__ = ("policy", "static_rank", "root_distinct", "static_rest")

    def __init__(
        self,
        policy: str,
        static_rank: dict[Var, int],
        root_distinct: dict[tuple[int, Var], int],
    ) -> None:
        self.policy = policy
        self.static_rank = static_rank
        self.root_distinct = root_distinct
        #: Set when :func:`rank_candidates` raised — the remainder of
        #: the query runs in the static §4.3 order.
        self.static_rest = False


class LeapfrogTrieJoin:
    """Worst-case-optimal evaluation of basic graph patterns.

    Parameters
    ----------
    iterator_factory:
        Builds a fresh :class:`PatternIterator` for an encoded pattern.
    n_triples:
        Graph size, used to normalise the §4.3 statistics.
    use_lonely / use_ordering:
        The §4.2 / §4.3 optimisations (ablation switches).
    use_batch:
        The vectorised batch-leap path (bulk range decoding, single-
        iterator value sweeps); disable to force the scalar per-triple
        walk everywhere (ablation/benchmark switch).
    policy:
        Variable-selection policy, one of :data:`POLICIES`.  ``static``
        (default) keeps the precomputed §4.3 order; the dynamic
        policies re-rank the next variable at every binding depth from
        O(1) per-iterator bounds (see the module docstring).
    """

    def __init__(
        self,
        iterator_factory: IteratorFactory,
        n_triples: int,
        use_lonely: bool = True,
        use_ordering: bool = True,
        use_batch: bool = True,
        policy: str = "static",
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        self._factory = iterator_factory
        self._stats: Optional[dict] = None
        self._n = max(n_triples, 1)
        self._use_lonely = use_lonely
        self._use_ordering = use_ordering
        self._use_batch = use_batch
        self._policy = policy
        #: Optional :class:`~repro.cache.stats_cache.PlanStatsCache`
        #: (duck-typed: anything with ``count(it)`` / ``distinct(it,
        #: var, estimator)``) memoizing the §4.3 statistics across
        #: queries.  ``None`` (the default) recomputes them per query.
        self.stats_cache = None

    @property
    def policy(self) -> str:
        """The configured variable-selection policy (see :data:`POLICIES`)."""
        return self._policy

    # -- public API ----------------------------------------------------------

    def evaluate(
        self,
        bgp: BasicGraphPattern,
        timeout: Union[None, float, ResourceBudget] = None,
        var_order: Optional[Sequence[Var]] = None,
        stats: Optional[dict] = None,
        first_range: Optional[tuple[int, int]] = None,
        first_var: Optional[Var] = None,
    ) -> Iterator[dict[Var, int]]:
        """Stream the solutions ``Q(G)`` as ``{Var: id}`` mappings.

        ``timeout`` is seconds or a full
        :class:`~repro.reliability.budget.ResourceBudget`; exhaustion
        raises :class:`~repro.core.interface.QueryTimeout` (deadline/op
        cap) or :class:`~repro.core.interface.QueryCancelled` (token).
        When ``stats`` (a dict) is given, the engine fills it with
        operation counters (``"leaps"``, ``"binds"``, plus
        ``"bulk_rows"`` — solutions emitted through the batch decode
        path) — the empirical handle on the O(Q* · m log U) bound of
        Theorem 3.5.

        ``first_range`` restricts the *first* eliminated variable to
        values in ``[a, b)``.  Because LTJ emits the first variable in
        increasing order, running disjoint ranges produces disjoint
        solution sets whose ascending-``a`` concatenation equals the
        unrestricted enumeration — the contract the range-partitioned
        parallel driver builds on.  Requires at least one shared
        variable (callers pass ``var_order`` to pin which one).

        ``first_var`` (dynamic policies only) pins *just the first*
        eliminated variable — the parallel driver slices that
        variable's domain while every deeper depth still re-ranks, so
        the concatenated slices stay byte-identical to the serial
        policy enumeration.  An explicit ``var_order`` pins the whole
        order and therefore disables per-depth re-ranking.
        """
        self._stats = stats if stats is not None else None
        if stats is not None:
            stats.setdefault("leaps", 0)
            stats.setdefault("binds", 0)
            stats.setdefault("bulk_rows", 0)
            stats.setdefault("policy", self._policy)
        deadline = ResourceBudget.coerce(timeout)
        analysed = self._analyse(bgp, var_order)
        if analysed is None:  # some pattern is unsatisfiable
            return
        live, by_var, order, lonely_by_iter = analysed
        if not live:
            yield {}
            return

        if first_range is not None and not order:
            raise ValueError("first_range requires a shared join variable")

        dynamic = self._policy != "static" and var_order is None
        if first_var is not None:
            if not dynamic:
                raise ValueError(
                    "first_var requires a dynamic policy without var_order"
                )
            # Re-anchor to the in-tree Var object (first_var may have
            # crossed a process boundary, so identity is not enough).
            first_var = next((v for v in order if v == first_var), None)
            if first_var is None:
                raise ValueError("first_var must be a shared join variable")
        if not dynamic:
            yield from self._search(
                order, 0, by_var, lonely_by_iter, {}, deadline, first_range
            )
            return

        state = self._policy_state(order, by_var)
        if stats is not None:
            stats.setdefault("reranks", 0)
            stats.setdefault("rerank_divergence", 0)
            stats.setdefault("rerank_fallbacks", 0)
            stats.setdefault("estimate_misses", 0)
            stats.setdefault("decision_log", [])
        yield from self._search_adaptive(
            list(order), by_var, lonely_by_iter, {}, deadline, state,
            first_range, first_var,
        )

    def _analyse(
        self,
        bgp: BasicGraphPattern,
        var_order: Optional[Sequence[Var]] = None,
    ) -> Optional[tuple]:
        """The evaluation preamble shared by :meth:`evaluate` and
        :meth:`plan_signature`: build the iterators, drop satisfied
        fully-bound filters, compute the elimination order and the §4.2
        lonely-pattern list.  Returns ``None`` when some pattern is
        empty (zero solutions), otherwise ``(live, by_var, order,
        lonely_by_iter)``.
        """
        iters = [self._factory(t) for t in bgp]

        # Fully bound patterns act as existence filters.
        live: list[PatternIterator] = []
        for it in iters:
            if it.count() == 0:
                return None
            if not it.pattern.is_fully_bound():
                live.append(it)

        by_var: dict[Var, list[PatternIterator]] = {}
        for it in live:
            for var in it.pattern.variables():
                by_var.setdefault(var, []).append(it)

        lonely = (
            {v for v, its in by_var.items() if len(its) == 1}
            if self._use_lonely
            else set()
        )
        shared = [v for v in by_var if v not in lonely]
        if var_order is not None:
            order = [v for v in var_order if v in by_var and v not in lonely]
            if set(order) != set(shared):
                raise ValueError("var_order must cover every non-lonely variable")
        else:
            order = self._variable_order(shared, by_var)

        lonely_by_iter: list[tuple[PatternIterator, list[Var]]] = []
        for it in live:
            mine = [v for v in it.pattern.variables() if v in lonely]
            if mine:
                lonely_by_iter.append((it, mine))

        return live, by_var, order, lonely_by_iter

    def plan_signature(
        self,
        bgp: BasicGraphPattern,
        var_order: Optional[Sequence[Var]] = None,
    ) -> Optional[tuple[tuple[Var, ...], tuple[TriplePattern, ...]]]:
        """The facts that determine this evaluation's *row order*.

        Returns ``(elimination order, lonely-bearing patterns in their
        emission order)`` — everything beyond the BGP's structure that
        the enumeration order depends on (the §4.3 order tie-breaks on
        variable *names*, and the §4.2 cross product nests in original
        pattern order, so two isomorphic queries may legitimately emit
        rows differently).  The result cache folds this signature into
        its keys so a shared entry is guaranteed byte-identical to what
        a fresh evaluation would stream.  ``None`` means some pattern is
        empty (zero solutions) at the current index state.

        Dynamic policies re-rank inside this static order's tie-break
        frame, and their per-depth choices depend only on the (cache-
        generation-tagged) index state — so the signature plus the
        engine's ``policy`` flag (folded into the cache key by
        :class:`~repro.cache.system.CachedQuerySystem`) still pins the
        row order exactly.
        """
        analysed = self._analyse(bgp, var_order)
        if analysed is None:
            return None
        _live, _by_var, order, lonely_by_iter = analysed
        return tuple(order), tuple(it.pattern for it, _ in lonely_by_iter)

    def plan(self, bgp: BasicGraphPattern) -> dict:
        """Describe how the engine would evaluate ``bgp`` (no execution).

        Returns the §4.3 elimination order, the §4.2 lonely variables,
        and the per-pattern cardinalities (exact, read off the index in
        O(log U) each) that drive the ordering.
        """
        iters = [self._factory(t) for t in bgp]
        cardinalities = {repr(it.pattern): it.count() for it in iters}
        by_var: dict[Var, list[PatternIterator]] = {}
        for it in iters:
            for var in it.pattern.variables():
                by_var.setdefault(var, []).append(it)
        lonely = (
            {v for v, its in by_var.items() if len(its) == 1}
            if self._use_lonely
            else set()
        )
        shared = [v for v in by_var if v not in lonely]
        order = self._variable_order(shared, by_var)
        scores, _cmin = self._variable_scores(shared, by_var)
        return {
            "variable_order": order,
            "lonely_variables": sorted(lonely, key=lambda v: v.name),
            "pattern_cardinalities": cardinalities,
            "variable_scores": {v.name: scores[v] for v in shared},
            "uses_lonely_optimisation": self._use_lonely,
            "uses_cardinality_ordering": self._use_ordering,
            "policy": self._policy,
            "first_variable": (
                self.first_variable(order, by_var) if order else None
            ),
        }

    # -- §4.3 variable ordering -------------------------------------------------

    def _variable_scores(
        self, shared: Sequence[Var], by_var: dict[Var, list[PatternIterator]]
    ) -> tuple[dict[Var, int], dict[Var, float]]:
        """Cardinality statistics that drive the greedy elimination order.

        For each shared variable: ``score`` — the minimum over its
        patterns of the *distinct admissible values* estimate (a cheap
        wavelet-matrix range count, :meth:`RingIterator.distinct_estimate`;
        falls back to the pattern's triple count for iterators without
        the estimator) — and the paper's ``cmin`` selectivity used as a
        tie-breaker.  The distinct count is the variable's actual
        branching factor at the root of the search tree, which ``cmin``
        only proxies: a pattern with a huge range but few distinct
        subjects is cheap to eliminate on the subject.
        """
        cache = self.stats_cache
        if cache is not None:
            # Generation-scoped memo (repro.cache.stats_cache): the same
            # numbers, looked up by renaming-invariant pattern shape
            # instead of recomputed via wavelet scans per query.
            cmin = {
                v: min(cache.count(it) for it in by_var[v]) / self._n
                for v in shared
            }
            scores = {}
            for v in shared:
                best = None
                for it in by_var[v]:
                    value = cache.distinct(
                        it, v, self._estimator_or_miss(it)
                    )
                    best = value if best is None else min(best, value)
                scores[v] = best if best is not None else 0
            return scores, cmin
        cmin = {
            v: min(it.count() for it in by_var[v]) / self._n for v in shared
        }
        scores: dict[Var, int] = {}
        for v in shared:
            best: Optional[int] = None
            for it in by_var[v]:
                estimator = self._estimator_or_miss(it)
                # Explicit fallback: the pattern's range width stands in
                # for the distinct estimate (counted, never silent).
                value = estimator(v) if estimator is not None else it.count()
                best = value if best is None else min(best, value)
            scores[v] = best if best is not None else 0
        return scores, cmin

    def _estimator_or_miss(self, it: PatternIterator):
        """``it.distinct_estimate`` or ``None``, *counting* the miss.

        Engines without the wavelet estimator (e.g. the dynamic ring's
        union iterator) used to degrade the §4.3 statistics silently;
        every such degradation now fires the ``plan.estimate_miss``
        kernel counter and the per-query ``estimate_misses`` stat, so a
        workload planning off range widths instead of distinct counts
        is observable.
        """
        estimator = getattr(it, "distinct_estimate", None)
        if estimator is None:
            event("plan.estimate_miss")
            if self._stats is not None:
                self._stats["estimate_misses"] = (
                    self._stats.get("estimate_misses", 0) + 1
                )
        return estimator

    def _variable_order(
        self, shared: Sequence[Var], by_var: dict[Var, list[PatternIterator]]
    ) -> list[Var]:
        if not self._use_ordering:
            return list(shared)
        scores, cmin = self._variable_scores(shared, by_var)
        remaining = list(shared)
        order: list[Var] = []
        chosen_iters: set[int] = set()
        while remaining:
            connected = [
                v
                for v in remaining
                if any(id(it) in chosen_iters for it in by_var[v])
            ]
            pool = connected if connected else remaining
            best = min(pool, key=lambda v: (scores[v], cmin[v], v.name))
            order.append(best)
            remaining.remove(best)
            for it in by_var[best]:
                chosen_iters.add(id(it))
        return order

    # -- per-depth re-ranking (dynamic policies) ---------------------------------

    def _policy_state(
        self, order: Sequence[Var], by_var: dict[Var, list[PatternIterator]]
    ) -> _PolicyState:
        """Build the per-query state a dynamic policy ranks against.

        The root distinct estimates (``distinct``/``adaptive`` only)
        are computed *once* here — through the
        :class:`~repro.cache.stats_cache.PlanStatsCache` memo when one
        is installed, so repeated workloads skip the wavelet scans
        entirely — and every later depth refines them with the O(1)
        range widths alone: the hot path never re-descends the wavelet
        matrix.
        """
        static_rank = {v: i for i, v in enumerate(order)}
        root_distinct: dict[tuple[int, Var], int] = {}
        if self._policy in ("distinct", "adaptive"):
            cache = self.stats_cache
            for v in order:
                for it in by_var[v]:
                    estimator = self._estimator_or_miss(it)
                    if cache is not None:
                        value = cache.distinct(it, v, estimator)
                    elif estimator is not None:
                        value = estimator(v)
                    else:
                        value = it.count()
                    root_distinct[(id(it), v)] = value
        return _PolicyState(self._policy, static_rank, root_distinct)

    def first_variable(
        self,
        order: Sequence[Var],
        by_var: dict[Var, list[PatternIterator]],
        stats: Optional[dict] = None,
    ) -> Optional[Var]:
        """The policy's depth-0 choice (what :meth:`evaluate` would
        eliminate first at the current index state).

        The parallel driver slices this variable's domain and pins it
        in every worker (``first_var``) so the merged slices reproduce
        the serial policy enumeration byte for byte.  A failing ranking
        degrades to the static head, mirroring the in-query contract.
        """
        if not order:
            return None
        self._stats = stats if stats is not None else None
        if self._policy == "static" or len(order) == 1:
            return order[0]
        state = self._policy_state(order, by_var)
        try:
            var, _estimate = rank_candidates(
                self._policy, list(order), by_var,
                state.static_rank, state.root_distinct,
            )
        except (QueryTimeout, QueryCancelled):
            raise
        except Exception:
            event("plan.rerank_fallback")
            return order[0]
        return var

    def _choose_variable(
        self,
        remaining: list[Var],
        by_var: dict[Var, list[PatternIterator]],
        state: _PolicyState,
    ) -> Var:
        """One re-ranking decision: the next variable to eliminate.

        ``remaining`` is kept in static §4.3 order, so ``remaining[0]``
        is both the divergence baseline and the degradation target when
        the ranking itself fails (chaos site ``plan.rerank``): a broken
        estimator costs plan quality for the rest of this query, never
        correctness.
        """
        if len(remaining) == 1:
            return remaining[0]
        if state.static_rest:
            return remaining[0]
        try:
            var, estimate = rank_candidates(
                state.policy, remaining, by_var,
                state.static_rank, state.root_distinct,
            )
        except (QueryTimeout, QueryCancelled):
            raise
        except Exception:
            state.static_rest = True
            event("plan.rerank_fallback")
            if self._stats is not None:
                self._stats["rerank_fallbacks"] = (
                    self._stats.get("rerank_fallbacks", 0) + 1
                )
            return remaining[0]
        event("plan.rerank")
        diverged = var is not remaining[0]
        if diverged:
            event("plan.rerank_divergence")
        stats = self._stats
        if stats is not None:
            stats["reranks"] = stats.get("reranks", 0) + 1
            if diverged:
                stats["rerank_divergence"] = (
                    stats.get("rerank_divergence", 0) + 1
                )
            log = stats.get("decision_log")
            if isinstance(log, list) and len(log) < DECISION_LOG_CAP:
                depth = len(state.static_rank) - len(remaining)
                log.append((depth, var.name, int(estimate)))
        return var

    # -- the search tree ---------------------------------------------------------

    def _search_adaptive(
        self,
        remaining: list[Var],
        by_var: dict[Var, list[PatternIterator]],
        lonely_by_iter: Sequence[tuple[PatternIterator, list[Var]]],
        binding: dict[Var, int],
        deadline: ResourceBudget,
        state: _PolicyState,
        first_range: Optional[tuple[int, int]] = None,
        first_var: Optional[Var] = None,
    ) -> Iterator[dict[Var, int]]:
        """:meth:`_search` with the next variable re-ranked per depth.

        ``remaining`` stays in static §4.3 order (the fallback and
        tie-break baseline); the three enumeration shapes — slice mode,
        the single-iterator batch sweep, the Algorithm 1 seek loop —
        are byte-identical to the static search once the variable is
        chosen, so a policy's output differs from ``static`` only in
        row *order*, never in the solution multiset.
        """
        if not remaining:
            yield from self._emit_lonely(lonely_by_iter, 0, binding, deadline)
            return
        if first_var is not None:
            # Parallel slice mode: depth 0 is pinned to the slicing
            # variable (the parent's own policy choice).
            var = first_var
        else:
            var = self._choose_variable(remaining, by_var, state)
        rest = [v for v in remaining if v is not var]
        iters = by_var[var]
        if first_range is not None:
            a, b = first_range
            if self._use_batch and len(iters) == 1:
                it = iters[0]
                for value in it.values(var):
                    if value >= b:
                        break
                    deadline.tick()
                    if value < a:
                        continue
                    if self._stats is not None:
                        self._stats["leaps"] += 1
                        self._stats["binds"] += 1
                    it.bind(var, value)
                    binding[var] = value
                    yield from self._search_adaptive(
                        rest, by_var, lonely_by_iter, binding, deadline, state
                    )
                    del binding[var]
                    it.unbind(var)
                return
            value = self._seek(iters, var, a, deadline)
            while value is not None and value < b:
                if self._stats is not None:
                    self._stats["binds"] += 1
                for it in iters:
                    it.bind(var, value)
                binding[var] = value
                yield from self._search_adaptive(
                    rest, by_var, lonely_by_iter, binding, deadline, state
                )
                del binding[var]
                for it in iters:
                    it.unbind(var)
                value = self._seek(iters, var, value + 1, deadline)
            return
        if self._use_batch and len(iters) == 1:
            it = iters[0]
            for value in it.values(var):
                deadline.tick()
                if self._stats is not None:
                    self._stats["leaps"] += 1
                    self._stats["binds"] += 1
                it.bind(var, value)
                binding[var] = value
                yield from self._search_adaptive(
                    rest, by_var, lonely_by_iter, binding, deadline, state
                )
                del binding[var]
                it.unbind(var)
            return
        value = self._seek(iters, var, 0, deadline)
        while value is not None:
            if self._stats is not None:
                self._stats["binds"] += 1
            for it in iters:
                it.bind(var, value)
            binding[var] = value
            yield from self._search_adaptive(
                rest, by_var, lonely_by_iter, binding, deadline, state
            )
            del binding[var]
            for it in iters:
                it.unbind(var)
            value = self._seek(iters, var, value + 1, deadline)

    def _search(
        self,
        order: Sequence[Var],
        depth: int,
        by_var: dict[Var, list[PatternIterator]],
        lonely_by_iter: Sequence[tuple[PatternIterator, list[Var]]],
        binding: dict[Var, int],
        deadline: ResourceBudget,
        first_range: Optional[tuple[int, int]] = None,
    ) -> Iterator[dict[Var, int]]:
        if depth == len(order):
            yield from self._emit_lonely(lonely_by_iter, 0, binding, deadline)
            return
        var = order[depth]
        iters = by_var[var]
        if first_range is not None:
            # Slice mode (parallel driver): enumerate only values in
            # [a, b).  The seek path lands on the first admissible value
            # >= a with one leap instead of sweeping from 0, so a K-way
            # partition costs K extra leaps total, not K extra scans.
            a, b = first_range
            if self._use_batch and len(iters) == 1:
                # Same single-iterator batch sweep as below, clipped to
                # the slice: one distinct_in_range DFS serves the whole
                # ordered enumeration, and values outside [a, b) are
                # skipped/stopped without paying a wavelet descent each.
                it = iters[0]
                for value in it.values(var):
                    if value >= b:
                        break
                    deadline.tick()
                    if value < a:
                        continue
                    if self._stats is not None:
                        self._stats["leaps"] += 1
                        self._stats["binds"] += 1
                    it.bind(var, value)
                    binding[var] = value
                    yield from self._search(
                        order, depth + 1, by_var, lonely_by_iter, binding,
                        deadline,
                    )
                    del binding[var]
                    it.unbind(var)
                return
            value = self._seek(iters, var, a, deadline)
            while value is not None and value < b:
                if self._stats is not None:
                    self._stats["binds"] += 1
                for it in iters:
                    it.bind(var, value)
                binding[var] = value
                yield from self._search(
                    order, depth + 1, by_var, lonely_by_iter, binding, deadline
                )
                del binding[var]
                for it in iters:
                    it.unbind(var)
                value = self._seek(iters, var, value + 1, deadline)
            return
        if self._use_batch and len(iters) == 1:
            # Batch sweep: with one iterator the seek sequence seek(0),
            # seek(v+1), … is exactly the iterator's ordered value
            # enumeration, which the ring serves with a single
            # distinct_in_range DFS (O(k log σ/k)) instead of one wavelet
            # descent per value.
            it = iters[0]
            for value in it.values(var):
                deadline.tick()
                if self._stats is not None:
                    self._stats["leaps"] += 1
                    self._stats["binds"] += 1
                it.bind(var, value)
                binding[var] = value
                yield from self._search(
                    order, depth + 1, by_var, lonely_by_iter, binding, deadline
                )
                del binding[var]
                it.unbind(var)
            return
        value = self._seek(iters, var, 0, deadline)
        while value is not None:
            if self._stats is not None:
                self._stats["binds"] += 1
            for it in iters:
                it.bind(var, value)
            binding[var] = value
            yield from self._search(
                order, depth + 1, by_var, lonely_by_iter, binding, deadline
            )
            del binding[var]
            for it in iters:
                it.unbind(var)
            value = self._seek(iters, var, value + 1, deadline)

    def _seek(
        self,
        iters: Sequence[PatternIterator],
        var: Var,
        c: int,
        deadline: ResourceBudget,
    ) -> Optional[int]:
        """The ``seek`` of Algorithm 1: smallest agreed eliminator >= c."""
        cur = c
        agreements = 0
        i = 0
        m = len(iters)
        while agreements < m:
            deadline.tick()
            if self._stats is not None:
                self._stats["leaps"] += 1
            value = iters[i].leap(var, cur)
            if value is None:
                return None
            if value == cur:
                agreements += 1
            else:
                cur = value
                agreements = 1
            i = (i + 1) % m
        return cur

    def _emit_lonely(
        self,
        lonely_by_iter: Sequence[tuple[PatternIterator, list[Var]]],
        idx: int,
        binding: dict[Var, int],
        deadline: ResourceBudget,
    ) -> Iterator[dict[Var, int]]:
        """§4.2: read the remaining bindings straight off the ranges.

        Patterns are independent here (each variable occurs in exactly
        one), so solutions are the cross product of per-pattern
        enumerations; within a pattern, variables are enumerated in the
        iterator's preferred (backward) order.
        """
        if idx == len(lonely_by_iter):
            yield dict(binding)
            return
        it, vars_ = lonely_by_iter[idx]
        yield from self._emit_pattern(
            it, list(vars_), lonely_by_iter, idx, binding, deadline
        )

    def _emit_pattern(
        self,
        it: PatternIterator,
        remaining: list[Var],
        lonely_by_iter: Sequence[tuple[PatternIterator, list[Var]]],
        idx: int,
        binding: dict[Var, int],
        deadline: ResourceBudget,
    ) -> Iterator[dict[Var, int]]:
        if not remaining:
            yield from self._emit_lonely(lonely_by_iter, idx + 1, binding, deadline)
            return
        if self._use_batch:
            bulk = getattr(it, "solutions_bulk", None)
            chunks = bulk(remaining) if bulk is not None else None
            if chunks is not None:
                # Bulk-decode the pattern's whole Lemma 3.6 range into
                # row-aligned columns (chunked): one batched wavelet
                # descent per attribute per chunk replaces the per-triple
                # bind/leap walk, and each row charges the budget as one
                # op exactly like a scalar emission.
                for columns, n_rows in chunks:
                    deadline.tick_many(n_rows)
                    if self._stats is not None:
                        self._stats["bulk_rows"] += n_rows
                    cols = [(var, columns[var]) for var in remaining]
                    for row in range(n_rows):
                        for var, column in cols:
                            binding[var] = int(column[row])
                        yield from self._emit_lonely(
                            lonely_by_iter, idx + 1, binding, deadline
                        )
                    for var, _ in cols:
                        binding.pop(var, None)
                return
        var = it.preferred_lonely(remaining)
        rest = [v for v in remaining if v != var]
        for value in it.values(var):
            deadline.tick()
            it.bind(var, value)
            binding[var] = value
            yield from self._emit_pattern(
                it, rest, lonely_by_iter, idx, binding, deadline
            )
            del binding[var]
            it.unbind(var)
