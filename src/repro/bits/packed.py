"""Fixed-width packed integer arrays.

A :class:`PackedIntArray` stores ``n`` integers of ``width`` bits each,
contiguously in 64-bit words.  This is the "packed representation" the
paper uses as its space yardstick (``log2(|S|) + log2(|P|) + log2(|O|)``
bits per triple) and the storage for wavelet-matrix bookkeeping.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


def bits_needed(max_value: int) -> int:
    """Width in bits needed to store values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    return max(1, int(max_value).bit_length())


class PackedIntArray:
    """Immutable array of ``n`` unsigned integers, ``width`` bits each."""

    __slots__ = ("_n", "_width", "_words")

    def __init__(self, values: Iterable[int], width: int | None = None) -> None:
        vals = np.asarray(
            list(values) if not isinstance(values, np.ndarray) else values,
            dtype=np.uint64,
        )
        if width is None:
            width = bits_needed(int(vals.max()) if len(vals) else 0)
        if not 1 <= width <= 64:
            raise ValueError("width must be in [1, 64]")
        if len(vals) and width < 64 and int(vals.max()) >> width:
            raise ValueError("value does not fit in width")
        self._n = len(vals)
        self._width = width
        self._words = _pack(vals, width)

    def __len__(self) -> int:
        return self._n

    @property
    def width(self) -> int:
        """Bits per stored value."""
        return self._width

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        bitpos = i * self._width
        w, off = bitpos >> 6, bitpos & 63
        value = int(self._words[w]) >> off
        spill = off + self._width - 64
        if spill > 0:
            value |= int(self._words[w + 1]) << (self._width - spill)
        return value & ((1 << self._width) - 1) if self._width < 64 else value

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self[i]

    def to_numpy(self) -> np.ndarray:
        """Decode every value into a ``uint64`` array (testing/scans)."""
        return np.fromiter(self, dtype=np.uint64, count=self._n)

    def size_in_bits(self) -> int:
        """Payload words plus a small header."""
        return 64 * len(self._words) + 128

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedIntArray(n={self._n}, width={self._width})"


def _pack(vals: np.ndarray, width: int) -> np.ndarray:
    nbits = len(vals) * width
    nwords = -(-max(nbits, 1) // 64)
    words = np.zeros(nwords, dtype=np.uint64)
    # Pack through Python ints: robust against shift overflow; construction
    # is off the query path so clarity wins over vectorisation here.
    acc = 0
    acc_bits = 0
    w = 0
    mask = (1 << width) - 1 if width < 64 else (1 << 64) - 1
    for v in vals:
        acc |= (int(v) & mask) << acc_bits
        acc_bits += width
        while acc_bits >= 64:
            words[w] = acc & 0xFFFFFFFFFFFFFFFF
            acc >>= 64
            acc_bits -= 64
            w += 1
    if acc_bits:
        words[w] = acc & 0xFFFFFFFFFFFFFFFF
    return words
