"""Bit-level succinct data structures.

This subpackage provides the low-level building blocks of the ring index
and of the compressed baselines:

- :class:`~repro.bits.bitvector.BitVector` — plain bitvector with
  constant-time ``rank`` and near-constant ``select`` (two-level counters).
- :class:`~repro.bits.rrr.RRRBitVector` — compressed bitvector in the style
  of Raman–Raman–Rao as engineered in sdsl's ``rrr_vector`` (block
  class/offset encoding); this is what turns the Ring into the C-Ring.
- :class:`~repro.bits.elias_fano.EliasFano` — compressed monotone integer
  sequences (used for sparse ``C`` arrays).
- :class:`~repro.bits.packed.PackedIntArray` — fixed-width integer arrays
  (the "packed representation" the paper uses as a space yardstick).
- :mod:`~repro.bits.codecs` — byte-oriented varint/delta codecs used by the
  RDF-3X-style clustered index and the compression comparison of §5.2.1.

All structures implement ``size_in_bits()`` which counts every bit the
structure retains (payload, counters, headers), so the space numbers
reported by the benchmark harness are measured rather than estimated.
"""

from repro.bits.bitvector import BitVector
from repro.bits.elias_fano import EliasFano
from repro.bits.packed import PackedIntArray
from repro.bits.rrr import RRRBitVector

__all__ = ["BitVector", "EliasFano", "PackedIntArray", "RRRBitVector"]
