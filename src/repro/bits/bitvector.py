"""Plain bitvector with constant-time rank and fast select.

The layout follows the classical two-level scheme of Clark and Munro that
the paper cites for its ``o(n)``-bit rank/select support:

- the bits themselves live in little-endian 64-bit words (``numpy``),
- a *superblock* counter (64-bit) stores the number of ones before every
  group of ``WORDS_PER_SUPERBLOCK`` words,
- a *relative* counter (16-bit) stores, for every word, the number of ones
  between the start of its superblock and the word.

``rank1`` therefore costs one superblock lookup, one relative lookup and
one popcount.  ``select`` binary-searches the superblock counters and then
scans at most ``WORDS_PER_SUPERBLOCK`` words.

Indexing conventions (used consistently across the library):

- positions are 0-based;
- ``rank1(i)`` counts ones in the half-open prefix ``[0, i)``;
- ``select1(k)`` returns the position of the k-th one with ``k >= 1``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

WORDS_PER_SUPERBLOCK = 8
_LOW6 = 63


def _popcount_words(words: np.ndarray) -> np.ndarray:
    """Vectorised popcount of an array of uint64 words."""
    if len(words) == 0:
        return np.zeros(0, dtype=np.uint64)
    as_bytes = words.view(np.uint8).reshape(len(words), 8)
    # unpackbits is per-byte so endianness within the word does not matter
    # for counting.
    return np.unpackbits(as_bytes, axis=1).sum(axis=1).astype(np.uint64)


class BitVector:
    """A static bitvector supporting access, rank and select.

    Parameters
    ----------
    bits:
        Anything convertible to a 1-D boolean ``numpy`` array (an iterable
        of 0/1, a boolean array, ...).  Use :meth:`from_positions` or
        :meth:`from_words` for the other common construction paths.
    """

    __slots__ = ("_n", "_words", "_super", "_rel", "_ones")

    def __init__(self, bits: Iterable[int]) -> None:
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        arr = arr.astype(bool)
        self._init_from_bool_array(arr)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bool_array(cls, arr: np.ndarray) -> "BitVector":
        """Build from a boolean ``numpy`` array without copying twice."""
        bv = cls.__new__(cls)
        bv._init_from_bool_array(np.asarray(arr, dtype=bool))
        return bv

    @classmethod
    def from_positions(cls, n: int, positions: Iterable[int]) -> "BitVector":
        """Build a length-``n`` bitvector with ones at ``positions``."""
        arr = np.zeros(n, dtype=bool)
        pos = np.fromiter(positions, dtype=np.int64)
        if len(pos):
            if pos.min() < 0 or pos.max() >= n:
                raise ValueError("position out of range")
            arr[pos] = True
        return cls.from_bool_array(arr)

    def _init_from_bool_array(self, arr: np.ndarray) -> None:
        if arr.ndim != 1:
            raise ValueError("bits must be one-dimensional")
        self._n = len(arr)
        padded_len = -(-max(self._n, 1) // 64) * 64
        padded = np.zeros(padded_len, dtype=bool)
        padded[: self._n] = arr
        # Pack into little-endian words: bit i of word w is position 64*w+i.
        bytes_ = np.packbits(padded.reshape(-1, 8), axis=1, bitorder="little")
        self._words = bytes_.reshape(-1, 8).copy().view(np.uint64).reshape(-1)
        self._build_counters()

    def _build_counters(self) -> None:
        counts = _popcount_words(self._words)
        nwords = len(self._words)
        nsuper = -(-nwords // WORDS_PER_SUPERBLOCK)
        padded = np.zeros(nsuper * WORDS_PER_SUPERBLOCK, dtype=np.uint64)
        padded[:nwords] = counts
        grouped = padded.reshape(nsuper, WORDS_PER_SUPERBLOCK)
        per_super = grouped.sum(axis=1)
        self._super = np.zeros(nsuper + 1, dtype=np.uint64)
        np.cumsum(per_super, out=self._super[1:])
        rel = np.cumsum(grouped, axis=1)
        rel_shifted = np.zeros_like(rel)
        rel_shifted[:, 1:] = rel[:, :-1]
        self._rel = rel_shifted.reshape(-1)[:nwords].astype(np.uint16)
        self._ones = int(self._super[-1])

    # -- basic queries -----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return self._ones

    @property
    def zeros(self) -> int:
        """Total number of unset bits."""
        return self._n - self._ones

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(f"bit index {i} out of range [0, {self._n})")
        return (int(self._words[i >> 6]) >> (i & _LOW6)) & 1

    def rank1(self, i: int) -> int:
        """Number of ones in positions ``[0, i)``; ``0 <= i <= len``."""
        if i <= 0:
            return 0
        if i >= self._n:
            return self._ones
        w = i >> 6
        base = int(self._super[w // WORDS_PER_SUPERBLOCK]) + int(self._rel[w])
        rem = i & _LOW6
        if rem == 0:
            return base
        word = int(self._words[w]) & ((1 << rem) - 1)
        return base + word.bit_count()

    def rank0(self, i: int) -> int:
        """Number of zeros in positions ``[0, i)``."""
        i = min(max(i, 0), self._n)
        return i - self.rank1(i)

    def select1(self, k: int) -> int:
        """Position of the k-th one (``1 <= k <= ones``)."""
        if not 1 <= k <= self._ones:
            raise ValueError(f"select1({k}) out of range [1, {self._ones}]")
        # Superblock whose prefix count is still < k.
        sb = int(np.searchsorted(self._super, k, side="left")) - 1
        count = int(self._super[sb])
        w = sb * WORDS_PER_SUPERBLOCK
        last = min(w + WORDS_PER_SUPERBLOCK, len(self._words))
        while w < last:
            word = int(self._words[w])
            c = word.bit_count()
            if count + c >= k:
                return (w << 6) + _select_in_word(word, k - count)
            count += c
            w += 1
        raise AssertionError("select1 internal inconsistency")

    def select0(self, k: int) -> int:
        """Position of the k-th zero (``1 <= k <= zeros``)."""
        if not 1 <= k <= self.zeros:
            raise ValueError(f"select0({k}) out of range [1, {self.zeros}]")
        lo, hi = 0, self._n  # invariant: rank0(lo) < k <= rank0(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.rank0(mid) < k:
                lo = mid
            else:
                hi = mid
        return lo

    def next_one(self, i: int) -> Optional[int]:
        """Smallest position ``>= i`` holding a one, or ``None``."""
        if i < 0:
            i = 0
        if i >= self._n:
            return None
        r = self.rank1(i)
        if r >= self._ones:
            return None
        return self.select1(r + 1)

    # -- bulk access -------------------------------------------------------

    def to_bool_array(self) -> np.ndarray:
        """Materialise the bits as a boolean array (testing/debug)."""
        bits = np.unpackbits(
            self._words.view(np.uint8), bitorder="little"
        ).astype(bool)
        return bits[: self._n]

    # -- accounting --------------------------------------------------------

    def size_in_bits(self) -> int:
        """Total retained size: payload words plus rank counters."""
        return (
            64 * len(self._words)
            + 64 * len(self._super)
            + 16 * len(self._rel)
            + 128  # header: length, ones, pointers
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector(n={self._n}, ones={self._ones})"


def _select_in_word(word: int, k: int) -> int:
    """Position (0-based) of the k-th set bit of ``word`` (``k >= 1``)."""
    for _ in range(k - 1):
        word &= word - 1
    return (word & -word).bit_length() - 1
