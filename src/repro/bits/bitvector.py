"""Plain bitvector with constant-time rank and fast select.

The layout follows the classical two-level scheme of Clark and Munro that
the paper cites for its ``o(n)``-bit rank/select support:

- the bits themselves live in little-endian 64-bit words (``numpy``),
- a *superblock* counter (64-bit) stores the number of ones before every
  group of ``WORDS_PER_SUPERBLOCK`` words,
- a *relative* counter (16-bit) stores, for every word, the number of ones
  between the start of its superblock and the word.

``rank1`` therefore costs one superblock lookup, one relative lookup and
one popcount.  ``select`` binary-searches the superblock counters and then
scans at most ``WORDS_PER_SUPERBLOCK`` words.

Besides the scalar operations the class exposes the **batch kernels**
``rank1_many`` / ``rank0_many`` / ``select1_many`` / ``access_many``,
which answer a whole numpy array of queries in O(1) Python calls — the
foundation of the vectorised wavelet-matrix and LTJ fast paths (see
``docs/INTERNALS.md``, "The kernel layer").

Indexing conventions (used consistently across the library):

- positions are 0-based;
- ``rank1(i)`` counts ones in the half-open prefix ``[0, i)``;
- ``select1(k)`` returns the position of the k-th one with ``k >= 1``.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

import numpy as np

from repro.perf.counters import KERNEL_COUNTERS as _perf

WORDS_PER_SUPERBLOCK = 8
_LOW6 = 63
_ONE = np.uint64(1)


if hasattr(np, "bitwise_count"):  # numpy >= 2: hardware popcount

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        """Vectorised popcount of an array of uint64 words."""
        return np.bitwise_count(words).astype(np.uint64)

    def _popcount_bytes(bytes_: np.ndarray) -> np.ndarray:
        """Vectorised popcount of a uint8 array (any shape)."""
        return np.bitwise_count(bytes_)

else:  # 16-bit-chunk lookup table fallback (numpy 1.x)

    _POPCOUNT16 = (
        np.unpackbits(np.arange(1 << 16, dtype=np.uint16).view(np.uint8))
        .reshape(-1, 16)
        .sum(axis=1)
        .astype(np.uint8)
    )

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        """Vectorised popcount of an array of uint64 words."""
        if words.size == 0:
            return np.zeros(0, dtype=np.uint64)
        halves = np.ascontiguousarray(words).view(np.uint16).reshape(-1, 4)
        return _POPCOUNT16[halves].sum(axis=1, dtype=np.uint64)

    def _popcount_bytes(bytes_: np.ndarray) -> np.ndarray:
        """Vectorised popcount of a uint8 array (any shape)."""
        return _POPCOUNT16[:256][bytes_]


def _build_select_in_byte() -> np.ndarray:
    """``table[b, k-1]`` = position of the k-th set bit of byte ``b``."""
    table = np.zeros((256, 8), dtype=np.uint8)
    for byte in range(256):
        k = 0
        for bit in range(8):
            if (byte >> bit) & 1:
                table[byte, k] = bit
                k += 1
    return table


_SELECT_IN_BYTE = _build_select_in_byte()


class BitVector:
    """A static bitvector supporting access, rank and select.

    Parameters
    ----------
    bits:
        Anything convertible to a 1-D boolean ``numpy`` array: a numpy
        array, a sized sequence/buffer (consumed without an intermediate
        Python list), or a plain iterable/generator.  Use
        :meth:`from_positions` or :meth:`from_bool_array` for the other
        common construction paths.
    """

    __slots__ = ("_n", "_words", "_super", "_rel", "_ones", "_word_prefix")

    def __init__(self, bits: Iterable[int]) -> None:
        if isinstance(bits, np.ndarray):
            arr = bits
        elif hasattr(bits, "__len__"):  # sequence or buffer: no list() copy
            arr = np.asarray(bits)
        else:  # lazy iterable / generator
            arr = np.fromiter(bits, dtype=np.uint8)
        self._init_from_bool_array(arr.astype(bool, copy=False))

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bool_array(cls, arr: np.ndarray) -> "BitVector":
        """Build from a boolean ``numpy`` array without copying twice."""
        bv = cls.__new__(cls)
        bv._init_from_bool_array(np.asarray(arr, dtype=bool))
        return bv

    @classmethod
    def from_packed_words(cls, words: np.ndarray, n: int) -> "BitVector":
        """Build from pre-packed little-endian uint64 words.

        ``words`` must hold exactly ``ceil(max(n, 1) / 64)`` words with
        every bit past position ``n`` clear (the builder's invariant);
        the rank counters are recomputed here, so the result is
        byte-identical to :meth:`from_bool_array` on the same bits.
        """
        arr = np.ascontiguousarray(words, dtype=np.uint64).reshape(-1)
        expected = -(-max(int(n), 1) // 64)
        if len(arr) != expected:
            raise ValueError(
                f"packed words length {len(arr)} != {expected} for n={n}"
            )
        bv = cls.__new__(cls)
        bv._n = int(n)
        bv._words = arr
        bv._word_prefix = None
        bv._build_counters()
        return bv

    @classmethod
    def from_components(
        cls,
        words: np.ndarray,
        super_: np.ndarray,
        rel: np.ndarray,
        *,
        n: int,
        ones: int,
    ) -> "BitVector":
        """Adopt prebuilt payload + counter buffers without copying.

        The buffers may be views into shared memory or a ``np.memmap``
        over the frozen on-disk layout — this is the copy-free
        ``mmap_mode`` constructor.  Only O(1) shape/dtype validation is
        performed; use :func:`repro.reliability.integrity.verify_index`
        (or ``verify=True`` on the frozen open path) for content checks.
        """
        bv = cls.__new__(cls)
        bv._n = int(n)
        nwords = -(-max(bv._n, 1) // 64)
        nsuper = -(-nwords // WORDS_PER_SUPERBLOCK)
        if words.dtype != np.uint64 or len(words) != nwords:
            raise ValueError(
                f"words buffer must be {nwords} uint64, got "
                f"{len(words)} {words.dtype}"
            )
        if super_.dtype != np.uint64 or len(super_) != nsuper + 1:
            raise ValueError(
                f"super buffer must be {nsuper + 1} uint64, got "
                f"{len(super_)} {super_.dtype}"
            )
        if rel.dtype != np.uint16 or len(rel) != nwords:
            raise ValueError(
                f"rel buffer must be {nwords} uint16, got "
                f"{len(rel)} {rel.dtype}"
            )
        bv._words = words
        bv._super = super_
        bv._rel = rel
        bv._ones = int(ones)
        bv._word_prefix = None
        return bv

    @classmethod
    def from_positions(cls, n: int, positions: Iterable[int]) -> "BitVector":
        """Build a length-``n`` bitvector with ones at ``positions``."""
        arr = np.zeros(n, dtype=bool)
        pos = np.fromiter(positions, dtype=np.int64)
        if len(pos):
            if pos.min() < 0 or pos.max() >= n:
                raise ValueError("position out of range")
            arr[pos] = True
        return cls.from_bool_array(arr)

    def _init_from_bool_array(self, arr: np.ndarray) -> None:
        if arr.ndim != 1:
            raise ValueError("bits must be one-dimensional")
        self._n = len(arr)
        padded_len = -(-max(self._n, 1) // 64) * 64
        padded = np.zeros(padded_len, dtype=bool)
        padded[: self._n] = arr
        # Pack into little-endian words: bit i of word w is position 64*w+i.
        bytes_ = np.packbits(padded.reshape(-1, 8), axis=1, bitorder="little")
        self._words = bytes_.reshape(-1, 8).copy().view(np.uint64).reshape(-1)
        self._word_prefix: Optional[np.ndarray] = None
        self._build_counters()

    def _build_counters(self) -> None:
        counts = _popcount_words(self._words)
        nwords = len(self._words)
        nsuper = -(-nwords // WORDS_PER_SUPERBLOCK)
        padded = np.zeros(nsuper * WORDS_PER_SUPERBLOCK, dtype=np.uint64)
        padded[:nwords] = counts
        grouped = padded.reshape(nsuper, WORDS_PER_SUPERBLOCK)
        per_super = grouped.sum(axis=1)
        self._super = np.zeros(nsuper + 1, dtype=np.uint64)
        np.cumsum(per_super, out=self._super[1:])
        rel = np.cumsum(grouped, axis=1)
        rel_shifted = np.zeros_like(rel)
        rel_shifted[:, 1:] = rel[:, :-1]
        self._rel = rel_shifted.reshape(-1)[:nwords].astype(np.uint16)
        self._ones = int(self._super[-1])

    def _word_prefix_counts(self) -> np.ndarray:
        """``out[w]`` = ones strictly before word ``w`` (lazy, cached).

        A reconstructible acceleration mirror for the batch select kernel
        (one int64 per word), analogous to the query mirror of
        :class:`~repro.core.counts.PackedCounts` — it is not part of the
        accounted index size.
        """
        if self._word_prefix is None:
            sb = np.arange(len(self._words)) // WORDS_PER_SUPERBLOCK
            self._word_prefix = (
                self._super[sb] + self._rel.astype(np.uint64)
            ).astype(np.int64)
        return self._word_prefix

    # -- basic queries -----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return self._ones

    @property
    def zeros(self) -> int:
        """Total number of unset bits."""
        return self._n - self._ones

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(f"bit index {i} out of range [0, {self._n})")
        return (int(self._words[i >> 6]) >> (i & _LOW6)) & 1

    def rank1(self, i: int) -> int:
        """Number of ones in positions ``[0, i)``; ``0 <= i <= len``."""
        if i <= 0:
            return 0
        if i >= self._n:
            return self._ones
        w = i >> 6
        base = int(self._super[w // WORDS_PER_SUPERBLOCK]) + int(self._rel[w])
        rem = i & _LOW6
        if rem == 0:
            return base
        word = int(self._words[w]) & ((1 << rem) - 1)
        return base + word.bit_count()

    def rank0(self, i: int) -> int:
        """Number of zeros in positions ``[0, i)``."""
        i = min(max(i, 0), self._n)
        return i - self.rank1(i)

    def select1(self, k: int) -> int:
        """Position of the k-th one (``1 <= k <= ones``)."""
        if not 1 <= k <= self._ones:
            raise ValueError(f"select1({k}) out of range [1, {self._ones}]")
        # Superblock whose prefix count is still < k, then one vectorised
        # popcount over its <= WORDS_PER_SUPERBLOCK words.
        sb = int(np.searchsorted(self._super, k, side="left")) - 1
        count = int(self._super[sb])
        w0 = sb * WORDS_PER_SUPERBLOCK
        last = min(w0 + WORDS_PER_SUPERBLOCK, len(self._words))
        cum = count + np.cumsum(_popcount_words(self._words[w0:last]))
        wi = int(np.searchsorted(cum, k, side="left"))
        if wi >= len(cum):
            raise AssertionError("select1 internal inconsistency")
        prev = count if wi == 0 else int(cum[wi - 1])
        word = int(self._words[w0 + wi])
        return ((w0 + wi) << 6) + _select_in_word(word, k - prev)

    def select0(self, k: int) -> int:
        """Position of the k-th zero (``1 <= k <= zeros``)."""
        if not 1 <= k <= self.zeros:
            raise ValueError(f"select0({k}) out of range [1, {self.zeros}]")
        lo, hi = 0, self._n  # invariant: rank0(lo) < k <= rank0(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.rank0(mid) < k:
                lo = mid
            else:
                hi = mid
        return lo

    def next_one(self, i: int) -> Optional[int]:
        """Smallest position ``>= i`` holding a one, or ``None``."""
        if i < 0:
            i = 0
        if i >= self._n:
            return None
        r = self.rank1(i)
        if r >= self._ones:
            return None
        return self.select1(r + 1)

    # -- batch kernels -----------------------------------------------------

    def rank1_many(self, positions) -> np.ndarray:
        """``rank1`` over a whole array of positions in O(1) Python calls.

        Out-of-range positions clamp exactly like the scalar version
        (``<= 0`` → 0, ``>= n`` → :attr:`ones`).  Returns ``int64``.
        """
        started = time.perf_counter() if _perf.enabled else 0.0
        pos = np.asarray(positions, dtype=np.int64)
        out = np.empty(pos.shape, dtype=np.int64)
        if pos.size:
            below = pos <= 0
            above = pos >= self._n
            out[below] = 0
            out[above] = self._ones
            mid = ~(below | above)
            if mid.any():
                p = pos[mid]
                w = p >> 6
                base = self._super[w // WORDS_PER_SUPERBLOCK] + self._rel[
                    w
                ].astype(np.uint64)
                rem = (p & _LOW6).astype(np.uint64)
                masked = self._words[w] & ((_ONE << rem) - _ONE)
                out[mid] = (base + _popcount_words(masked)).astype(np.int64)
        if _perf.enabled:
            _perf.record(
                "bits.rank1_many", pos.size, time.perf_counter() - started
            )
        return out

    def rank0_many(self, positions) -> np.ndarray:
        """``rank0`` over a whole array of positions (``int64``)."""
        pos = np.asarray(positions, dtype=np.int64)
        return np.clip(pos, 0, self._n) - self.rank1_many(pos)

    def select1_many(self, ks) -> np.ndarray:
        """``select1`` over a whole array of ranks in O(1) Python calls.

        Every ``k`` must satisfy ``1 <= k <= ones`` (as in the scalar
        version).  Returns ``int64`` positions.
        """
        started = time.perf_counter() if _perf.enabled else 0.0
        k = np.asarray(ks, dtype=np.int64)
        if k.size == 0:
            return np.empty(k.shape, dtype=np.int64)
        if int(k.min()) < 1 or int(k.max()) > self._ones:
            raise ValueError(
                f"select1_many: ranks must lie in [1, {self._ones}]"
            )
        prefix = self._word_prefix_counts()
        w = np.searchsorted(prefix, k, side="left") - 1
        words = self._words[w]
        k_in_word = k - prefix[w]
        bytes_ = words.view(np.uint8).reshape(-1, 8)
        byte_pop = _popcount_bytes(bytes_)
        cum = np.cumsum(byte_pop, axis=1, dtype=np.int64)
        byte_idx = (cum < k_in_word[:, None]).sum(axis=1)
        rows = np.arange(len(k_in_word))
        prev = cum[rows, byte_idx] - byte_pop[rows, byte_idx]
        k_in_byte = k_in_word - prev
        pos_in_byte = _SELECT_IN_BYTE[bytes_[rows, byte_idx], k_in_byte - 1]
        out = (w << 6) + (byte_idx << 3) + pos_in_byte
        if _perf.enabled:
            _perf.record(
                "bits.select1_many", k.size, time.perf_counter() - started
            )
        return out

    def access_many(self, positions) -> np.ndarray:
        """Bit values at an array of positions (``uint8`` zeros/ones)."""
        started = time.perf_counter() if _perf.enabled else 0.0
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (int(pos.min()) < 0 or int(pos.max()) >= self._n):
            raise IndexError(
                f"bit index out of range [0, {self._n}) in access_many"
            )
        words = self._words[pos >> 6]
        rem = (pos & _LOW6).astype(np.uint64)
        out = ((words >> rem) & _ONE).astype(np.uint8)
        if _perf.enabled:
            _perf.record(
                "bits.access_many", pos.size, time.perf_counter() - started
            )
        return out

    # -- bulk access -------------------------------------------------------

    def to_bool_array(self) -> np.ndarray:
        """Materialise the bits as a boolean array (testing/debug)."""
        bits = np.unpackbits(
            self._words.view(np.uint8), bitorder="little"
        ).astype(bool)
        return bits[: self._n]

    # -- accounting --------------------------------------------------------

    def size_in_bits(self) -> int:
        """Total retained size: payload words plus rank counters."""
        return (
            64 * len(self._words)
            + 64 * len(self._super)
            + 16 * len(self._rel)
            + 128  # header: length, ones, pointers
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector(n={self._n}, ones={self._ones})"


def _select_in_word(word: int, k: int) -> int:
    """Position (0-based) of the k-th set bit of ``word`` (``k >= 1``)."""
    for _ in range(k - 1):
        word &= word - 1
    return (word & -word).bit_length() - 1
