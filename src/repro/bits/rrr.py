"""RRR-style compressed bitvector (class/offset block encoding).

This mirrors the design of sdsl's ``rrr_vector`` that the paper uses for
the **C-Ring**: the bit string is split into blocks of ``block_size`` bits;
each block stores its *class* (its popcount, in ``ceil(log2(block_size+1))``
bits) and an *offset* (the rank of the block among all blocks of that
class, in ``ceil(log2(binom(block_size, class)))`` bits).  Runny bit
strings — such as the level bitvectors of a wavelet matrix built on a BWT —
have many blocks of class 0 or ``block_size``, whose offsets take 0 bits,
which is where the compression comes from (high-order entropy of the BWT,
[Mäkinen & Navarro 2008] as cited by the paper).

A *superblock* every ``SUPERBLOCK_BLOCKS`` blocks stores the absolute rank
and the absolute offset-stream bit position, so ``rank`` costs one
superblock lookup, at most ``SUPERBLOCK_BLOCKS - 1`` class lookups, and one
block decode.

The paper's sdsl parameter ``b`` (``b = 16`` for the C-Ring of Table 1,
``b = 64`` for the compression study of §5.2.1) corresponds to
``block_size = 15`` and ``block_size = 63`` here (one less, so the class
field stays within a round number of bits, as sdsl itself does).
"""

from __future__ import annotations

from math import comb
from typing import Iterable

import numpy as np

from repro.bits.bitvector import BitVector, _select_in_word
from repro.bits.packed import PackedIntArray, bits_needed

SUPERBLOCK_BLOCKS = 32
_SUPPORTED_BLOCK_SIZES = (15, 31, 63)


class _BlockCode:
    """Enumerative (combinatorial) coder for fixed-size blocks.

    The offset of a block with ``k`` ones is its 0-based rank in the
    lexicographic enumeration (MSB first) of all ``block_size``-bit words
    with exactly ``k`` ones.
    """

    def __init__(self, block_size: int) -> None:
        self.block_size = block_size
        self.class_bits = bits_needed(block_size)
        self.offset_bits = [
            bits_needed(comb(block_size, k) - 1) if comb(block_size, k) > 1 else 0
            for k in range(block_size + 1)
        ]

    def encode(self, block: int) -> tuple[int, int]:
        """Return ``(class, offset)`` for a ``block_size``-bit block."""
        k = block.bit_count()
        offset = 0
        ones_left = k
        for pos in range(self.block_size - 1, -1, -1):
            if ones_left == 0:
                break
            if (block >> pos) & 1:
                offset += comb(pos, ones_left)
                ones_left -= 1
        return k, offset

    def decode(self, k: int, offset: int) -> int:
        """Inverse of :meth:`encode`."""
        block = 0
        ones_left = k
        for pos in range(self.block_size - 1, -1, -1):
            if ones_left == 0:
                break
            c = comb(pos, ones_left)
            if offset >= c:
                block |= 1 << pos
                offset -= c
                ones_left -= 1
        return block


_CODERS: dict[int, _BlockCode] = {}


def _coder(block_size: int) -> _BlockCode:
    if block_size not in _CODERS:
        _CODERS[block_size] = _BlockCode(block_size)
    return _CODERS[block_size]


class RRRBitVector:
    """Compressed bitvector with rank/select, compatible with
    :class:`~repro.bits.bitvector.BitVector`'s query interface."""

    __slots__ = (
        "_n",
        "_ones",
        "_block_size",
        "_coder",
        "_classes",
        "_offsets_words",
        "_offsets_bits",
        "_super_rank",
        "_super_offset",
    )

    def __init__(self, bits: Iterable[int], block_size: int = 15) -> None:
        if block_size not in _SUPPORTED_BLOCK_SIZES:
            raise ValueError(f"block_size must be one of {_SUPPORTED_BLOCK_SIZES}")
        arr = np.asarray(
            list(bits) if not isinstance(bits, np.ndarray) else bits
        ).astype(bool)
        self._n = len(arr)
        self._block_size = block_size
        self._coder = _coder(block_size)
        self._build(arr)

    @classmethod
    def from_bool_array(cls, arr: np.ndarray, block_size: int = 15) -> "RRRBitVector":
        return cls(np.asarray(arr, dtype=bool), block_size)

    def _build(self, arr: np.ndarray) -> None:
        bs = self._block_size
        nblocks = -(-max(self._n, 1) // bs)
        padded = np.zeros(nblocks * bs, dtype=bool)
        padded[: self._n] = arr
        blocks = padded.reshape(nblocks, bs)
        # MSB-first integer value per block for the enumerative coder.
        weights = (1 << np.arange(bs - 1, -1, -1)).astype(object)
        block_vals = (blocks.astype(object) * weights).sum(axis=1)

        classes = np.array([int(v).bit_count() for v in block_vals], dtype=np.uint8)
        coder = self._coder
        offset_stream: list[int] = []  # (offset, width) pairs flattened below
        widths = np.array([coder.offset_bits[k] for k in classes], dtype=np.int64)
        offsets = [coder.encode(int(v))[1] for v in block_vals]

        # Pack variable-width offsets into words.
        total_bits = int(widths.sum())
        nwords = -(-max(total_bits, 1) // 64)
        words = np.zeros(nwords, dtype=np.uint64)
        acc, acc_bits, w = 0, 0, 0
        for off, width in zip(offsets, widths):
            if width:
                acc |= int(off) << acc_bits
                acc_bits += int(width)
                while acc_bits >= 64:
                    words[w] = acc & 0xFFFFFFFFFFFFFFFF
                    acc >>= 64
                    acc_bits -= 64
                    w += 1
        if acc_bits:
            words[w] = acc & 0xFFFFFFFFFFFFFFFF
        self._offsets_words = words
        self._offsets_bits = total_bits

        nsuper = -(-nblocks // SUPERBLOCK_BLOCKS)
        rank_cum = np.zeros(nsuper + 1, dtype=np.uint64)
        off_cum = np.zeros(nsuper + 1, dtype=np.uint64)
        cranks = np.concatenate([[0], np.cumsum(classes.astype(np.uint64))])
        coffs = np.concatenate([[0], np.cumsum(widths.astype(np.uint64))])
        for s in range(nsuper + 1):
            b = min(s * SUPERBLOCK_BLOCKS, nblocks)
            rank_cum[s] = cranks[b]
            off_cum[s] = coffs[b]
        self._super_rank = rank_cum
        self._super_offset = off_cum
        self._classes = PackedIntArray(classes, width=self._coder.class_bits)
        self._ones = int(cranks[-1])

    # -- internal decoding ------------------------------------------------

    def _read_offset(self, bitpos: int, width: int) -> int:
        if width == 0:
            return 0
        w, off = bitpos >> 6, bitpos & 63
        value = int(self._offsets_words[w]) >> off
        got = 64 - off
        while got < width:
            w += 1
            value |= int(self._offsets_words[w]) << got
            got += 64
        return value & ((1 << width) - 1)

    def _block(self, b: int) -> tuple[int, int]:
        """Decode block ``b``; returns ``(class, bits-as-int MSB-first)``."""
        s = b // SUPERBLOCK_BLOCKS
        bitpos = int(self._super_offset[s])
        k = 0
        for j in range(s * SUPERBLOCK_BLOCKS, b):
            k = self._classes[j]
            bitpos += self._coder.offset_bits[k]
        k = self._classes[b]
        offset = self._read_offset(bitpos, self._coder.offset_bits[k])
        return k, self._coder.decode(k, offset)

    def _rank_to_block(self, b: int) -> tuple[int, int]:
        """Rank before block ``b`` and bit position of its offset."""
        s = b // SUPERBLOCK_BLOCKS
        rank = int(self._super_rank[s])
        bitpos = int(self._super_offset[s])
        for j in range(s * SUPERBLOCK_BLOCKS, b):
            k = self._classes[j]
            rank += k
            bitpos += self._coder.offset_bits[k]
        return rank, bitpos

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def ones(self) -> int:
        return self._ones

    @property
    def zeros(self) -> int:
        return self._n - self._ones

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(f"bit index {i} out of range [0, {self._n})")
        b, r = divmod(i, self._block_size)
        _, bits = self._block(b)
        return (bits >> (self._block_size - 1 - r)) & 1

    def rank1(self, i: int) -> int:
        if i <= 0:
            return 0
        if i >= self._n:
            return self._ones
        b, r = divmod(i, self._block_size)
        rank, bitpos = self._rank_to_block(b)
        if r == 0:
            return rank
        k = self._classes[b]
        offset = self._read_offset(bitpos, self._coder.offset_bits[k])
        bits = self._coder.decode(k, offset)
        # Keep only the top r bits of the MSB-first block.
        return rank + (bits >> (self._block_size - r)).bit_count()

    def rank0(self, i: int) -> int:
        i = min(max(i, 0), self._n)
        return i - self.rank1(i)

    def select1(self, k: int) -> int:
        if not 1 <= k <= self._ones:
            raise ValueError(f"select1({k}) out of range [1, {self._ones}]")
        s = int(np.searchsorted(self._super_rank, k, side="left")) - 1
        rank = int(self._super_rank[s])
        bitpos = int(self._super_offset[s])
        nblocks = len(self._classes)
        b = s * SUPERBLOCK_BLOCKS
        while b < nblocks:
            c = self._classes[b]
            if rank + c >= k:
                break
            rank += c
            bitpos += self._coder.offset_bits[c]
            b += 1
        c = self._classes[b]
        offset = self._read_offset(bitpos, self._coder.offset_bits[c])
        bits = self._coder.decode(c, offset)
        # Convert to LSB-first to reuse the word scanner.
        lsb = _reverse_bits(bits, self._block_size)
        return b * self._block_size + _select_in_word(lsb, k - rank)

    def select0(self, k: int) -> int:
        if not 1 <= k <= self.zeros:
            raise ValueError(f"select0({k}) out of range [1, {self.zeros}]")
        lo, hi = 0, self._n
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.rank0(mid) < k:
                lo = mid
            else:
                hi = mid
        return lo

    # -- batch kernels (scalar-loop fallbacks) ------------------------------
    #
    # The compressed layout decodes blocks one at a time, so these exist
    # for interface parity with :class:`~repro.bits.bitvector.BitVector`:
    # the wavelet matrix and LTJ batch paths stay correct over the C-Ring,
    # they just do not get the plain-bitvector vectorisation win.

    def rank1_many(self, positions) -> np.ndarray:
        """``rank1`` over an array of positions (scalar loop inside)."""
        pos = np.asarray(positions, dtype=np.int64)
        return np.fromiter(
            (self.rank1(int(i)) for i in pos), dtype=np.int64, count=pos.size
        ).reshape(pos.shape)

    def rank0_many(self, positions) -> np.ndarray:
        """``rank0`` over an array of positions (scalar loop inside)."""
        pos = np.asarray(positions, dtype=np.int64)
        return np.clip(pos, 0, self._n) - self.rank1_many(pos)

    def select1_many(self, ks) -> np.ndarray:
        """``select1`` over an array of ranks (scalar loop inside)."""
        k = np.asarray(ks, dtype=np.int64)
        return np.fromiter(
            (self.select1(int(x)) for x in k), dtype=np.int64, count=k.size
        ).reshape(k.shape)

    def access_many(self, positions) -> np.ndarray:
        """Bit values at an array of positions (scalar loop inside)."""
        pos = np.asarray(positions, dtype=np.int64)
        return np.fromiter(
            (self[int(i)] for i in pos), dtype=np.uint8, count=pos.size
        ).reshape(pos.shape)

    def to_bool_array(self) -> np.ndarray:
        out = np.zeros(self._n, dtype=bool)
        for b in range(len(self._classes)):
            _, bits = self._block(b)
            base = b * self._block_size
            for r in range(self._block_size):
                pos = base + r
                if pos >= self._n:
                    break
                out[pos] = (bits >> (self._block_size - 1 - r)) & 1
        return out

    def size_in_bits(self) -> int:
        return (
            self._classes.size_in_bits()
            + 64 * len(self._offsets_words)
            + 64 * len(self._super_rank)
            + 64 * len(self._super_offset)
            + 192  # header
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RRRBitVector(n={self._n}, ones={self._ones}, "
            f"block_size={self._block_size})"
        )


def _reverse_bits(value: int, width: int) -> int:
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def best_bitvector(arr: np.ndarray, compressed: bool, block_size: int = 15):
    """Factory used by the wavelet matrix: plain or RRR backend."""
    if compressed:
        return RRRBitVector.from_bool_array(arr, block_size)
    return BitVector.from_bool_array(arr)
