"""Elias–Fano encoding of monotone integer sequences.

Stores ``m`` non-decreasing values in ``[0, universe)`` using roughly
``m * (2 + log2(universe / m))`` bits.  Values are split into ``low`` bits
(stored verbatim in a :class:`~repro.bits.packed.PackedIntArray`) and
``high`` bits (stored in unary in a plain bitvector, on which ``select``
recovers values in constant time).

In this library Elias–Fano backs the space-optimised representation of the
ring's ``C`` arrays (which are cumulative counts, hence monotone) — the
role played by the bitvector ``D`` with ``select`` support in §2.3.3 of the
paper — and serves the baselines that keep sorted id lists.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.bits.bitvector import BitVector
from repro.bits.packed import PackedIntArray


class EliasFano:
    """Monotone sequence with access, successor and predecessor queries."""

    __slots__ = ("_m", "_universe", "_low_bits", "_low", "_high")

    def __init__(self, values: Iterable[int], universe: int | None = None) -> None:
        vals = np.asarray(
            list(values) if not isinstance(values, np.ndarray) else values,
            dtype=np.int64,
        )
        if len(vals) and np.any(np.diff(vals) < 0):
            raise ValueError("values must be non-decreasing")
        if len(vals) and vals[0] < 0:
            raise ValueError("values must be non-negative")
        if universe is None:
            universe = int(vals[-1]) + 1 if len(vals) else 1
        if len(vals) and int(vals[-1]) >= universe:
            raise ValueError("value outside universe")
        self._m = len(vals)
        self._universe = universe

        m = max(self._m, 1)
        self._low_bits = max(0, (universe // m).bit_length() - 1)
        low_mask = (1 << self._low_bits) - 1
        lows = (vals & low_mask) if self._low_bits else np.zeros(len(vals), np.int64)
        highs = vals >> self._low_bits

        self._low = PackedIntArray(lows.astype(np.uint64), width=max(1, self._low_bits))
        # Unary high part: value i contributes a one at position highs[i] + i.
        n_high = (universe >> self._low_bits) + self._m + 1
        self._high = BitVector.from_positions(
            n_high, (int(h) + i for i, h in enumerate(highs))
        )

    def __len__(self) -> int:
        return self._m

    @property
    def universe(self) -> int:
        return self._universe

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._m:
            raise IndexError(f"index {i} out of range [0, {self._m})")
        high = self._high.select1(i + 1) - i
        if self._low_bits:
            return (high << self._low_bits) | self._low[i]
        return high

    def __iter__(self):
        for i in range(self._m):
            yield self[i]

    def next_geq(self, x: int) -> Optional[tuple[int, int]]:
        """Smallest ``(index, value)`` with ``value >= x``, else ``None``."""
        if self._m == 0:
            return None
        if x >= self._universe:
            return None if x > self._last() else (self._m - 1, self._last())
        if x <= self[0]:
            return 0, self[0]
        # Candidates start where the high part reaches x's high bits.
        hx = x >> self._low_bits
        start = self._high.rank1(self._high.select0(hx) + 1) if hx > 0 else 0
        for i in range(start, self._m):
            v = self[i]
            if v >= x:
                return i, v
        return None

    def rank_lt(self, x: int) -> int:
        """Number of stored values strictly below ``x``."""
        lo, hi = 0, self._m  # first index with value >= x
        while lo < hi:
            mid = (lo + hi) // 2
            if self[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _last(self) -> int:
        return self[self._m - 1]

    def size_in_bits(self) -> int:
        return self._low.size_in_bits() + self._high.size_in_bits() + 128

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EliasFano(m={self._m}, universe={self._universe})"
