"""Byte-oriented integer codecs: varint (LEB128) and triple delta coding.

These implement the compression scheme the paper attributes to RDF-3X
("the triples are sorted, so that those in each B+-tree leaf can be
differentially encoded") and its own "special-purpose front-coding plus
delta-coding of the differences" yardstick from §5.2.1.

A block of lexicographically sorted ``(a, b, c)`` triples is encoded as:

- the first triple with full varints,
- every following triple as a 2-bit header naming the longest shared
  prefix with its predecessor (0, 1 or 2 components), then the gap of the
  first differing component, then the remaining components verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Triple = Tuple[int, int, int]


def encode_varint(value: int, out: bytearray) -> None:
    """Append the LEB128 encoding of a non-negative integer."""
    if value < 0:
        raise ValueError("varint values must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one varint at ``pos``; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def encode_varints(values: Iterable[int]) -> bytes:
    """LEB128-encode a whole sequence into one byte string."""
    out = bytearray()
    for v in values:
        encode_varint(v, out)
    return bytes(out)


def decode_varints(data: bytes) -> List[int]:
    """Decode a byte string of concatenated varints."""
    out: List[int] = []
    pos = 0
    while pos < len(data):
        v, pos = decode_varint(data, pos)
        out.append(v)
    return out


def encode_triple_block(triples: Sequence[Triple]) -> bytes:
    """Front-code a block of lexicographically sorted triples."""
    out = bytearray()
    encode_varint(len(triples), out)
    prev: Triple | None = None
    for t in triples:
        if prev is None:
            out.append(0)
            for comp in t:
                encode_varint(comp, out)
        else:
            if t < prev:
                raise ValueError("triples must be sorted")
            if t[0] == prev[0] and t[1] == prev[1]:
                out.append(2)
                encode_varint(t[2] - prev[2], out)
            elif t[0] == prev[0]:
                out.append(1)
                encode_varint(t[1] - prev[1], out)
                encode_varint(t[2], out)
            else:
                out.append(0)
                encode_varint(t[0] - prev[0], out)
                encode_varint(t[1], out)
                encode_varint(t[2], out)
        prev = t
    return bytes(out)


def decode_triple_block(data: bytes) -> List[Triple]:
    """Inverse of :func:`encode_triple_block`."""
    count, pos = decode_varint(data, 0)
    out: List[Triple] = []
    prev: Triple | None = None
    for _ in range(count):
        shared = data[pos]
        pos += 1
        if prev is None:
            a, pos = decode_varint(data, pos)
            b, pos = decode_varint(data, pos)
            c, pos = decode_varint(data, pos)
        elif shared == 2:
            gap, pos = decode_varint(data, pos)
            a, b, c = prev[0], prev[1], prev[2] + gap
        elif shared == 1:
            gap, pos = decode_varint(data, pos)
            c, pos = decode_varint(data, pos)
            a, b = prev[0], prev[1] + gap
        else:
            gap, pos = decode_varint(data, pos)
            b, pos = decode_varint(data, pos)
            c, pos = decode_varint(data, pos)
            a = (prev[0] + gap) if prev is not None else gap
        prev = (a, b, c)
        out.append(prev)
    return out
