"""The ``repro`` command line: build, query, verify and inspect indexes.

Examples::

    python -m repro build data.nt -o nobel.npz
    python -m repro query nobel.npz "?x adv ?y . Nobel win ?y"
    python -m repro query nobel.npz "?x ?p ?y" --timeout 1 --partial
    python -m repro explain nobel.npz "?x nom ?y . ?x win ?z . ?z adv ?y"
    python -m repro plan nobel.npz "?x adv ?y . ?y win ?z" --slices 4
    python -m repro plan nobel.npz "?x adv ?y . ?y win ?z" --policy adaptive
    python -m repro path nobel.npz "adv+" --source Thorne
    python -m repro verify nobel.npz
    python -m repro stats nobel.npz
    python -m repro bench --quick -o BENCH_kernels.json
    python -m repro bench --parallel --quick -o BENCH_parallel.json
    python -m repro bench --adaptive --quick -o BENCH_adaptive.json
    python -m repro serve store/ --create --n-nodes 1000 --n-predicates 16
    python -m repro recover store/

Input formats for ``build``: ``.nt`` files go through the N-Triples
loader; anything else is parsed as whitespace-separated ``s p o`` lines.
The benchmark entry points live under ``python -m repro.bench``.

``serve`` runs a durable dynamic ring (WAL + checkpoints, see
:mod:`repro.reliability.wal`) behind a :class:`QueryBroker` and speaks a
line protocol on stdin — ``INSERT s p o`` / ``DELETE s p o`` /
``QUERY <bgp>`` / ``CHECKPOINT`` / ``STATS``; EOF shuts down cleanly.
``recover`` replays the WAL against the latest checkpoint and reports
what it did; ``verify`` accepts those directories too.

Failure conventions (the serving-layer contract): user mistakes —
nonexistent files, unreadable or corrupted indexes, malformed queries —
print a one-line ``error: …`` on stderr and exit 1; a query timeout
exits 2 (unless ``--partial`` asked for graceful degradation).
Tracebacks are reserved for actual bugs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import CompressedRingIndex, QueryTimeout, RingIndex
from repro.core.interface import QueryCancelled, QueryExecutionError
from repro.graph.dataset import Graph
from repro.graph.ntriples import NTriplesError, load_ntriples
from repro.reliability.integrity import IndexIntegrityError, verify_index

EXIT_ERROR = 1
EXIT_TIMEOUT = 2


def _load_graph_file(path: str, strict: bool = True, stats=None) -> Graph:
    if path.endswith(".nt"):
        return load_ntriples(path, strict=strict, stats=stats)
    return Graph.from_file(path)


def cmd_build(args) -> None:
    start = time.perf_counter()
    if args.workers or args.shards:
        # Parallel partitioned builds only exist on the streaming path.
        args.stream = True
    if args.merge_fanin < 2:
        raise SystemExit("error: --merge-fanin must be at least 2")
    if args.workers < 0:
        raise SystemExit("error: --workers must be non-negative")
    if args.shards is not None and args.shards < 1:
        raise SystemExit("error: --shards must be positive")
    if args.shards is not None:
        if args.compressed or args.frozen:
            raise SystemExit(
                "error: --shards emits a sharded durable layout; "
                "it is incompatible with --compressed/--frozen"
            )
        from repro.graph.bulkload import bulk_build_sharded

        build_stats: dict = {}
        manifest = bulk_build_sharded(
            args.input,
            args.output,
            n_shards=args.shards,
            chunk_triples=args.chunk_triples,
            workers=args.workers,
            merge_fanin=args.merge_fanin,
            stats=build_stats,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr),
        )
        elapsed = time.perf_counter() - start
        print(
            f"shard-indexed {build_stats['n_triples']} triples "
            f"({manifest['n_nodes']} nodes, "
            f"{manifest['n_predicates']} predicates) into "
            f"{manifest['n_shards']} shard(s) "
            f"in {elapsed:.2f}s -> {args.output}"
        )
        for sid, count in enumerate(build_stats["shard_triples"]):
            print(f"  shard-{sid:02d}: {count} triples")
        print(
            f"pack bytes: {build_stats['pack_bytes']} "
            f"({build_stats['runs_spilled']} spilled run(s), "
            f"{build_stats['deduplicated']} duplicate(s) dropped); "
            f"serve with: repro shard-serve {args.output} --mmap ..."
        )
        return
    if args.stream:
        # Out-of-core path: never holds the triple set in memory, and
        # always emits a frozen pack (the streaming builder writes the
        # succinct arrays directly into the on-disk layout).
        if args.compressed:
            raise SystemExit(
                "error: --stream builds plain frozen packs; "
                "--compressed needs the in-memory builder"
            )
        from repro.graph.bulkload import bulk_build

        build_stats: dict = {}
        manifest = bulk_build(
            args.input,
            args.output,
            chunk_triples=args.chunk_triples,
            workers=args.workers,
            merge_fanin=args.merge_fanin,
            stats=build_stats,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr),
        )
        elapsed = time.perf_counter() - start
        print(
            f"stream-indexed {manifest['n_triples']} triples "
            f"({manifest['n_nodes']} nodes, "
            f"{manifest['n_predicates']} predicates) "
            f"in {elapsed:.2f}s -> {args.output}"
        )
        print(
            f"pack size: {manifest['file_size']} bytes "
            f"({build_stats['runs_spilled']} spilled run(s), "
            f"{build_stats['deduplicated']} duplicate(s) dropped); "
            f"open with --mmap for O(1) RAM"
        )
        return
    stats: dict = {}
    graph = _load_graph_file(args.input, strict=not args.lenient, stats=stats)
    cls = CompressedRingIndex if args.compressed else RingIndex
    index = cls(graph)
    if args.frozen:
        if args.compressed:
            raise SystemExit(
                "error: compressed rings have no flat layout; "
                "--frozen requires a plain ring"
            )
        index.save_frozen(args.output)
    else:
        index.save(args.output)
    elapsed = time.perf_counter() - start
    if stats.get("bad_lines"):
        print(
            f"warning: skipped {stats['bad_lines']} malformed line(s)",
            file=sys.stderr,
        )
    print(
        f"indexed {graph.n_triples} triples "
        f"({graph.n_nodes} nodes, {graph.n_predicates} predicates) "
        f"in {elapsed:.2f}s -> {args.output}"
    )
    print(f"index size: {index.bytes_per_triple():.2f} bytes/triple")


def cmd_query(args) -> None:
    index = RingIndex.load(args.index, mmap=args.mmap, policy=args.policy)
    solutions = index.evaluate(
        args.query,
        limit=args.limit,
        timeout=args.timeout,
        decode=True,
        partial=args.partial,
    )
    if args.json:
        print(json.dumps(list(solutions), indent=2))
    else:
        for mu in solutions:
            print("  ".join(f"{k}={v}" for k, v in sorted(mu.items())))
        suffix = (
            f" (truncated: {solutions.interrupted_by})"
            if solutions.truncated
            else ""
        )
        print(f"-- {len(solutions)} solution(s){suffix}")


def cmd_explain(args) -> None:
    index = RingIndex.load(args.index)
    plan = index.explain(args.query)
    if plan.get("empty"):
        print("query references constants absent from the graph: 0 solutions")
        return
    order = " -> ".join(v.name for v in plan["variable_order"]) or "(none)"
    lonely = ", ".join(v.name for v in plan["lonely_variables"]) or "(none)"
    print(f"elimination order : {order}")
    print(f"lonely variables  : {lonely}")
    print("pattern cardinalities (exact, via Lemma 3.6 ranges):")
    for pattern, count in plan["pattern_cardinalities"].items():
        print(f"  {pattern:<40} {count}")


def cmd_plan(args) -> None:
    """The cardinality-guided plan plus the parallel slice preview."""
    from repro.parallel.slices import plan_slices

    index = RingIndex.load(args.index, policy=args.policy)
    stats_cache = None
    if getattr(args, "stats_cache", None):
        from repro.cache import PlanStatsCache

        # A content token scopes the memo to this exact index: a file
        # captured against different contents loads as empty.
        graph = index.graph
        token = ("static", graph.n_triples, graph.n_nodes,
                 graph.n_predicates)
        stats_cache = PlanStatsCache.load(
            args.stats_cache, generation_source=lambda: token
        )
        index._engine.stats_cache = stats_cache
    bgp = _coerce_query(args.query, index.graph)
    plan = index.explain(bgp)
    if stats_cache is not None:
        stats_cache.save(args.stats_cache)
        memo = stats_cache.stats()
        print(f"stats cache       : {args.stats_cache} "
              f"({memo['entries']} entries, {memo['hits']} hits this run)")
    if plan.get("empty"):
        print("query references constants absent from the graph: 0 solutions")
        return
    scores = plan.get("variable_scores", {})
    order = plan["variable_order"]
    print("elimination order (cheapest distinct-count first):")
    for var in order:
        print(f"  {var.name:<8} ~{scores.get(var.name, '?')} distinct values")
    if plan.get("policy", "static") != "static":
        first = plan.get("first_variable")
        print(f"policy            : {plan['policy']} — re-ranks per binding "
              f"depth; depth-0 choice: "
              f"{first.name if first is not None else '(none)'}")
    lonely = ", ".join(v.name for v in plan["lonely_variables"]) or "(none)"
    print(f"lonely variables  : {lonely}")
    print("pattern cardinalities (exact, via Lemma 3.6 ranges):")
    for pattern, count in plan["pattern_cardinalities"].items():
        print(f"  {pattern:<40} {count}")
    if not order:
        print("parallel plan     : (no shared variable; runs serially)")
        return
    encoded = index.graph.encode_bgp(bgp)
    iters = [index.iterator(t) for t in encoded]
    if any(it.count() == 0 for it in iters):
        print("parallel plan     : (an empty pattern; 0 solutions)")
        return
    live = [it for it in iters if not it.pattern.is_fully_bound()]
    slice_plan = plan_slices(live, encoded, order, args.slices)
    if slice_plan is None or not slice_plan.viable:
        print("parallel plan     : (domain too small to partition; "
              "runs serially)")
        return
    print(f"parallel plan     : split ?{slice_plan.var.name} into "
          f"{len(slice_plan.slices)} slices")
    for (lo, hi), weight in zip(slice_plan.slices, slice_plan.weights):
        print(f"  [{lo:>8}, {hi:>8})  ~{weight} guiding-pattern rows")


def cmd_path(args) -> None:
    index = RingIndex.load(args.index)
    nodes = index.evaluate_path(args.expression, args.source, decode=True)
    for label in sorted(nodes):
        print(label)
    print(f"-- {len(nodes)} node(s)")


def cmd_verify(args) -> None:
    report = verify_index(args.index)
    print(f"index    : {report['path']}")
    print(f"manifest : {report['manifest']}")
    print(
        f"contents : {report['n_triples']} triples, "
        f"{report['n_nodes']} nodes, {report['n_predicates']} predicates"
        + (" (compressed)" if report["compressed"] else "")
        + (" (dynamic)" if report.get("kind") == "dynamic" else "")
    )
    for check in report["checks"]:
        print(f"  ok: {check}")
    if report.get("wal_tail"):
        print(f"  note: {report['wal_tail']}")
    print("index integrity: OK")


def cmd_bench(args) -> None:
    # Imported lazily: pulls in the graph generators and bench runner,
    # which the serving commands never need.
    if args.scale:
        from repro.perf.scalebench import (
            format_report, full_report, write_report,
        )

        report = full_report(quick=args.quick, seed=args.seed)
    elif args.adaptive:
        from repro.perf.adaptivebench import (
            format_report, full_report, write_report,
        )

        report = full_report(quick=args.quick, seed=args.seed)
    elif args.cache:
        from repro.perf.cachebench import (
            format_report, full_report, write_report,
        )

        report = full_report(quick=args.quick, seed=args.seed)
    elif args.parallel:
        from repro.perf.parallelbench import (
            format_report, full_report, write_report,
        )

        report = full_report(
            quick=args.quick, seed=args.seed, workers=args.workers or None
        )
    else:
        from repro.perf.kernelbench import (
            format_report, full_report, write_report,
        )

        report = full_report(quick=args.quick, seed=args.seed)
    print(format_report(report))
    if args.output:
        write_report(report, args.output)
        print(f"\nwrote {args.output}")


def _coerce_query(text: str, graph: Graph):
    """Parse a BGP; on id-only graphs, digit constants become ids."""
    from repro.graph.model import BasicGraphPattern, TriplePattern, Var
    from repro.graph.parser import parse_bgp

    bgp = parse_bgp(text)
    if graph.dictionary is not None:
        return bgp
    patterns = []
    for pattern in bgp.patterns:
        terms = []
        for term in pattern.terms:
            if isinstance(term, str) and term.lstrip("-").isdigit():
                term = int(term)
            elif isinstance(term, str):
                raise ValueError(
                    f"constant {term!r} needs a dictionary-backed graph; "
                    f"this store is id-only — use integer ids"
                )
            terms.append(term)
        patterns.append(TriplePattern(*terms))
    return BasicGraphPattern(patterns)


def _serve_line(line: str, store, broker, decode: bool) -> bool:
    """Handle one protocol line; returns ``False`` on QUIT."""
    from repro.reliability.broker import QueryRejected

    tokens = line.split(None, 1)
    verb = tokens[0].upper()
    rest = tokens[1] if len(tokens) > 1 else ""
    if verb == "QUIT":
        return False
    if verb in ("INSERT", "DELETE"):
        parts = rest.split()
        if len(parts) != 3:
            raise ValueError(f"{verb} needs exactly 3 terms")
        if store.graph.dictionary is not None and not all(
            t.lstrip("-").isdigit() for t in parts
        ):
            method = getattr(store, f"{verb.lower()}_labelled")
            changed = method(*parts)
        else:
            method = getattr(store, verb.lower())
            changed = method(*(int(t) for t in parts))
        if verb == "INSERT":
            print("ok inserted" if changed else "ok duplicate")
        else:
            print("ok deleted" if changed else "ok absent")
    elif verb == "QUERY":
        bgp = _coerce_query(rest, store.graph)
        try:
            result = broker.evaluate(bgp, decode=decode)
        except QueryRejected as exc:
            print(f"error: rejected: {exc}")
            return True
        for mu in result:
            items = sorted(mu.items(), key=lambda kv: str(kv[0]))
            print("  ".join(f"{k}={v}" for k, v in items))
        suffix = (
            f" (truncated: {result.interrupted_by})" if result.truncated else ""
        )
        if getattr(result, "cached", False):
            suffix += " (cached)"
        print(f"-- {len(result)} solution(s) @epoch {store.epoch}{suffix}")
    elif verb == "CHECKPOINT":
        print(f"ok checkpoint {store.checkpoint()}")
    elif verb == "STATS":
        stats = broker.stats()
        stats.update(
            epoch=store.epoch,
            triples=store.n_triples,
            components=store.n_components,
            wal_bytes=store.wal_bytes,
        )
        for key in sorted(stats):
            print(f"{key:<22}: {stats[key]}")
    else:
        print(f"error: unknown command {verb!r} "
              f"(INSERT/DELETE/QUERY/CHECKPOINT/STATS/QUIT)")
    return True


class _DrainRequested(Exception):
    """Raised by the SIGTERM handler to break the blocking serve loop."""


def _install_sigterm_drain():
    """Route SIGTERM into :class:`_DrainRequested`; returns the previous
    handler (or ``None`` when not installable, e.g. off the main thread)."""
    import signal

    def _handler(signum, frame):
        raise _DrainRequested()

    try:
        return signal.signal(signal.SIGTERM, _handler)
    except ValueError:  # pragma: no cover - non-main-thread callers
        return None


def _restore_sigterm(previous) -> None:
    import signal

    if previous is not None:
        try:
            signal.signal(signal.SIGTERM, previous)
        except ValueError:  # pragma: no cover - non-main-thread callers
            pass


def cmd_serve(args) -> None:
    # Lazy: pulls in the WAL + broker machinery only this command needs.
    import numpy as np

    from repro.reliability.broker import QueryBroker
    from repro.reliability.wal import DurableDynamicRing

    if args.create:
        universe = Graph(
            np.empty((0, 3), dtype=np.int64),
            n_nodes=args.n_nodes,
            n_predicates=args.n_predicates,
        )
        store = DurableDynamicRing.create(
            args.directory, universe, buffer_threshold=args.threshold,
            policy=args.policy,
        )
        print(f"created {args.directory} "
              f"({args.n_nodes} nodes, {args.n_predicates} predicates)")
    else:
        store, report = DurableDynamicRing.recover(
            args.directory, buffer_threshold=args.threshold,
            policy=args.policy, mmap=args.mmap,
        )
        print(f"recovered: {report.summary()}"
              + (" (memmapped checkpoints)" if args.mmap else ""))
    if args.policy != "static":
        print(f"policy: {args.policy}")
    decode = store.graph.dictionary is not None
    served_index = store
    if args.cache:
        from repro.cache import CachedQuerySystem

        served_index = CachedQuerySystem(
            store, capacity_bytes=args.cache_mb << 20
        )
        print(f"cache enabled ({args.cache_mb} MiB)")
    broker = QueryBroker(
        served_index,
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_timeout=args.timeout,
        maintenance_interval=args.maintenance_interval,
    )
    # SIGTERM = graceful drain: the raising handler interrupts the
    # blocking stdin read (PEP 475), the broker's context exit finishes
    # every in-flight query, and the final checkpoint still runs — so a
    # supervised `repro serve` can be stopped without losing acked work.
    previous_handler = _install_sigterm_drain()
    try:
        with broker:
            print("ready")
            sys.stdout.flush()
            try:
                for line in sys.stdin:
                    line = line.strip()
                    if not line or line.startswith("#"):
                        continue
                    try:
                        if not _serve_line(line, store, broker, decode):
                            break
                    except QueryTimeout:
                        print("error: timeout")
                    except (QueryExecutionError, ValueError, KeyError) as exc:
                        print(f"error: {str(exc) or type(exc).__name__}")
                    sys.stdout.flush()
            except _DrainRequested:
                print("draining: finishing in-flight queries")
                sys.stdout.flush()
    finally:
        _restore_sigterm(previous_handler)
        store.close(checkpoint=not args.no_final_checkpoint)
        print("bye")


def cmd_shard_serve(args) -> None:
    # Lazy: pulls in the whole serving tier only this command needs.
    import asyncio

    import numpy as np

    from repro.serving import (
        ShardCoordinator,
        ShardedRingIndex,
        ShardFrontend,
        ShardSupervisor,
    )

    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    if args.create:
        universe = Graph(
            np.empty((0, 3), dtype=np.int64),
            n_nodes=args.n_nodes,
            n_predicates=args.n_predicates,
        )
        shards = ShardedRingIndex.create_durable(
            args.directory,
            universe,
            args.shards,
            buffer_threshold=args.threshold,
            broker_options={"workers": args.workers},
            replicas=args.replicas,
            processes=args.processes,
        )
        mode = "process" if args.processes else "in-process"
        print(f"created {args.directory}: {args.shards} durable shard(s) "
              f"x{args.replicas} replica(s), {mode} "
              f"({args.n_nodes} nodes, {args.n_predicates} predicates)")
    else:
        shards = ShardedRingIndex.recover(
            args.directory,
            buffer_threshold=args.threshold,
            broker_options={"workers": args.workers},
            processes=True if args.processes else None,
            mmap=args.mmap,
        )
        print(f"recovered {shards.n_shards} shard(s), "
              f"{shards.n_triples} triple(s)"
              + (" (memmapped checkpoints)" if args.mmap else ""))
    served = ShardCoordinator(
        shards, shard_timeout=args.shard_timeout, policy=args.policy
    )
    if args.policy != "static":
        print(f"policy: {args.policy}")
    if args.cache:
        # The wrapper delegates every coordinator hook (shards, graph,
        # stats) transparently, so the frontend serves through it as-is.
        from repro.cache import CachedQuerySystem

        served = CachedQuerySystem(served, capacity_bytes=args.cache_mb << 20)
        print(f"cache enabled ({args.cache_mb} MiB)")
    supervisor = ShardSupervisor(shards, interval=args.supervise_interval)
    frontend = ShardFrontend(
        served,
        supervisor=supervisor,
        max_in_flight=args.max_in_flight,
        default_timeout=args.timeout,
        decode=shards.graph.dictionary is not None,
    )
    async def _serve() -> None:
        # SIGTERM = graceful drain: stop admitting, finish in-flight,
        # then the finally below checkpoints every shard and exits 0.
        import signal

        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, frontend.request_drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without loop signal handlers
        await frontend.serve_stdin()

    try:
        with supervisor:
            asyncio.run(_serve())
    finally:
        shards.shutdown(checkpoint=not args.no_final_checkpoint)


def cmd_recover(args) -> None:
    from repro.reliability.wal import DurableDynamicRing

    store, report = DurableDynamicRing.recover(args.directory)
    try:
        print(f"store     : {args.directory}")
        print(f"recovered : {report.summary()}")
        for check in report.checks:
            print(f"  ok: {check}")
        if args.checkpoint:
            print(f"checkpoint: {store.checkpoint()}")
    finally:
        store.close()


def cmd_stats(args) -> None:
    index = RingIndex.load(args.index)
    graph = index.graph
    print(f"triples            : {graph.n_triples}")
    print(f"nodes              : {graph.n_nodes}")
    print(f"predicates         : {graph.n_predicates}")
    print(f"index bytes/triple : {index.bytes_per_triple():.2f}")
    print(f"packed bytes/triple: {graph.packed_size_in_bits() / 8 / max(graph.n_triples, 1):.2f}")
    print(f"compressed ring    : {index.ring.compressed}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Ring-index graph store (SIGMOD 2021 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_policy_flag(p) -> None:
        from repro.core.ltj import POLICIES

        p.add_argument(
            "--policy", choices=POLICIES, default="static",
            help="variable-selection policy: 'static' keeps the "
                 "precomputed §4.3 order, the others re-rank per binding "
                 "depth from O(1) estimates (answers are byte-identical)",
        )

    p = sub.add_parser("build", help="index a triple file")
    p.add_argument("input", help=".nt file, whitespace 's p o' lines, or "
                                 "(with --stream) also raw int64 .bin/.npy")
    p.add_argument("-o", "--output", required=True, help="index path (.npz)")
    p.add_argument("--compressed", action="store_true",
                   help="build the C-Ring (RRR bitvectors)")
    p.add_argument("--lenient", action="store_true",
                   help="skip (and count) malformed N-Triples lines")
    p.add_argument("--frozen", action="store_true",
                   help="save a memory-mappable frozen pack instead of a "
                        "rebuild-on-load .npz")
    p.add_argument("--stream", action="store_true",
                   help="external-memory build: bounded-RAM chunked sort "
                        "runs + streaming merge, emits a frozen pack "
                        "without ever holding the triple set in memory")
    p.add_argument("--chunk-triples", type=int, default=1_000_000,
                   help="scan/sort working-set bound for --stream "
                        "(default 1e6 triples)")
    p.add_argument("--workers", type=int, default=0,
                   help="build-worker processes for the streaming path "
                        "(implies --stream; >1 also partitions the scan "
                        "by subject hash; output stays byte-identical "
                        "to the serial build)")
    p.add_argument("--merge-fanin", type=int, default=64,
                   help="max spill runs one k-way merge pass opens "
                        "(default 64; more runs fall back to recursive "
                        "reduction rounds)")
    p.add_argument("--shards", type=int, default=None,
                   help="emit a ready-to-serve sharded durable layout "
                        "(SHARDS.json + per-shard stores) instead of one "
                        "pack; implies --stream, serve via 'repro "
                        "shard-serve <dir> --mmap'")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("query", help="evaluate a basic graph pattern")
    p.add_argument("index")
    p.add_argument("query", help="e.g. \"?x adv ?y . Nobel win ?y\"")
    p.add_argument("--limit", type=int, default=1000)
    p.add_argument("--timeout", type=float, default=None)
    p.add_argument("--partial", action="store_true",
                   help="on timeout, return the solutions found so far "
                        "instead of failing")
    p.add_argument("--json", action="store_true")
    p.add_argument("--mmap", action="store_true",
                   help="memory-map a frozen pack instead of loading it "
                        "into RAM (O(working set) memory)")
    add_policy_flag(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("explain", help="show the §4.3 evaluation plan")
    p.add_argument("index")
    p.add_argument("query")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "plan",
        help="cardinality-guided order + parallel slice partition preview",
    )
    p.add_argument("index")
    p.add_argument("query")
    p.add_argument("--stats-cache", default=None,
                   help="persistent planner-statistics memo (JSON); "
                        "loaded before planning, saved after")
    p.add_argument("--slices", type=int, default=4,
                   help="target number of range slices to preview")
    add_policy_flag(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("path", help="regular path query from a node")
    p.add_argument("index")
    p.add_argument("expression", help="e.g. 'adv+' or '^win/nom'")
    p.add_argument("--source", required=True)
    p.set_defaults(func=cmd_path)

    p = sub.add_parser("verify", help="check index integrity (checksum + "
                                      "structural self-check)")
    p.add_argument("index")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("stats", help="index statistics")
    p.add_argument("index")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="run a crash-safe dynamic store (WAL + broker) on stdin",
    )
    p.add_argument("directory", help="durable index directory")
    p.add_argument("--create", action="store_true",
                   help="initialise a fresh store instead of recovering")
    p.add_argument("--n-nodes", type=int, default=1024,
                   help="node universe size for --create")
    p.add_argument("--n-predicates", type=int, default=32,
                   help="predicate universe size for --create")
    p.add_argument("--threshold", type=int, default=64,
                   help="buffer size that triggers a freeze into a ring")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission queue bound; beyond it queries are shed")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-query deadline in seconds")
    p.add_argument("--maintenance-interval", type=float, default=0.05,
                   help="seconds between background compaction/checkpoint "
                        "steps")
    p.add_argument("--no-final-checkpoint", action="store_true",
                   help="skip the checkpoint normally taken on shutdown")
    p.add_argument("--cache", action="store_true",
                   help="serve repeated queries from the canonical result "
                        "cache (invalidated on every write/checkpoint) and "
                        "coalesce concurrent identical submissions")
    p.add_argument("--cache-mb", type=int, default=64,
                   help="result-cache byte budget in MiB (with --cache)")
    p.add_argument("--mmap", action="store_true",
                   help="recover checkpointed rings memory-mapped from "
                        "their frozen packs (O(working set) RAM)")
    add_policy_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "shard-serve",
        help="run a supervised, sharded scatter-gather tier on stdin",
    )
    p.add_argument("directory", help="sharded store directory (SHARDS.json)")
    p.add_argument("--create", action="store_true",
                   help="initialise fresh durable shards instead of "
                        "recovering")
    p.add_argument("--shards", type=int, default=4,
                   help="number of subject-hash shards for --create")
    p.add_argument("--n-nodes", type=int, default=1024,
                   help="node universe size for --create")
    p.add_argument("--n-predicates", type=int, default=32,
                   help="predicate universe size for --create")
    p.add_argument("--threshold", type=int, default=64,
                   help="per-shard buffer size that triggers a freeze")
    p.add_argument("--workers", type=int, default=2,
                   help="broker worker threads per shard")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-query deadline in seconds")
    p.add_argument("--shard-timeout", type=float, default=None,
                   help="per-shard sub-query deadline in seconds")
    p.add_argument("--max-in-flight", type=int, default=8,
                   help="concurrent query cap; excess load is shed with "
                        "a typed rejection")
    p.add_argument("--supervise-interval", type=float, default=0.1,
                   help="seconds between supervisor health sweeps")
    p.add_argument("--processes", action="store_true",
                   help="run each shard replica in its own OS process "
                        "(ProcessEndpoint; crash isolation + real "
                        "kill -9 recovery)")
    p.add_argument("--replicas", type=int, default=1,
                   help="replicas per shard partition (2 gives transparent "
                        "primary->secondary read failover)")
    p.add_argument("--no-final-checkpoint", action="store_true",
                   help="skip the per-shard checkpoint taken on shutdown")
    p.add_argument("--cache", action="store_true",
                   help="serve repeated queries from the canonical result "
                        "cache keyed on the shard-generation vector")
    p.add_argument("--cache-mb", type=int, default=64,
                   help="result-cache byte budget in MiB (with --cache)")
    p.add_argument("--mmap", action="store_true",
                   help="recover each shard's checkpointed rings "
                        "memory-mapped from their frozen packs")
    add_policy_flag(p)
    p.set_defaults(func=cmd_shard_serve)

    p = sub.add_parser(
        "recover",
        help="replay the WAL over the latest checkpoint and report",
    )
    p.add_argument("directory", help="durable index directory")
    p.add_argument("--checkpoint", action="store_true",
                   help="fold the replayed tail into a fresh checkpoint")
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser(
        "bench",
        help="scalar-vs-batch kernel microbenchmarks + end-to-end LTJ",
    )
    p.add_argument("--quick", action="store_true",
                   help="smaller sizes (CI smoke mode)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--parallel", action="store_true",
                   help="benchmark the shared-memory worker pool against "
                        "the serial engine (BENCH_parallel.json)")
    p.add_argument("--cache", action="store_true",
                   help="benchmark the serving cache on a repeated "
                        "workload (BENCH_cache.json)")
    p.add_argument("--adaptive", action="store_true",
                   help="benchmark the adaptive planning policies: skewed "
                        "speedup, uniform regression, serving identity "
                        "(BENCH_adaptive.json)")
    p.add_argument("--scale", action="store_true",
                   help="out-of-core scale benchmark: streaming build "
                        "under a peak-RSS cap + mmap-vs-RAM query "
                        "overhead and identity gates (BENCH_scale.json)")
    p.add_argument("--workers", type=int, nargs="*", default=None,
                   help="worker counts to measure with --parallel "
                        "(default: 2 in quick mode, 2 and 4 otherwise)")
    p.add_argument("-o", "--output", default=None,
                   help="also write the report as JSON (BENCH_kernels.json)")
    p.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    try:
        args.func(args)
    except QueryTimeout:
        print("error: query timed out", file=sys.stderr)
        raise SystemExit(EXIT_TIMEOUT) from None
    except QueryCancelled:
        print("error: query cancelled", file=sys.stderr)
        raise SystemExit(EXIT_TIMEOUT) from None
    except (
        OSError,
        NTriplesError,
        IndexIntegrityError,
        QueryExecutionError,
        ValueError,
        KeyError,
    ) as exc:
        message = str(exc) or type(exc).__name__
        print(f"error: {message}", file=sys.stderr)
        raise SystemExit(EXIT_ERROR) from None


if __name__ == "__main__":
    main()
