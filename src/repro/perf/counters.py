"""Per-kernel operation/time counters for the succinct hot paths.

A *kernel* is one named primitive of the succinct stack — e.g.
``bits.rank1_many`` or ``wavelet.distinct_in_range`` — and every batch
implementation reports three numbers per call when measurement is on:

- ``calls``   — Python-level invocations (what the interpreter paid);
- ``ops``     — logical scalar-equivalent lookups served (what a scalar
  implementation would have paid, and what the
  :class:`~repro.reliability.budget.ResourceBudget` is charged);
- ``seconds`` — wall-clock time inside the kernel.

``ops / calls`` is therefore the vectorisation factor actually achieved
on a workload, and ``ops / seconds`` the kernel throughput — the two
figures ``python -m repro bench`` reports.

Measurement is **off by default** and costs one attribute check per
kernel call when off.  Turn it on around a region with
:func:`measuring`::

    with measuring() as counters:
        index.evaluate(query)
    print(counters.snapshot())

The registry is process-global (like the fault-injection registry in
:mod:`repro.reliability.faults`) so the kernels need no plumbing; it is
not thread-safe — enable it from one measuring thread at a time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class KernelCounters:
    """Registry of per-kernel ``calls`` / ``ops`` / ``seconds`` totals."""

    __slots__ = ("enabled", "_calls", "_ops", "_seconds")

    def __init__(self) -> None:
        self.enabled = False
        self._calls: dict[str, int] = {}
        self._ops: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    def reset(self) -> None:
        """Drop every recorded total (measurement flag untouched)."""
        self._calls.clear()
        self._ops.clear()
        self._seconds.clear()

    def record(self, kernel: str, ops: int, seconds: float = 0.0) -> None:
        """Account one kernel call serving ``ops`` logical lookups."""
        self._calls[kernel] = self._calls.get(kernel, 0) + 1
        self._ops[kernel] = self._ops.get(kernel, 0) + int(ops)
        self._seconds[kernel] = self._seconds.get(kernel, 0.0) + seconds

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{kernel: {calls, ops, seconds, ops_per_call}}``, sorted."""
        out: dict[str, dict[str, float]] = {}
        for kernel in sorted(self._calls):
            calls = self._calls[kernel]
            ops = self._ops[kernel]
            out[kernel] = {
                "calls": calls,
                "ops": ops,
                "seconds": self._seconds[kernel],
                "ops_per_call": ops / calls if calls else 0.0,
            }
        return out

    def ops(self, kernel: str) -> int:
        """Total logical ops recorded for ``kernel`` (0 if never seen)."""
        return self._ops.get(kernel, 0)

    def calls(self, kernel: str) -> int:
        """Total calls recorded for ``kernel`` (0 if never seen)."""
        return self._calls.get(kernel, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"KernelCounters({state}, kernels={len(self._calls)})"


#: The process-global registry the batch kernels report into.
KERNEL_COUNTERS = KernelCounters()


@contextmanager
def measuring(reset: bool = True) -> Iterator[KernelCounters]:
    """Enable :data:`KERNEL_COUNTERS` for the duration of the block."""
    if reset:
        KERNEL_COUNTERS.reset()
    previous = KERNEL_COUNTERS.enabled
    KERNEL_COUNTERS.enabled = True
    try:
        yield KERNEL_COUNTERS
    finally:
        KERNEL_COUNTERS.enabled = previous


def timed_record(kernel: str, ops: int, started: float) -> None:
    """Record ``kernel`` with wall time since ``started`` (perf_counter)."""
    KERNEL_COUNTERS.record(kernel, ops, time.perf_counter() - started)


def event(kernel: str, ops: int = 1) -> None:
    """Count an untimed event iff measurement is on.

    The cache layer reports its outcomes through this — ``cache.hit`` /
    ``cache.miss`` / ``cache.store`` / ``cache.evict`` /
    ``cache.coalesced`` — so one :func:`measuring` block captures the
    serving stack end to end alongside the succinct kernels.
    """
    if KERNEL_COUNTERS.enabled:
        KERNEL_COUNTERS.record(kernel, ops)
