"""Performance observability for the succinct kernel layer.

The batch kernels introduced with the vectorised succinct stack
(``bits`` → ``sequences`` → ``core``) collapse thousands of scalar
rank/select calls into a handful of numpy operations; this package is
the measurement layer that keeps those claims honest:

- :data:`KERNEL_COUNTERS` — a process-global registry of per-kernel
  call/op/time counters (:class:`KernelCounters`), recorded by the
  batch kernels themselves when enabled;
- :mod:`repro.perf.kernelbench` — the scalar-vs-batch microbenchmarks
  behind ``python -m repro bench`` and ``benchmarks/bench_kernels.py``,
  emitting the machine-readable ``BENCH_kernels.json`` trajectory file.

Op accounting composes with the reliability layer: a batch call that
performs ``k`` logical lookups charges ``k`` ops to the active
:class:`~repro.reliability.budget.ResourceBudget` (via ``tick_many``)
exactly as ``k`` scalar calls would, so op budgets, timeouts and
cancellation behave identically on both paths.
"""

from repro.perf.counters import KERNEL_COUNTERS, KernelCounters, measuring

__all__ = ["KERNEL_COUNTERS", "KernelCounters", "measuring"]
