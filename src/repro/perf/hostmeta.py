"""Uniform host metadata for every ``BENCH_*.json`` payload.

Benchmark trajectory files are compared across sessions and machines;
a number without its host is noise.  Every emitter embeds the same
``host`` block so downstream tooling can group or normalise runs
without guessing from ad-hoc per-file keys.
"""

from __future__ import annotations

import os
import platform
import sys

__all__ = ["host_metadata", "peak_rss_bytes"]


def peak_rss_bytes() -> int | None:
    """This process's peak resident set size in bytes (``None`` when the
    platform offers neither ``/proc`` nor ``getrusage``).

    A high-water mark, not a current reading: it only ever grows, which
    is exactly the number the out-of-core RSS gates need.  On Linux the
    source is ``VmHWM`` from ``/proc/self/status``: unlike
    ``ru_maxrss`` it is reset by ``execve``, so a freshly spawned
    benchmark subprocess measures *its own* peak instead of inheriting
    the forking parent's (``ru_maxrss`` survives fork+exec and would
    report the parent's high-water mark as the child's floor).
    Elsewhere we fall back to ``getrusage`` — kilobytes on Linux, bytes
    on macOS, normalised to bytes so every BENCH emitter reports one
    unit.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - no /proc
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes already
        return int(peak)
    return int(peak) * 1024


def host_metadata() -> dict:
    """The ``host`` block shared by all benchmark reports."""
    try:
        import numpy as np

        numpy_version = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "peak_rss_bytes": peak_rss_bytes(),
    }
