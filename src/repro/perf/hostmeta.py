"""Uniform host metadata for every ``BENCH_*.json`` payload.

Benchmark trajectory files are compared across sessions and machines;
a number without its host is noise.  Every emitter embeds the same
``host`` block so downstream tooling can group or normalise runs
without guessing from ad-hoc per-file keys.
"""

from __future__ import annotations

import os
import platform
import sys

__all__ = ["host_metadata"]


def host_metadata() -> dict:
    """The ``host`` block shared by all benchmark reports."""
    try:
        import numpy as np

        numpy_version = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }
