"""Out-of-core scale benchmark (``BENCH_scale.json``).

Measures the two promises the streaming builder + memmapped pack make
at scale, and gates them:

- **bounded build memory** — :func:`repro.graph.bulkload.bulk_build`
  run in a *subprocess* (so ``ru_maxrss`` is the build's own high-water
  mark, not the parent's) over a synthetic ``.bin`` triple file must
  peak below ``MAX_BUILD_RSS_FRACTION`` of the final pack size.  The
  gate is scale-aware: below ``MIN_RSS_GATE_INDEX_BYTES`` the Python +
  numpy interpreter baseline (~40 MB) dominates any honest measurement,
  so quick runs record the ratio with ``status: skipped`` instead of
  faking a pass — same idiom as the parallel bench's CPU-count gate.
- **near-free memmap serving** — the same workload evaluated on the
  eagerly-loaded pack and on the memmapped pack (page cache dropped
  via ``posix_fadvise`` for the cold pass, reused for the warm pass)
  must agree row-for-row, and the *warm* mmap pass must stay within
  ``MAX_WARM_MMAP_OVERHEAD`` of the in-RAM time.
- **identity everywhere** — a small pack served through every read
  path (serial eager, serial mmap, result-cached, parallel pool over
  :class:`~repro.parallel.shm.PackHandle`, durable sharded recover
  with memmapped checkpoints) returns the same answers.

Consumed by ``python -m repro bench --scale`` and the
``benchmarks/bench_scale.py`` pytest gate (marker ``perf``).  Same
schema philosophy as :mod:`repro.perf.kernelbench`: the emitter lives
in the library so every ``BENCH_scale.json`` in the repo history is
comparable.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Optional

import numpy as np

from repro.perf.hostmeta import host_metadata, peak_rss_bytes

#: Bump when the JSON layout changes, so trajectory tooling can dispatch.
SCHEMA_VERSION = 2

#: The build-RSS ceiling as a fraction of the final pack size, and the
#: smallest pack the gate is meaningful on: below that the interpreter
#: baseline swamps the builder's own working set.
MAX_BUILD_RSS_FRACTION = 0.5
MIN_RSS_GATE_INDEX_BYTES = 96 * 2**20

#: Parallel-build speedup floor and its applicability threshold: with
#: fewer host CPUs than this the partitioned build has no cores to win
#: on, so the ratio is recorded with ``status: skipped`` instead of
#: faking a verdict (same idiom as the parallel bench's CPU-count gate).
MIN_BUILD_SPEEDUP = 2.0
MIN_SPEEDUP_GATE_CPUS = 4
BENCH_BUILD_WORKERS = 2

#: Warm memmapped queries may cost at most this multiple of the
#: eager-RAM time; only enforced when the RAM pass is long enough for
#: the ratio to be signal rather than timer noise.
MAX_WARM_MMAP_OVERHEAD = 2.0
MIN_OVERHEAD_GATE_SECONDS = 0.05

#: Full-scale defaults: 15 M triples over 3 M nodes — a 22-level
#: wavelet forest whose pack comfortably clears the RSS-gate floor.
#: The builder's peak is scale-*independent* (interpreter baseline +
#: one σ-sized C accumulator + ~1 MiB stream blocks ≈ 77 MB), while
#: the pack grows with n, so the triple count sets the gate's margin:
#: 15 M triples → ~165 MiB pack → an ~82 MiB ceiling the builder
#: clears with headroom to spare.
FULL_TRIPLES = 15_000_000
FULL_NODES = 3_000_000
FULL_PREDICATES = 64
FULL_CHUNK = 500_000

QUICK_TRIPLES = 60_000
QUICK_NODES = 20_000
QUICK_PREDICATES = 16
QUICK_CHUNK = 20_000

#: Identity gates always run at this size — correctness needs every
#: path exercised, not a big constant factor.
IDENTITY_TRIPLES = 20_000
IDENTITY_NODES = 4_000
IDENTITY_PREDICATES = 8


# -- synthetic input -----------------------------------------------------------


def write_synthetic_bin(
    path: str,
    n_triples: int,
    n_nodes: int,
    n_predicates: int,
    seed: int = 0,
    block: int = 1_000_000,
) -> int:
    """Stream a uniform random ``(n, 3)`` int64 triple file to ``path``.

    Written block-by-block so generating a 10 M-triple input never holds
    it in memory either.  Rows may repeat — the builder dedupes — so the
    *distinct* triple count is slightly below ``n_triples``.
    """
    rng = np.random.default_rng(seed)
    written = 0
    with open(path, "wb") as fh:
        while written < n_triples:
            take = min(block, n_triples - written)
            rows = np.empty((take, 3), dtype=np.int64)
            rows[:, 0] = rng.integers(0, n_nodes, take)
            rows[:, 1] = rng.integers(0, n_predicates, take)
            rows[:, 2] = rng.integers(0, n_nodes, take)
            rows.tofile(fh)
            written += take
    return written


# -- the subprocess build (clean ru_maxrss) ------------------------------------


def _child_build_main(config_path: str, result_path: str) -> None:
    """Entry point of the build subprocess (run via ``python -c``).

    Reads the build request from ``config_path``, runs
    :func:`~repro.graph.bulkload.bulk_build`, and writes the child's own
    RSS high-water marks (interpreter baseline vs post-build peak) plus
    the build stats to ``result_path``.
    """
    from repro.graph.bulkload import bulk_build

    with open(config_path, "r", encoding="utf-8") as fh:
        config = json.load(fh)
    baseline = peak_rss_bytes()
    stats: dict = {}
    start = time.perf_counter()
    manifest = bulk_build(
        config["source"],
        config["out"],
        chunk_triples=config["chunk_triples"],
        n_nodes=config.get("n_nodes"),
        n_predicates=config.get("n_predicates"),
        workers=config.get("workers", 0),
        merge_fanin=config.get("merge_fanin", 64),
        stats=stats,
    )
    elapsed = time.perf_counter() - start
    result = {
        "baseline_rss_bytes": baseline,
        "peak_rss_bytes": peak_rss_bytes(),
        "build_seconds": elapsed,
        "n_triples": manifest["n_triples"],
        "n_nodes": manifest["n_nodes"],
        "n_predicates": manifest["n_predicates"],
        "stats": {
            k: v
            for k, v in stats.items()
            if isinstance(v, (int, float, str, bool))
        },
    }
    with open(result_path, "w", encoding="utf-8") as fh:
        json.dump(result, fh)


def _run_child_build(
    source: str,
    out: str,
    workdir: str,
    chunk_triples: int,
    n_nodes: Optional[int] = None,
    n_predicates: Optional[int] = None,
    workers: int = 0,
    merge_fanin: int = 64,
) -> dict:
    """Run :func:`_child_build_main` in a fresh interpreter; return its
    result payload.  The child inherits this interpreter's import path
    so the bench works from a source checkout without installation."""
    config_path = os.path.join(workdir, "build-config.json")
    result_path = os.path.join(workdir, "build-result.json")
    with open(config_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "source": source,
                "out": out,
                "chunk_triples": chunk_triples,
                "n_nodes": n_nodes,
                "n_predicates": n_predicates,
                "workers": workers,
                "merge_fanin": merge_fanin,
            },
            fh,
        )
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    # Pin glibc's mmap threshold.  By default it adapts upward when
    # multi-MB blocks are freed, after which numpy's buffers come from
    # the brk heap — which never shrinks, so each builder phase ratchets
    # the child's RSS high-water mark by allocator fragmentation rather
    # than live data.  Pinning keeps large buffers mmap-backed and
    # returned to the OS the moment they are freed.
    env.setdefault("MALLOC_MMAP_THRESHOLD_", "131072")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "import sys; from repro.perf.scalebench import _child_build_main; "
            "_child_build_main(sys.argv[1], sys.argv[2])",
            config_path,
            result_path,
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        tail = (proc.stderr or "").strip().splitlines()[-8:]
        raise RuntimeError(
            "scale-bench build subprocess failed "
            f"(exit {proc.returncode}):\n" + "\n".join(tail)
        )
    with open(result_path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _merge_section(stats: dict, chunk_triples: int) -> dict:
    """The k-way merge accounting + its single-pass gate.

    The gate pins the tentpole property of the heap-based merge: as long
    as the run count stays within the fan-in, every spilled byte is read
    exactly once on its way to the canonical stream —
    ``merge_extra_pass_bytes`` (bytes read beyond one pass, summed over
    the spo merge and both re-sorts) must be zero.  Reduction rounds
    (``merge_rounds > 0``) only appear when the caller forces a tiny
    fan-in, and then the extra bytes are reported, not hidden.
    """
    extra = stats.get("merge_extra_pass_bytes", 0)
    rounds = stats.get("merge_rounds", 0)
    return {
        "fanin": stats.get("merge_fanin"),
        "runs_merged": stats.get("merge_runs_merged", 0),
        "spill_runs": stats.get("runs_spilled", 0),
        "chunk_triples": chunk_triples,
        "bytes_in": stats.get("merge_bytes_in", 0),
        "bytes_read": stats.get("merge_bytes_read", 0),
        "extra_pass_bytes": extra,
        "reduction_rounds": rounds,
        "merge_passes": stats.get("merge_passes", 0),
        "single_pass_gate": {
            "applicable": True,
            "passed": extra == 0,
            "status": "enforced",
        },
    }


def bench_build(
    workdir: str,
    n_triples: int,
    n_nodes: int,
    n_predicates: int,
    chunk_triples: int,
    seed: int = 0,
    workers: int = 0,
    merge_fanin: int = 64,
    keep_source: bool = False,
) -> tuple[dict, str]:
    """Streaming-build a synthetic graph in a subprocess; gate its RSS.

    Returns ``(section, pack_path)`` — the pack stays on disk for the
    query benchmark to reuse (and, with ``keep_source``, the input stays
    for the parallel-build benchmark to rebuild from).
    """
    source = os.path.join(workdir, "scale-input.bin")
    pack = os.path.join(workdir, "scale-index.ring")
    gen_start = time.perf_counter()
    write_synthetic_bin(source, n_triples, n_nodes, n_predicates, seed=seed)
    gen_seconds = time.perf_counter() - gen_start
    child = _run_child_build(
        source, pack, workdir, chunk_triples, n_nodes, n_predicates,
        workers=workers, merge_fanin=merge_fanin,
    )
    index_bytes = os.path.getsize(pack)
    peak = child["peak_rss_bytes"]
    ratio = peak / index_bytes if index_bytes else float("inf")
    applicable = index_bytes >= MIN_RSS_GATE_INDEX_BYTES
    section = {
        "input_triples": n_triples,
        "distinct_triples": child["n_triples"],
        "n_nodes": child["n_nodes"],
        "n_predicates": child["n_predicates"],
        "chunk_triples": chunk_triples,
        "workers": workers,
        "input_bytes": os.path.getsize(source),
        "index_bytes": index_bytes,
        "generate_seconds": gen_seconds,
        "build_seconds": child["build_seconds"],
        "triples_per_second": (
            child["n_triples"] / child["build_seconds"]
            if child["build_seconds"] > 0
            else float("inf")
        ),
        "baseline_rss_bytes": child["baseline_rss_bytes"],
        "peak_rss_bytes": peak,
        "rss_over_index": ratio,
        "build_stats": child["stats"],
        "merge": _merge_section(child["stats"], chunk_triples),
        "rss_gate": {
            "max_fraction": MAX_BUILD_RSS_FRACTION,
            "min_index_bytes": MIN_RSS_GATE_INDEX_BYTES,
            "index_bytes": index_bytes,
            "peak_rss_bytes": peak,
            "applicable": applicable,
            "passed": (ratio <= MAX_BUILD_RSS_FRACTION) if applicable else None,
            "status": (
                "enforced"
                if applicable
                else (
                    f"skipped: pack is {index_bytes / 2**20:.0f} MiB "
                    f"(< {MIN_RSS_GATE_INDEX_BYTES / 2**20:.0f} MiB); the "
                    "interpreter baseline dominates, the ratio is not a "
                    "verdict on the builder"
                )
            ),
        },
    }
    if not keep_source:
        os.unlink(source)  # the pack is all the query bench needs
    return section, pack


def _sha256_file(path: str, block: int = 1 << 20) -> str:
    import hashlib

    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(block)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def bench_parallel_build(
    workdir: str,
    source: str,
    serial_section: dict,
    serial_pack: str,
    chunk_triples: int,
    workers: int = BENCH_BUILD_WORKERS,
    merge_fanin: int = 64,
) -> dict:
    """Rebuild the same input with a worker pool; gate identity + speedup.

    Three verdicts ride in this section:

    - **byte identity, always enforced** — the partitioned parallel
      build must produce the exact serial pack (and manifest sidecar),
      whatever the host;
    - **speedup, where cores exist** — at least ``MIN_BUILD_SPEEDUP``
      over the serial subprocess build, enforced only on hosts with
      ``MIN_SPEEDUP_GATE_CPUS``+ CPUs (a 1-2 core runner records the
      ratio with ``status: skipped`` instead of faking a verdict);
    - **per-worker RSS** — the workers' own high-water mark must honor
      the same ≤ 50%-of-pack budget as the serial builder, once the pack
      is big enough for the ratio to mean anything.
    """
    pack = os.path.join(workdir, "scale-index-parallel.ring")
    child = _run_child_build(
        source, pack, workdir, chunk_triples,
        serial_section["n_nodes"], serial_section["n_predicates"],
        workers=workers, merge_fanin=merge_fanin,
    )
    pack_identical = _sha256_file(pack) == _sha256_file(serial_pack)
    with open(pack + ".config.json", "rb") as fh:
        par_manifest = fh.read()
    with open(serial_pack + ".config.json", "rb") as fh:
        ser_manifest = fh.read()
    manifest_identical = par_manifest == ser_manifest

    serial_seconds = serial_section["build_seconds"]
    parallel_seconds = child["build_seconds"]
    speedup = (
        serial_seconds / parallel_seconds if parallel_seconds > 0
        else float("inf")
    )
    cpus = os.cpu_count() or 1
    speedup_applicable = cpus >= MIN_SPEEDUP_GATE_CPUS

    index_bytes = os.path.getsize(pack)
    worker_peak = child["stats"].get("worker_peak_rss_bytes")
    rss_applicable = (
        index_bytes >= MIN_RSS_GATE_INDEX_BYTES and worker_peak is not None
    )
    worker_ratio = (
        worker_peak / index_bytes
        if (worker_peak and index_bytes)
        else None
    )
    section = {
        "workers": workers,
        "merge_fanin": merge_fanin,
        "build_seconds": parallel_seconds,
        "serial_build_seconds": serial_seconds,
        "speedup": speedup,
        "triples_per_second": (
            child["n_triples"] / parallel_seconds
            if parallel_seconds > 0
            else float("inf")
        ),
        "pack_identical": pack_identical,
        "manifest_identical": manifest_identical,
        "worker_peak_rss_bytes": worker_peak,
        "worker_rss_over_index": worker_ratio,
        "pool": {
            k[len("pool_"):]: v
            for k, v in child["stats"].items()
            if k.startswith("pool_")
        },
        "merge": _merge_section(child["stats"], chunk_triples),
        "identity_gate": {
            "applicable": True,
            "passed": pack_identical and manifest_identical,
            "status": "enforced",
        },
        "speedup_gate": {
            "min_speedup": MIN_BUILD_SPEEDUP,
            "min_cpus": MIN_SPEEDUP_GATE_CPUS,
            "cpus": cpus,
            "speedup": speedup,
            "applicable": speedup_applicable,
            "passed": (
                (speedup >= MIN_BUILD_SPEEDUP) if speedup_applicable else None
            ),
            "status": (
                "enforced"
                if speedup_applicable
                else (
                    f"skipped: host has {cpus} CPU(s) "
                    f"(< {MIN_SPEEDUP_GATE_CPUS}); a partitioned build has "
                    "no cores to win on, the ratio is not a verdict on the "
                    "parallel path"
                )
            ),
        },
        "worker_rss_gate": {
            "max_fraction": MAX_BUILD_RSS_FRACTION,
            "min_index_bytes": MIN_RSS_GATE_INDEX_BYTES,
            "index_bytes": index_bytes,
            "worker_peak_rss_bytes": worker_peak,
            "applicable": rss_applicable,
            "passed": (
                (worker_ratio <= MAX_BUILD_RSS_FRACTION)
                if rss_applicable
                else None
            ),
            "status": (
                "enforced"
                if rss_applicable
                else (
                    f"skipped: pack is {index_bytes / 2**20:.0f} MiB "
                    f"(< {MIN_RSS_GATE_INDEX_BYTES / 2**20:.0f} MiB); the "
                    "interpreter baseline dominates each worker's RSS"
                )
            ),
        },
    }
    os.unlink(pack)
    if os.path.exists(pack + ".config.json"):
        os.unlink(pack + ".config.json")
    return section


# -- query overhead ------------------------------------------------------------


def _workload(n_predicates: int, limit: int):
    """A tiny mixed workload: scan, path join, star join.

    Integer constants throughout — the synthetic graphs are id-only.
    """
    from repro.graph.model import BasicGraphPattern, TriplePattern, Var

    x, y, z = Var("x"), Var("y"), Var("z")
    p0, p1 = 0, min(1, n_predicates - 1)
    return [
        BasicGraphPattern([TriplePattern(x, p0, y)]),
        BasicGraphPattern(
            [TriplePattern(x, p0, y), TriplePattern(y, p1, z)]
        ),
        BasicGraphPattern(
            [TriplePattern(x, p0, y), TriplePattern(x, p1, z)]
        ),
    ], limit


def _rows_key(result) -> list:
    """An order-preserving, comparable encoding of a query result."""
    return [tuple(sorted((v.name, c) for v, c in mu.items())) for mu in result]


def _run_workload(index, queries, limit, timeout) -> tuple[float, list, int]:
    """Evaluate every query; returns (total seconds, per-query keys, rows)."""
    total = 0.0
    keys = []
    rows = 0
    for bgp in queries:
        start = time.perf_counter()
        result = index.evaluate(bgp, limit=limit, timeout=timeout)
        total += time.perf_counter() - start
        key = _rows_key(result)
        keys.append(key)
        rows += len(key)
    return total, keys, rows


def _drop_page_cache(path: str) -> bool:
    """Best-effort eviction of ``path`` from the OS page cache.

    ``POSIX_FADV_DONTNEED`` makes the next mmap access genuinely cold
    on Linux; where unsupported we record that the "cold" pass may be
    warm rather than pretending.
    """
    if not hasattr(os, "posix_fadvise"):  # pragma: no cover - non-Linux
        return False
    fd = os.open(path, os.O_RDONLY)
    try:
        os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
        return True
    except OSError:  # pragma: no cover - exotic filesystem
        return False
    finally:
        os.close(fd)


def bench_query(
    pack: str, n_predicates: int, limit: int = 20_000, timeout: float = 600.0
) -> dict:
    """Eager-RAM vs cold-mmap vs warm-mmap over the same pack."""
    from repro.core import RingIndex

    queries, limit = _workload(n_predicates, limit)

    eager = RingIndex.load(pack, mmap=False)
    ram_s, ram_keys, ram_rows = _run_workload(eager, queries, limit, timeout)
    del eager

    evicted = _drop_page_cache(pack)
    cold_index = RingIndex.load(pack, mmap=True)
    cold_s, cold_keys, _ = _run_workload(cold_index, queries, limit, timeout)
    # Same process, pages now resident: the warm pass reuses the mapping.
    warm_s, warm_keys, _ = _run_workload(cold_index, queries, limit, timeout)
    del cold_index

    applicable = ram_s >= MIN_OVERHEAD_GATE_SECONDS
    warm_ratio = warm_s / ram_s if ram_s > 0 else float("inf")
    return {
        "n_queries": len(queries),
        "limit": limit,
        "rows": ram_rows,
        "ram_seconds": ram_s,
        "cold_mmap_seconds": cold_s,
        "warm_mmap_seconds": warm_s,
        "cold_over_ram": cold_s / ram_s if ram_s > 0 else float("inf"),
        "warm_over_ram": warm_ratio,
        "page_cache_dropped": evicted,
        "identical_cold": cold_keys == ram_keys,
        "identical_warm": warm_keys == ram_keys,
        "overhead_gate": {
            "max_warm_over_ram": MAX_WARM_MMAP_OVERHEAD,
            "min_ram_seconds": MIN_OVERHEAD_GATE_SECONDS,
            "ram_seconds": ram_s,
            "applicable": applicable,
            "passed": (
                (warm_ratio <= MAX_WARM_MMAP_OVERHEAD) if applicable else None
            ),
            "status": (
                "enforced"
                if applicable
                else (
                    f"skipped: RAM pass took {ram_s * 1000:.1f}ms "
                    f"(< {MIN_OVERHEAD_GATE_SECONDS * 1000:.0f}ms); the "
                    "ratio would measure timer noise, not mmap overhead"
                )
            ),
        },
    }


# -- identity across every serving path ----------------------------------------


def bench_identity(
    workdir: str,
    seed: int = 0,
    n_triples: int = IDENTITY_TRIPLES,
    n_nodes: int = IDENTITY_NODES,
    n_predicates: int = IDENTITY_PREDICATES,
    limit: int = 5_000,
    timeout: float = 60.0,
) -> dict:
    """One small pack, served through every read path, same answers.

    The reference is the eagerly-loaded serial index; each other path
    reports whether its rows matched (ordered, except the sharded
    coordinator whose cross-shard merge order is its own contract —
    that path compares sorted rows).  The pack under test is rebuilt a
    second time by the *parallel partitioned* builder and must not
    differ by a byte; the sharded bulk builder's ready-to-serve layout
    is recovered memmapped and queried like any other path.
    """
    from repro.cache import CachedQuerySystem
    from repro.core import RingIndex
    from repro.graph.bulkload import bulk_build, bulk_build_sharded
    from repro.graph.dataset import Graph
    from repro.parallel import ParallelRingIndex
    from repro.serving.coordinator import ShardCoordinator
    from repro.serving.sharding import ShardedRingIndex

    rng = np.random.default_rng(seed)
    rows = np.empty((n_triples, 3), dtype=np.int64)
    rows[:, 0] = rng.integers(0, n_nodes, n_triples)
    rows[:, 1] = rng.integers(0, n_predicates, n_triples)
    rows[:, 2] = rng.integers(0, n_nodes, n_triples)
    graph = Graph(rows, n_nodes=n_nodes, n_predicates=n_predicates)

    pack = os.path.join(workdir, "identity-index.ring")
    bulk_build(
        graph,
        pack,
        chunk_triples=max(1, n_triples // 7),
        n_nodes=n_nodes,
        n_predicates=n_predicates,
    )
    queries, limit = _workload(n_predicates, limit)

    reference = RingIndex.load(pack, mmap=False)
    _, ref_keys, ref_rows = _run_workload(reference, queries, limit, timeout)
    del reference
    paths: dict[str, bool] = {}

    # The parallel partitioned build must reproduce the serial pack
    # byte-for-byte (pack and manifest sidecar both).
    par_pack = os.path.join(workdir, "identity-index-parallel.ring")
    bulk_build(
        graph,
        par_pack,
        chunk_triples=max(1, n_triples // 7),
        n_nodes=n_nodes,
        n_predicates=n_predicates,
        workers=2,
    )
    with open(pack + ".config.json", "rb") as fh:
        ref_manifest = fh.read()
    with open(par_pack + ".config.json", "rb") as fh:
        par_manifest = fh.read()
    paths["parallel_build_bytes"] = (
        _sha256_file(par_pack) == _sha256_file(pack)
        and par_manifest == ref_manifest
    )

    serial = RingIndex.load(pack, mmap=True)
    _, keys, _ = _run_workload(serial, queries, limit, timeout)
    paths["serial_mmap"] = keys == ref_keys
    del serial

    cached = CachedQuerySystem(RingIndex.load(pack, mmap=True))
    _, cold_keys, _ = _run_workload(cached, queries, limit, timeout)
    _, warm_keys, _ = _run_workload(cached, queries, limit, timeout)
    paths["cached_mmap_cold"] = cold_keys == ref_keys
    paths["cached_mmap_warm"] = warm_keys == ref_keys
    del cached

    parallel = ParallelRingIndex.load(pack, mmap=True, workers=2)
    try:
        _, keys, _ = _run_workload(parallel, queries, limit, timeout)
        paths["parallel_mmap"] = keys == ref_keys
        pool_fanout = parallel.pool_stats().get("dispatched", 0)
    finally:
        parallel.close()

    shard_dir = os.path.join(workdir, "identity-shards")
    with ShardedRingIndex.create_durable(shard_dir, graph, 2) as shards:
        shards.shutdown(checkpoint=True)
    sharded_sorted = None
    with ShardedRingIndex.recover(shard_dir, mmap=True) as shards:
        coordinator = ShardCoordinator(shards)
        sharded_keys = []
        for bgp in queries:
            result = coordinator.evaluate(bgp, limit=limit, timeout=timeout)
            sharded_keys.append(sorted(_rows_key(result)))
        sharded_sorted = sharded_keys == [sorted(k) for k in ref_keys]
    paths["sharded_mmap_recover"] = bool(sharded_sorted)

    # The sharded *bulk builder*'s ready-to-serve layout: one scan pass,
    # recovered memmapped with zero extra passes, same (sorted) rows.
    built_dir = os.path.join(workdir, "identity-shards-built")
    shutil.rmtree(built_dir, ignore_errors=True)
    bulk_build_sharded(
        graph,
        built_dir,
        n_shards=2,
        chunk_triples=max(1, n_triples // 7),
        n_nodes=n_nodes,
        n_predicates=n_predicates,
        workers=2,
    )
    with ShardedRingIndex.recover(built_dir, mmap=True) as shards:
        coordinator = ShardCoordinator(shards)
        built_keys = []
        for bgp in queries:
            result = coordinator.evaluate(bgp, limit=limit, timeout=timeout)
            built_keys.append(sorted(_rows_key(result)))
    paths["sharded_bulk_build"] = built_keys == [sorted(k) for k in ref_keys]

    return {
        "n_triples": graph.n_triples,
        "n_queries": len(queries),
        "rows": ref_rows,
        "parallel_dispatched": pool_fanout,
        "paths": paths,
        "all_identical": all(paths.values()),
    }


# -- report --------------------------------------------------------------------


def full_report(
    quick: bool = False,
    seed: int = 0,
    n_triples: Optional[int] = None,
    n_nodes: Optional[int] = None,
    n_predicates: Optional[int] = None,
    chunk_triples: Optional[int] = None,
    workdir: Optional[str] = None,
    workers: Optional[int] = None,
) -> dict:
    """The complete ``BENCH_scale.json`` payload.

    ``workdir`` (or ``$REPRO_BENCH_SCALE_DIR``) hosts the synthetic
    input, spill runs and pack — point it at a volume with roughly
    ``4 x`` the final index size free.  A temporary directory is used
    (and removed) when unset.
    """
    if quick:
        n_triples = n_triples or QUICK_TRIPLES
        n_nodes = n_nodes or QUICK_NODES
        n_predicates = n_predicates or QUICK_PREDICATES
        chunk_triples = chunk_triples or QUICK_CHUNK
    else:
        n_triples = n_triples or FULL_TRIPLES
        n_nodes = n_nodes or FULL_NODES
        n_predicates = n_predicates or FULL_PREDICATES
        chunk_triples = chunk_triples or FULL_CHUNK

    workdir = workdir or os.environ.get("REPRO_BENCH_SCALE_DIR")
    cleanup = workdir is None
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-scale-")
    else:
        os.makedirs(workdir, exist_ok=True)
    if workers is None:
        workers = int(
            os.environ.get("REPRO_BENCH_SCALE_WORKERS", str(BENCH_BUILD_WORKERS))
        )
    try:
        build, pack = bench_build(
            workdir,
            n_triples,
            n_nodes,
            n_predicates,
            chunk_triples,
            seed=seed,
            keep_source=True,
        )
        source = os.path.join(workdir, "scale-input.bin")
        parallel_build = bench_parallel_build(
            workdir, source, build, pack, chunk_triples, workers=workers
        )
        if os.path.exists(source):
            os.unlink(source)
        query = bench_query(pack, n_predicates)
        identity = bench_identity(workdir, seed=seed)
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "host": host_metadata(),
        "config": {
            "quick": quick,
            "n_triples": n_triples,
            "n_nodes": n_nodes,
            "n_predicates": n_predicates,
            "chunk_triples": chunk_triples,
            "seed": seed,
            "workers": workers,
        },
        "build": build,
        "parallel_build": parallel_build,
        "query": query,
        "identity": identity,
    }


def write_report(report: dict, path: str) -> None:
    """Write the payload as indented JSON (newline-terminated)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`full_report` payload."""
    build = report["build"]
    query = report["query"]
    identity = report["identity"]
    gate = build["rss_gate"]
    qgate = query["overhead_gate"]
    lines = [
        f"Out-of-core scale ({build['distinct_triples']} distinct triples, "
        f"{build['n_nodes']} nodes, {build['n_predicates']} predicates):",
        f"  build         : {build['build_seconds']:>8.1f}s  "
        f"({build['triples_per_second']:,.0f} triples/s, "
        f"chunk {build['chunk_triples']})",
        f"  pack          : {build['index_bytes'] / 2**20:>8.1f}MiB  "
        f"(input {build['input_bytes'] / 2**20:.1f}MiB)",
        f"  build peak RSS: {build['peak_rss_bytes'] / 2**20:>8.1f}MiB  "
        f"({100 * build['rss_over_index']:.0f}% of pack, "
        f"baseline {build['baseline_rss_bytes'] / 2**20:.0f}MiB)",
    ]
    if gate["applicable"]:
        verdict = "PASS" if gate["passed"] else "FAIL"
        lines.append(
            f"  RSS gate      : {verdict} "
            f"(<= {100 * gate['max_fraction']:.0f}% of pack)"
        )
    else:
        lines.append(f"  RSS gate      : {gate['status']}")
    merge = build.get("merge")
    if merge:
        mgate = merge["single_pass_gate"]
        verdict = "PASS" if mgate["passed"] else "FAIL"
        lines.append(
            f"  k-way merge   : {verdict} "
            f"({merge['runs_merged']} runs, fan-in {merge['fanin']}, "
            f"{merge['bytes_read'] / 2**20:.1f}MiB read, "
            f"{merge['extra_pass_bytes']} extra-pass bytes, "
            f"{merge['reduction_rounds']} reduction rounds)"
        )
    parallel = report.get("parallel_build")
    if parallel:
        ident = "identical" if parallel["identity_gate"]["passed"] else "MISMATCH"
        lines.append(
            f"  parallel build: {parallel['build_seconds']:>8.1f}s  "
            f"({parallel['workers']} workers, "
            f"{parallel['speedup']:.2f}x vs serial, pack {ident})"
        )
        sgate = parallel["speedup_gate"]
        if sgate["applicable"]:
            verdict = "PASS" if sgate["passed"] else "FAIL"
            lines.append(
                f"  speedup gate  : {verdict} "
                f"(>= {sgate['min_speedup']:.1f}x on {sgate['cpus']} CPUs)"
            )
        else:
            lines.append(f"  speedup gate  : {sgate['status']}")
        wgate = parallel["worker_rss_gate"]
        if wgate["applicable"]:
            verdict = "PASS" if wgate["passed"] else "FAIL"
            lines.append(
                f"  worker RSS    : {verdict} "
                f"(<= {100 * wgate['max_fraction']:.0f}% of pack)"
            )
        else:
            lines.append(f"  worker RSS    : {wgate['status']}")
    lines.append(
        f"  query RAM     : {1000 * query['ram_seconds']:>8.1f}ms  "
        f"({query['rows']} rows)"
    )
    lines.append(
        f"  query mmap    : cold {1000 * query['cold_mmap_seconds']:.1f}ms "
        f"({query['cold_over_ram']:.2f}x), "
        f"warm {1000 * query['warm_mmap_seconds']:.1f}ms "
        f"({query['warm_over_ram']:.2f}x, "
        f"cache dropped: {query['page_cache_dropped']})"
    )
    if qgate["applicable"]:
        verdict = "PASS" if qgate["passed"] else "FAIL"
        lines.append(
            f"  overhead gate : {verdict} "
            f"(warm <= {qgate['max_warm_over_ram']:.1f}x RAM)"
        )
    else:
        lines.append(f"  overhead gate : {qgate['status']}")
    for name, same in identity["paths"].items():
        verdict = "identical" if same else "MISMATCH"
        lines.append(f"  {name:<14}: {verdict}")
    return "\n".join(lines)
