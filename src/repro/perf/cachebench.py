"""End-to-end serving-cache benchmark (``BENCH_cache.json``).

Runs the WGPB-style quick workload twice against a plain
:class:`RingIndex` (the uncached repeated-workload baseline) and twice
against a :class:`~repro.cache.CachedQuerySystem` over the same graph
(cold pass populates, warm pass hits), asserting row-level ordered
identity between every cached answer and the uncached reference — a
hit that changes bytes is a bug, not a speedup.  Two more probes round
out the picture:

- **invalidation** — on a :class:`DynamicRingIndex`, a write between
  identical queries must flip the answer back to the uncached path and
  the post-write rows must match a fresh evaluation;
- **coalescing** — a burst of identical submissions through a
  :class:`QueryBroker` over a gated index must reach the engine exactly
  once.

Consumed by ``python -m repro bench --cache`` and the
``benchmarks/bench_cache.py`` pytest gate (marker ``perf``/``cache``):
identity always, the >= 5x warm-pass floor, and the invalidation flag.

Same schema philosophy as :mod:`repro.perf.kernelbench`: the emitter
lives in the library so every ``BENCH_cache.json`` in the repo history
is comparable.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Optional

import numpy as np

from repro.bench.wgpb import generate_wgpb_queries
from repro.perf.hostmeta import host_metadata
from repro.cache import CachedQuerySystem
from repro.core import RingIndex
from repro.core.dynamic import DynamicRingIndex
from repro.graph.generators import wikidata_like

#: Bump when the JSON layout changes, so trajectory tooling can dispatch.
SCHEMA_VERSION = 1


def _rows_key(result) -> list:
    """An order-preserving, comparable encoding of a query result."""
    return [tuple(sorted((v.name, c) for v, c in mu.items())) for mu in result]


def _run_workload(index, queries, limit, timeout) -> tuple[float, list, int]:
    """Evaluate every query; returns (total seconds, per-query keys, rows)."""
    total = 0.0
    keys = []
    rows = 0
    for bgp in queries:
        start = time.perf_counter()
        result = index.evaluate(bgp, limit=limit, timeout=timeout)
        total += time.perf_counter() - start
        key = _rows_key(result)
        keys.append(key)
        rows += len(key)
    return total, keys, rows


class _GatedIndex(RingIndex):
    """A ring whose ``evaluate`` blocks until released — lets the
    coalescing probe pile a burst of identical submissions behind one
    deliberately slow leader."""

    def __init__(self, graph) -> None:
        super().__init__(graph)
        self.gate = threading.Event()
        self.calls = 0
        self._call_lock = threading.Lock()

    def evaluate(self, query, **kwargs):
        with self._call_lock:
            self.calls += 1
        self.gate.wait(30.0)
        return super().evaluate(query, **kwargs)


def _coalescing_probe(graph, query, limit: int) -> dict:
    """One leader evaluation fanned out to a burst of submissions."""
    from repro.reliability.broker import QueryBroker

    inner = _GatedIndex(graph)
    cached = CachedQuerySystem(inner)
    burst = 8
    with QueryBroker(cached, workers=2, maintenance_interval=None) as broker:
        futures = [broker.submit(query, limit=limit) for _ in range(burst)]
        # Give the worker time to pick the leader up, then release it.
        deadline = time.monotonic() + 5.0
        while inner.calls == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        inner.gate.set()
        results = [f.result(timeout=30.0) for f in futures]
        stats = broker.stats()
    reference = _rows_key(results[0])
    return {
        "submissions": burst,
        "inner_evaluations": inner.calls,
        "coalesced": stats["coalesced"],
        "coalesce_fanout": stats["coalesce_fanout"],
        "admission_cache_hits": stats["cache_hits"],
        "identical": all(_rows_key(r) == reference for r in results),
    }


def _invalidation_probe(graph, queries, limit: int, timeout: float) -> dict:
    """A write between identical queries must always invalidate."""
    dynamic = DynamicRingIndex(graph)
    cached = CachedQuerySystem(dynamic)
    # A triple certainly absent: ids are in-universe, combination fresh.
    fresh = None
    for s in range(graph.n_nodes):
        if not dynamic.contains(s, 0, s):
            fresh = (s, 0, s)
            break
    checks = []
    for bgp in queries:
        first = cached.evaluate(bgp, limit=limit, timeout=timeout)
        repeat = cached.evaluate(bgp, limit=limit, timeout=timeout)
        assert fresh is not None
        cached.insert(*fresh)
        after = cached.evaluate(bgp, limit=limit, timeout=timeout)
        reference = dynamic.evaluate(bgp, limit=limit, timeout=timeout)
        checks.append(
            {
                "repeat_cached": bool(repeat.cached),
                "invalidated_after_write": not after.cached,
                "repeat_identical": _rows_key(repeat) == _rows_key(first),
                "after_identical": _rows_key(after) == _rows_key(reference),
            }
        )
        cached.delete(*fresh)
    return {
        "n_queries": len(checks),
        "always_invalidated": all(c["invalidated_after_write"] for c in checks),
        "always_identical": all(
            c["repeat_identical"] and c["after_identical"] for c in checks
        ),
        "repeats_served_from_cache": all(c["repeat_cached"] for c in checks),
        "checks": checks,
    }


def bench_cache(
    n: int = 4000,
    queries_per_shape: int = 2,
    limit: int = 2000,
    timeout: float = 30.0,
    seed: int = 0,
    capacity_bytes: Optional[int] = None,
) -> dict:
    """The serving cache against the uncached engine on a repeated mix.

    The honest baseline for "repeated workload" is the *second* uncached
    pass (same process, warm CPU caches and leap memos), so the reported
    ``speedup_warm`` is cached-pass-2 against uncached-pass-2 — cache
    machinery against engine, not cold process against warm one.
    """
    graph = wikidata_like(n, seed=seed)
    by_shape = generate_wgpb_queries(
        graph, queries_per_shape=queries_per_shape, seed=seed
    )
    queries = [bgp for instances in by_shape.values() for bgp in instances]

    plain = RingIndex(graph)
    un1_s, un_keys, un_rows = _run_workload(plain, queries, limit, timeout)
    un2_s, un2_keys, _ = _run_workload(plain, queries, limit, timeout)

    kwargs = {"capacity_bytes": capacity_bytes} if capacity_bytes else {}
    cached = CachedQuerySystem(RingIndex(graph), **kwargs)
    cold_s, cold_keys, cold_rows = _run_workload(cached, queries, limit, timeout)
    warm_s, warm_keys, warm_rows = _run_workload(cached, queries, limit, timeout)

    probe_query = max(queries, key=lambda q: len(q.patterns))
    return {
        "graph_triples": graph.n_triples,
        "n_queries": len(queries),
        "limit": limit,
        "uncached": {
            "pass1_seconds": un1_s,
            "pass2_seconds": un2_s,
            "rows": un_rows,
            "deterministic": un_keys == un2_keys,
        },
        "cached": {
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "rows": warm_rows,
            "cold_identical": cold_keys == un_keys,
            "warm_identical": warm_keys == un_keys,
            "speedup_cold": un1_s / cold_s if cold_s > 0 else float("inf"),
            "speedup_warm": un2_s / warm_s if warm_s > 0 else float("inf"),
            "cache": cached.cache_stats(),
        },
        "invalidation": _invalidation_probe(graph, queries[:4], limit, timeout),
        "coalescing": _coalescing_probe(graph, probe_query, limit),
    }


def full_report(
    quick: bool = False,
    seed: int = 0,
    n: Optional[int] = None,
    queries_per_shape: Optional[int] = None,
) -> dict:
    """The complete ``BENCH_cache.json`` payload."""
    if quick:
        n = n or 1500
        queries_per_shape = queries_per_shape or 1
    else:
        n = n or 4000
        queries_per_shape = queries_per_shape or 2
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "host": host_metadata(),
        "cpus": os.cpu_count(),
        "config": {
            "quick": quick,
            "n": n,
            "queries_per_shape": queries_per_shape,
            "seed": seed,
        },
        "cache_serving": bench_cache(
            n=n, queries_per_shape=queries_per_shape, seed=seed
        ),
    }


def write_report(report: dict, path: str) -> None:
    """Write the payload as indented JSON (newline-terminated)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`full_report` payload."""
    bench = report["cache_serving"]
    cached = bench["cached"]
    uncached = bench["uncached"]
    inval = bench["invalidation"]
    co = bench["coalescing"]
    cache_stats = cached["cache"]["results"]
    lines = [
        f"Serving cache ({bench['graph_triples']} triples, "
        f"{bench['n_queries']} WGPB queries x2 passes, "
        f"limit {bench['limit']}):",
        f"  uncached pass1: {1000 * uncached['pass1_seconds']:>8.1f}ms "
        f"({uncached['rows']} rows)",
        f"  uncached pass2: {1000 * uncached['pass2_seconds']:>8.1f}ms",
        f"  cached cold   : {1000 * cached['cold_seconds']:>8.1f}ms "
        f"({'identical' if cached['cold_identical'] else 'MISMATCH'}, "
        f"{cached['speedup_cold']:.2f}x)",
        f"  cached warm   : {1000 * cached['warm_seconds']:>8.1f}ms "
        f"({'identical' if cached['warm_identical'] else 'MISMATCH'}, "
        f"{cached['speedup_warm']:.2f}x, "
        f"hit rate {cache_stats['hit_rate']:.0%})",
        f"  invalidation  : "
        f"{inval['n_queries']} write-between-repeats drills, "
        f"{'all invalidated' if inval['always_invalidated'] else 'STALE SERVE'}"
        f", {'identical' if inval['always_identical'] else 'MISMATCH'}",
        f"  coalescing    : {co['submissions']} concurrent identical "
        f"submissions -> {co['inner_evaluations']} evaluation(s) "
        f"({co['coalesced']} coalesced, "
        f"{co['admission_cache_hits']} admission hits, "
        f"{'identical' if co['identical'] else 'MISMATCH'})",
    ]
    return "\n".join(lines)
