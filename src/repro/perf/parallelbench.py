"""End-to-end parallel-vs-serial LTJ benchmark (``BENCH_parallel.json``).

Times the WGPB-style quick workload on the serial :class:`RingIndex`
and on :class:`~repro.parallel.ParallelRingIndex` at one or more worker
counts, asserting along the way that every parallel answer is the
*byte-identical ordered* serial answer — a speedup over wrong rows is
worthless.  ``full_report`` bundles the measurements with the host's
CPU count (speedups on a 1-core container are expected to be < 1 and
the artifact records that honestly) into one JSON-serialisable payload:

- ``python -m repro bench --parallel`` — interactive table + JSON;
- ``benchmarks/bench_parallel.py`` — the pytest (marker ``perf``) gate:
  identity always, the >= 2x speedup floor only on hosts with >= 4
  cores;
- the CI quick-mode smoke (2 workers, small graph).

Same schema philosophy as :mod:`repro.perf.kernelbench`: the emitter
lives in the library so every ``BENCH_parallel.json`` in the repo
history is comparable.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.bench.wgpb import generate_wgpb_queries
from repro.perf.hostmeta import host_metadata
from repro.core import RingIndex
from repro.graph.generators import wikidata_like
from repro.parallel import ParallelRingIndex

#: Bump when the JSON layout changes, so trajectory tooling can dispatch.
SCHEMA_VERSION = 2

#: The speedup floor the perf gate enforces, and the smallest host it
#: is meaningful on: with < 4 cores the pool shares 1-2 cores with the
#: parent and the measurement says nothing about the implementation.
MIN_PARALLEL_SPEEDUP = 2.0
MIN_GATE_CPUS = 4


def _rows_key(result) -> list:
    """An order-preserving, comparable encoding of a query result."""
    return [tuple(sorted((v.name, c) for v, c in mu.items())) for mu in result]


def _run_workload(index, queries, limit, timeout) -> tuple[float, list, int]:
    """Evaluate every query; returns (total seconds, per-query keys, rows)."""
    total = 0.0
    keys = []
    rows = 0
    for bgp in queries:
        start = time.perf_counter()
        result = index.evaluate(bgp, limit=limit, timeout=timeout)
        total += time.perf_counter() - start
        key = _rows_key(result)
        keys.append(key)
        rows += len(key)
    return total, keys, rows


def bench_parallel(
    n: int = 4000,
    workers: Sequence[int] = (2, 4),
    queries_per_shape: int = 2,
    limit: int = 2000,
    timeout: float = 30.0,
    seed: int = 0,
    num_slices: Optional[int] = None,
) -> dict:
    """Serial vs pool-backed LTJ over the WGPB quick workload.

    One graph, one query set, evaluated once serially (the reference
    both for time *and* for row-level identity) and once per entry of
    ``workers``.  Each parallel row reports its speedup, whether every
    answer matched the serial one exactly (ordered), and the pool's
    own telemetry (dispatch/rescue counters, per-worker busy seconds).
    """
    graph = wikidata_like(n, seed=seed)
    by_shape = generate_wgpb_queries(
        graph, queries_per_shape=queries_per_shape, seed=seed
    )
    queries = [bgp for instances in by_shape.values() for bgp in instances]

    serial = RingIndex(graph)
    # Untimed warm-up on both sides: pays the one-off costs (imports,
    # leap-memo fill, and — on the parallel side — worker spawn and
    # shared-segment mapping) outside the measured window, so the
    # numbers compare steady-state engines, not process start-up.
    serial.evaluate(queries[0], limit=limit, timeout=timeout)
    serial_s, serial_keys, serial_rows = _run_workload(
        serial, queries, limit, timeout
    )

    parallel_rows = []
    for w in workers:
        index = ParallelRingIndex(
            graph, workers=w, num_slices=num_slices
        )
        try:
            index.evaluate(queries[0], limit=limit, timeout=timeout)
            par_s, par_keys, par_rows = _run_workload(
                index, queries, limit, timeout
            )
            pool_stats = index.pool_stats()
        finally:
            index.close()
        parallel_rows.append(
            {
                "workers": w,
                "num_slices": num_slices if num_slices else 2 * w,
                "total_seconds": par_s,
                "rows": par_rows,
                "speedup": serial_s / par_s if par_s > 0 else float("inf"),
                "identical": par_keys == serial_keys,
                "pool": pool_stats,
            }
        )
    cpus = os.cpu_count() or 1
    return {
        "graph_triples": graph.n_triples,
        "n_queries": len(queries),
        "queries_per_shape": queries_per_shape,
        "limit": limit,
        "serial": {"total_seconds": serial_s, "rows": serial_rows},
        "parallel": parallel_rows,
        # The pytest gate's verdict, recorded in the artifact so a
        # sub-0.21x "speedup" measured on a 1-core container reads as
        # "gate not applicable here", not as a regression.
        "speedup_gate": {
            "min_speedup": MIN_PARALLEL_SPEEDUP,
            "min_cpus": MIN_GATE_CPUS,
            "cpus": cpus,
            # Explicit os.cpu_count() alias: the canonical name CI and
            # artifact readers grep for when a skipped gate needs to be
            # self-explaining.
            "cpu_count": cpus,
            "applicable": cpus >= MIN_GATE_CPUS,
            "status": (
                "enforced"
                if cpus >= MIN_GATE_CPUS
                else f"skipped: host has {cpus} CPU(s), speedups are "
                     f"bounded by cores, not by the implementation"
            ),
        },
    }


def full_report(
    quick: bool = False,
    seed: int = 0,
    n: Optional[int] = None,
    queries_per_shape: Optional[int] = None,
    workers: Optional[Sequence[int]] = None,
) -> dict:
    """The complete ``BENCH_parallel.json`` payload."""
    if quick:
        n = n or 1500
        queries_per_shape = queries_per_shape or 1
        workers = workers or (2,)
    else:
        n = n or 4000
        queries_per_shape = queries_per_shape or 2
        workers = workers or (2, 4)
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "host": host_metadata(),
        "cpus": os.cpu_count(),
        "config": {
            "quick": quick,
            "n": n,
            "queries_per_shape": queries_per_shape,
            "workers": list(workers),
            "seed": seed,
        },
        "parallel_ltj": bench_parallel(
            n=n, workers=workers, queries_per_shape=queries_per_shape,
            seed=seed,
        ),
    }


def write_report(report: dict, path: str) -> None:
    """Write the payload as indented JSON (newline-terminated)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`full_report` payload."""
    bench = report["parallel_ltj"]
    lines = [
        f"Parallel LTJ ({bench['graph_triples']} triples, "
        f"{bench['n_queries']} WGPB queries, limit {bench['limit']}, "
        f"{report['cpus']} CPU(s)):",
        f"  serial        : {1000 * bench['serial']['total_seconds']:>8.1f}ms "
        f"({bench['serial']['rows']} rows)",
    ]
    for row in bench["parallel"]:
        verdict = "identical" if row["identical"] else "MISMATCH"
        lines.append(
            f"  {row['workers']} workers     : "
            f"{1000 * row['total_seconds']:>8.1f}ms "
            f"({row['rows']} rows, {row['speedup']:.2f}x, {verdict}, "
            f"{row['num_slices']} slices)"
        )
    gate = bench.get("speedup_gate")
    if gate is not None and not gate["applicable"]:
        lines.append(f"  gate: {gate['status']}")
    return "\n".join(lines)
